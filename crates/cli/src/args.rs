//! Minimal argument parsing for the `tailwise` CLI.
//!
//! Hand-rolled (no external parser dependency): subcommand + `--key value`
//! options + boolean `--switch` flags + positional operands, with typed
//! accessors and an unknown-flag check. Small enough to audit, strict
//! enough to catch typos.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed command line: subcommand, options, switches, positionals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    options: BTreeMap<String, String>,
    switches: BTreeSet<String>,
    positionals: Vec<String>,
}

/// A user-facing argument error.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name) against a set
    /// of known boolean `--switch` flags: every name in `switches`
    /// takes no value (writing `--name=x` is an error), everything
    /// else parses as `--key value`.
    pub fn parse_with_switches<I: IntoIterator<Item = String>>(
        raw: I,
        switches: &[&str],
    ) -> Result<Args, ArgError> {
        let mut it = raw.into_iter().peekable();
        let command =
            it.next().ok_or_else(|| ArgError("missing subcommand; try `tailwise help`".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!("expected a subcommand, got flag {command:?}")));
        }
        let mut options = BTreeMap::new();
        let mut set = BTreeSet::new();
        let mut positionals = Vec::new();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("bare `--` is not supported".into()));
                }
                let bare = key.split_once('=').map_or(key, |(k, _)| k);
                if switches.contains(&bare) {
                    if key.contains('=') {
                        return Err(ArgError(format!("--{bare} is a flag and takes no value")));
                    }
                    if !set.insert(bare.to_string()) {
                        return Err(ArgError(format!("--{bare} given twice")));
                    }
                    continue;
                }
                let (key, value) = match key.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => {
                        let v =
                            it.next().ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
                        (key.to_string(), v)
                    }
                };
                if options.insert(key.clone(), value).is_some() {
                    return Err(ArgError(format!("--{key} given twice")));
                }
            } else {
                positionals.push(arg);
            }
        }
        Ok(Args { command, options, switches: set, positionals })
    }

    /// String option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn opt_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.opt(key).unwrap_or(default)
    }

    /// Typed option.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.opt(key) {
            None => Ok(None),
            Some(v) => {
                v.parse::<T>().map(Some).map_err(|e| ArgError(format!("--{key} {v:?}: {e}")))
            }
        }
    }

    /// Whether boolean switch `key` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.switches.contains(key)
    }

    /// Positional operand by index.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Errors if any option or switch key is not in `allowed` (typo
    /// protection).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.switches.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{key}; valid options: {}",
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse_with_switches(words.iter().map(|s| s.to_string()), &[])
    }

    #[test]
    fn parses_command_options_positionals() {
        let a = parse(&["sim", "trace.twt", "--carrier", "att", "--scheme=makeidle"]).unwrap();
        assert_eq!(a.command, "sim");
        assert_eq!(a.positional(0), Some("trace.twt"));
        assert_eq!(a.opt("carrier"), Some("att"));
        assert_eq!(a.opt("scheme"), Some("makeidle"));
        assert_eq!(a.opt("missing"), None);
        assert_eq!(a.opt_or("missing", "x"), "x");
    }

    #[test]
    fn typed_options() {
        let a = parse(&["gen", "--hours", "2.5"]).unwrap();
        assert_eq!(a.opt_parse::<f64>("hours").unwrap(), Some(2.5));
        assert_eq!(a.opt_parse::<u32>("absent").unwrap(), None);
        let bad = parse(&["gen", "--hours", "soon"]).unwrap();
        assert!(bad.opt_parse::<f64>("hours").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--flag-first"]).is_err());
        assert!(parse(&["cmd", "--key"]).is_err());
        assert!(parse(&["cmd", "--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn switches_parse_without_values() {
        let a = Args::parse_with_switches(
            ["fleet", "run", "s.toml", "--progress", "--threads", "2"].map(String::from),
            &["progress", "quiet"],
        )
        .unwrap();
        assert!(a.flag("progress"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.opt("threads"), Some("2"));
        assert_eq!(a.positional(0), Some("run"));
        assert_eq!(a.positional(1), Some("s.toml"));
    }

    #[test]
    fn switch_misuse_is_rejected() {
        let dup = Args::parse_with_switches(
            ["fleet", "--progress", "--progress"].map(String::from),
            &["progress"],
        )
        .unwrap_err();
        assert!(dup.0.contains("given twice"), "{dup}");
        let valued =
            Args::parse_with_switches(["fleet", "--progress=yes"].map(String::from), &["progress"])
                .unwrap_err();
        assert!(valued.0.contains("takes no value"), "{valued}");
    }

    #[test]
    fn check_known_covers_switches_too() {
        let a =
            Args::parse_with_switches(["fleet", "--quiet"].map(String::from), &["quiet"]).unwrap();
        assert!(a.check_known(&["quiet", "threads"]).is_ok());
        let err = a.check_known(&["threads"]).unwrap_err();
        assert!(err.0.contains("--quiet"), "{err}");
    }

    #[test]
    fn unknown_option_check() {
        let a = parse(&["sim", "--carrier", "att", "--oops", "1"]).unwrap();
        let err = a.check_known(&["carrier", "scheme"]).unwrap_err();
        assert!(err.0.contains("--oops"));
        assert!(a.check_known(&["carrier", "oops"]).is_ok());
    }
}
