//! `tailwise` — the command-line face of the toolkit.
//!
//! ```text
//! tailwise gen --app im --hours 2 --seed 7 out.twt     synthesize a workload
//! tailwise info trace.twt                              inspect a trace
//! tailwise convert in.pcap --device 10.0.0.2 out.twt   ingest tcpdump output
//! tailwise sim trace.twt --carrier verizon-lte         compare all schemes
//! tailwise attribute trace.twt --carrier att           per-app energy blame
//! tailwise carriers                                    list carrier presets
//! ```
//!
//! Every subcommand works on the `.twt`/`.csv` trace formats of
//! `tailwise-trace`; `convert` additionally reads classic libpcap.

mod args;

use std::net::Ipv4Addr;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use args::{ArgError, Args};
use tailwise_core::schemes::Scheme;
use tailwise_fleet::RunManifest;
use tailwise_obs::{Obs, ProgressSampler, ProgressTable, Recorder, StatsRecorder};
use tailwise_radio::profile::CarrierProfile;
use tailwise_serve::{Client, ClientMsg, ServeConfig, Server, ServerMsg};
use tailwise_sim::engine::SimConfig;
use tailwise_trace::time::Duration;
use tailwise_trace::Trace;
use tailwise_workload::apps::AppKind;
use tailwise_workload::user::UserModel;

const HELP: &str = "\
tailwise — traffic-aware 3G/LTE RRC energy toolkit
  (reproduction of Deng & Balakrishnan, CoNEXT 2012)

USAGE
  tailwise <command> [options] [operands]

COMMANDS
  gen <out>        synthesize a workload trace
                     --app <news|im|microblog|game|email|social|finance>
                     --user <1..6>        (3G user presets; overrides --app)
                     --days <n>           (with --user; default preset days)
                     --hours <h>          (with --app; default 2)
                     --seed <n>           (default 1)
  info <trace>     summary, burst stats and IAT percentiles
  convert <in> <out>
                   convert between trace formats; reads .pcap/.csv/.twt
                     --device <ipv4>      (required for pcap input)
  sim <trace>      run every evaluation scheme over a trace
                     --carrier <tmobile|att|verizon-3g|verizon-lte|sprint-3g|sprint-lte>
                     --window <n>         (MakeIdle history, default 100)
  attribute <trace>
                   per-application energy attribution (status quo)
                     --carrier <...>
  fleet            population-scale parallel simulation (tailwise-fleet)
                     --users <n>          (default 1000)
                     --scheme <statusquo|tail45|iat95|makeidle|oracle|
                               makeidle-activefix|makeidle-activelearn>
                                          (default makeidle)
                     --carrier <...>      (default verizon-lte)
                     --days <n>           (days per user, default 1)
                     --threads <t>        (default: all hardware threads)
                     --seed <n>           (master seed, default 1)
                     --shard <n>          (users per shard, default 64)
                     --cells <n>          (base-station cells; users share
                                          each cell's admission policy and the
                                          report adds per-cell signaling load)
                     --capacity <m>       (RRC msgs/sec a cell absorbs before
                                          a second counts as overloaded;
                                          needs --cells)
                     --admission <p>      (per-cell admission policy: always |
                                          rate-limited:<secs> |
                                          reactive:<watermark>[:<window_s>];
                                          needs --cells)
                     --rncs <n>           (group the cells under n RNCs in
                                          contiguous blocks; the report adds
                                          per-RNC signaling load; needs --cells)
                     --rnc-capacity <m>   (RRC msgs/sec an RNC absorbs before
                                          a second counts as overloaded;
                                          needs --rncs)
                     --rnc-admission <p>  (RNC-level admission policy, same
                                          tokens as --admission; needs --rncs)
                     --mobility <m>       (user movement between cells: static |
                                          commute[:<home_hour>:<work_hour>
                                          [:<jitter_pct>[:<hint_s>]]];
                                          needs --cells)
                     --progress           (live per-shard status line on stderr)
                     --quiet              (suppress preamble chatter; the report
                                          still prints)
                     --metrics <path>     (write a machine-readable run manifest,
                                          re-readable with `fleet manifest`)
                     --cache <dir>        (spill phase-1 request extractions to
                                          <dir> as .twc files and warm-start
                                          later runs from them; cell-topology
                                          runs only — results are always
                                          bit-identical, cached or not)
                     --no-cache           (disable the default in-memory
                                          phase-1 cache)
  fleet run <file.toml>
                   run an on-disk scenario file (docs/SCENARIO_FORMAT.md):
                   a synthetic population, or a [corpus] table replaying a
                   directory of .twt/.twt.csv/.pcap traces; a [cells] table
                   routes fast dormancy through a cell topology; files with
                   [[sweep]] axes expand into a matrix of runs and fold into
                   one side-by-side comparison table
                     --threads <t>        (default: all hardware threads)
                     --progress / --quiet / --metrics <path>
                     --cache <dir> / --no-cache
                                          (as for `fleet` above; sweeps cache
                                          in memory by default, so every cell
                                          after the first replays the shared
                                          phase-1 extraction)
  fleet manifest <run.toml>
                   re-parse a --metrics run manifest (strict) and
                   print its provenance, phase timings and counters
                     --require-phases     (error unless every phase
                                          timing is positive)
                     --digest             (print only the 16-hex-digit
                                          digest of the deterministic
                                          fields — identical across
                                          machines and thread counts)
  fleet serve      resident fleet service (docs/SERVICE.md): accept
                   scenario jobs over TCP, run them on a worker pool
                   against one shared phase-1 cache, stream results
                     --addr <ip:port>     (default 127.0.0.1:7433;
                                          port 0 picks a free port)
                     --workers <n>        (concurrent jobs, default 2)
                     --threads <t>        (simulation threads per job)
                     --cache <dir>        (spill the shared cache to
                                          .twc files, as `fleet run`)
                     --quiet
  fleet submit <file.toml>
                   submit a scenario file to a running service and
                   stream the job live: rows as sweep cells finish,
                   then the report (the served twin of `fleet run`)
                     --addr <ip:port> / --quiet
                     --metrics <path>     (write the streamed manifest)
                     --detach             (print the job id and exit;
                                          re-attach with `fleet watch`)
  fleet watch <job>
                   re-attach to a job's stream; finished history
                   replays first, live messages follow
                     --addr <ip:port> / --quiet / --metrics <path>
  fleet jobs       list the service's jobs            --addr <ip:port>
  fleet cancel <job>
                   cancel a job: dequeued if still queued, stopped
                   between sweep cells if running    --addr <ip:port>
  fleet shutdown   drain every accepted job, then stop the service
                   (waits for the drain)             --addr <ip:port>
  fleet export <out.toml>
                   write the flag-built fleet scenario to a scenario file
                     (accepts the same flags as `fleet`, minus --threads)
  fleet synth <scenario.toml>
                   materialize a synthetic scenario into an on-disk trace
                   corpus: one trace file per user, named so the corpus
                   walk replays users in synthesis order
                     --out <dir>          (required; must hold no traces)
                     --format <twt|csv>   (default twt)
                     --threads <t>        (default: all hardware threads)
  carriers         print the built-in carrier profiles
  help             this text
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tailwise: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(raw: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" || raw[0] == "-h" {
        print!("{HELP}");
        return Ok(());
    }
    let args = Args::parse_with_switches(raw, SWITCHES)?;
    match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "info" => cmd_info(&args),
        "convert" => cmd_convert(&args),
        "sim" => cmd_sim(&args),
        "attribute" => cmd_attribute(&args),
        "fleet" => cmd_fleet(&args),
        "carriers" => cmd_carriers(&args),
        other => Err(Box::new(ArgError(format!("unknown command {other:?}; try `tailwise help`")))),
    }
}

fn carrier_from(args: &Args) -> Result<CarrierProfile, ArgError> {
    args.opt_or("carrier", "att").parse().map_err(ArgError)
}

fn app_from(name: &str) -> Result<AppKind, ArgError> {
    name.parse().map_err(ArgError)
}

fn load_trace(path: &str) -> Result<Trace, Box<dyn std::error::Error>> {
    Ok(tailwise_trace::io::load(Path::new(path))?)
}

fn cmd_gen(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["app", "user", "days", "hours", "seed"])?;
    let out = args.positional(0).ok_or_else(|| ArgError("gen needs an output path".into()))?;
    let seed: u64 = args.opt_parse("seed")?.unwrap_or(1);
    let trace = if let Some(user) = args.opt_parse::<usize>("user")? {
        let presets = UserModel::verizon_3g_users();
        let model = presets
            .get(user.wrapping_sub(1))
            .ok_or_else(|| ArgError(format!("--user must be 1..={}", presets.len())))?;
        let model = match args.opt_parse::<u32>("days")? {
            Some(d) => model.scaled_to_days(d.max(1)),
            None => model.clone(),
        };
        println!("generating {} ({} days)…", model.name, model.days);
        model.generate()
    } else {
        let kind = app_from(args.opt_or("app", "im"))?;
        let hours: f64 = args.opt_parse("hours")?.unwrap_or(2.0);
        if hours <= 0.0 {
            return Err(Box::new(ArgError("--hours must be positive".into())));
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        println!("generating {} for {hours} h (seed {seed})…", kind.name());
        kind.default_model().generate(Duration::from_secs_f64(hours * 3600.0), &mut rng)
    };
    tailwise_trace::io::save(&trace, Path::new(out))?;
    println!("wrote {out}: {}", trace.summary());
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&[])?;
    let path = args.positional(0).ok_or_else(|| ArgError("info needs a trace path".into()))?;
    let trace = load_trace(path)?;
    println!("{path}: {}", trace.summary());
    if trace.is_empty() {
        return Ok(());
    }
    let bursts = tailwise_trace::bursts::segment_default(&trace);
    if let Some(s) = tailwise_trace::bursts::stats(&bursts) {
        println!(
            "bursts : {} (mean {:.1} pkts, mean inter-burst gap {:.2} s)",
            s.count,
            s.mean_len,
            s.mean_interburst_gap.as_secs_f64()
        );
    }
    let dist = tailwise_trace::stats::EmpiricalDist::from_samples(trace.gaps());
    for q in [0.5, 0.9, 0.95, 0.99] {
        if let Some(v) = dist.quantile(q) {
            println!("IAT p{:<4}: {:.4} s", q * 100.0, v.as_secs_f64());
        }
    }
    for (app, count) in trace.apps() {
        let name = AppKind::ALL
            .iter()
            .find(|k| k.id() == app)
            .map(|k| k.name().to_string())
            .unwrap_or_else(|| app.to_string());
        println!("app    : {name} — {count} packets");
    }
    Ok(())
}

fn cmd_convert(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["device"])?;
    let input = args.positional(0).ok_or_else(|| ArgError("convert needs an input path".into()))?;
    let output =
        args.positional(1).ok_or_else(|| ArgError("convert needs an output path".into()))?;
    let is_pcap = Path::new(input)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("pcap") || e.eq_ignore_ascii_case("cap"));
    let trace = if is_pcap {
        let device: Ipv4Addr = args
            .opt("device")
            .ok_or_else(|| ArgError("pcap input needs --device <ipv4>".into()))?
            .parse()
            .map_err(|e| ArgError(format!("--device: {e}")))?;
        tailwise_trace::pcap::load_pcap(Path::new(input), device)?
    } else {
        load_trace(input)?
    };
    tailwise_trace::io::save(&trace, Path::new(output))?;
    println!("wrote {output}: {}", trace.summary());
    Ok(())
}

fn cmd_sim(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["carrier", "window"])?;
    let path = args.positional(0).ok_or_else(|| ArgError("sim needs a trace path".into()))?;
    let trace = load_trace(path)?;
    let profile = carrier_from(args)?;
    let mut config = SimConfig::default();
    if let Some(n) = args.opt_parse::<usize>("window")? {
        config.window_capacity = n.max(1);
    }
    println!(
        "{} on {} — {} packets over {:.1} h\n",
        path,
        profile.name,
        trace.len(),
        trace.span().as_secs_f64() / 3600.0
    );
    let base = Scheme::StatusQuo.run(&profile, &config, &trace);
    println!(
        "{:<28} {:>12} {:>8} {:>10} {:>9}",
        "scheme", "energy (J)", "saved", "switches", "delay(s)"
    );
    let mut schemes = vec![Scheme::StatusQuo];
    schemes.extend(Scheme::paper_set());
    for scheme in schemes {
        let r = scheme.run(&profile, &config, &trace);
        println!(
            "{:<28} {:>12.1} {:>7.1}% {:>10} {:>9.2}",
            r.scheme,
            r.total_energy(),
            r.savings_vs(&base),
            r.switch_cycles(),
            r.mean_session_delay(),
        );
    }
    Ok(())
}

fn cmd_attribute(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["carrier"])?;
    let path = args.positional(0).ok_or_else(|| ArgError("attribute needs a trace path".into()))?;
    let trace = load_trace(path)?;
    let profile = carrier_from(args)?;
    let attr = tailwise_sim::attribution::attribute(&profile, &SimConfig::default(), &trace);
    println!(
        "{:<12} {:>9} {:>12} {:>7} {:>10} {:>10}",
        "app", "packets", "energy (J)", "share", "data (J)", "tail (J)"
    );
    for a in &attr.apps {
        let name = AppKind::ALL
            .iter()
            .find(|k| k.id() == a.app)
            .map(|k| k.name().to_string())
            .unwrap_or_else(|| a.app.to_string());
        println!(
            "{:<12} {:>9} {:>12.1} {:>6.1}% {:>10.1} {:>10.1}",
            name,
            a.packets,
            a.energy.total(),
            attr.share(a.app) * 100.0,
            a.energy.data(),
            a.energy.tail(),
        );
    }
    Ok(())
}

fn scheme_from(name: &str) -> Result<Scheme, ArgError> {
    name.parse().map_err(ArgError)
}

fn threads_from(args: &Args) -> Result<usize, Box<dyn std::error::Error>> {
    match args.opt_parse("threads")? {
        Some(t) if t > 0 => Ok(t),
        Some(_) => Err(Box::new(ArgError("--threads must be positive".into()))),
        None => Ok(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)),
    }
}

/// Boolean `--switch` flags (no value) known anywhere on the command
/// line; subcommands that do not take one still reject it by name via
/// `check_known`.
const SWITCHES: &[&str] = &["progress", "quiet", "require-phases", "no-cache", "detach", "digest"];

/// Observability flags shared by the run subcommands (`fleet`,
/// `fleet run`): `--progress` (live status line), `--quiet` (suppress
/// preamble chatter), `--metrics <path>` (machine-readable manifest).
///
/// Owns the recorder and progress table so borrows into [`Obs`] stay
/// alive for the whole run. When neither flag asks for observation the
/// run gets [`Obs::none`] — the hot path stays recording-free.
struct RunObservability {
    recorder: StatsRecorder,
    table: Arc<ProgressTable>,
    progress: bool,
    quiet: bool,
    metrics: Option<String>,
}

impl RunObservability {
    fn from_args(args: &Args, threads: usize) -> Result<RunObservability, ArgError> {
        let progress = args.flag("progress");
        let quiet = args.flag("quiet");
        if progress && quiet {
            return Err(ArgError(
                "--progress conflicts with --quiet: one asks for a live status line, the \
                 other asks for silence; drop one"
                    .into(),
            ));
        }
        Ok(RunObservability {
            recorder: StatsRecorder::new(),
            table: Arc::new(ProgressTable::new(threads)),
            progress,
            quiet,
            metrics: args.opt("metrics").map(str::to_string),
        })
    }

    /// Whether anything asked for observation this run.
    fn enabled(&self) -> bool {
        self.progress || self.metrics.is_some()
    }

    /// The handle threaded through the fleet runner.
    fn obs(&self) -> Obs<'_> {
        if !self.enabled() {
            return Obs::none();
        }
        Obs { recorder: &self.recorder, progress: self.progress.then_some(&*self.table) }
    }

    /// Starts the stderr sampler thread when `--progress` was given.
    fn start_sampler(&self) -> Option<ProgressSampler> {
        self.progress.then(|| {
            ProgressSampler::start(Arc::clone(&self.table), std::time::Duration::from_millis(200))
        })
    }

    /// Writes the `--metrics` manifest, if one was requested.
    fn write_manifest(&self, manifest: &RunManifest) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(path) = &self.metrics {
            manifest.to_file(path)?;
            if !self.quiet {
                println!("wrote run manifest to {path}");
            }
        }
        Ok(())
    }
}

/// The phase-1 request cache described by `--cache <dir>` /
/// `--no-cache`: `None` disables caching, the default is a fresh
/// in-memory cache (free single-run reuse within sweeps), and a
/// directory adds `.twc` spills that warm-start later processes.
fn cache_from_args(args: &Args) -> Result<Option<tailwise_fleet::RequestCache>, ArgError> {
    let dir = args.opt("cache");
    if args.flag("no-cache") && dir.is_some() {
        return Err(ArgError(
            "--cache conflicts with --no-cache: one asks for an on-disk cache directory, \
             the other asks for no caching at all; drop one"
                .into(),
        ));
    }
    if args.flag("no-cache") {
        return Ok(None);
    }
    match dir {
        Some(dir) => tailwise_fleet::RequestCache::with_dir(dir)
            .map(Some)
            .map_err(|e| ArgError(format!("--cache {dir}: cannot prepare cache directory: {e}"))),
        None => Ok(Some(tailwise_fleet::RequestCache::in_memory())),
    }
}

/// The observability flags observe a *live* simulation, so the fleet
/// subcommands that never run one reject them by name instead of
/// silently ignoring them (checked before `check_known` so the message
/// explains the why, not just the typo).
fn reject_run_only_flags(args: &Args, subcommand: &str) -> Result<(), ArgError> {
    for flag in ["progress", "quiet", "metrics"] {
        if args.flag(flag) || args.opt(flag).is_some() {
            return Err(ArgError(format!(
                "--{flag} needs a run subcommand (`fleet` or `fleet run`): it observes a \
                 live simulation, and `fleet {subcommand}` never runs one"
            )));
        }
    }
    Ok(())
}

/// The network-topology flag set shared by `fleet` and `fleet export`.
const TOPOLOGY_FLAGS: [&str; 7] =
    ["cells", "capacity", "admission", "rncs", "rnc-capacity", "rnc-admission", "mobility"];

/// Builds the scenario described by the `fleet` / `fleet export` flags.
fn fleet_scenario_from_flags(
    args: &Args,
) -> Result<tailwise_fleet::Scenario, Box<dyn std::error::Error>> {
    let users: u64 = args.opt_parse("users")?.unwrap_or(1000);
    let scheme = scheme_from(args.opt_or("scheme", "makeidle"))?;
    let carrier = match args.opt("carrier") {
        Some(_) => carrier_from(args)?,
        None => CarrierProfile::verizon_lte(),
    };
    let mut scenario = tailwise_fleet::Scenario::new(users, scheme, carrier);
    scenario.master_seed = args.opt_parse("seed")?.unwrap_or(1);
    if let Some(days) = args.opt_parse::<u32>("days")? {
        scenario.days_per_user = days.max(1);
    }
    if let Some(shard) = args.opt_parse::<u64>("shard")? {
        scenario.shard_size = shard.max(1);
    }
    scenario.cells = topology_from_flags(args, &scheme)?;
    Ok(scenario)
}

/// Builds the optional network topology from the `--cells`-family
/// flags. Every topology flag given *without* `--cells` is an error,
/// never silently ignored; the RNC-level flags additionally require
/// `--rncs`.
fn topology_from_flags(
    args: &Args,
    scheme: &Scheme,
) -> Result<Option<tailwise_fleet::NetworkTopology>, Box<dyn std::error::Error>> {
    let cells = match args.opt_parse::<u64>("cells")? {
        Some(0) => return Err(Box::new(ArgError("--cells must be at least 1".into()))),
        Some(cells) => Some(cells),
        None => None,
    };
    let Some(cells) = cells else {
        if let Some(flag) = TOPOLOGY_FLAGS[1..].iter().find(|flag| args.opt(flag).is_some()) {
            return Err(Box::new(ArgError(format!(
                "--{flag} needs --cells: the flag configures a network topology, and without \
                 one it would be silently ignored"
            ))));
        }
        return Ok(None);
    };
    if !scheme.scriptable() {
        return Err(Box::new(ArgError(format!(
            "--cells cannot run scheme {scheme}: MakeActive batching depends on \
             grant outcomes, so the exact two-pass replay does not apply"
        ))));
    }
    let rncs = match args.opt_parse::<u64>("rncs")? {
        Some(0) => return Err(Box::new(ArgError("--rncs must be at least 1".into()))),
        Some(rncs) if rncs > cells => {
            return Err(Box::new(ArgError(format!(
                "cannot spread {cells} cell(s) over {rncs} RNCs; --rncs must be ≤ --cells"
            ))))
        }
        Some(rncs) => Some(rncs),
        None => None,
    };
    if rncs.is_none() {
        for flag in ["rnc-capacity", "rnc-admission"] {
            if args.opt(flag).is_some() {
                return Err(Box::new(ArgError(format!(
                    "--{flag} needs --rncs: it configures the RNC level of the hierarchy"
                ))));
            }
        }
    }
    let mut topology = tailwise_fleet::NetworkTopology::with_rncs(rncs.unwrap_or(1), cells);
    topology.cell_budget.capacity_per_s = args.opt_parse::<u64>("capacity")?;
    topology.rnc_budget.capacity_per_s = args.opt_parse::<u64>("rnc-capacity")?;
    if let Some(spec) = args.opt_parse::<tailwise_fleet::AdmissionSpec>("admission")? {
        topology.cell_admission = spec;
    }
    if let Some(spec) = args.opt_parse::<tailwise_fleet::AdmissionSpec>("rnc-admission")? {
        topology.rnc_admission = spec;
    }
    if let Some(spec) = args.opt_parse::<tailwise_fleet::MobilitySpec>("mobility")? {
        topology.mobility = spec;
    }
    Ok(Some(topology))
}

fn cmd_fleet(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    match args.positional(0) {
        Some("run") => return cmd_fleet_run(args),
        Some("export") => return cmd_fleet_export(args),
        Some("synth") => return cmd_fleet_synth(args),
        Some("manifest") => return cmd_fleet_manifest(args),
        Some("serve") => return cmd_fleet_serve(args),
        Some("submit") => return cmd_fleet_submit(args),
        Some("watch") => return cmd_fleet_watch(args),
        Some("jobs") => return cmd_fleet_jobs(args),
        Some("cancel") => return cmd_fleet_cancel(args),
        Some("shutdown") => return cmd_fleet_shutdown(args),
        Some(other) => {
            return Err(Box::new(ArgError(format!(
                "unknown fleet subcommand {other:?}; expected `run <file.toml>`, \
                 `export <out.toml>`, `synth <scenario.toml>`, `manifest <run.toml>`, \
                 `serve`, `submit <file.toml>`, `watch <job>`, `jobs`, `cancel <job>`, \
                 `shutdown`, or flags only"
            ))))
        }
        None => {}
    }
    args.check_known(&[
        "users",
        "scheme",
        "carrier",
        "days",
        "threads",
        "seed",
        "shard",
        "cells",
        "capacity",
        "admission",
        "rncs",
        "rnc-capacity",
        "rnc-admission",
        "mobility",
        "progress",
        "quiet",
        "metrics",
        "cache",
        "no-cache",
    ])?;
    let threads = threads_from(args)?;
    let scenario = fleet_scenario_from_flags(args)?;
    let obs = RunObservability::from_args(args, threads)?;
    let cache = cache_from_args(args)?;
    let topology = match &scenario.cells {
        Some(topology) => {
            format!(" across {} RNC(s) / {} cell(s)", topology.rncs, topology.cells)
        }
        None => String::new(),
    };
    if !obs.quiet {
        println!(
            "simulating {} users × {} day(s) of {} on {}{} ({} threads, seed {})…",
            scenario.users,
            scenario.days_per_user,
            scenario.scheme.label(),
            scenario.carrier_mix[0].0.name,
            topology,
            threads,
            scenario.master_seed,
        );
    }
    let sampler = obs.start_sampler();
    let report = tailwise_fleet::run_cached(&scenario, threads, obs.obs(), cache.as_ref());
    if let Some(sampler) = sampler {
        sampler.finish();
    }
    print!("{}", report.render());
    if obs.metrics.is_some() {
        let manifest = RunManifest::for_report(
            &report,
            threads,
            scenario.master_seed,
            &obs.recorder.snapshot(),
        );
        obs.write_manifest(&manifest)?;
    }
    Ok(())
}

/// `tailwise fleet manifest <run.toml>`: strictly re-parse a
/// `--metrics` manifest and summarize it — the self-test for the
/// machine-readable contract. `--require-phases` additionally errors
/// when any phase timing is zero (the CI assertion that observation
/// actually saw work in every phase).
fn cmd_fleet_manifest(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    reject_run_only_flags(args, "manifest")?;
    args.check_known(&["require-phases", "digest"])?;
    if args.flag("digest") && args.flag("require-phases") {
        return Err(Box::new(ArgError(
            "--digest conflicts with --require-phases: --digest promises the digest as \
             the only output; run the checks as a separate invocation"
                .into(),
        )));
    }
    let path = args
        .positional(1)
        .ok_or_else(|| ArgError("fleet manifest needs a manifest file path".into()))?;
    if let Some(extra) = args.positional(2) {
        return Err(Box::new(ArgError(format!(
            "fleet manifest takes exactly one manifest file, got extra operand {extra:?}"
        ))));
    }
    let manifest = RunManifest::from_file(path)?;
    if args.flag("digest") {
        // Only the digest, so `$(tailwise fleet manifest --digest a.toml)`
        // compares runs across machines and thread counts.
        println!("{:016x}", manifest.digest());
        return Ok(());
    }
    println!(
        "{path}: {} — {} run(s) of {} ({}), seed {}, {} thread(s), {:.2} s wall",
        manifest.name,
        manifest.reports.len(),
        manifest.scheme,
        manifest.source,
        manifest.seed,
        manifest.threads,
        manifest.wall_seconds,
    );
    for (name, seconds) in manifest.timings.phases() {
        println!("  {name:<11} {seconds:>8.2} s");
    }
    for (name, value) in &manifest.counters {
        println!("  {name:<24} {value}");
    }
    if args.flag("require-phases") {
        let zero = manifest.zero_phases();
        if !zero.is_empty() {
            return Err(Box::new(ArgError(format!(
                "manifest {path} has zero phase timing(s): {} — the run recorded no time \
                 in those phases",
                zero.join(", ")
            ))));
        }
        println!("all phase timings present and positive");
    }
    Ok(())
}

/// Where the resident service listens by default; every service
/// subcommand overrides it with `--addr <ip:port>`.
const DEFAULT_SERVICE_ADDR: &str = "127.0.0.1:7433";

fn service_addr(args: &Args) -> String {
    args.opt_or("addr", DEFAULT_SERVICE_ADDR).to_string()
}

/// Connects to a running service with a diagnosis that names the fix.
fn service_connect(addr: &str) -> Result<Client, ArgError> {
    Client::connect(addr).map_err(|e| {
        ArgError(format!(
            "cannot reach a fleet service at {addr}: {e} (start one with \
             `tailwise fleet serve --addr {addr}`)"
        ))
    })
}

/// `tailwise fleet serve`: run the resident fleet service — accept
/// scenario jobs over TCP, execute them on a bounded worker pool
/// against one process-wide phase-1 cache, and stream results live.
/// Blocks until a client's `shutdown` request drains the job queue.
fn cmd_fleet_serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["addr", "workers", "threads", "cache", "quiet"])?;
    if let Some(extra) = args.positional(1) {
        return Err(Box::new(ArgError(format!(
            "fleet serve takes no operands, got {extra:?} (submit scenarios with \
             `tailwise fleet submit <file.toml>`)"
        ))));
    }
    let workers = match args.opt_parse::<usize>("workers")? {
        Some(0) => return Err(Box::new(ArgError("--workers must be at least 1".into()))),
        Some(n) => n,
        None => 2,
    };
    let quiet = args.flag("quiet");
    let config = ServeConfig {
        addr: service_addr(args),
        workers,
        threads: threads_from(args)?,
        cache_dir: args.opt("cache").map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    let threads = config.threads;
    let spill = match &config.cache_dir {
        Some(dir) => format!(", cache spills to {}", dir.display()),
        None => ", in-memory cache".into(),
    };
    let server = Server::start(config)?;
    if !quiet {
        println!(
            "fleet service listening on {} ({} worker(s) × {} thread(s){})",
            server.local_addr(),
            workers,
            threads,
            spill,
        );
        println!(
            "submit with `tailwise fleet submit <file.toml> --addr {0}`; stop with \
             `tailwise fleet shutdown --addr {0}`",
            server.local_addr(),
        );
    }
    server.join();
    if !quiet {
        println!("fleet service drained and stopped");
    }
    Ok(())
}

/// Follows one job's stream to its terminal message: rows as cells
/// finish, the report to stdout, the manifest to `--metrics` (when
/// asked), errors as errors. Shared by `fleet submit` and
/// `fleet watch`.
fn stream_job(
    client: &mut Client,
    quiet: bool,
    metrics: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    loop {
        let Some(msg) = client.recv()? else {
            return Err(Box::new(ArgError(
                "the service closed the connection before the job finished \
                 (was it shut down?)"
                    .into(),
            )));
        };
        match msg {
            ServerMsg::Accepted { job, name, queue } => {
                if !quiet {
                    println!("job {job} accepted: {name} (queue position {queue})");
                }
            }
            ServerMsg::Progress { users_done, users_total, user_days, elapsed_s, .. } => {
                if !quiet {
                    eprintln!(
                        "  job progress: {users_done}/{users_total} users, \
                         {user_days} user-days, {elapsed_s:.1} s elapsed"
                    );
                }
            }
            ServerMsg::Row { index, label, users, energy_j, saved_pct, .. } => {
                if !quiet {
                    let label = if label.is_empty() { "run".to_string() } else { label };
                    println!(
                        "  cell {index} done: {label} — {users} users, \
                         {energy_j:.1} J, {saved_pct:.1}% saved"
                    );
                }
            }
            ServerMsg::Report { text, .. } => print!("{text}"),
            ServerMsg::Manifest { text, .. } => {
                if let Some(path) = metrics {
                    std::fs::write(path, &text)?;
                    if !quiet {
                        println!("wrote run manifest to {path}");
                    }
                }
            }
            ServerMsg::Done { .. } => return Ok(()),
            ServerMsg::Failed { job, error } => {
                return Err(Box::new(ArgError(format!("job {job} failed: {error}"))))
            }
            ServerMsg::Cancelled { job } => {
                return Err(Box::new(ArgError(format!("job {job} was cancelled"))))
            }
            ServerMsg::Error { message } => return Err(Box::new(ArgError(message))),
            // Listing rows and shutdown notices can interleave with a
            // stream; neither terminates the job.
            ServerMsg::Job { .. } | ServerMsg::End { .. } | ServerMsg::ShuttingDown { .. } => {}
        }
    }
}

/// `tailwise fleet submit <file.toml>`: hand a scenario file to a
/// running service and (unless `--detach`) stream the job to
/// completion — the served twin of `fleet run`.
fn cmd_fleet_submit(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["addr", "detach", "metrics", "quiet"])?;
    let path = args
        .positional(1)
        .ok_or_else(|| ArgError("fleet submit needs a scenario file path".into()))?;
    if let Some(extra) = args.positional(2) {
        return Err(Box::new(ArgError(format!(
            "fleet submit takes exactly one scenario file, got extra operand {extra:?}"
        ))));
    }
    if args.flag("detach") && args.opt("metrics").is_some() {
        return Err(Box::new(ArgError(
            "--detach conflicts with --metrics: the manifest arrives at the end of the \
             stream, and --detach hangs up before it; re-attach with `fleet watch`"
                .into(),
        )));
    }
    let scenario = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read scenario file {path}: {e}")))?;
    let addr = service_addr(args);
    let mut client = service_connect(&addr)?;
    client.send(&ClientMsg::Submit { scenario })?;
    if args.flag("detach") {
        // One reply decides: accepted (print the id for `fleet watch`)
        // or rejected.
        return match client.recv()? {
            Some(ServerMsg::Accepted { job, name, queue }) => {
                println!("job {job} accepted: {name} (queue position {queue})");
                if !args.flag("quiet") {
                    println!("follow it with `tailwise fleet watch {job} --addr {addr}`");
                }
                Ok(())
            }
            Some(ServerMsg::Error { message }) => Err(Box::new(ArgError(message))),
            other => {
                Err(Box::new(ArgError(format!("unexpected reply to a submission: {other:?}"))))
            }
        };
    }
    stream_job(&mut client, args.flag("quiet"), args.opt("metrics"))
}

/// `tailwise fleet watch <job>`: re-attach to a job's stream — the
/// replayable history (acceptance, finished rows, final payloads)
/// first, then everything live.
fn cmd_fleet_watch(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["addr", "metrics", "quiet"])?;
    let job: u64 = args
        .positional(1)
        .ok_or_else(|| ArgError("fleet watch needs a job id (see `fleet jobs`)".into()))?
        .parse()
        .map_err(|_| ArgError("fleet watch needs a numeric job id".into()))?;
    let mut client = service_connect(&service_addr(args))?;
    client.send(&ClientMsg::Watch { job })?;
    stream_job(&mut client, args.flag("quiet"), args.opt("metrics"))
}

/// `tailwise fleet jobs`: list every job the service knows about.
fn cmd_fleet_jobs(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["addr"])?;
    let mut client = service_connect(&service_addr(args))?;
    client.send(&ClientMsg::Jobs)?;
    loop {
        match client.recv()? {
            Some(ServerMsg::Job { job, state, name }) => {
                println!("job {job:>4}  {state:<10} {name}");
            }
            Some(ServerMsg::End { count }) => {
                println!("{count} job(s)");
                return Ok(());
            }
            Some(ServerMsg::Error { message }) => return Err(Box::new(ArgError(message))),
            other => {
                return Err(Box::new(ArgError(format!(
                    "unexpected reply to a jobs listing: {other:?}"
                ))))
            }
        }
    }
}

/// `tailwise fleet cancel <job>`: cancel a job — dequeued on the spot
/// if it has not started, stopped between sweep cells if it has.
fn cmd_fleet_cancel(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["addr"])?;
    let job: u64 = args
        .positional(1)
        .ok_or_else(|| ArgError("fleet cancel needs a job id (see `fleet jobs`)".into()))?
        .parse()
        .map_err(|_| ArgError("fleet cancel needs a numeric job id".into()))?;
    let mut client = service_connect(&service_addr(args))?;
    client.send(&ClientMsg::Cancel { job })?;
    match client.recv()? {
        Some(ServerMsg::Job { job, state, name }) => {
            if state == "running" {
                println!("job {job} ({name}) is running; it stops between sweep cells");
            } else {
                println!("job {job} ({name}) is now {state}");
            }
            Ok(())
        }
        Some(ServerMsg::Error { message }) => Err(Box::new(ArgError(message))),
        other => Err(Box::new(ArgError(format!("unexpected reply to a cancel: {other:?}")))),
    }
}

/// `tailwise fleet shutdown`: ask the service to drain every accepted
/// job and stop, then wait for the drain to finish (connection EOF).
fn cmd_fleet_shutdown(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["addr", "quiet"])?;
    let mut client = service_connect(&service_addr(args))?;
    client.send(&ClientMsg::Shutdown)?;
    match client.recv()? {
        Some(ServerMsg::ShuttingDown { unfinished }) => {
            if !args.flag("quiet") {
                println!("fleet service shutting down: {unfinished} unfinished job(s) draining…");
            }
        }
        Some(ServerMsg::Error { message }) => return Err(Box::new(ArgError(message))),
        other => {
            return Err(Box::new(ArgError(format!("unexpected reply to a shutdown: {other:?}"))))
        }
    }
    client.recv_until_eof()?;
    if !args.flag("quiet") {
        println!("fleet service stopped");
    }
    Ok(())
}

/// `tailwise fleet run <file.toml>`: execute an on-disk scenario file —
/// a single fleet run (synthetic or corpus replay), or a sweep matrix
/// folded into one comparison table.
fn cmd_fleet_run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&["threads", "progress", "quiet", "metrics", "cache", "no-cache"])?;
    let path = args
        .positional(1)
        .ok_or_else(|| ArgError("fleet run needs a scenario file path".into()))?;
    if let Some(extra) = args.positional(2) {
        return Err(Box::new(ArgError(format!(
            "fleet run takes exactly one scenario file, got extra operand {extra:?} \
             (run files one at a time, or express the matrix as [[sweep]] axes in one file)"
        ))));
    }
    let set = tailwise_fleet::SourceSet::from_file(path)?;
    let threads = threads_from(args)?;
    let obs = RunObservability::from_args(args, threads)?;
    let cache = cache_from_args(args)?;
    let seed = match &set.source {
        tailwise_fleet::UserSource::Synthetic(base) => base.master_seed,
        tailwise_fleet::UserSource::Corpus(base) => base.master_seed,
    };
    if set.is_sweep() {
        if !obs.quiet {
            println!(
                "running {} from {path}: {} scenario(s) across {} sweep axis(es), {} threads…",
                set.source.name(),
                set.expansion_count(),
                set.axes.len(),
                threads,
            );
        }
        let sampler = obs.start_sampler();
        let report =
            tailwise_fleet::run_source_sweep_cached(&set, threads, obs.obs(), cache.as_ref())?;
        if let Some(sampler) = sampler {
            sampler.finish();
        }
        print!("{}", report.render());
        if obs.metrics.is_some() {
            let manifest = RunManifest::for_sweep(&report, threads, seed, &obs.recorder.snapshot());
            obs.write_manifest(&manifest)?;
        }
        return Ok(());
    }
    let topology = |cells: &Option<tailwise_fleet::NetworkTopology>| match cells {
        Some(topology) => {
            format!(" across {} RNC(s) / {} cell(s)", topology.rncs, topology.cells)
        }
        None => String::new(),
    };
    if !obs.quiet {
        match &set.source {
            tailwise_fleet::UserSource::Synthetic(base) => println!(
                "running {} from {path}: {} users × {} day(s) of {}{} ({} threads, seed {})…",
                base.name,
                base.users,
                base.days_per_user,
                base.scheme.label(),
                topology(&base.cells),
                threads,
                base.master_seed,
            ),
            tailwise_fleet::UserSource::Corpus(base) => println!(
                "replaying {} from {path}: corpus {} under {}{} ({} threads)…",
                base.name,
                base.spec.dir.display(),
                base.scheme.label(),
                topology(&base.cells),
                threads,
            ),
        }
    }
    let sampler = obs.start_sampler();
    let report =
        tailwise_fleet::run_source_cached(&set.source, threads, obs.obs(), cache.as_ref())?;
    if let Some(sampler) = sampler {
        sampler.finish();
    }
    print!("{}", report.render());
    if obs.metrics.is_some() {
        let manifest = RunManifest::for_report(&report, threads, seed, &obs.recorder.snapshot());
        obs.write_manifest(&manifest)?;
    }
    Ok(())
}

/// `tailwise fleet synth <scenario.toml> --out <dir>`: materialize a
/// synthetic scenario into an on-disk trace corpus — one file per user,
/// zero-padded so the deterministic corpus walk replays users in
/// synthesis order. The instant self-test fixture for `[corpus]` runs.
fn cmd_fleet_synth(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    reject_run_only_flags(args, "synth")?;
    args.check_known(&["out", "format", "threads"])?;
    let path = args
        .positional(1)
        .ok_or_else(|| ArgError("fleet synth needs a scenario file path".into()))?;
    let out = args
        .opt("out")
        .ok_or_else(|| ArgError("fleet synth needs --out <dir> for the corpus".into()))?;
    let format: tailwise_trace::TraceFormat =
        args.opt_or("format", "twt").parse().map_err(ArgError)?;
    let threads = threads_from(args)?;
    let scenario = tailwise_fleet::Scenario::from_file(path)?;
    println!(
        "synthesizing {} users × {} day(s) into {out} ({} format, {threads} threads)…",
        scenario.users, scenario.days_per_user, format,
    );
    let written = tailwise_fleet::synth_corpus(&scenario, Path::new(out), format, threads)?;
    println!(
        "wrote {written} trace files to {out} — replay them with a [corpus] scenario \
         (see docs/SCENARIO_FORMAT.md §5)"
    );
    Ok(())
}

/// `tailwise fleet export <out.toml>`: write the flag-built scenario to
/// a scenario file (the starting point for hand-edited experiments).
fn cmd_fleet_export(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    reject_run_only_flags(args, "export")?;
    args.check_known(&[
        "users",
        "scheme",
        "carrier",
        "days",
        "seed",
        "shard",
        "cells",
        "capacity",
        "admission",
        "rncs",
        "rnc-capacity",
        "rnc-admission",
        "mobility",
    ])?;
    let out =
        args.positional(1).ok_or_else(|| ArgError("fleet export needs an output path".into()))?;
    if let Some(extra) = args.positional(2) {
        return Err(Box::new(ArgError(format!(
            "fleet export takes exactly one output path, got extra operand {extra:?}"
        ))));
    }
    let scenario = fleet_scenario_from_flags(args)?;
    scenario.to_file(out)?;
    println!(
        "wrote {out}: {} users × {} day(s) of {} (run with `tailwise fleet run {out}`)",
        scenario.users,
        scenario.days_per_user,
        scenario.scheme.label(),
    );
    Ok(())
}

fn cmd_carriers(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    args.check_known(&[])?;
    println!(
        "{:<14} {:>8} {:>8} {:>6} {:>6} {:>8} {:>10} {:>11}",
        "carrier", "Pt1(mW)", "Pt2(mW)", "t1(s)", "t2(s)", "promo(s)", "Esw(J)", "thresh(s)"
    );
    for p in CarrierProfile::all_presets() {
        println!(
            "{:<14} {:>8.0} {:>8.0} {:>6.1} {:>6.1} {:>8.1} {:>10.2} {:>11.2}",
            p.name,
            p.p_dch * 1000.0,
            p.p_fach * 1000.0,
            p.t1.as_secs_f64(),
            p.t2.as_secs_f64(),
            p.promotion_delay.as_secs_f64(),
            p.e_switch(),
            p.t_threshold().as_secs_f64(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    //! Flag-validation coverage for the fleet scenario builder: every
    //! topology flag given without its prerequisite is a loud error,
    //! never a silently ignored knob.

    use super::*;
    use tailwise_fleet::AdmissionSpec;

    fn fleet_args(extra: &[&str]) -> Args {
        let mut words = vec!["fleet".to_string()];
        words.extend(extra.iter().map(|s| s.to_string()));
        Args::parse_with_switches(words, &[]).expect("test flags parse")
    }

    fn build_err(extra: &[&str]) -> String {
        fleet_scenario_from_flags(&fleet_args(extra)).unwrap_err().to_string()
    }

    #[test]
    fn topology_flags_without_cells_are_errors_not_noops() {
        for flag in ["--capacity", "--admission", "--rncs", "--rnc-capacity", "--rnc-admission"] {
            let value = if flag.contains("admission") { "always" } else { "5" };
            let err = build_err(&[flag, value]);
            assert!(err.contains("needs --cells"), "{flag}: {err}");
        }
        let err = build_err(&["--mobility", "commute"]);
        assert!(err.contains("needs --cells"), "{err}");
        // The guard names the offending flag.
        assert!(build_err(&["--admission", "always"]).contains("--admission"));
    }

    #[test]
    fn mobility_flag_parses_tokens_and_rejects_bad_ones() {
        let scenario =
            fleet_scenario_from_flags(&fleet_args(&["--cells", "4", "--mobility", "commute:6:19"]))
                .unwrap();
        assert_eq!(
            scenario.cells.expect("topology built").mobility,
            tailwise_fleet::MobilitySpec::Commute {
                home_hour: 6,
                work_hour: 19,
                jitter_pct: 5,
                hint_s: 60,
            }
        );
        let err = build_err(&["--cells", "4", "--mobility", "commute:19:6"]);
        assert!(err.contains("leave home before leaving work"), "{err}");
        let err = build_err(&["--cells", "4", "--mobility", "teleport"]);
        assert!(err.contains("unknown mobility model"), "{err}");
    }

    #[test]
    fn rnc_level_flags_without_rncs_are_errors() {
        for (flag, value) in [("--rnc-capacity", "120"), ("--rnc-admission", "reactive:9")] {
            let err = build_err(&["--cells", "4", flag, value]);
            assert!(err.contains("needs --rncs"), "{flag}: {err}");
        }
    }

    #[test]
    fn counts_are_validated() {
        assert!(build_err(&["--cells", "0"]).contains("--cells must be at least 1"));
        assert!(build_err(&["--cells", "4", "--rncs", "0"]).contains("--rncs must be at least 1"));
        assert!(build_err(&["--cells", "4", "--rncs", "5"]).contains("cannot spread 4 cell(s)"));
        let err = build_err(&["--cells", "4", "--scheme", "makeidle-activelearn"]);
        assert!(err.contains("cannot run scheme"), "{err}");
        let err = build_err(&["--cells", "4", "--admission", "reactive"]);
        assert!(err.contains("watermark"), "{err}");
    }

    #[test]
    fn full_hierarchy_flags_build_the_topology() {
        let scenario = fleet_scenario_from_flags(&fleet_args(&[
            "--users",
            "50",
            "--cells",
            "12",
            "--capacity",
            "120",
            "--admission",
            "rate-limited:2.5",
            "--rncs",
            "3",
            "--rnc-capacity",
            "400",
            "--rnc-admission",
            "reactive:50:5",
        ]))
        .unwrap();
        let topology = scenario.cells.expect("topology built");
        assert_eq!((topology.rncs, topology.cells), (3, 12));
        assert_eq!(topology.cell_budget.capacity_per_s, Some(120));
        assert_eq!(topology.rnc_budget.capacity_per_s, Some(400));
        assert_eq!(
            topology.cell_admission,
            AdmissionSpec::RateLimited {
                min_interval: tailwise_trace::time::Duration::from_secs_f64(2.5)
            }
        );
        assert_eq!(
            topology.rnc_admission,
            AdmissionSpec::LoadReactive { watermark_per_s: 50, window_s: 5 }
        );

        // The flat default: --cells alone is one always-admitting RNC.
        let scenario = fleet_scenario_from_flags(&fleet_args(&["--cells", "4"])).unwrap();
        let topology = scenario.cells.expect("topology built");
        assert_eq!(topology.rncs, 1);
        assert_eq!(topology.cell_admission, AdmissionSpec::Always);
        assert_eq!(topology.rnc_admission, AdmissionSpec::Always);

        // No topology flags at all: no topology.
        let scenario = fleet_scenario_from_flags(&fleet_args(&["--users", "10"])).unwrap();
        assert!(scenario.cells.is_none());
    }

    fn obs_args(extra: &[&str]) -> Args {
        let mut words = vec!["fleet".to_string()];
        words.extend(extra.iter().map(|s| s.to_string()));
        Args::parse_with_switches(words, SWITCHES).expect("test flags parse")
    }

    #[test]
    fn service_subcommand_flags_are_validated() {
        // serve: no operands, positive workers.
        let err = cmd_fleet_serve(&obs_args(&["serve", "stray.toml"])).unwrap_err().to_string();
        assert!(err.contains("takes no operands"), "{err}");
        let err = cmd_fleet_serve(&obs_args(&["serve", "--workers", "0"])).unwrap_err().to_string();
        assert!(err.contains("--workers must be at least 1"), "{err}");

        // submit: needs a file; --detach hangs up before the manifest.
        let err = cmd_fleet_submit(&obs_args(&["submit"])).unwrap_err().to_string();
        assert!(err.contains("needs a scenario file"), "{err}");
        let err =
            cmd_fleet_submit(&obs_args(&["submit", "a.toml", "--detach", "--metrics", "m.toml"]))
                .unwrap_err()
                .to_string();
        assert!(err.contains("--detach conflicts with --metrics"), "{err}");

        // watch / cancel: numeric job ids only.
        for sub in ["watch", "cancel"] {
            let run = |extra: &[&str]| -> String {
                let args = obs_args(extra);
                let result = match sub {
                    "watch" => cmd_fleet_watch(&args),
                    _ => cmd_fleet_cancel(&args),
                };
                result.unwrap_err().to_string()
            };
            assert!(run(&[sub]).contains("needs a job id"), "{sub}");
            assert!(run(&[sub, "seven"]).contains("numeric job id"), "{sub}");
        }
    }

    #[test]
    fn digest_conflicts_with_require_phases() {
        let err = cmd_fleet_manifest(&obs_args(&[
            "manifest",
            "/nonexistent/run.toml",
            "--digest",
            "--require-phases",
        ]))
        .unwrap_err()
        .to_string();
        // Flags are validated before I/O: the conflict is diagnosed
        // even though the file is also missing.
        assert!(err.contains("--digest conflicts with --require-phases"), "{err}");
    }

    #[test]
    fn progress_with_quiet_is_a_named_error() {
        let err = RunObservability::from_args(&obs_args(&["--progress", "--quiet"]), 2)
            .map(|_| ())
            .unwrap_err()
            .to_string();
        assert!(err.contains("--progress conflicts with --quiet"), "{err}");
        // Either alone is fine.
        assert!(RunObservability::from_args(&obs_args(&["--progress"]), 2).is_ok());
        assert!(RunObservability::from_args(&obs_args(&["--quiet"]), 2).is_ok());
    }

    #[test]
    fn cache_flags_conflict_and_default_on() {
        let err = cache_from_args(&obs_args(&["--cache", "/tmp/x", "--no-cache"]))
            .map(|_| ())
            .unwrap_err()
            .to_string();
        assert!(err.contains("--cache conflicts with --no-cache"), "{err}");
        // --no-cache alone disables; no flags defaults to in-memory.
        assert!(cache_from_args(&obs_args(&["--no-cache"])).unwrap().is_none());
        let default = cache_from_args(&obs_args(&[])).unwrap().expect("default cache");
        assert!(default.dir().is_none(), "default cache must be memory-only");
    }

    #[test]
    fn observability_flags_need_a_run_subcommand() {
        for (extra, sub) in [
            (&["export", "out.toml", "--metrics", "m.toml"][..], "export"),
            (&["synth", "s.toml", "--progress"][..], "synth"),
            (&["manifest", "m.toml", "--quiet"][..], "manifest"),
        ] {
            let err = reject_run_only_flags(&obs_args(extra), sub).unwrap_err().to_string();
            assert!(err.contains("needs a run subcommand"), "{sub}: {err}");
            assert!(err.contains(&format!("fleet {sub}")), "{sub}: {err}");
        }
        // Without any observability flag the guard passes through.
        assert!(reject_run_only_flags(&obs_args(&["export", "out.toml"]), "export").is_ok());
    }

    #[test]
    fn observability_is_off_unless_asked_for() {
        let off = RunObservability::from_args(&obs_args(&[]), 4).unwrap();
        assert!(!off.enabled());
        assert!(!off.obs().recorder.enabled());
        assert!(off.obs().progress.is_none());
        assert!(off.start_sampler().is_none());

        // --metrics alone records but renders no progress line.
        let metrics = RunObservability::from_args(&obs_args(&["--metrics", "m.toml"]), 4).unwrap();
        assert!(metrics.enabled());
        assert!(metrics.obs().recorder.enabled());
        assert!(metrics.obs().progress.is_none());
        assert!(metrics.start_sampler().is_none());

        // --progress attaches the live table.
        let progress = RunObservability::from_args(&obs_args(&["--progress"]), 4).unwrap();
        assert!(progress.obs().progress.is_some());
    }
}
