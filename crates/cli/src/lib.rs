//! # tailwise
//!
//! The facade crate of the tailwise workspace: every layer of the
//! reproduction of *"Traffic-Aware Techniques to Reduce 3G/LTE Wireless
//! Energy Consumption"* (Deng & Balakrishnan, CoNEXT 2012) re-exported
//! behind one `tailwise::` namespace, plus the `tailwise` command-line
//! binary (see `src/main.rs`).
//!
//! The repo-root examples are written against this facade:
//!
//! ```
//! use tailwise::prelude::*;
//! use tailwise::trace::{Duration, Instant};
//!
//! let trace = tailwise::trace::Trace::from_sorted(
//!     (0..10)
//!         .map(|i| tailwise::trace::Packet::new(
//!             Instant::from_secs(i * 30),
//!             tailwise::trace::Direction::Down,
//!             200,
//!         ))
//!         .collect(),
//! )
//! .unwrap();
//! let profile = CarrierProfile::att_hspa();
//! let report = Scheme::MakeIdle.run(&profile, &SimConfig::default(), &trace);
//! assert!(report.total_energy() > 0.0);
//! let _ = Duration::from_secs(1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tailwise_core as core;
pub use tailwise_experts as experts;
pub use tailwise_fleet as fleet;
pub use tailwise_obs as obs;
pub use tailwise_radio as radio;
pub use tailwise_sim as sim;
pub use tailwise_trace as trace;
pub use tailwise_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use tailwise_core::prelude::*;
    pub use tailwise_fleet::{FleetReport, Scenario};
}
