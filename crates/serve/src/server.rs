//! The resident TCP server: accept loop, per-connection reader/writer
//! threads, and the bounded worker pool that executes jobs.
//!
//! Everything is hand-rolled on `std::net` + threads (the offline
//! build has no async runtime), in the same spirit as the hand-rolled
//! scenario parser. The moving parts:
//!
//! * **accept thread** — one per server, spawning a connection handler
//!   per client; unblocked at shutdown by a loopback self-connect.
//! * **connection handler** — a reader loop with a read timeout (so it
//!   can poll the shutdown flag) plus a writer thread draining the
//!   connection's outgoing line channel. Replies and job-stream
//!   fan-out share that one channel, so concurrent writes never
//!   interleave mid-line.
//! * **worker pool** — `workers` threads looping over
//!   [`JobRegistry::next_job`]; each runs one job at a time against
//!   the process-wide shared [`RequestCache`].
//!
//! Malformed lines are answered with a positioned error (the scenario
//! parser's `ScenError` rendering) and the connection lives on; a
//! vanished client is pruned at the next publish and never wedges a
//! job; graceful shutdown rejects new submissions, drains every
//! accepted job, then closes all connections.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tailwise_fleet::{
    run_source_cached, run_source_sweep_streamed, RequestCache, RunManifest, SourceSet, SweepRow,
    UserSource,
};
use tailwise_obs::{Obs, ProgressTable, ProgressUpdate, ProgressWatcher, StatsRecorder};
use tailwise_scenfile::ScenError;

use crate::jobs::{CancelOutcome, Job, JobRegistry, JobState};
use crate::protocol::{ClientMsg, ServerMsg};

/// A single protocol line may carry a whole scenario file or manifest;
/// anything beyond this is a hostile or broken client.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// In-band close marker on a connection's outgoing channel: the reader
/// enqueues it last, so the writer flushes every previously queued
/// line (FIFO) before exiting. Protocol lines never contain NUL — every
/// string value is escaped — so the marker cannot collide.
const CLOSE_SENTINEL: &str = "\0close\0";

/// How the service is run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7433` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads — how many jobs run concurrently.
    pub workers: usize,
    /// Simulation threads *per job* (each worker saturates this many).
    pub threads: usize,
    /// Spill directory for the shared phase-1 cache (`None` keeps the
    /// cache purely in-memory — still shared across every job).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Per-connection read timeout — the poll interval for shutdown
    /// and drain checks.
    pub read_timeout: Duration,
    /// How often job progress ticks are sampled and streamed.
    pub progress_every: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7433".into(),
            workers: 2,
            threads: 2,
            cache_dir: None,
            read_timeout: Duration::from_millis(250),
            progress_every: Duration::from_millis(200),
        }
    }
}

/// A running fleet service. [`Server::join`] blocks until a client's
/// `shutdown` request has fully drained the job queue.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    registry: Arc<JobRegistry>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds the listener and spawns the accept loop and worker pool.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Arc::new(JobRegistry::new());
        let cache = Arc::new(match &config.cache_dir {
            Some(dir) => RequestCache::with_dir(dir)?,
            None => RequestCache::in_memory(),
        });

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for index in 0..config.workers.max(1) {
            let registry = Arc::clone(&registry);
            let cache = Arc::clone(&cache);
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tailwise-worker-{index}"))
                    .spawn(move || {
                        while let Some(job) = registry.next_job() {
                            execute_job(&job, &config, &cache);
                            registry.finish_job();
                        }
                    })
                    .expect("spawning a fleet service worker failed"),
            );
        }

        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let registry = Arc::clone(&registry);
            let connections = Arc::clone(&connections);
            let read_timeout = config.read_timeout;
            std::thread::Builder::new()
                .name("tailwise-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if registry.is_shutting_down() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let registry = Arc::clone(&registry);
                        let local = local_addr;
                        let handle = std::thread::Builder::new()
                            .name("tailwise-conn".into())
                            .spawn(move || {
                                handle_connection(stream, registry, local, read_timeout);
                            })
                            .expect("spawning a connection handler failed");
                        connections.lock().expect("connection handles").push(handle);
                    }
                })
                .expect("spawning the accept thread failed")
        };

        Ok(Server { local_addr, registry, accept: Some(accept), workers, connections })
    }

    /// The bound address (resolves port 0 to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's job registry (shared with tests and tooling).
    pub fn registry(&self) -> &Arc<JobRegistry> {
        &self.registry
    }

    /// Blocks until graceful shutdown completes: every accepted job
    /// drained, every worker and connection thread joined.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let handles: Vec<JoinHandle<()>> =
            self.connections.lock().expect("connection handles").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Runs one job to its terminal state, streaming progress and rows.
fn execute_job(job: &Arc<Job>, config: &ServeConfig, cache: &Arc<RequestCache>) {
    if job.cancel_requested() {
        job.publish(ServerMsg::Cancelled { job: job.id });
        job.set_state(JobState::Cancelled);
        return;
    }
    let recorder = StatsRecorder::new();
    let table = Arc::new(ProgressTable::new(config.threads));
    let obs = Obs { recorder: &recorder, progress: Some(&table) };

    // Progress ticks ride the existing obs pipeline: a ProgressWatcher
    // samples the same table the run's workers publish into, and the
    // sink republishes changed samples to the job's subscribers.
    let watcher = {
        let job = Arc::clone(job);
        let mut last: Option<(u64, u64, u64)> = None;
        ProgressWatcher::start(Arc::clone(&table), config.progress_every, move |update| {
            let ProgressUpdate { totals, users_total, elapsed_seconds } = update;
            let key = (totals.users_done, totals.user_days, users_total);
            if totals.users_done > 0 && last != Some(key) {
                last = Some(key);
                job.publish(ServerMsg::Progress {
                    job: job.id,
                    users_done: totals.users_done,
                    users_total,
                    user_days: totals.user_days,
                    elapsed_s: elapsed_seconds,
                });
            }
        })
    };

    let outcome = run_job(job, config.threads, obs, cache);
    watcher.finish();

    match outcome {
        Ok(Some((report_text, manifest))) => {
            job.publish(ServerMsg::Report { job: job.id, text: report_text });
            job.publish(ServerMsg::Manifest { job: job.id, text: manifest.to_toml_string() });
            job.publish(ServerMsg::Done { job: job.id });
            job.set_state(JobState::Done);
        }
        Ok(None) => {
            job.publish(ServerMsg::Cancelled { job: job.id });
            job.set_state(JobState::Cancelled);
        }
        Err(e) => {
            job.publish(ServerMsg::Failed { job: job.id, error: e.to_string() });
            job.set_state(JobState::Failed);
        }
    }
}

/// The run itself: sweep files stream a row per cell (and honor
/// cancellation between cells); single runs produce one report.
/// Returns `Ok(None)` when the job was cancelled mid-sweep.
fn run_job(
    job: &Arc<Job>,
    threads: usize,
    obs: Obs<'_>,
    cache: &Arc<RequestCache>,
) -> Result<Option<(String, RunManifest)>, ScenError> {
    let set = &job.set;
    let seed = match &set.source {
        UserSource::Synthetic(base) => base.master_seed,
        UserSource::Corpus(base) => base.master_seed,
    };
    if set.is_sweep() {
        let mut on_row = |index: usize, row: &SweepRow| {
            job.publish(ServerMsg::Row {
                job: job.id,
                index: index as u64,
                label: row.label.clone(),
                users: row.report.users,
                energy_j: row.report.energy_j,
                saved_pct: row.report.aggregate_savings_pct(),
            });
            !job.cancel_requested()
        };
        let Some(report) = run_source_sweep_streamed(set, threads, obs, Some(cache), &mut on_row)?
        else {
            return Ok(None);
        };
        let manifest = RunManifest::for_sweep(&report, threads, seed, &obs.recorder.snapshot());
        Ok(Some((report.render(), manifest)))
    } else {
        let report = run_source_cached(&set.source, threads, obs, Some(cache))?;
        // Stream the single run as row 0 too, so watchers get one
        // uniform "a result landed" shape for sweeps and plain runs.
        job.publish(ServerMsg::Row {
            job: job.id,
            index: 0,
            label: String::new(),
            users: report.users,
            energy_j: report.energy_j,
            saved_pct: report.aggregate_savings_pct(),
        });
        let manifest = RunManifest::for_report(&report, threads, seed, &obs.recorder.snapshot());
        Ok(Some((report.render(), manifest)))
    }
}

/// One client connection: a writer thread draining the outgoing line
/// channel, and this (reader) loop decoding requests line by line.
fn handle_connection(
    stream: TcpStream,
    registry: Arc<JobRegistry>,
    local_addr: SocketAddr,
    read_timeout: Duration,
) {
    let Ok(write_stream) = stream.try_clone() else { return };
    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name("tailwise-conn-writer".into())
        .spawn(move || write_lines(write_stream, rx))
        .expect("spawning a connection writer failed");

    let _ = stream.set_read_timeout(Some(read_timeout));
    reader_loop(&stream, &registry, &tx, local_addr);

    // Reader is done (client gone, shutdown drained, or oversized
    // line): the sentinel releases the writer after it has flushed
    // everything already queued, then the socket closes for real.
    let _ = tx.send(CLOSE_SENTINEL.to_string());
    drop(tx);
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The writer half: serializes every outgoing line — direct replies
/// and job-stream fan-out share one channel, so lines never interleave
/// — until the close sentinel, a failed write (client vanished), or
/// every sender hanging up.
fn write_lines(mut stream: TcpStream, rx: Receiver<String>) {
    while let Ok(line) = rx.recv() {
        if line == CLOSE_SENTINEL {
            return;
        }
        if stream.write_all(line.as_bytes()).is_err()
            || stream.write_all(b"\n").is_err()
            || stream.flush().is_err()
        {
            return;
        }
    }
}

/// Reads and dispatches protocol lines until the client disconnects or
/// shutdown drains. Returns when the connection should close.
fn reader_loop(
    stream: &TcpStream,
    registry: &Arc<JobRegistry>,
    tx: &Sender<String>,
    local_addr: SocketAddr,
) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: client closed its half.
            Ok(_) => {
                line_no += 1;
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if !trimmed.is_empty() {
                    let shutdown = dispatch(trimmed, line_no, registry, tx, local_addr);
                    if shutdown == Dispatch::CloseAfterDrain {
                        line.clear();
                        wait_for_drain(registry);
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timeout: poll the shutdown flag, cap any
                // partial line a stalled client is dribbling in.
                if registry.drained() {
                    return;
                }
                if line.len() > MAX_LINE_BYTES {
                    send_error(tx, line_no + 1, "line exceeds the 8 MiB protocol limit");
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Non-UTF-8 bytes: answer positioned, drop the partial
                // line, keep the connection.
                line_no += 1;
                send_error(tx, line_no, "line is not valid UTF-8");
                line.clear();
            }
            Err(_) => return,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dispatch {
    KeepReading,
    CloseAfterDrain,
}

/// Decodes and executes one request line.
fn dispatch(
    line: &str,
    line_no: usize,
    registry: &Arc<JobRegistry>,
    tx: &Sender<String>,
    local_addr: SocketAddr,
) -> Dispatch {
    let msg = match ClientMsg::decode(line) {
        Ok(msg) => msg,
        Err(mut e) => {
            // Decoders position within the line; rebase onto the
            // connection's running line count so the rendered error
            // reads like a file position.
            e.pos.line = line_no;
            send(tx, &ServerMsg::Error { message: e.to_string() });
            return Dispatch::KeepReading;
        }
    };
    match msg {
        ClientMsg::Submit { scenario } => {
            let set = match SourceSet::from_toml_str(&scenario) {
                Ok(set) => set,
                Err(e) => {
                    let e = e.with_origin("submitted scenario");
                    send(tx, &ServerMsg::Error { message: e.to_string() });
                    return Dispatch::KeepReading;
                }
            };
            let name = set.source.name().to_string();
            match registry.submit(name.clone(), set) {
                Some((job, queue)) => {
                    // Auto-subscribe the submitting connection, then
                    // publish so the accepted event reaches it (and
                    // any future watcher) through the job log.
                    job.subscribe(tx.clone());
                    job.publish(ServerMsg::Accepted { job: job.id, name, queue });
                }
                None => {
                    send_error(tx, line_no, "server is shutting down; submission rejected");
                }
            }
        }
        ClientMsg::Watch { job } => match registry.get(job) {
            Some(job) => job.subscribe(tx.clone()),
            None => send_error(tx, line_no, format!("no such job {job}")),
        },
        ClientMsg::Jobs => {
            let jobs = registry.list();
            let count = jobs.len() as u64;
            for (id, state, name) in jobs {
                send(tx, &ServerMsg::Job { job: id, state: state.token().into(), name });
            }
            send(tx, &ServerMsg::End { count });
        }
        ClientMsg::Cancel { job: id } => match registry.cancel(id) {
            CancelOutcome::Unknown => send_error(tx, line_no, format!("no such job {id}")),
            _ => {
                let job = registry.get(id).expect("cancelled job exists");
                send(
                    tx,
                    &ServerMsg::Job {
                        job: id,
                        state: job.state().token().into(),
                        name: job.name.clone(),
                    },
                );
            }
        },
        ClientMsg::Shutdown => {
            let unfinished = registry.begin_shutdown();
            send(tx, &ServerMsg::ShuttingDown { unfinished });
            // The accept loop blocks in accept(); a loopback connect
            // wakes it so it can observe the flag and exit.
            let _ = TcpStream::connect(local_addr);
            return Dispatch::CloseAfterDrain;
        }
    }
    Dispatch::KeepReading
}

/// Blocks until every accepted job has drained (shutdown path). The
/// registry wakes waiters on every job completion.
fn wait_for_drain(registry: &Arc<JobRegistry>) {
    while !registry.drained() {
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn send(tx: &Sender<String>, msg: &ServerMsg) {
    let _ = tx.send(msg.encode());
}

fn send_error(tx: &Sender<String>, line_no: usize, message: impl Into<String>) {
    let e = ScenError::at(tailwise_scenfile::Pos::new(line_no, 1), message);
    send(tx, &ServerMsg::Error { message: e.to_string() });
}
