//! Job lifecycle and fan-out: the registry connections submit into and
//! the worker pool drains.
//!
//! A [`Job`] owns its replayable event log and its live subscribers. A
//! subscriber is just the `Sender` side of a connection's outgoing
//! line channel: publishing encodes the message once and fans the line
//! out, pruning any subscriber whose connection has gone away — a dead
//! client can never wedge a job. Late subscribers (`watch` after rows
//! already streamed) receive the replayable history first, under the
//! same lock publication takes, so no event is skipped or duplicated.
//!
//! Progress ticks are deliberately *not* part of the replayable log —
//! a long job would grow it without bound. Only the latest tick is
//! kept, and replayed so a late watcher paints a current progress line
//! immediately.

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

use tailwise_fleet::SourceSet;

use crate::protocol::ServerMsg;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running it.
    Running,
    /// Finished successfully (report + manifest + done published).
    Done,
    /// Failed (failure published with the rendered error).
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobState {
    /// The protocol token for this state (`jobs` listing rows).
    pub fn token(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can still make progress.
    pub fn is_open(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One submitted job: the parsed scenario set plus its streaming state.
#[derive(Debug)]
pub struct Job {
    /// The job's id (assigned at submission, strictly increasing).
    pub id: u64,
    /// The scenario's display name.
    pub name: String,
    /// The parsed submission (parsing happened at submit time, so a
    /// job can never fail on malformed scenario text).
    pub set: SourceSet,
    inner: Mutex<JobInner>,
}

#[derive(Debug)]
struct JobInner {
    state: JobState,
    /// Replayable history: accepted, rows, report, manifest, terminal.
    log: Vec<ServerMsg>,
    /// Latest progress tick (replayed to late watchers, never logged).
    last_progress: Option<ServerMsg>,
    /// Live outgoing line channels, one per watching connection.
    subscribers: Vec<Sender<String>>,
    /// Set by `cancel`; the executor checks it between sweep cells.
    cancel_requested: bool,
}

impl Job {
    fn new(id: u64, name: String, set: SourceSet) -> Job {
        Job {
            id,
            name,
            set,
            inner: Mutex::new(JobInner {
                state: JobState::Queued,
                log: Vec::new(),
                last_progress: None,
                subscribers: Vec::new(),
                cancel_requested: false,
            }),
        }
    }

    /// The job's current state.
    pub fn state(&self) -> JobState {
        self.inner.lock().expect("job state").state
    }

    /// Whether `cancel` has been requested (the executor's between-
    /// cells check).
    pub fn cancel_requested(&self) -> bool {
        self.inner.lock().expect("job state").cancel_requested
    }

    /// Publishes an event to every live subscriber, pruning the dead
    /// ones. Progress ticks replace the retained last tick; everything
    /// else appends to the replayable log.
    pub fn publish(&self, msg: ServerMsg) {
        let mut inner = self.inner.lock().expect("job state");
        let line = msg.encode();
        if matches!(msg, ServerMsg::Progress { .. }) {
            inner.last_progress = Some(msg);
        } else {
            inner.log.push(msg);
        }
        inner.subscribers.retain(|tx| tx.send(line.clone()).is_ok());
    }

    /// Subscribes a connection: replays the history (log, then the
    /// latest progress tick) and registers for everything live. Replay
    /// and registration happen under one lock acquisition, so a
    /// concurrent `publish` can neither be missed nor delivered twice.
    pub fn subscribe(&self, tx: Sender<String>) {
        let mut inner = self.inner.lock().expect("job state");
        let mut replay_failed = false;
        for msg in &inner.log {
            if tx.send(msg.encode()).is_err() {
                replay_failed = true;
                break;
            }
        }
        if let Some(progress) = &inner.last_progress {
            replay_failed = replay_failed || tx.send(progress.encode()).is_err();
        }
        if !replay_failed && inner.state.is_open() {
            inner.subscribers.push(tx);
        }
        // A finished job needs no live registration: the replay already
        // delivered its terminal event.
    }

    /// Transitions the state (no event — callers publish the matching
    /// protocol message themselves).
    pub fn set_state(&self, state: JobState) {
        let mut inner = self.inner.lock().expect("job state");
        inner.state = state;
        if !state.is_open() {
            // Terminal: live subscribers have received the terminal
            // event via publish; drop the channel ends.
            inner.subscribers.clear();
        }
    }
}

/// What `JobRegistry::cancel` found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was queued: dequeued and terminally cancelled here.
    Dequeued,
    /// The job is running: the flag is set, the executor will stop
    /// between sweep cells.
    Signalled,
    /// The job had already reached a terminal state.
    AlreadyFinished,
    /// No such job id.
    Unknown,
}

#[derive(Debug)]
struct RegistryInner {
    next_id: u64,
    jobs: BTreeMap<u64, Arc<Job>>,
    queue: VecDeque<u64>,
    running: usize,
    shutting_down: bool,
}

/// The server-wide job table: submissions enter, the worker pool
/// drains, connections watch.
#[derive(Debug)]
pub struct JobRegistry {
    inner: Mutex<RegistryInner>,
    /// Signalled on queue pushes and on shutdown.
    wake: Condvar,
}

impl Default for JobRegistry {
    fn default() -> JobRegistry {
        JobRegistry::new()
    }
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> JobRegistry {
        JobRegistry {
            inner: Mutex::new(RegistryInner {
                next_id: 1,
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                running: 0,
                shutting_down: false,
            }),
            wake: Condvar::new(),
        }
    }

    /// Accepts a parsed submission as a new queued job. Returns the
    /// job and its queue position, or `None` when the server is
    /// shutting down (new work is rejected during drain).
    pub fn submit(&self, name: String, set: SourceSet) -> Option<(Arc<Job>, u64)> {
        let mut inner = self.inner.lock().expect("job registry");
        if inner.shutting_down {
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let job = Arc::new(Job::new(id, name, set));
        inner.jobs.insert(id, Arc::clone(&job));
        inner.queue.push_back(id);
        let position = inner.queue.len() as u64 - 1;
        drop(inner);
        self.wake.notify_all();
        Some((job, position))
    }

    /// Blocks until a job is available (returning it marked running)
    /// or the registry is shutting down with an empty queue (returning
    /// `None` — the worker should exit). Graceful shutdown therefore
    /// *drains* the queue: jobs accepted before shutdown still run.
    pub fn next_job(&self) -> Option<Arc<Job>> {
        let mut inner = self.inner.lock().expect("job registry");
        loop {
            if let Some(id) = inner.queue.pop_front() {
                let job = Arc::clone(inner.jobs.get(&id).expect("queued job exists"));
                inner.running += 1;
                job.set_state(JobState::Running);
                return Some(job);
            }
            if inner.shutting_down {
                return None;
            }
            inner = self.wake.wait(inner).expect("job registry");
        }
    }

    /// Marks a running job finished (whatever its terminal state — the
    /// executor has already set it and published the terminal event).
    pub fn finish_job(&self) {
        let mut inner = self.inner.lock().expect("job registry");
        inner.running = inner.running.saturating_sub(1);
        drop(inner);
        // Connections waiting for the drain (shutdown path) re-check on
        // every wake.
        self.wake.notify_all();
    }

    /// Looks up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.inner.lock().expect("job registry").jobs.get(&id).map(Arc::clone)
    }

    /// Every job, in id order: `(id, state, name)`.
    pub fn list(&self) -> Vec<(u64, JobState, String)> {
        let inner = self.inner.lock().expect("job registry");
        inner.jobs.values().map(|job| (job.id, job.state(), job.name.clone())).collect()
    }

    /// Cancels a job (see [`CancelOutcome`] for what can happen).
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut inner = self.inner.lock().expect("job registry");
        let Some(job) = inner.jobs.get(&id).map(Arc::clone) else {
            return CancelOutcome::Unknown;
        };
        match job.state() {
            JobState::Queued => {
                inner.queue.retain(|&queued| queued != id);
                drop(inner);
                job.publish(ServerMsg::Cancelled { job: id });
                job.set_state(JobState::Cancelled);
                CancelOutcome::Dequeued
            }
            JobState::Running => {
                drop(inner);
                let mut job_inner = job.inner.lock().expect("job state");
                job_inner.cancel_requested = true;
                CancelOutcome::Signalled
            }
            _ => CancelOutcome::AlreadyFinished,
        }
    }

    /// Begins graceful shutdown: rejects future submissions, wakes the
    /// worker pool so idle workers exit, and returns how many jobs are
    /// still queued or running.
    pub fn begin_shutdown(&self) -> u64 {
        let mut inner = self.inner.lock().expect("job registry");
        inner.shutting_down = true;
        let unfinished = inner.queue.len() + inner.running;
        drop(inner);
        self.wake.notify_all();
        unfinished as u64
    }

    /// Whether graceful shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.lock().expect("job registry").shutting_down
    }

    /// Whether shutdown has begun *and* every accepted job has
    /// finished — the point where connections may close.
    pub fn drained(&self) -> bool {
        let inner = self.inner.lock().expect("job registry");
        inner.shutting_down && inner.queue.is_empty() && inner.running == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn tiny_set() -> SourceSet {
        SourceSet::from_toml_str(
            "[scenario]\nname = \"t\"\nusers = 2\nscheme = \"makeidle\"\n\n[[carrier]]\n\
             profile = \"verizon-lte\"\n\n[[app]]\nkind = \"im\"\nweight = 1.0\n",
        )
        .expect("tiny scenario parses")
    }

    #[test]
    fn submit_queue_and_drain_lifecycle() {
        let registry = JobRegistry::new();
        let (a, pos_a) = registry.submit("a".into(), tiny_set()).unwrap();
        let (b, pos_b) = registry.submit("b".into(), tiny_set()).unwrap();
        assert_eq!((a.id, pos_a), (1, 0));
        assert_eq!((b.id, pos_b), (2, 1));
        assert_eq!(a.state(), JobState::Queued);

        let first = registry.next_job().unwrap();
        assert_eq!(first.id, 1);
        assert_eq!(first.state(), JobState::Running);

        let unfinished = registry.begin_shutdown();
        assert_eq!(unfinished, 2, "one queued + one running");
        assert!(registry.submit("c".into(), tiny_set()).is_none(), "drain rejects new work");

        // Shutdown drains the queue: b still runs.
        let second = registry.next_job().unwrap();
        assert_eq!(second.id, 2);
        second.set_state(JobState::Done);
        registry.finish_job();
        first.set_state(JobState::Done);
        registry.finish_job();
        assert!(registry.drained());
        assert!(registry.next_job().is_none(), "workers exit after the drain");
    }

    #[test]
    fn publish_replays_to_late_subscribers_and_prunes_dead_ones() {
        let registry = JobRegistry::new();
        let (job, _) = registry.submit("x".into(), tiny_set()).unwrap();
        job.publish(ServerMsg::Accepted { job: job.id, name: "x".into(), queue: 0 });
        job.publish(ServerMsg::Progress {
            job: job.id,
            users_done: 1,
            users_total: 2,
            user_days: 1,
            elapsed_s: 0.5,
        });
        job.publish(ServerMsg::Progress {
            job: job.id,
            users_done: 2,
            users_total: 2,
            user_days: 2,
            elapsed_s: 0.9,
        });

        // A dead subscriber (receiver dropped) must not wedge publish.
        let (dead_tx, dead_rx) = channel::<String>();
        job.subscribe(dead_tx);
        drop(dead_rx);

        // A late subscriber replays accepted + only the LATEST tick.
        let (tx, rx) = channel::<String>();
        job.subscribe(tx);
        let replay: Vec<String> = rx.try_iter().collect();
        assert_eq!(replay.len(), 2, "{replay:?}");
        assert!(replay[0].starts_with("accepted "), "{replay:?}");
        assert!(replay[1].contains("users_done=2"), "{replay:?}");

        // Live publish reaches the live subscriber and prunes the dead.
        job.publish(ServerMsg::Done { job: job.id });
        job.set_state(JobState::Done);
        let live: Vec<String> = rx.try_iter().collect();
        assert_eq!(live, vec![ServerMsg::Done { job: job.id }.encode()]);
    }

    #[test]
    fn cancel_covers_all_three_liveness_cases() {
        let registry = JobRegistry::new();
        let (queued, _) = registry.submit("q".into(), tiny_set()).unwrap();
        let (tx, rx) = channel::<String>();
        queued.subscribe(tx);
        assert_eq!(registry.cancel(queued.id), CancelOutcome::Dequeued);
        assert_eq!(queued.state(), JobState::Cancelled);
        let lines: Vec<String> = rx.try_iter().collect();
        assert!(lines.iter().any(|l| l.starts_with("cancelled ")), "{lines:?}");

        let (running, _) = registry.submit("r".into(), tiny_set()).unwrap();
        // The cancelled job left the queue: the next claim is `r`.
        let claimed = registry.next_job().unwrap();
        assert_eq!(claimed.id, running.id);
        assert_eq!(registry.cancel(running.id), CancelOutcome::Signalled);
        assert!(running.cancel_requested());
        running.set_state(JobState::Cancelled);
        registry.finish_job();
        assert_eq!(registry.cancel(running.id), CancelOutcome::AlreadyFinished);
        assert_eq!(registry.cancel(999), CancelOutcome::Unknown);
    }
}
