//! The line-delimited wire protocol between `fleet` clients and the
//! resident service.
//!
//! One message per line, in both directions:
//!
//! ```text
//! line  := verb (" " key "=" value)*
//! value := bare | quoted
//! bare  := [A-Za-z0-9_.:+-]+          # numbers, idents, scheme tokens
//! quoted:= '"' (char | escape)* '"'   # escapes: \" \\ \n \r \t
//! ```
//!
//! Quoted values carry arbitrary text — whole scenario files, rendered
//! reports, manifest TOML — with newlines escaped, so the framing stays
//! strictly one message per line. The full grammar and message-by-
//! message contract live in `docs/SERVICE.md`.
//!
//! Decoding returns [`ScenError`] — the same positioned error type the
//! scenario parser uses — so a malformed line renders compiler-style
//! (`line:col: message`) in the server's error reply. Decoders position
//! errors at column granularity on line 1; the connection loop rewrites
//! the line number to the connection's running line count.

use tailwise_scenfile::{Pos, ScenError};

/// What a client can ask the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Submit a scenario file's *text* as a new job. The server parses
    /// it immediately: a parse error is rejected on the spot (no job is
    /// created) and a accepted submission auto-subscribes this
    /// connection to the job's stream.
    Submit {
        /// Full text of a scenario file (what `SourceSet::from_file`
        /// would have read).
        scenario: String,
    },
    /// Subscribe to a job's stream: the replayable history so far
    /// (accepted, rows, final payloads), then everything live.
    Watch {
        /// Job id from an `accepted` message or a `jobs` listing.
        job: u64,
    },
    /// List every job the server knows about.
    Jobs,
    /// Cancel a job: a queued job is dequeued immediately; a running
    /// sweep stops between cells. See `docs/SERVICE.md` for the exact
    /// semantics.
    Cancel {
        /// Job id to cancel.
        job: u64,
    },
    /// Ask the server to shut down gracefully: reject new submissions,
    /// drain accepted jobs, then close every connection.
    Shutdown,
}

/// What the service streams back.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// A submission became a job.
    Accepted {
        /// The new job's id.
        job: u64,
        /// The scenario's display name.
        name: String,
        /// Queue position at submission time (0 = next to run).
        queue: u64,
    },
    /// A live progress tick, sourced from the run's `ProgressTable`.
    Progress {
        /// Job id.
        job: u64,
        /// Users finished so far (topology runs count both passes).
        users_done: u64,
        /// Expected user completions (0 until the runner knows).
        users_total: u64,
        /// User-days folded so far.
        user_days: u64,
        /// Seconds since the job started.
        elapsed_s: f64,
    },
    /// One sweep cell finished (streamed before later cells run).
    Row {
        /// Job id.
        job: u64,
        /// Cell index in sweep-expansion order.
        index: u64,
        /// The cell's `axis=value …` label (empty for a single run).
        label: String,
        /// Users simulated in this cell.
        users: u64,
        /// Total energy under the scheme, J.
        energy_j: f64,
        /// Aggregate savings vs the status quo, percent.
        saved_pct: f64,
    },
    /// The finished job's rendered report (the batch CLI's stdout).
    Report {
        /// Job id.
        job: u64,
        /// `FleetReport::render()` or `SweepReport::render()` text.
        text: String,
    },
    /// The finished job's run manifest (what `--metrics` writes).
    Manifest {
        /// Job id.
        job: u64,
        /// `RunManifest::to_toml_string()` text.
        text: String,
    },
    /// The job finished successfully (always after report + manifest).
    Done {
        /// Job id.
        job: u64,
    },
    /// The job failed (scenario resolution or runtime error).
    Failed {
        /// Job id.
        job: u64,
        /// Rendered `ScenError` (compiler-style, positioned).
        error: String,
    },
    /// The job was cancelled before completing.
    Cancelled {
        /// Job id.
        job: u64,
    },
    /// One row of a `jobs` listing (also the ack for `cancel`).
    Job {
        /// Job id.
        job: u64,
        /// `queued` / `running` / `done` / `failed` / `cancelled`.
        state: String,
        /// The scenario's display name.
        name: String,
    },
    /// Terminates a `jobs` listing.
    End {
        /// How many `job` rows preceded it.
        count: u64,
    },
    /// A protocol-level error: malformed line, unknown job, submission
    /// rejected. The connection stays open.
    Error {
        /// Rendered `ScenError` (compiler-style, positioned).
        message: String,
    },
    /// Graceful shutdown has begun; the connection closes once every
    /// accepted job has drained.
    ShuttingDown {
        /// Jobs still queued or running at shutdown time.
        unfinished: u64,
    },
}

impl ClientMsg {
    /// Encodes the message as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ClientMsg::Submit { scenario } => {
                format!("submit scenario={}", quote(scenario))
            }
            ClientMsg::Watch { job } => format!("watch job={job}"),
            ClientMsg::Jobs => "jobs".to_string(),
            ClientMsg::Cancel { job } => format!("cancel job={job}"),
            ClientMsg::Shutdown => "shutdown".to_string(),
        }
    }

    /// Decodes one protocol line. Errors are positioned within the
    /// line (line number 1; callers rebase it onto their line count).
    pub fn decode(line: &str) -> Result<ClientMsg, ScenError> {
        let mut fields = Fields::parse(line)?;
        let verb = fields.verb();
        let msg = match verb.as_str() {
            "submit" => ClientMsg::Submit { scenario: fields.take_str("scenario")? },
            "watch" => ClientMsg::Watch { job: fields.take_u64("job")? },
            "jobs" => ClientMsg::Jobs,
            "cancel" => ClientMsg::Cancel { job: fields.take_u64("job")? },
            "shutdown" => ClientMsg::Shutdown,
            other => {
                return Err(ScenError::at(
                    Pos::new(1, 1),
                    format!(
                        "unknown request {other:?} (expected submit, watch, jobs, cancel, \
                         or shutdown)"
                    ),
                ))
            }
        };
        fields.finish()?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Encodes the message as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            ServerMsg::Accepted { job, name, queue } => {
                format!("accepted job={job} name={} queue={queue}", quote(name))
            }
            ServerMsg::Progress { job, users_done, users_total, user_days, elapsed_s } => format!(
                "progress job={job} users_done={users_done} users_total={users_total} \
                 user_days={user_days} elapsed_s={elapsed_s:?}"
            ),
            ServerMsg::Row { job, index, label, users, energy_j, saved_pct } => format!(
                "row job={job} index={index} label={} users={users} energy_j={energy_j:?} \
                 saved_pct={saved_pct:?}",
                quote(label)
            ),
            ServerMsg::Report { job, text } => format!("report job={job} text={}", quote(text)),
            ServerMsg::Manifest { job, text } => {
                format!("manifest job={job} text={}", quote(text))
            }
            ServerMsg::Done { job } => format!("done job={job}"),
            ServerMsg::Failed { job, error } => {
                format!("failed job={job} error={}", quote(error))
            }
            ServerMsg::Cancelled { job } => format!("cancelled job={job}"),
            ServerMsg::Job { job, state, name } => {
                format!("job job={job} state={state} name={}", quote(name))
            }
            ServerMsg::End { count } => format!("end count={count}"),
            ServerMsg::Error { message } => format!("error message={}", quote(message)),
            ServerMsg::ShuttingDown { unfinished } => {
                format!("shutting-down unfinished={unfinished}")
            }
        }
    }

    /// Decodes one protocol line (see [`ClientMsg::decode`] on error
    /// positioning).
    pub fn decode(line: &str) -> Result<ServerMsg, ScenError> {
        let mut fields = Fields::parse(line)?;
        let verb = fields.verb();
        let msg = match verb.as_str() {
            "accepted" => ServerMsg::Accepted {
                job: fields.take_u64("job")?,
                name: fields.take_str("name")?,
                queue: fields.take_u64("queue")?,
            },
            "progress" => ServerMsg::Progress {
                job: fields.take_u64("job")?,
                users_done: fields.take_u64("users_done")?,
                users_total: fields.take_u64("users_total")?,
                user_days: fields.take_u64("user_days")?,
                elapsed_s: fields.take_f64("elapsed_s")?,
            },
            "row" => ServerMsg::Row {
                job: fields.take_u64("job")?,
                index: fields.take_u64("index")?,
                label: fields.take_str("label")?,
                users: fields.take_u64("users")?,
                energy_j: fields.take_f64("energy_j")?,
                saved_pct: fields.take_f64("saved_pct")?,
            },
            "report" => {
                ServerMsg::Report { job: fields.take_u64("job")?, text: fields.take_str("text")? }
            }
            "manifest" => {
                ServerMsg::Manifest { job: fields.take_u64("job")?, text: fields.take_str("text")? }
            }
            "done" => ServerMsg::Done { job: fields.take_u64("job")? },
            "failed" => {
                ServerMsg::Failed { job: fields.take_u64("job")?, error: fields.take_str("error")? }
            }
            "cancelled" => ServerMsg::Cancelled { job: fields.take_u64("job")? },
            "job" => ServerMsg::Job {
                job: fields.take_u64("job")?,
                state: fields.take_str("state")?,
                name: fields.take_str("name")?,
            },
            "end" => ServerMsg::End { count: fields.take_u64("count")? },
            "error" => ServerMsg::Error { message: fields.take_str("message")? },
            "shutting-down" => {
                ServerMsg::ShuttingDown { unfinished: fields.take_u64("unfinished")? }
            }
            other => {
                return Err(ScenError::at(
                    Pos::new(1, 1),
                    format!("unknown server message {other:?}"),
                ))
            }
        };
        fields.finish()?;
        Ok(msg)
    }
}

/// Escapes and quotes a string value.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One decoded line: the verb plus its `key=value` fields, each
/// remembering the column it started at so error positions are exact.
struct Fields {
    verb: String,
    /// `(key, value, column-of-key)`, in line order.
    fields: Vec<(String, String, usize)>,
}

impl Fields {
    fn parse(line: &str) -> Result<Fields, ScenError> {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        let at = |i: usize| Pos::new(1, i + 1);

        // Verb.
        let start = i;
        while i < chars.len() && !chars[i].is_whitespace() {
            i += 1;
        }
        if i == start {
            return Err(ScenError::at(at(start), "empty message (expected a verb)"));
        }
        let verb: String = chars[start..i].iter().collect();

        // Fields.
        let mut fields = Vec::new();
        loop {
            while i < chars.len() && chars[i] == ' ' {
                i += 1;
            }
            if i >= chars.len() {
                break;
            }
            let key_start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if i == key_start {
                return Err(ScenError::at(
                    at(i),
                    format!("expected a key=value field, found {:?}", chars[i]),
                ));
            }
            let key: String = chars[key_start..i].iter().collect();
            if i >= chars.len() || chars[i] != '=' {
                return Err(ScenError::at(at(i), format!("key `{key}` is missing its `=`")));
            }
            i += 1; // consume '='
            let value = if i < chars.len() && chars[i] == '"' {
                i += 1; // consume opening quote
                let mut value = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(ScenError::at(
                            at(i),
                            format!("unterminated quoted value for key `{key}`"),
                        ));
                    }
                    match chars[i] {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' => {
                            i += 1;
                            let escaped = *chars.get(i).ok_or_else(|| {
                                ScenError::at(at(i), "dangling escape at end of line")
                            })?;
                            value.push(match escaped {
                                '"' => '"',
                                '\\' => '\\',
                                'n' => '\n',
                                'r' => '\r',
                                't' => '\t',
                                other => {
                                    return Err(ScenError::at(
                                        at(i),
                                        format!(
                                            "unknown escape `\\{other}` (expected \\\" \\\\ \
                                             \\n \\r or \\t)"
                                        ),
                                    ))
                                }
                            });
                            i += 1;
                        }
                        c => {
                            value.push(c);
                            i += 1;
                        }
                    }
                }
                value
            } else {
                let value_start = i;
                while i < chars.len() && !chars[i].is_whitespace() {
                    i += 1;
                }
                if i == value_start {
                    return Err(ScenError::at(at(i), format!("key `{key}` has an empty value")));
                }
                chars[value_start..i].iter().collect()
            };
            fields.push((key, value, key_start));
        }
        Ok(Fields { verb, fields })
    }

    fn verb(&self) -> String {
        self.verb.clone()
    }

    fn take(&mut self, key: &str) -> Result<(String, usize), ScenError> {
        let index = self.fields.iter().position(|(k, _, _)| k == key).ok_or_else(|| {
            ScenError::at(Pos::new(1, 1), format!("`{}` is missing its `{key}=` field", self.verb))
        })?;
        let (_, value, col) = self.fields.remove(index);
        Ok((value, col))
    }

    fn take_str(&mut self, key: &str) -> Result<String, ScenError> {
        Ok(self.take(key)?.0)
    }

    fn take_u64(&mut self, key: &str) -> Result<u64, ScenError> {
        let (value, col) = self.take(key)?;
        value.parse().map_err(|_| {
            ScenError::at(
                Pos::new(1, col + 1),
                format!("`{key}` must be an unsigned integer, got {value:?}"),
            )
        })
    }

    fn take_f64(&mut self, key: &str) -> Result<f64, ScenError> {
        let (value, col) = self.take(key)?;
        value.parse().map_err(|_| {
            ScenError::at(Pos::new(1, col + 1), format!("`{key}` must be a number, got {value:?}"))
        })
    }

    /// Rejects leftover fields — unknown keys are positioned errors,
    /// exactly like unknown scenario-file keys.
    fn finish(self) -> Result<(), ScenError> {
        match self.fields.first() {
            None => Ok(()),
            Some((key, _, col)) => Err(ScenError::at(
                Pos::new(1, col + 1),
                format!("unknown key `{key}` for `{}`", self.verb),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_messages_round_trip() {
        let messages = vec![
            ClientMsg::Submit { scenario: "[scenario]\nname = \"x\"\nusers = 5\n".into() },
            ClientMsg::Watch { job: 42 },
            ClientMsg::Jobs,
            ClientMsg::Cancel { job: 7 },
            ClientMsg::Shutdown,
        ];
        for msg in messages {
            let line = msg.encode();
            assert!(!line.contains('\n'), "encoded line must be newline-free: {line:?}");
            assert_eq!(ClientMsg::decode(&line).unwrap(), msg, "{line}");
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let messages = vec![
            ServerMsg::Accepted { job: 1, name: "rnc storm".into(), queue: 2 },
            ServerMsg::Progress {
                job: 1,
                users_done: 37,
                users_total: 1200,
                user_days: 41,
                elapsed_s: 1.625,
            },
            ServerMsg::Row {
                job: 1,
                index: 0,
                label: "admission=reactive:50:5".into(),
                users: 600,
                energy_j: 12345.678901234567,
                saved_pct: 43.21,
            },
            ServerMsg::Report { job: 1, text: "fleet    : ok\nspeed    : fast\n".into() },
            ServerMsg::Manifest { job: 1, text: "[run]\nname = \"x\"\n".into() },
            ServerMsg::Done { job: 1 },
            ServerMsg::Failed { job: 2, error: "3:7: expected a value".into() },
            ServerMsg::Cancelled { job: 3 },
            ServerMsg::Job { job: 4, state: "running".into(), name: "x \"quoted\"".into() },
            ServerMsg::End { count: 4 },
            ServerMsg::Error { message: "1:1: unknown request \"submot\"".into() },
            ServerMsg::ShuttingDown { unfinished: 2 },
        ];
        for msg in messages {
            let line = msg.encode();
            assert!(!line.contains('\n'), "encoded line must be newline-free: {line:?}");
            assert_eq!(ServerMsg::decode(&line).unwrap(), msg, "{line}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        // `{:?}` prints the shortest string that re-parses to the same
        // f64, so streamed row figures survive the wire bit-for-bit.
        for value in [0.1, 1.0 / 3.0, 12345.678901234567, f64::MAX, 5e-324] {
            let msg = ServerMsg::Progress {
                job: 0,
                users_done: 0,
                users_total: 0,
                user_days: 0,
                elapsed_s: value,
            };
            match ServerMsg::decode(&msg.encode()).unwrap() {
                ServerMsg::Progress { elapsed_s, .. } => {
                    assert_eq!(elapsed_s.to_bits(), value.to_bits())
                }
                other => panic!("decoded wrong variant {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_lines_are_positioned_errors() {
        let err = ClientMsg::decode("submot scenario=\"x\"").unwrap_err();
        assert!(err.message.contains("unknown request"), "{err}");

        let err = ClientMsg::decode("watch job=abc").unwrap_err();
        assert_eq!(err.pos, Pos::new(1, 7), "{err}");
        assert!(err.message.contains("unsigned integer"), "{err}");

        let err = ClientMsg::decode("watch job").unwrap_err();
        assert!(err.message.contains("missing its `=`"), "{err}");

        let err = ClientMsg::decode("submit scenario=\"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");

        let err = ClientMsg::decode("watch job=1 extra=2").unwrap_err();
        assert_eq!(err.pos, Pos::new(1, 13), "{err}");
        assert!(err.message.contains("unknown key `extra`"), "{err}");

        let err = ClientMsg::decode("").unwrap_err();
        assert!(err.message.contains("empty message"), "{err}");
    }

    #[test]
    fn escapes_cover_the_quoting_alphabet() {
        let nasty = "a\"b\\c\nd\re\tf";
        let msg = ClientMsg::Submit { scenario: nasty.into() };
        assert_eq!(
            ClientMsg::decode(&msg.encode()).unwrap(),
            ClientMsg::Submit { scenario: nasty.into() }
        );
    }
}
