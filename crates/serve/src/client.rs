//! A thin blocking client over the line protocol — what the `fleet
//! submit` / `watch` / `jobs` / `cancel` / `shutdown` subcommands (and
//! the end-to-end tests) are built on.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{ClientMsg, ServerMsg};

/// One connection to a running fleet service.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7433`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one request.
    pub fn send(&mut self, msg: &ClientMsg) -> std::io::Result<()> {
        self.writer.write_all(msg.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives the next server message. `Ok(None)` is a clean EOF —
    /// the server closed the connection (e.g. after a shutdown drain).
    pub fn recv(&mut self) -> std::io::Result<Option<ServerMsg>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            return ServerMsg::decode(trimmed).map(Some).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("undecodable server message: {e} in {trimmed:?}"),
                )
            });
        }
    }

    /// Receives until the connection closes (the `fleet shutdown`
    /// wait: EOF means the drain finished).
    pub fn recv_until_eof(&mut self) -> std::io::Result<()> {
        while self.recv()?.is_some() {}
        Ok(())
    }
}
