//! # tailwise-serve
//!
//! The resident fleet service: the batch simulator promoted to
//! long-running infrastructure. A `fleet serve` process listens on
//! TCP, accepts scenario files as *jobs*, runs them on a bounded
//! worker pool, and streams results live — job accepted, per-shard
//! progress ticks (sourced from the existing `tailwise-obs`
//! `ProgressTable` pipeline, not a second telemetry path), one row per
//! finished sweep cell, then the rendered report and the run manifest.
//!
//! Every job runs against ONE process-wide
//! [`RequestCache`](tailwise_fleet::RequestCache), optionally
//! spill-backed by `--cache <dir>`: concurrent admission or scheme
//! sweeps over the same population share phase-1 extraction, which is
//! the paper's whole evaluation loop ("same scenario, new policy")
//! made cheap.
//!
//! The transport is hand-rolled on `std::net` + threads — the offline
//! build has no async runtime — speaking the line-delimited typed
//! [`ClientMsg`]/[`ServerMsg`] protocol documented in
//! `docs/SERVICE.md`. Determinism carries over from the fleet crate: a
//! job's final report and manifest are bit-identical (in every
//! deterministic field) to a batch `fleet run` of the same file at any
//! thread count — `RunManifest::digest` pins that contract end to end.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod jobs;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use jobs::{CancelOutcome, Job, JobRegistry, JobState};
pub use protocol::{ClientMsg, ServerMsg};
pub use server::{ServeConfig, Server};
