//! End-to-end tests over a real TCP loopback: every scenario the
//! service must survive — bit-identical streamed results, a shared
//! phase-1 cache across jobs, hostile clients, cancellation, graceful
//! shutdown — exercised through the public [`Client`] the CLI uses.

use std::time::Duration;

use tailwise_fleet::{run_source_sweep_cached, RunManifest, SourceSet, UserSource};
use tailwise_obs::{Obs, Recorder as _, StatsRecorder};
use tailwise_serve::{Client, ClientMsg, JobState, ServeConfig, Server, ServerMsg};

/// Two admission cells over one tiny population: cell 2 replays the
/// same `(population, scheme)` phase-1 extraction as cell 1, so every
/// run past the first is all cache hits.
const SCENARIO: &str = r#"
[scenario]
name = "e2e storm"
users = 12
days_per_user = 1
scheme = "makeidle"
master_seed = 77
shard_size = 4

[cells]
count = 2
capacity_per_s = 40
admission = "always"

[rnc]
count = 1
capacity_per_s = 200
admission = "always"

[[carrier]]
profile = "verizon-lte"

[[app]]
kind = "im"
weight = 3.0

[[app]]
kind = "email"
weight = 2.0

[[sweep]]
axis = "admission"
values = ["always", "reactive:50:5"]
"#;

fn start_server(workers: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        threads: 2,
        cache_dir: None,
        read_timeout: Duration::from_millis(25),
        progress_every: Duration::from_millis(20),
    })
    .expect("the service binds a loopback port")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.local_addr()).expect("loopback connect succeeds")
}

/// Submits `scenario` and drains the stream until a terminal message,
/// returning everything received (including the terminal message).
fn submit_and_drain(client: &mut Client, scenario: &str) -> Vec<ServerMsg> {
    client.send(&ClientMsg::Submit { scenario: scenario.into() }).expect("submit goes out");
    let mut got = Vec::new();
    loop {
        let msg = client
            .recv()
            .expect("stream stays decodable")
            .expect("server does not hang up mid-job");
        let terminal = matches!(
            msg,
            ServerMsg::Done { .. }
                | ServerMsg::Failed { .. }
                | ServerMsg::Cancelled { .. }
                | ServerMsg::Error { .. }
        );
        got.push(msg);
        if terminal {
            return got;
        }
    }
}

fn manifest_text(messages: &[ServerMsg]) -> &str {
    messages
        .iter()
        .find_map(|m| match m {
            ServerMsg::Manifest { text, .. } => Some(text.as_str()),
            _ => None,
        })
        .expect("the stream carries a manifest")
}

/// Drops the final `ud/sec` column from every report line: it is
/// measured wall-clock throughput, the one field the determinism
/// contract deliberately excludes (like `FleetReport`'s `PartialEq`).
fn deterministic_report(report: &str) -> String {
    report
        .lines()
        .map(|line| match line.rsplit_once(char::is_whitespace) {
            Some((rest, _measured)) => rest.trim_end(),
            None => line,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn report_text(messages: &[ServerMsg]) -> &str {
    messages
        .iter()
        .find_map(|m| match m {
            ServerMsg::Report { text, .. } => Some(text.as_str()),
            _ => None,
        })
        .expect("the stream carries a report")
}

#[test]
fn streamed_job_matches_the_batch_run_bit_for_bit() {
    let server = start_server(1);
    let mut client = connect(&server);
    let got = submit_and_drain(&mut client, SCENARIO);

    // The stream opens with acceptance and ends with success.
    let ServerMsg::Accepted { job, name, queue } = &got[0] else {
        panic!("first message must be accepted, got {:?}", got[0]);
    };
    assert_eq!(name, "e2e storm");
    assert_eq!(*queue, 0);
    assert!(matches!(got.last(), Some(ServerMsg::Done { job: j }) if j == job));

    // Rows arrive in sweep-expansion order, one per cell, before the
    // report.
    let rows: Vec<(u64, String)> = got
        .iter()
        .filter_map(|m| match m {
            ServerMsg::Row { index, label, .. } => Some((*index, label.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(rows.len(), 2, "two sweep cells stream two rows");
    assert_eq!(rows[0].0, 0);
    assert_eq!(rows[1].0, 1);
    assert!(rows[0].1.contains("always"), "row label carries the axis value: {}", rows[0].1);
    assert!(rows[1].1.contains("reactive"), "row label carries the axis value: {}", rows[1].1);

    // The streamed report is the batch code path's exact output, and
    // the streamed manifest digests identically to a local run — the
    // determinism contract across process boundaries.
    let set = SourceSet::from_toml_str(SCENARIO).expect("fixture parses");
    let recorder = StatsRecorder::new();
    let local = run_source_sweep_cached(&set, 2, Obs { recorder: &recorder, progress: None }, None)
        .expect("local sweep runs");
    assert_eq!(
        deterministic_report(report_text(&got)),
        deterministic_report(&local.render()),
        "streamed report == batch report in every deterministic column"
    );

    let seed = match &set.source {
        UserSource::Synthetic(base) => base.master_seed,
        UserSource::Corpus(base) => base.master_seed,
    };
    let local_manifest = RunManifest::for_sweep(&local, 2, seed, &recorder.snapshot());
    let streamed =
        RunManifest::from_toml_str(manifest_text(&got)).expect("streamed manifest parses");
    assert_eq!(
        streamed.digest(),
        local_manifest.digest(),
        "streamed manifest digest == batch manifest digest"
    );
}

#[test]
fn concurrent_submissions_share_one_phase1_cache() {
    let server = start_server(2);

    // Two clients race the same scenario against the one process-wide
    // cache. Both must finish identically, and between the sweep's own
    // second cell and the rival job, every stream sees cache hits.
    let addr = server.local_addr();
    let handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                submit_and_drain(&mut client, SCENARIO)
            })
        })
        .collect();
    let results: Vec<Vec<ServerMsg>> =
        handles.into_iter().map(|h| h.join().expect("client thread")).collect();

    let mut digests = Vec::new();
    for got in &results {
        assert!(matches!(got.last(), Some(ServerMsg::Done { .. })), "job succeeded: {got:?}");
        let manifest = RunManifest::from_toml_str(manifest_text(got)).expect("manifest parses");
        let hits = manifest.counters.get("cache_hits").copied().unwrap_or(0);
        assert!(hits > 0, "every job's second sweep cell hits the shared cache, got {hits}");
        digests.push(manifest.digest());
        assert_eq!(
            deterministic_report(report_text(got)),
            deterministic_report(report_text(&results[0])),
            "identical reports"
        );
    }
    assert_eq!(digests[0], digests[1], "identical manifests");

    // Cross-job sharing, raced out of the picture: now that both
    // concurrent jobs have populated the cache, a third submission of
    // the same scenario must extract nothing at all.
    let mut third = connect(&server);
    let got = submit_and_drain(&mut third, SCENARIO);
    assert!(matches!(got.last(), Some(ServerMsg::Done { .. })), "third job succeeded: {got:?}");
    let manifest = RunManifest::from_toml_str(manifest_text(&got)).expect("manifest parses");
    let misses = manifest.counters.get("cache_misses").copied().unwrap_or(0);
    let hits = manifest.counters.get("cache_hits").copied().unwrap_or(0);
    assert_eq!(misses, 0, "a warm cache serves every cell of a rerun submission");
    assert_eq!(hits, 2, "both sweep cells hit extractions stored by earlier jobs");
    assert_eq!(manifest.digest(), digests[0], "warm-cache rerun is still bit-identical");
}

#[test]
fn malformed_lines_get_positioned_errors_and_the_connection_survives() {
    let server = start_server(1);
    let mut client = connect(&server);

    // An unknown verb on the wire's third line: the reply must carry
    // the connection-relative line number and leave the session alive.
    client.send(&ClientMsg::Jobs).expect("line 1");
    assert!(matches!(client.recv().unwrap(), Some(ServerMsg::End { count: 0 })));
    client.send(&ClientMsg::Jobs).expect("line 2");
    assert!(matches!(client.recv().unwrap(), Some(ServerMsg::End { count: 0 })));

    client
        .send(&ClientMsg::Submit { scenario: "definitely not toml".into() })
        .expect("line 3: parseable message, unparseable scenario");
    let Some(ServerMsg::Error { message }) = client.recv().unwrap() else {
        panic!("bad scenario must answer with error");
    };
    assert!(message.contains("submitted scenario"), "scenario errors cite their origin: {message}");

    // A wire-level malformed line (bad u64) is positioned at the line
    // it arrived on, column of the offending field.
    client.send(&ClientMsg::Watch { job: 0 }).expect("prime the line counter");
    let Some(ServerMsg::Error { message }) = client.recv().unwrap() else {
        panic!("unknown job must answer with error");
    };
    assert!(message.contains("no such job"), "{message}");

    // The connection still works after every rejection.
    let got = submit_and_drain(&mut client, SCENARIO);
    assert!(matches!(got.last(), Some(ServerMsg::Done { .. })), "session survived: {got:?}");
}

#[test]
fn a_killed_client_leaves_the_server_serving() {
    let server = start_server(1);

    // Client A submits and hangs up before a single report byte
    // arrives — its job must neither wedge a worker nor leak.
    {
        let mut casualty = connect(&server);
        casualty.send(&ClientMsg::Submit { scenario: SCENARIO.into() }).expect("submit goes out");
        let Some(ServerMsg::Accepted { .. }) = casualty.recv().unwrap() else {
            panic!("submission accepted");
        };
        // Dropping the client closes the socket mid-stream.
    }

    // Client B gets a full, correct run afterwards on the same worker.
    let mut survivor = connect(&server);
    let got = submit_and_drain(&mut survivor, SCENARIO);
    assert!(matches!(got.last(), Some(ServerMsg::Done { .. })), "server kept serving: {got:?}");

    // And the orphaned job itself ran to completion.
    let ServerMsg::Accepted { job: orphan, .. } = got[0] else { unreachable!() };
    let orphan = orphan - 1;
    let job = server.registry().get(orphan).expect("orphaned job still listed");
    for _ in 0..400 {
        if job.state() == JobState::Done {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(job.state(), JobState::Done, "orphaned job drained normally");
}

#[test]
fn cancelling_a_queued_job_dequeues_it_before_it_runs() {
    let server = start_server(1);
    let mut client = connect(&server);

    // With one worker, the second submission sits in the queue.
    client.send(&ClientMsg::Submit { scenario: SCENARIO.into() }).expect("job a");
    let Some(ServerMsg::Accepted { job: job_a, .. }) = client.recv().unwrap() else {
        panic!("job a accepted");
    };
    let mut second = connect(&server);
    second.send(&ClientMsg::Submit { scenario: SCENARIO.into() }).expect("job b");
    let Some(ServerMsg::Accepted { job: job_b, .. }) = second.recv().unwrap() else {
        panic!("job b accepted");
    };

    second.send(&ClientMsg::Cancel { job: job_b }).expect("cancel b");
    // The ack and the subscription's cancelled notice both arrive;
    // order between them is not part of the contract.
    let mut saw_ack = false;
    let mut saw_cancelled = false;
    while !(saw_ack && saw_cancelled) {
        match second.recv().unwrap().expect("connection stays open") {
            ServerMsg::Job { job, state, .. } if job == job_b => {
                assert_eq!(state, "cancelled");
                saw_ack = true;
            }
            ServerMsg::Cancelled { job } if job == job_b => saw_cancelled = true,
            other => panic!("unexpected message while cancelling: {other:?}"),
        }
    }
    assert_eq!(server.registry().get(job_b).unwrap().state(), JobState::Cancelled);

    // Job A is unaffected and completes on the worker.
    let mut done = false;
    while !done {
        match client.recv().unwrap().expect("stream open") {
            ServerMsg::Done { job } if job == job_a => done = true,
            ServerMsg::Failed { error, .. } => panic!("job a failed: {error}"),
            _ => {}
        }
    }
}

#[test]
fn graceful_shutdown_drains_running_jobs_then_closes() {
    let server = start_server(1);
    let mut client = connect(&server);
    client.send(&ClientMsg::Submit { scenario: SCENARIO.into() }).expect("submit");
    let Some(ServerMsg::Accepted { job, .. }) = client.recv().unwrap() else {
        panic!("accepted");
    };

    let mut controller = connect(&server);
    controller.send(&ClientMsg::Shutdown).expect("shutdown");
    let Some(ServerMsg::ShuttingDown { unfinished }) = controller.recv().unwrap() else {
        panic!("shutdown acknowledged");
    };
    assert_eq!(unfinished, 1, "the in-flight job is counted");

    // New submissions are rejected while the drain runs — either the
    // listener is already gone (connection refused) or a still-open
    // path answers with a shutting-down error / immediate close.
    match Client::connect(server.local_addr()) {
        Err(_) => {} // accept loop already closed — equally valid
        Ok(mut latecomer) => {
            if latecomer.send(&ClientMsg::Submit { scenario: SCENARIO.into() }).is_ok() {
                match latecomer.recv() {
                    Ok(Some(ServerMsg::Error { message })) => {
                        assert!(message.contains("shutting down"), "{message}")
                    }
                    Ok(None) | Err(_) => {} // closed before answering
                    Ok(other) => panic!("late submission must be rejected, got {other:?}"),
                }
            }
        }
    }

    // The subscribed client still receives the job's full result
    // before its connection closes.
    let mut done = false;
    loop {
        match client.recv().expect("stream decodable") {
            Some(ServerMsg::Done { job: j }) if j == job => done = true,
            Some(_) => {}
            None => break,
        }
    }
    assert!(done, "the running job drained to completion before close");

    controller.recv_until_eof().expect("controller sees EOF after drain");
    server.join();
}
