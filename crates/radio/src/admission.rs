//! Network-side admission control for fast-dormancy requests.
//!
//! [`ReleasePolicy`] models one
//! decision point in isolation: a request arrives, the policy says yes
//! or no. Real controllers decide *under load* — the RNC that the
//! paper's §8 signaling-storm concern is about sees every RRC message
//! its cells carry, and a sane admission policy reacts to that rate
//! rather than to request spacing alone. This module is the
//! generalization: an [`AdmissionPolicy`] is a release policy that can
//! additionally **observe** the signaling traffic charged to its
//! network element (cell or RNC) and fold it into future verdicts.
//!
//! Every [`ReleasePolicy`] is automatically an [`AdmissionPolicy`]
//! that ignores the load feed (blanket impl below), so the paper's
//! `always`-accept assumption and the rate-limited base station remain
//! first-class admission policies. [`LoadReactive`] is the new,
//! genuinely load-coupled one: it denies requests while the rolling
//! message rate over its window sits at or above a watermark.
//!
//! ## Message accounting at the admission point
//!
//! Admission decisions happen *before* a simulation replay exists, so
//! the load an admission policy observes is the deterministic
//! adjudication-time model, not the replayed transition log: a granted
//! fast-dormancy request costs
//! [`SignalingModel::per_fd_demotion`](crate::signaling::SignalingModel)
//! messages (request + release + confirm), a denied request still
//! costs [`REQUEST_MESSAGES`] (the request reached the controller).
//! Coordinators feed exactly those counts through [`observe`]
//! (`AdmissionPolicy::observe`), in adjudication order, which keeps
//! every verdict a pure function of the merged request stream — the
//! property the fleet's bit-identical-at-any-thread-count contract
//! rests on.
//!
//! [`observe`]: AdmissionPolicy::observe

use std::collections::VecDeque;

use tailwise_trace::time::Instant;

use crate::fastdormancy::ReleasePolicy;

/// RRC messages a *denied* fast-dormancy request still costs the
/// network element that refused it: the request itself transited the
/// element. Granted requests cost the signaling model's
/// `per_fd_demotion` instead.
pub const REQUEST_MESSAGES: u32 = 1;

/// Decides whether a network element (cell or RNC) admits a
/// fast-dormancy request, optionally reacting to the signaling load the
/// element carries.
///
/// Implementations must be deterministic: verdicts may depend only on
/// the `admit`/`observe` call sequence, never on wall-clock time or
/// randomness, so a merged request stream adjudicates identically on
/// every machine.
pub trait AdmissionPolicy {
    /// Returns `true` to admit a request arriving at `at`.
    fn admit(&mut self, at: Instant) -> bool;

    /// Informs the policy of RRC messages charged to its element at
    /// `at` (its own grants and denials included). Load-reactive
    /// policies integrate this into a rolling rate; stateless policies
    /// keep the default no-op.
    fn observe(&mut self, at: Instant, messages: u32) {
        let _ = (at, messages);
    }

    /// Diagnostic name for reports.
    fn name(&self) -> &'static str;
}

/// Every release policy is an admission policy that ignores the load
/// feed — the paper's per-request decision points lift unchanged into
/// the hierarchy.
impl<P: ReleasePolicy + ?Sized> AdmissionPolicy for P {
    fn admit(&mut self, at: Instant) -> bool {
        self.accept(at)
    }
    fn name(&self) -> &'static str {
        ReleasePolicy::name(self)
    }
}

/// Load-reactive admission: deny while the rolling message rate is at
/// or above a watermark — the controller-protecting policy the paper's
/// §8 storm scenario calls for.
///
/// The policy keeps a rolling window of the last `window_s` seconds of
/// observed messages (second-granularity buckets). A request at time
/// `t` is denied iff the messages observed in `(t - window_s, t]`
/// average at least `watermark_per_s` per second. Denials themselves
/// feed back into the window (a denied request still cost a message),
/// so the policy behaves as a governor: load oscillates just under the
/// watermark instead of running away.
#[derive(Debug, Clone)]
pub struct LoadReactive {
    watermark_per_s: u64,
    window_s: i64,
    /// `(second, messages)` buckets, seconds strictly ascending.
    buckets: VecDeque<(i64, u64)>,
    in_window: u64,
}

impl LoadReactive {
    /// Denies requests while the rolling mean rate over `window_s`
    /// seconds is at or above `watermark_per_s` messages per second.
    ///
    /// # Panics
    /// If `window_s` is zero.
    pub fn new(watermark_per_s: u64, window_s: u64) -> LoadReactive {
        assert!(window_s >= 1, "load-reactive admission needs a window of at least one second");
        LoadReactive {
            watermark_per_s,
            window_s: window_s as i64,
            buckets: VecDeque::new(),
            in_window: 0,
        }
    }

    /// Messages currently inside the rolling window ending at the last
    /// eviction point.
    pub fn messages_in_window(&self) -> u64 {
        self.in_window
    }

    /// Drops buckets older than the window ending at `second`.
    fn evict(&mut self, second: i64) {
        while let Some(&(s, messages)) = self.buckets.front() {
            if s > second - self.window_s {
                break;
            }
            self.in_window -= messages;
            self.buckets.pop_front();
        }
    }
}

fn second_of(at: Instant) -> i64 {
    at.as_micros().div_euclid(1_000_000)
}

impl AdmissionPolicy for LoadReactive {
    fn admit(&mut self, at: Instant) -> bool {
        self.evict(second_of(at));
        self.in_window < self.watermark_per_s.saturating_mul(self.window_s as u64)
    }

    fn observe(&mut self, at: Instant, messages: u32) {
        let second = second_of(at);
        self.evict(second);
        match self.buckets.back_mut() {
            Some((s, bucket)) if *s == second => *bucket += messages as u64,
            _ => self.buckets.push_back((second, messages as u64)),
        }
        self.in_window += messages as u64;
    }

    fn name(&self) -> &'static str {
        "load-reactive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastdormancy::{AlwaysAccept, NeverAccept, RateLimited};
    use tailwise_trace::time::Duration;

    fn t(s: i64) -> Instant {
        Instant::from_secs(s)
    }

    #[test]
    fn release_policies_lift_to_admission() {
        // The blanket impl: the paper's decision points keep working
        // through the new surface, load feed ignored.
        let mut always: Box<dyn AdmissionPolicy> = Box::new(AlwaysAccept);
        let mut never: Box<dyn AdmissionPolicy> = Box::new(NeverAccept);
        always.observe(t(0), 1_000_000);
        never.observe(t(0), 0);
        assert!(always.admit(t(1)));
        assert!(!never.admit(t(1)));
        assert_eq!(always.name(), "always-accept");

        let mut limited: Box<dyn AdmissionPolicy> =
            Box::new(RateLimited::new(Duration::from_secs(10)));
        assert!(limited.admit(t(0)));
        limited.observe(t(1), 9999); // no effect on spacing
        assert!(!limited.admit(t(5)));
        assert!(limited.admit(t(10)));
    }

    #[test]
    fn load_reactive_denies_at_the_watermark() {
        // Watermark 5 msg/s over a 1 s window: admit until 5 messages
        // land in the current second.
        let mut p = LoadReactive::new(5, 1);
        assert!(p.admit(t(0)), "empty window admits");
        for _ in 0..4 {
            p.observe(t(0), 1);
        }
        assert!(p.admit(t(0)), "4 < 5 still admits");
        p.observe(t(0), 1);
        assert!(!p.admit(t(0)), "watermark reached denies");
        // The next second the bucket ages out.
        assert!(p.admit(t(1)));
    }

    #[test]
    fn rolling_window_spans_multiple_seconds() {
        // Watermark 2 msg/s × 3 s window = 6 messages in any 3 s span.
        let mut p = LoadReactive::new(2, 3);
        p.observe(t(0), 3);
        p.observe(t(1), 3);
        assert!(!p.admit(t(2)), "6 messages inside (−1..=2]");
        // At second 3 the window is (0, 3]: second 0 ages out, only
        // second 1's 3 messages remain — under the 6-message budget.
        assert!(p.admit(t(3)));
        assert_eq!(p.messages_in_window(), 3);
        assert!(p.admit(t(4)), "window (1, 4] holds nothing");
        assert_eq!(p.messages_in_window(), 0);
    }

    #[test]
    fn governor_oscillates_under_sustained_storm() {
        // A storm of one request every 100 ms, each grant costing 3
        // messages, each denial 1, against a 10 msg/s watermark: the
        // policy must deny some and admit some — a governor, not a
        // latch.
        let mut p = LoadReactive::new(10, 1);
        let (mut granted, mut denied) = (0u64, 0u64);
        for i in 0..200 {
            let at = Instant::from_millis(i * 100);
            let ok = p.admit(at);
            p.observe(at, if ok { 3 } else { REQUEST_MESSAGES });
            if ok {
                granted += 1;
            } else {
                denied += 1;
            }
        }
        assert!(granted > 0, "governor latched shut");
        assert!(denied > 0, "watermark never engaged");
        // Deterministic: the same stream adjudicates identically.
        let rerun = |_: ()| {
            let mut p = LoadReactive::new(10, 1);
            (0..200)
                .map(|i| {
                    let at = Instant::from_millis(i * 100);
                    let ok = p.admit(at);
                    p.observe(at, if ok { 3 } else { REQUEST_MESSAGES });
                    ok
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(rerun(()), rerun(()));
    }

    #[test]
    fn zero_watermark_denies_everything_after_first_message() {
        let mut p = LoadReactive::new(0, 1);
        // watermark 0: budget is 0 messages, so even an empty window
        // refuses (0 < 0 is false).
        assert!(!p.admit(t(0)));
    }

    #[test]
    #[should_panic(expected = "at least one second")]
    fn zero_window_is_rejected() {
        LoadReactive::new(5, 0);
    }
}
