//! Signaling-overhead accounting.
//!
//! The paper uses "number of state switches" as its signaling metric
//! (Figures 10b, 11b, 18): each demote→promote cycle costs the base station
//! an RRC connection setup. This module keeps that primary metric and, as an
//! extension, a message-level model with per-transition RRC message counts
//! (useful when comparing against base-station capacity numbers).
//!
//! Default message counts follow the usual 3GPP accounting: an Idle→DCH
//! promotion involves the RACH preamble plus ~25–30 RRC messages for
//! connection + radio-bearer setup; timer demotions and fast-dormancy
//! releases are short exchanges.

use crate::rrc::{RrcState, Transition, TransitionCause, TransitionCounters};

/// A per-second RRC message budget for one network element — a cell or
/// an RNC in the hierarchy. Purely accounting: a second whose message
/// load exceeds the capacity counts as overloaded; keeping load *under*
/// budget is an admission policy's job
/// ([`crate::admission::AdmissionPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignalingBudget {
    /// RRC messages per second the element can absorb (`None` =
    /// unbounded, overload seconds always zero).
    pub capacity_per_s: Option<u64>,
}

impl SignalingBudget {
    /// An unbounded budget (no overload accounting).
    pub const UNBOUNDED: SignalingBudget = SignalingBudget { capacity_per_s: None };

    /// A budget of `capacity_per_s` messages per second.
    pub const fn per_second(capacity_per_s: u64) -> SignalingBudget {
        SignalingBudget { capacity_per_s: Some(capacity_per_s) }
    }

    /// True when a second carrying `messages` exceeds the budget.
    pub fn overloaded(&self, messages: u64) -> bool {
        match self.capacity_per_s {
            Some(capacity) => messages > capacity,
            None => false,
        }
    }
}

/// RRC messages exchanged per transition type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalingModel {
    /// Messages per Idle → DCH promotion (connection establishment).
    pub per_promotion: u32,
    /// Messages per FACH → DCH re-promotion (channel upgrade).
    pub per_fach_promotion: u32,
    /// Messages per DCH → FACH timer demotion.
    pub per_t1_demotion: u32,
    /// Messages per timer demotion to Idle (connection release).
    pub per_timer_demotion: u32,
    /// Messages per fast-dormancy release (request + release + confirm).
    pub per_fd_demotion: u32,
    /// Messages one inter-cell handoff charges **each side** (source and
    /// target cell — and, when the handoff crosses an RNC boundary, each
    /// RNC as well): measurement + handover command + path switch. Only
    /// mobility-enabled fleets ever emit handoffs, so this weight is
    /// inert for static populations.
    pub per_handoff: u32,
}

impl Default for SignalingModel {
    fn default() -> SignalingModel {
        SignalingModel {
            per_promotion: 28,
            per_fach_promotion: 6,
            per_t1_demotion: 4,
            per_timer_demotion: 5,
            per_fd_demotion: 3,
            per_handoff: 6,
        }
    }
}

impl SignalingModel {
    /// Total messages implied by a counter set.
    pub fn total_messages(&self, c: &TransitionCounters) -> u64 {
        c.promotions * self.per_promotion as u64
            + c.fach_promotions * self.per_fach_promotion as u64
            + c.t1_demotions * self.per_t1_demotion as u64
            + c.timer_demotions * self.per_timer_demotion as u64
            + c.fd_demotions * self.per_fd_demotion as u64
    }

    /// The paper's switch-count metric: one "state switch" per
    /// demote→promote cycle, i.e. the number of Idle→Active promotions.
    pub fn switch_cycles(c: &TransitionCounters) -> u64 {
        c.promotions
    }

    /// RRC messages one recorded [`Transition`] costs the base station —
    /// the per-event counterpart of [`total_messages`]: summing
    /// `messages_for` over a run's transition log equals
    /// `total_messages` of its counters (pinned by a test below).
    ///
    /// [`total_messages`]: Self::total_messages
    pub fn messages_for(&self, t: &Transition) -> u32 {
        match (t.cause, t.from, t.to) {
            (TransitionCause::Data, RrcState::Idle, RrcState::Dch) => self.per_promotion,
            (TransitionCause::Data, _, _) => self.per_fach_promotion,
            (TransitionCause::FastDormancy, _, _) => self.per_fd_demotion,
            (TransitionCause::Timer, _, RrcState::Idle) => self.per_timer_demotion,
            (TransitionCause::Timer, _, _) => self.per_t1_demotion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_totals_weight_each_transition() {
        let m = SignalingModel::default();
        let c = TransitionCounters {
            promotions: 2,
            fach_promotions: 3,
            t1_demotions: 4,
            timer_demotions: 1,
            fd_demotions: 5,
        };
        let expect = 2 * 28 + 3 * 6 + 4 * 4 + 5 + 5 * 3;
        assert_eq!(m.total_messages(&c), expect as u64);
    }

    #[test]
    fn switch_cycles_counts_promotions() {
        let c = TransitionCounters { promotions: 7, fd_demotions: 7, ..Default::default() };
        assert_eq!(SignalingModel::switch_cycles(&c), 7);
    }

    #[test]
    fn promotions_dominate_message_cost() {
        // Sanity: the default model makes promotions the expensive event,
        // which is why the paper counts cycles.
        let m = SignalingModel::default();
        assert!(m.per_promotion > m.per_fd_demotion * 5);
    }

    #[test]
    fn handoffs_cost_a_short_exchange_per_side() {
        // Handoffs are charged per side (source and target) at
        // adjudication time, not through the transition log, so the
        // weight must exist but stay cheaper than a full connection
        // setup — otherwise mobility would dwarf the promotion load the
        // paper's metric is built on.
        let m = SignalingModel::default();
        assert_eq!(m.per_handoff, 6);
        assert!(m.per_promotion > m.per_handoff);
    }

    #[test]
    fn zero_counters_zero_messages() {
        let m = SignalingModel::default();
        assert_eq!(m.total_messages(&TransitionCounters::default()), 0);
    }

    #[test]
    fn per_transition_messages_agree_with_counter_totals() {
        use crate::rrc::{RrcState, Transition, TransitionCause};
        use tailwise_trace::time::Instant;
        let m = SignalingModel::default();
        let t = |from, to, cause| Transition { at: Instant::ZERO, from, to, cause };
        // One transition of every kind the machine can emit.
        let log = [
            t(RrcState::Idle, RrcState::Dch, TransitionCause::Data), // promotion
            t(RrcState::Fach, RrcState::Dch, TransitionCause::Data), // FACH re-promotion
            t(RrcState::Dch, RrcState::Fach, TransitionCause::Timer), // t1 demotion
            t(RrcState::Fach, RrcState::Idle, TransitionCause::Timer), // timer demotion
            t(RrcState::Dch, RrcState::Idle, TransitionCause::FastDormancy), // FD release
        ];
        let counters = TransitionCounters {
            promotions: 1,
            fach_promotions: 1,
            t1_demotions: 1,
            timer_demotions: 1,
            fd_demotions: 1,
        };
        let per_event: u64 = log.iter().map(|t| m.messages_for(t) as u64).sum();
        assert_eq!(per_event, m.total_messages(&counters));
    }
}
