//! Centralized energy accounting.
//!
//! Every scheme in the evaluation is measured by this one integrator, so
//! differences between schemes can only come from *when they switch states*,
//! never from accounting drift. The component split mirrors Figure 1 of the
//! paper: **Data** (transmission/reception), **DCH timer** and **FACH
//! timer** (tail residence), and **State switch** (promotion + demotion
//! energy).

use tailwise_trace::time::Duration;
use tailwise_trace::Direction;

use crate::profile::CarrierProfile;
use crate::rrc::{Residence, RrcState};

/// Energy in joules, decomposed by where it went.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Uplink data energy (Σ inter-arrival × `P_snd`), J.
    pub data_up: f64,
    /// Downlink data energy (Σ inter-arrival × `P_rcv`), J.
    pub data_down: f64,
    /// Tail energy in DCH / RRC_CONNECTED ("DCH timer" in Fig. 1), J.
    pub tail_dch: f64,
    /// Tail energy in FACH ("FACH timer" in Fig. 1), J.
    pub tail_fach: f64,
    /// Promotion (Idle → Active) switch energy, J.
    pub promote: f64,
    /// Demotion (Active → Idle) switch energy, J.
    pub demote: f64,
}

impl EnergyBreakdown {
    /// Total data energy, J.
    pub fn data(&self) -> f64 {
        self.data_up + self.data_down
    }

    /// Total tail energy, J.
    pub fn tail(&self) -> f64 {
        self.tail_dch + self.tail_fach
    }

    /// Total state-switch energy, J.
    pub fn switch(&self) -> f64 {
        self.promote + self.demote
    }

    /// Grand total, J.
    pub fn total(&self) -> f64 {
        self.data() + self.tail() + self.switch()
    }

    /// Fraction of total energy per Figure 1 category:
    /// `(data, dch_tail, fach_tail, switch)`. Returns zeros for zero total.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (self.data() / total, self.tail_dch / total, self.tail_fach / total, self.switch() / total)
    }
}

impl core::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, o: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            data_up: self.data_up + o.data_up,
            data_down: self.data_down + o.data_down,
            tail_dch: self.tail_dch + o.tail_dch,
            tail_fach: self.tail_fach + o.tail_fach,
            promote: self.promote + o.promote,
            demote: self.demote + o.demote,
        }
    }
}

impl core::ops::AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, o: EnergyBreakdown) {
        *self = *self + o;
    }
}

/// Accumulates energy against a fixed carrier profile.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    profile: CarrierProfile,
    acc: EnergyBreakdown,
}

impl EnergyMeter {
    /// Creates a meter for the given carrier.
    pub fn new(profile: CarrierProfile) -> EnergyMeter {
        EnergyMeter { profile, acc: EnergyBreakdown::default() }
    }

    /// The carrier profile in force.
    pub fn profile(&self) -> &CarrierProfile {
        &self.profile
    }

    /// Charges data transfer: `dur × P_dir` (§6.1's per-second model).
    pub fn add_data(&mut self, dir: Direction, dur: Duration) {
        debug_assert!(!dur.is_negative());
        let e = self.profile.p_data(dir) * dur.as_secs_f64().max(0.0);
        match dir {
            Direction::Up => self.acc.data_up += e,
            Direction::Down => self.acc.data_down += e,
        }
    }

    /// Charges tail residence in a radio state (Idle is free).
    pub fn add_residence(&mut self, r: Residence) {
        debug_assert!(!r.dur.is_negative());
        let secs = r.dur.as_secs_f64().max(0.0);
        match r.state {
            RrcState::Dch => self.acc.tail_dch += self.profile.p_dch * secs,
            RrcState::Fach => self.acc.tail_fach += self.profile.p_fach * secs,
            RrcState::Idle => {}
        }
    }

    /// Charges one Idle → Active promotion.
    pub fn add_promotion(&mut self) {
        self.acc.promote += self.profile.e_promote;
    }

    /// Charges one fast-dormancy demotion.
    pub fn add_fd_demotion(&mut self) {
        self.acc.demote += self.profile.e_demote_fd();
    }

    /// Charges one timer-driven demotion.
    pub fn add_timer_demotion(&mut self) {
        self.acc.demote += self.profile.e_demote_timer();
    }

    /// The accumulated breakdown.
    pub fn breakdown(&self) -> EnergyBreakdown {
        self.acc
    }

    /// Total joules so far.
    pub fn total(&self) -> f64 {
        self.acc.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> EnergyMeter {
        EnergyMeter::new(CarrierProfile::att_hspa())
    }

    #[test]
    fn data_energy_uses_direction_power() {
        let mut m = meter();
        m.add_data(Direction::Up, Duration::from_secs(2));
        m.add_data(Direction::Down, Duration::from_secs(3));
        let b = m.breakdown();
        assert!((b.data_up - 2.0 * 1.539).abs() < 1e-9);
        assert!((b.data_down - 3.0 * 1.212).abs() < 1e-9);
        assert_eq!(b.tail(), 0.0);
    }

    #[test]
    fn residence_energy_by_state() {
        let mut m = meter();
        m.add_residence(Residence { state: RrcState::Dch, dur: Duration::from_secs(1) });
        m.add_residence(Residence { state: RrcState::Fach, dur: Duration::from_secs(1) });
        m.add_residence(Residence { state: RrcState::Idle, dur: Duration::from_secs(100) });
        let b = m.breakdown();
        assert!((b.tail_dch - 0.916).abs() < 1e-9);
        assert!((b.tail_fach - 0.659).abs() < 1e-9);
        assert_eq!(b.total(), b.tail()); // idle residence is free
    }

    #[test]
    fn switch_energy_components() {
        let mut m = meter();
        m.add_promotion();
        m.add_fd_demotion();
        let b = m.breakdown();
        let p = CarrierProfile::att_hspa();
        assert!((b.promote - p.e_promote).abs() < 1e-12);
        assert!((b.demote - p.e_demote_fd()).abs() < 1e-12);
        assert!((b.switch() - p.e_switch()).abs() < 1e-12);
    }

    #[test]
    fn components_sum_to_total() {
        let mut m = meter();
        m.add_data(Direction::Up, Duration::from_millis(300));
        m.add_residence(Residence { state: RrcState::Dch, dur: Duration::from_secs(4) });
        m.add_residence(Residence { state: RrcState::Fach, dur: Duration::from_secs(7) });
        m.add_promotion();
        m.add_timer_demotion();
        let b = m.breakdown();
        let sum = b.data_up + b.data_down + b.tail_dch + b.tail_fach + b.promote + b.demote;
        assert!((sum - b.total()).abs() < 1e-12);
        let (fd, fdch, ffach, fsw) = b.fractions();
        assert!((fd + fdch + ffach + fsw - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_fractions_are_zero() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn breakdowns_add() {
        let a = EnergyBreakdown { data_up: 1.0, tail_dch: 2.0, ..Default::default() };
        let b = EnergyBreakdown { data_up: 0.5, promote: 1.5, ..Default::default() };
        let c = a + b;
        assert_eq!(c.data_up, 1.5);
        assert_eq!(c.tail_dch, 2.0);
        assert_eq!(c.promote, 1.5);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn meter_matches_gap_energy_formula() {
        // Integrating a full status-quo gap through the meter must equal the
        // closed-form E(t) from the profile (the Fig. 5 model).
        let p = CarrierProfile::att_hspa();
        let gap = Duration::from_secs(20); // > t1 + t2 = 16.6
        let mut m = EnergyMeter::new(p.clone());
        m.add_residence(Residence { state: RrcState::Dch, dur: p.t1 });
        m.add_residence(Residence { state: RrcState::Fach, dur: p.t2 });
        m.add_timer_demotion();
        m.add_promotion();
        assert!((m.total() - p.gap_energy(gap)).abs() < 1e-9);
    }
}
