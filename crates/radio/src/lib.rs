//! # tailwise-radio
//!
//! The 3G/LTE radio substrate of the tailwise reproduction of *"Traffic-Aware
//! Techniques to Reduce 3G/LTE Wireless Energy Consumption"* (Deng &
//! Balakrishnan, CoNEXT 2012): everything §2 of the paper measures or
//! standardizes, as deterministic simulation components.
//!
//! * [`profile`] — carrier parameter sets (Table 2 + §2.1) and the
//!   piecewise tail-energy model `E(t)` of §4.1, including the derived
//!   `t_threshold`;
//! * [`rrc`] — the Figure 2 RRC state machines (3G three-state, LTE
//!   two-state) with inactivity timers and fast dormancy;
//! * [`energy`] — the single energy integrator every scheme is measured by,
//!   decomposed per Figure 1;
//! * [`fastdormancy`] — base-station release policies for fast-dormancy
//!   requests (always-accept per the paper, plus rate-limited/fractional
//!   variants for the §8 future-work questions);
//! * [`signaling`] — switch-cycle and message-level signaling accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod energy;
pub mod fastdormancy;
pub mod profile;
pub mod rrc;
pub mod signaling;

pub use admission::{AdmissionPolicy, LoadReactive};
pub use energy::{EnergyBreakdown, EnergyMeter};
pub use fastdormancy::{AlwaysAccept, FractionalAccept, NeverAccept, RateLimited, ReleasePolicy};
pub use profile::{CarrierProfile, RadioTech};
pub use rrc::{
    Advance, Residence, RrcMachine, RrcState, Transition, TransitionCause, TransitionCounters,
};
pub use signaling::{SignalingBudget, SignalingModel};

#[cfg(test)]
mod proptests {
    //! Property-based invariants of the radio substrate.

    use proptest::prelude::*;
    use tailwise_trace::time::{Duration, Instant};

    use crate::profile::CarrierProfile;
    use crate::rrc::{RrcMachine, RrcState};

    fn carriers() -> Vec<CarrierProfile> {
        CarrierProfile::all_presets()
    }

    proptest! {
        #[test]
        fn gap_energy_monotone_for_all_presets(
            a_ms in 0i64..60_000,
            b_ms in 0i64..60_000,
            carrier in 0usize..6,
        ) {
            let p = &carriers()[carrier];
            let (lo, hi) = if a_ms <= b_ms { (a_ms, b_ms) } else { (b_ms, a_ms) };
            let e_lo = p.gap_energy(Duration::from_millis(lo));
            let e_hi = p.gap_energy(Duration::from_millis(hi));
            prop_assert!(e_hi + 1e-12 >= e_lo);
        }

        #[test]
        fn hold_energy_never_exceeds_gap_energy(
            t_ms in 0i64..60_000,
            carrier in 0usize..6,
        ) {
            let p = &carriers()[carrier];
            let d = Duration::from_millis(t_ms);
            prop_assert!(p.hold_energy(d) <= p.gap_energy(d) + 1e-12);
        }

        #[test]
        fn threshold_separates_hold_from_switch(
            t_ms in 1i64..60_000,
            carrier in 0usize..6,
        ) {
            // Defining property of t_threshold: switching beats holding
            // exactly for gaps above it (within the timer window).
            let p = &carriers()[carrier];
            let d = Duration::from_millis(t_ms);
            let th = p.t_threshold();
            if d < th {
                prop_assert!(p.gap_energy(d) <= p.e_switch() + 1e-9);
            } else if d > th && d <= p.tail_window() {
                prop_assert!(p.gap_energy(d) + 1e-9 >= p.e_switch());
            }
        }

        #[test]
        fn machine_residences_cover_time_exactly(
            gaps_ms in prop::collection::vec(1i64..40_000, 1..60),
            carrier in 0usize..6,
        ) {
            // Random packet schedule: residences from advance() must tile
            // the timeline with no gaps or overlaps, for every preset.
            let p = &carriers()[carrier];
            let mut m = RrcMachine::new(p, Instant::ZERO);
            let mut now = Instant::ZERO;
            let mut covered = Duration::ZERO;
            m.notify_data(now);
            for g in gaps_ms {
                let next = now + Duration::from_millis(g);
                let adv = m.advance(next);
                covered += adv.total();
                m.notify_data(next);
                now = next;
            }
            prop_assert_eq!(covered, now - Instant::ZERO);
        }

        #[test]
        fn machine_state_is_a_function_of_silence(
            gap_ms in 1i64..60_000,
            carrier in 0usize..6,
        ) {
            // After a single packet and `gap` of silence the state is fully
            // determined by the timers.
            let p = &carriers()[carrier];
            let mut m = RrcMachine::new(p, Instant::ZERO);
            m.notify_data(Instant::ZERO);
            let gap = Duration::from_millis(gap_ms);
            m.advance(Instant::ZERO + gap);
            let expect = if gap <= p.t1 {
                RrcState::Dch
            } else if gap <= p.t1 + p.t2 {
                RrcState::Fach
            } else {
                RrcState::Idle
            };
            prop_assert_eq!(m.state(), expect);
        }

        #[test]
        fn promotions_equal_idle_departures(
            gaps_ms in prop::collection::vec(1i64..50_000, 1..80),
            carrier in 0usize..6,
        ) {
            // Every promotion leaves Idle; every demotion enters it. The two
            // counts can differ by at most one (the final state).
            let p = &carriers()[carrier];
            let mut m = RrcMachine::new(p, Instant::ZERO);
            let mut now = Instant::ZERO;
            m.notify_data(now);
            for g in gaps_ms {
                now += Duration::from_millis(g);
                m.advance(now);
                m.notify_data(now);
            }
            let c = m.counters();
            let demotions = c.demotions();
            prop_assert!(c.promotions >= demotions);
            prop_assert!(c.promotions - demotions <= 1);
        }
    }
}
