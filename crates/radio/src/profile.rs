//! Carrier profiles: the measured RRC parameters of §2 and Table 2, plus the
//! tail-energy model of §4.1 (Figure 5).
//!
//! A [`CarrierProfile`] bundles everything the simulator and the control
//! algorithms need to know about one network: state powers, inactivity
//! timers, promotion characteristics, and switch energies. The paper's four
//! measured carriers are provided as presets; two Sprint presets (promotion
//! delays from §2.1, powers estimated) round out the US carriers the paper
//! mentions.
//!
//! ## Units
//!
//! Powers are in **watts**, energies in **joules**, times in the simulation
//! [`Duration`]. Table 2 of the paper reports milliwatts; the presets convert.
//!
//! ## Switch-energy calibration
//!
//! The paper never tabulates `E_switch`; its only anchor is
//! `t_threshold ≈ 1.2 s` on AT&T (§4.1). We reconstruct per-carrier switch
//! energies from the published promotion delays (§2.1):
//!
//! * `e_promote = PROMO_POWER_FACTOR × P_t1 × promotion_delay` — the device
//!   runs near DCH power during the RACH/ RRC-setup exchange;
//! * `e_demote_base = DEMOTE_TIME_EQUIV × P_t1` — the release handshake is a
//!   short, DCH-power burst;
//! * fast-dormancy demotions cost `fd_energy_fraction × e_demote_base`
//!   (default 0.5, the paper's §6.1 modeling assumption, swept by the
//!   `ablation_fd_fraction` bench).
//!
//! With `PROMO_POWER_FACTOR = 0.75` and `DEMOTE_TIME_EQUIV = 0.3 s`, the
//! AT&T profile yields `t_threshold = 1.2 s` exactly, reproducing the
//! paper's anchor; the same constants are applied uniformly to the other
//! carriers.

use tailwise_trace::time::Duration;

/// Radio access technology, selecting the RRC state machine shape (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioTech {
    /// 3G/UMTS-style: Cell_DCH → Cell_FACH → (Cell_PCH/IDLE), two timers.
    ThreeG,
    /// LTE-style: RRC_CONNECTED → RRC_IDLE, one timer (`t2 = 0`).
    Lte,
}

impl RadioTech {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            RadioTech::ThreeG => "3G",
            RadioTech::Lte => "LTE",
        }
    }
}

/// Fraction of `P_t1` drawn during a promotion (see module docs).
pub const PROMO_POWER_FACTOR: f64 = 0.75;
/// DCH-power-equivalent seconds consumed by a full (non-FD) demotion.
pub const DEMOTE_TIME_EQUIV: f64 = 0.3;
/// Default fast-dormancy energy fraction (§6.1: FD turn-off modeled at 50%
/// of the measured radio-off cost; 10–40% "did not change the results").
pub const DEFAULT_FD_FRACTION: f64 = 0.5;

/// Everything the model knows about one carrier's network.
#[derive(Debug, Clone, PartialEq)]
pub struct CarrierProfile {
    /// Display name, e.g. `"Verizon LTE"`.
    pub name: &'static str,
    /// Access technology (selects the state-machine shape).
    pub tech: RadioTech,
    /// Bulk uplink power while transmitting, W (Table 1 / Table 2 `Psnd`).
    pub p_send: f64,
    /// Bulk downlink power while receiving, W (Table 2 `Prcv`).
    pub p_recv: f64,
    /// Power in the Active state (Cell_DCH / RRC_CONNECTED), W (Table 2 `Pt1`).
    pub p_dch: f64,
    /// Power in the high-power idle state (Cell_FACH), W (Table 2 `Pt2`).
    /// Unused when `t2` is zero (LTE, Verizon 3G).
    pub p_fach: f64,
    /// First inactivity timer `t1` (DCH → FACH).
    pub t1: Duration,
    /// Second inactivity timer `t2` (FACH → idle); zero collapses FACH.
    pub t2: Duration,
    /// Idle → Active promotion delay (§2.1 measurements).
    pub promotion_delay: Duration,
    /// Energy of one Idle → Active promotion, J.
    pub e_promote: f64,
    /// Energy of one full (timer or radio-off) Active → Idle demotion, J.
    pub e_demote_base: f64,
    /// Fast-dormancy demotion cost as a fraction of `e_demote_base`.
    pub fd_energy_fraction: f64,
}

impl CarrierProfile {
    /// Builds a profile from Table 2 style raw numbers (powers in mW, times
    /// in seconds), deriving switch energies per the module-level
    /// calibration.
    #[allow(clippy::too_many_arguments)]
    pub fn from_measurements(
        name: &'static str,
        tech: RadioTech,
        p_send_mw: f64,
        p_recv_mw: f64,
        p_t1_mw: f64,
        p_t2_mw: f64,
        t1_s: f64,
        t2_s: f64,
        promotion_delay_s: f64,
    ) -> CarrierProfile {
        let p_dch = p_t1_mw / 1000.0;
        CarrierProfile {
            name,
            tech,
            p_send: p_send_mw / 1000.0,
            p_recv: p_recv_mw / 1000.0,
            p_dch,
            p_fach: p_t2_mw / 1000.0,
            t1: Duration::from_secs_f64(t1_s),
            t2: Duration::from_secs_f64(t2_s),
            promotion_delay: Duration::from_secs_f64(promotion_delay_s),
            e_promote: PROMO_POWER_FACTOR * p_dch * promotion_delay_s,
            e_demote_base: DEMOTE_TIME_EQUIV * p_dch,
            fd_energy_fraction: DEFAULT_FD_FRACTION,
        }
    }

    /// T-Mobile 3G (Table 2 row 1; promotion delay §2.1: ≈3.6 s).
    pub fn tmobile_3g() -> CarrierProfile {
        Self::from_measurements(
            "T-Mobile 3G",
            RadioTech::ThreeG,
            1202.0,
            737.0,
            445.0,
            343.0,
            3.2,
            16.3,
            3.6,
        )
    }

    /// AT&T HSPA+ (Table 2 row 2; promotion delay §2.1: ≈1.4 s).
    pub fn att_hspa() -> CarrierProfile {
        Self::from_measurements(
            "AT&T HSPA+",
            RadioTech::ThreeG,
            1539.0,
            1212.0,
            916.0,
            659.0,
            6.2,
            10.4,
            1.4,
        )
    }

    /// Verizon 3G (Table 2 row 3: `t2 = 0`, the two idle powers are
    /// indistinguishable; promotion delay §2.1: ≈1.2 s).
    pub fn verizon_3g() -> CarrierProfile {
        Self::from_measurements(
            "Verizon 3G",
            RadioTech::ThreeG,
            2043.0,
            1177.0,
            1130.0,
            1130.0,
            9.8,
            0.0,
            1.2,
        )
    }

    /// Verizon LTE (Table 2 row 4; promotion delay §2.1: ≈0.6 s).
    pub fn verizon_lte() -> CarrierProfile {
        Self::from_measurements(
            "Verizon LTE",
            RadioTech::Lte,
            2928.0,
            1737.0,
            1325.0,
            0.0,
            10.2,
            0.0,
            0.6,
        )
    }

    /// Sprint 3G. Promotion delay is the paper's §2.1 measurement (≈2.0 s);
    /// powers and timers are **estimates** (midpoints of the measured 3G
    /// carriers) since Table 2 has no Sprint row. Not used in any paper
    /// reproduction; provided for completeness.
    pub fn sprint_3g() -> CarrierProfile {
        Self::from_measurements(
            "Sprint 3G",
            RadioTech::ThreeG,
            1600.0,
            1040.0,
            830.0,
            710.0,
            6.4,
            8.9,
            2.0,
        )
    }

    /// Sprint LTE. Promotion delay is the paper's §2.1 measurement (≈1.0 s);
    /// powers and timer are **estimates** scaled from Verizon LTE. Not used
    /// in any paper reproduction; provided for completeness.
    pub fn sprint_lte() -> CarrierProfile {
        Self::from_measurements(
            "Sprint LTE",
            RadioTech::Lte,
            2800.0,
            1650.0,
            1260.0,
            0.0,
            10.0,
            0.0,
            1.0,
        )
    }

    /// The four carriers measured in Table 2, in the paper's order
    /// (the populations of Figures 17/18 and Table 3).
    pub fn paper_carriers() -> Vec<CarrierProfile> {
        vec![Self::tmobile_3g(), Self::att_hspa(), Self::verizon_3g(), Self::verizon_lte()]
    }

    /// All built-in presets.
    pub fn all_presets() -> Vec<CarrierProfile> {
        vec![
            Self::tmobile_3g(),
            Self::att_hspa(),
            Self::verizon_3g(),
            Self::verizon_lte(),
            Self::sprint_3g(),
            Self::sprint_lte(),
        ]
    }

    /// The stable slugs of the built-in presets, in
    /// [`all_presets`](Self::all_presets) order — the tokens scenario
    /// files and the CLI use to name carriers.
    pub const PRESET_SLUGS: [&'static str; 6] =
        ["tmobile-3g", "att-hspa", "verizon-3g", "verizon-lte", "sprint-3g", "sprint-lte"];

    /// Looks up a built-in preset by slug (or CLI alias),
    /// case-insensitively. `None` for unknown names.
    pub fn preset(slug: &str) -> Option<CarrierProfile> {
        match slug.to_ascii_lowercase().as_str() {
            "tmobile-3g" | "tmobile" => Some(Self::tmobile_3g()),
            "att-hspa" | "att" => Some(Self::att_hspa()),
            "verizon-3g" => Some(Self::verizon_3g()),
            "verizon-lte" => Some(Self::verizon_lte()),
            "sprint-3g" => Some(Self::sprint_3g()),
            "sprint-lte" => Some(Self::sprint_lte()),
            _ => None,
        }
    }

    /// The preset slug this profile round-trips through, or `None` when
    /// any field differs from every built-in preset (a mutated profile
    /// has no stable on-disk name).
    pub fn slug(&self) -> Option<&'static str> {
        Self::all_presets()
            .into_iter()
            .zip(Self::PRESET_SLUGS)
            .find(|(preset, _)| preset == self)
            .map(|(_, slug)| slug)
    }

    /// Combined status-quo tail window `t1 + t2`.
    pub fn tail_window(&self) -> Duration {
        self.t1 + self.t2
    }

    /// Bulk power for the given packet direction, W.
    pub fn p_data(&self, dir: tailwise_trace::Direction) -> f64 {
        match dir {
            tailwise_trace::Direction::Up => self.p_send,
            tailwise_trace::Direction::Down => self.p_recv,
        }
    }

    /// Energy of one fast-dormancy demotion, J.
    pub fn e_demote_fd(&self) -> f64 {
        self.fd_energy_fraction * self.e_demote_base
    }

    /// Energy of one timer-driven demotion, J.
    ///
    /// Modeled equal to the fast-dormancy cost so that schemes differ only
    /// in *when* they release, not in per-release cost; the base (radio-off)
    /// cost remains available via [`e_demote_base`](Self::e_demote_base).
    pub fn e_demote_timer(&self) -> f64 {
        self.e_demote_fd()
    }

    /// Energy of one full demote→promote cycle triggered by fast dormancy,
    /// J. This is the `E_switch` of §4.1 as seen by MakeIdle.
    pub fn e_switch(&self) -> f64 {
        self.e_demote_fd() + self.e_promote
    }

    /// The paper's tail-energy function `E(t)` (§4.1, Figure 5): energy the
    /// status-quo RRC machine spends in a packet gap of length `t`,
    /// including the switch cycle if the gap outlasts both timers.
    pub fn gap_energy(&self, t: Duration) -> f64 {
        let t = t.max_zero();
        if t <= self.t1 {
            self.p_dch * t.as_secs_f64()
        } else if t <= self.t1 + self.t2 {
            self.p_dch * self.t1.as_secs_f64() + self.p_fach * (t - self.t1).as_secs_f64()
        } else {
            self.p_dch * self.t1.as_secs_f64()
                + self.p_fach * self.t2.as_secs_f64()
                + self.e_demote_timer()
                + self.e_promote
        }
    }

    /// Energy spent keeping the radio up for `t` seconds of silence *without*
    /// ever demoting (the `E(t_wait)` term of §4.2): the prefix of
    /// [`gap_energy`](Self::gap_energy) with no switch cycle.
    pub fn hold_energy(&self, t: Duration) -> f64 {
        let t = t.max_zero();
        if t <= self.t1 {
            self.p_dch * t.as_secs_f64()
        } else if t <= self.t1 + self.t2 {
            self.p_dch * self.t1.as_secs_f64() + self.p_fach * (t - self.t1).as_secs_f64()
        } else {
            self.p_dch * self.t1.as_secs_f64() + self.p_fach * self.t2.as_secs_f64()
        }
    }

    /// The gap length above which demoting immediately beats holding the
    /// radio up — `t_threshold` of §4.1: the smallest `t` with
    /// `E(t) ≥ E_switch`.
    ///
    /// For the AT&T preset this is exactly 1.2 s, the paper's anchor value.
    pub fn t_threshold(&self) -> Duration {
        let e_switch = self.e_switch();
        let e_t1 = self.p_dch * self.t1.as_secs_f64();
        if e_switch <= e_t1 {
            return Duration::from_secs_f64(e_switch / self.p_dch);
        }
        let e_t2 = e_t1 + self.p_fach * self.t2.as_secs_f64();
        if e_switch <= e_t2 && self.p_fach > 0.0 {
            return self.t1 + Duration::from_secs_f64((e_switch - e_t1) / self.p_fach);
        }
        // Beyond the timers E(t) jumps by the timer switch cycle, which is
        // at least E_switch, so the threshold is the tail window itself.
        self.tail_window()
    }

    /// Validates physical plausibility; used by constructors in tests and by
    /// the simulator's debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("p_send", self.p_send),
            ("p_recv", self.p_recv),
            ("p_dch", self.p_dch),
            ("e_promote", self.e_promote),
            ("e_demote_base", self.e_demote_base),
        ];
        for (name, v) in positive {
            if v.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.p_fach < 0.0 {
            return Err(format!("p_fach must be non-negative, got {}", self.p_fach));
        }
        if !(0.0..=1.0).contains(&self.fd_energy_fraction) {
            return Err(format!(
                "fd_energy_fraction must be in [0,1], got {}",
                self.fd_energy_fraction
            ));
        }
        if self.t1 <= Duration::ZERO {
            return Err("t1 must be positive".into());
        }
        if self.t2 < Duration::ZERO {
            return Err("t2 must be non-negative".into());
        }
        if self.promotion_delay < Duration::ZERO {
            return Err("promotion_delay must be non-negative".into());
        }
        if matches!(self.tech, RadioTech::Lte) && !self.t2.is_zero() {
            return Err("LTE profiles must have t2 = 0 (no FACH state)".into());
        }
        if self.t2 > Duration::ZERO && self.p_fach == 0.0 {
            return Err("profiles with t2 > 0 need p_fach > 0".into());
        }
        Ok(())
    }
}

/// Writes the preset slug when the profile matches a built-in preset
/// (the round-trip form scenario files use), falling back to the
/// display name for mutated profiles.
impl std::fmt::Display for CarrierProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug().unwrap_or(self.name))
    }
}

/// Parses a preset slug (see [`CarrierProfile::PRESET_SLUGS`]) or CLI
/// alias, case-insensitively. Round-trips with
/// [`Display`](struct@CarrierProfile) for every built-in preset.
impl std::str::FromStr for CarrierProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<CarrierProfile, String> {
        Self::preset(s).ok_or_else(|| {
            format!("unknown carrier {s:?}; one of {}", Self::PRESET_SLUGS.join(", "))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for p in CarrierProfile::all_presets() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn table2_values_survive_conversion() {
        let att = CarrierProfile::att_hspa();
        assert!((att.p_send - 1.539).abs() < 1e-12);
        assert!((att.p_recv - 1.212).abs() < 1e-12);
        assert!((att.p_dch - 0.916).abs() < 1e-12);
        assert!((att.p_fach - 0.659).abs() < 1e-12);
        assert_eq!(att.t1, Duration::from_secs_f64(6.2));
        assert_eq!(att.t2, Duration::from_secs_f64(10.4));
        assert_eq!(att.promotion_delay, Duration::from_secs_f64(1.4));
    }

    #[test]
    fn att_threshold_matches_paper_anchor() {
        // §4.1: "on an HTC Vivid phone in the AT&T 3G network ... t_threshold
        // works out to be 1.2 seconds."
        let att = CarrierProfile::att_hspa();
        let th = att.t_threshold().as_secs_f64();
        assert!((th - 1.2).abs() < 0.01, "t_threshold = {th}");
    }

    #[test]
    fn thresholds_are_below_tail_windows() {
        for p in CarrierProfile::paper_carriers() {
            let th = p.t_threshold();
            assert!(th > Duration::ZERO, "{}", p.name);
            assert!(th <= p.tail_window(), "{}", p.name);
        }
    }

    #[test]
    fn lte_profiles_have_no_fach() {
        let lte = CarrierProfile::verizon_lte();
        assert_eq!(lte.t2, Duration::ZERO);
        assert_eq!(lte.tech, RadioTech::Lte);
        assert_eq!(lte.tail_window(), lte.t1);
    }

    #[test]
    fn gap_energy_piecewise_shape() {
        let att = CarrierProfile::att_hspa();
        // Region 1: linear in t at P_t1.
        let e2 = att.gap_energy(Duration::from_secs(2));
        assert!((e2 - 2.0 * 0.916).abs() < 1e-9);
        // Region 2: t1·P_t1 + (t−t1)·P_t2.
        let e10 = att.gap_energy(Duration::from_secs(10));
        assert!((e10 - (6.2 * 0.916 + 3.8 * 0.659)).abs() < 1e-9);
        // Region 3: constant, includes a switch cycle.
        let e_tail = 6.2 * 0.916 + 10.4 * 0.659;
        let e20 = att.gap_energy(Duration::from_secs(20));
        let e100 = att.gap_energy(Duration::from_secs(100));
        assert!((e20 - e100).abs() < 1e-12);
        assert!(e20 > e_tail);
        assert!((e20 - (e_tail + att.e_demote_timer() + att.e_promote)).abs() < 1e-9);
    }

    #[test]
    fn gap_energy_is_monotone_nondecreasing() {
        for p in CarrierProfile::all_presets() {
            let mut prev = -1.0;
            for ms in (0..30_000).step_by(50) {
                let e = p.gap_energy(Duration::from_millis(ms));
                assert!(e + 1e-12 >= prev, "{} at {ms} ms", p.name);
                prev = e;
            }
        }
    }

    #[test]
    fn gap_energy_clamps_negative_gaps() {
        let att = CarrierProfile::att_hspa();
        assert_eq!(att.gap_energy(Duration::from_secs(-5)), 0.0);
        assert_eq!(att.hold_energy(Duration::from_secs(-5)), 0.0);
    }

    #[test]
    fn hold_energy_saturates_at_tail() {
        let att = CarrierProfile::att_hspa();
        let full = att.hold_energy(att.tail_window());
        assert_eq!(att.hold_energy(Duration::from_secs(100)), full);
        assert!(
            att.hold_energy(Duration::from_secs(100)) < att.gap_energy(Duration::from_secs(100))
        );
    }

    #[test]
    fn threshold_is_fixed_point_of_gap_energy() {
        // E(t_threshold) == E_switch on carriers whose threshold falls
        // inside the timer window.
        for p in CarrierProfile::paper_carriers() {
            let th = p.t_threshold();
            if th < p.tail_window() {
                assert!(
                    (p.gap_energy(th) - p.e_switch()).abs() < 1e-6,
                    "{}: E({}) = {} vs E_switch {}",
                    p.name,
                    th,
                    p.gap_energy(th),
                    p.e_switch()
                );
            }
        }
    }

    #[test]
    fn verizon_3g_has_flat_fach() {
        // Table 2 lists t2 = 0 for Verizon 3G: a gap just above t1 already
        // pays the switch cycle.
        let v = CarrierProfile::verizon_3g();
        assert_eq!(v.t2, Duration::ZERO);
        let before = v.gap_energy(v.t1);
        let after = v.gap_energy(v.t1 + Duration::from_millis(1));
        assert!(after > before + v.e_promote * 0.9);
    }

    #[test]
    fn fd_fraction_scales_demote_energy() {
        let mut p = CarrierProfile::att_hspa();
        let full = p.e_demote_base;
        assert!((p.e_demote_fd() - 0.5 * full).abs() < 1e-12);
        p.fd_energy_fraction = 0.1;
        assert!((p.e_demote_fd() - 0.1 * full).abs() < 1e-12);
        // Lower FD cost ⇒ lower threshold ⇒ more demotion opportunities.
        let cheap = p.t_threshold();
        p.fd_energy_fraction = 0.9;
        assert!(p.t_threshold() > cheap);
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut p = CarrierProfile::att_hspa();
        p.p_dch = 0.0;
        assert!(p.validate().is_err());

        let mut p = CarrierProfile::att_hspa();
        p.fd_energy_fraction = 1.5;
        assert!(p.validate().is_err());

        let mut p = CarrierProfile::verizon_lte();
        p.t2 = Duration::from_secs(1);
        assert!(p.validate().is_err());

        let mut p = CarrierProfile::att_hspa();
        p.p_fach = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn preset_slugs_round_trip() {
        for (preset, slug) in
            CarrierProfile::all_presets().into_iter().zip(CarrierProfile::PRESET_SLUGS)
        {
            assert_eq!(preset.slug(), Some(slug), "{}", preset.name);
            assert_eq!(preset.to_string(), slug);
            assert_eq!(slug.parse::<CarrierProfile>().unwrap(), preset);
            assert_eq!(slug.to_uppercase().parse::<CarrierProfile>().unwrap(), preset);
        }
        // CLI aliases resolve too.
        assert_eq!("att".parse::<CarrierProfile>().unwrap(), CarrierProfile::att_hspa());
        assert_eq!("tmobile".parse::<CarrierProfile>().unwrap(), CarrierProfile::tmobile_3g());
        // A mutated profile has no stable slug and displays its name.
        let mut p = CarrierProfile::att_hspa();
        p.fd_energy_fraction = 0.25;
        assert_eq!(p.slug(), None);
        assert_eq!(p.to_string(), "AT&T HSPA+");
        let err = "comcast".parse::<CarrierProfile>().unwrap_err();
        assert!(err.contains("verizon-lte"), "{err}");
    }

    #[test]
    fn data_power_by_direction() {
        let p = CarrierProfile::verizon_lte();
        assert_eq!(p.p_data(tailwise_trace::Direction::Up), p.p_send);
        assert_eq!(p.p_data(tailwise_trace::Direction::Down), p.p_recv);
        assert!(p.p_send > p.p_recv); // holds for all Table 1/2 rows
    }
}
