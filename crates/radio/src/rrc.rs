//! The RRC state machine of Figure 2, as a deterministic event-driven
//! simulation component.
//!
//! One [`RrcMachine`] type covers both shapes in the paper:
//!
//! * **3G** (Fig. 2a): `Cell_DCH → Cell_FACH → {Cell_PCH, IDLE}`, driven by
//!   inactivity timers `t1` and `t2`. The paper folds `Cell_PCH` and `IDLE`
//!   into one "Idle" state because both are ≈0 power; so do we.
//! * **LTE** (Fig. 2b): `RRC_CONNECTED → RRC_IDLE` with a single timer —
//!   expressed here as `t2 = 0`, which removes the FACH state entirely.
//!
//! The machine is *pure*: it tracks state, applies timer expiries when told
//! to advance, and reports exactly where time went ([`Residence`]) and what
//! transitions fired ([`Transition`]). It never computes energy — that is
//! the engine's job (`tailwise-sim`), which keeps every policy measured by
//! one integrator.

use tailwise_trace::time::{Duration, Instant};

use crate::profile::CarrierProfile;

/// Radio state, following the paper's three-level abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrcState {
    /// Active: Cell_DCH (3G) or RRC_CONNECTED (LTE). Power `P_t1`.
    Dch,
    /// High-power idle: Cell_FACH. Power `P_t2`. Absent when `t2 = 0`.
    Fach,
    /// Idle: Cell_PCH / IDLE / RRC_IDLE. ≈0 W.
    Idle,
}

impl RrcState {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            RrcState::Dch => "DCH",
            RrcState::Fach => "FACH",
            RrcState::Idle => "IDLE",
        }
    }
}

/// Why a transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionCause {
    /// An inactivity timer expired (network-driven demotion).
    Timer,
    /// The device requested fast dormancy (policy-driven demotion, §2.2).
    FastDormancy,
    /// Data activity forced a promotion.
    Data,
}

/// A state transition record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// When the transition fired.
    pub at: Instant,
    /// State before.
    pub from: RrcState,
    /// State after.
    pub to: RrcState,
    /// What triggered it.
    pub cause: TransitionCause,
}

/// Time spent in one state during an [`RrcMachine::advance`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Residence {
    /// The state occupied.
    pub state: RrcState,
    /// How long it was occupied.
    pub dur: Duration,
}

/// Outcome of an [`RrcMachine::advance`]: at most three residences
/// (DCH → FACH → Idle) and two timer transitions, in order. Fixed-capacity
/// so advancing never allocates.
#[derive(Debug, Clone, Copy, Default)]
pub struct Advance {
    residences: [Option<Residence>; 3],
    transitions: [Option<Transition>; 2],
}

impl Advance {
    fn push_residence(&mut self, state: RrcState, dur: Duration) {
        if dur.is_zero() {
            return;
        }
        for slot in &mut self.residences {
            if slot.is_none() {
                *slot = Some(Residence { state, dur });
                return;
            }
        }
        unreachable!("advance never produces more than three residences");
    }

    fn push_transition(&mut self, t: Transition) {
        for slot in &mut self.transitions {
            if slot.is_none() {
                *slot = Some(t);
                return;
            }
        }
        unreachable!("advance never produces more than two transitions");
    }

    /// The residences, in time order.
    pub fn residences(&self) -> impl Iterator<Item = Residence> + '_ {
        self.residences.iter().flatten().copied()
    }

    /// The timer transitions that fired, in time order.
    pub fn transitions(&self) -> impl Iterator<Item = Transition> + '_ {
        self.transitions.iter().flatten().copied()
    }

    /// Total time covered by the residences.
    pub fn total(&self) -> Duration {
        self.residences().fold(Duration::ZERO, |acc, r| acc + r.dur)
    }
}

/// Cumulative transition counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionCounters {
    /// Idle → DCH promotions (each one costs `e_promote` and
    /// `promotion_delay`). This is the paper's "number of state switches"
    /// metric: one per demote→promote cycle.
    pub promotions: u64,
    /// FACH → DCH re-promotions (cheap, not counted as switches by the
    /// paper; tracked for completeness).
    pub fach_promotions: u64,
    /// DCH → FACH timer demotions.
    pub t1_demotions: u64,
    /// Demotions to Idle caused by timer expiry.
    pub timer_demotions: u64,
    /// Demotions to Idle caused by fast dormancy.
    pub fd_demotions: u64,
}

impl TransitionCounters {
    /// Total demotions to Idle, however caused.
    pub fn demotions(&self) -> u64 {
        self.timer_demotions + self.fd_demotions
    }
}

/// The deterministic RRC state machine.
#[derive(Debug, Clone)]
pub struct RrcMachine {
    t1: Duration,
    t2: Duration,
    state: RrcState,
    now: Instant,
    /// Time of the most recent data activity; timers measure from here.
    last_data: Instant,
    counters: TransitionCounters,
}

impl RrcMachine {
    /// Creates a machine in the Idle state at time `start`.
    pub fn new(profile: &CarrierProfile, start: Instant) -> RrcMachine {
        debug_assert!(profile.validate().is_ok());
        RrcMachine {
            t1: profile.t1,
            t2: profile.t2,
            state: RrcState::Idle,
            now: start,
            last_data: start,
            counters: TransitionCounters::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// Current machine time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Cumulative transition counters.
    pub fn counters(&self) -> TransitionCounters {
        self.counters
    }

    /// Whether the FACH state exists in this profile.
    fn has_fach(&self) -> bool {
        self.t2 > Duration::ZERO
    }

    /// Advances machine time to `to`, firing any timer demotions that fall
    /// in the interval, and reports where the time went.
    ///
    /// # Panics
    /// Panics (debug) if `to` precedes the current machine time.
    pub fn advance(&mut self, to: Instant) -> Advance {
        debug_assert!(to >= self.now, "advance must move forward: {} -> {}", self.now, to);
        let mut out = Advance::default();
        if to <= self.now {
            return out;
        }

        // DCH segment: until t1 expires (measured from last activity).
        if self.state == RrcState::Dch {
            let t1_expiry = self.last_data + self.t1;
            if to <= t1_expiry {
                out.push_residence(RrcState::Dch, to - self.now);
                self.now = to;
                return out;
            }
            out.push_residence(RrcState::Dch, t1_expiry - self.now);
            self.now = t1_expiry;
            if self.has_fach() {
                self.state = RrcState::Fach;
                self.counters.t1_demotions += 1;
                out.push_transition(Transition {
                    at: t1_expiry,
                    from: RrcState::Dch,
                    to: RrcState::Fach,
                    cause: TransitionCause::Timer,
                });
            } else {
                self.state = RrcState::Idle;
                self.counters.timer_demotions += 1;
                out.push_transition(Transition {
                    at: t1_expiry,
                    from: RrcState::Dch,
                    to: RrcState::Idle,
                    cause: TransitionCause::Timer,
                });
            }
        }

        // FACH segment: until t1 + t2 expires.
        if self.state == RrcState::Fach {
            let t2_expiry = self.last_data + self.t1 + self.t2;
            if to <= t2_expiry {
                out.push_residence(RrcState::Fach, to - self.now);
                self.now = to;
                return out;
            }
            out.push_residence(RrcState::Fach, t2_expiry - self.now);
            self.now = t2_expiry;
            self.state = RrcState::Idle;
            self.counters.timer_demotions += 1;
            out.push_transition(Transition {
                at: t2_expiry,
                from: RrcState::Fach,
                to: RrcState::Idle,
                cause: TransitionCause::Timer,
            });
        }

        // Idle segment: the rest.
        if self.state == RrcState::Idle && to > self.now {
            out.push_residence(RrcState::Idle, to - self.now);
            self.now = to;
        }
        out
    }

    /// Registers data activity at the current machine time, promoting the
    /// radio if necessary. Call [`advance`](Self::advance) to the packet
    /// time first.
    ///
    /// Returns the promotion transition if one fired (`Idle → DCH` costs
    /// `e_promote`/`promotion_delay`; `FACH → DCH` is modeled free, matching
    /// the paper's accounting).
    pub fn notify_data(&mut self, at: Instant) -> Option<Transition> {
        debug_assert_eq!(at, self.now, "advance() to the packet time before notify_data()");
        self.last_data = at;
        match self.state {
            RrcState::Dch => None,
            RrcState::Fach => {
                self.state = RrcState::Dch;
                self.counters.fach_promotions += 1;
                Some(Transition {
                    at,
                    from: RrcState::Fach,
                    to: RrcState::Dch,
                    cause: TransitionCause::Data,
                })
            }
            RrcState::Idle => {
                self.state = RrcState::Dch;
                self.counters.promotions += 1;
                Some(Transition {
                    at,
                    from: RrcState::Idle,
                    to: RrcState::Dch,
                    cause: TransitionCause::Data,
                })
            }
        }
    }

    /// Requests fast dormancy at the current machine time: demotes DCH or
    /// FACH straight to Idle (§2.2; we model the base station as always
    /// accepting, per the paper's simplification — a configurable release
    /// policy lives in [`crate::fastdormancy`]).
    ///
    /// Returns the demotion transition, or `None` if the radio was already
    /// Idle (the request is idempotent).
    pub fn fast_dormancy(&mut self, at: Instant) -> Option<Transition> {
        debug_assert_eq!(at, self.now, "advance() to the decision time before fast_dormancy()");
        match self.state {
            RrcState::Idle => None,
            from @ (RrcState::Dch | RrcState::Fach) => {
                self.state = RrcState::Idle;
                self.counters.fd_demotions += 1;
                Some(Transition {
                    at,
                    from,
                    to: RrcState::Idle,
                    cause: TransitionCause::FastDormancy,
                })
            }
        }
    }

    /// Instant at which the next timer demotion will fire if no more data
    /// arrives, or `None` when already Idle.
    pub fn next_timer_expiry(&self) -> Option<Instant> {
        match self.state {
            RrcState::Dch => Some(self.last_data + self.t1),
            RrcState::Fach => Some(self.last_data + self.t1 + self.t2),
            RrcState::Idle => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn att() -> CarrierProfile {
        CarrierProfile::att_hspa()
    }

    fn secs(s: f64) -> Instant {
        Instant::from_secs_f64(s)
    }

    #[test]
    fn starts_idle() {
        let m = RrcMachine::new(&att(), Instant::ZERO);
        assert_eq!(m.state(), RrcState::Idle);
        assert_eq!(m.next_timer_expiry(), None);
    }

    #[test]
    fn first_data_promotes_from_idle() {
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.advance(secs(5.0));
        let tr = m.notify_data(secs(5.0)).expect("promotion expected");
        assert_eq!(tr.from, RrcState::Idle);
        assert_eq!(tr.to, RrcState::Dch);
        assert_eq!(tr.cause, TransitionCause::Data);
        assert_eq!(m.counters().promotions, 1);
        assert_eq!(m.state(), RrcState::Dch);
    }

    #[test]
    fn timer_cascade_matches_figure_2a() {
        // AT&T: t1 = 6.2, t2 = 10.4. From a packet at t=0, the radio should
        // be DCH until 6.2, FACH until 16.6, then Idle.
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.notify_data(Instant::ZERO);
        let adv = m.advance(secs(20.0));
        let res: Vec<Residence> = adv.residences().collect();
        assert_eq!(res.len(), 3);
        assert_eq!(res[0], Residence { state: RrcState::Dch, dur: Duration::from_secs_f64(6.2) });
        assert_eq!(res[1], Residence { state: RrcState::Fach, dur: Duration::from_secs_f64(10.4) });
        assert_eq!(res[2], Residence { state: RrcState::Idle, dur: Duration::from_secs_f64(3.4) });
        let trs: Vec<Transition> = adv.transitions().collect();
        assert_eq!(trs.len(), 2);
        assert_eq!((trs[0].from, trs[0].to), (RrcState::Dch, RrcState::Fach));
        assert_eq!(trs[0].at, secs(6.2));
        assert_eq!((trs[1].from, trs[1].to), (RrcState::Fach, RrcState::Idle));
        assert_eq!(trs[1].at, secs(16.6));
        assert_eq!(m.counters().t1_demotions, 1);
        assert_eq!(m.counters().timer_demotions, 1);
        assert_eq!(adv.total(), Duration::from_secs(20));
    }

    #[test]
    fn lte_skips_fach_entirely() {
        // Verizon LTE: t1 = 10.2, t2 = 0 → DCH demotes straight to Idle.
        let lte = CarrierProfile::verizon_lte();
        let mut m = RrcMachine::new(&lte, Instant::ZERO);
        m.notify_data(Instant::ZERO);
        let adv = m.advance(secs(15.0));
        let res: Vec<Residence> = adv.residences().collect();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].state, RrcState::Dch);
        assert_eq!(res[0].dur, Duration::from_secs_f64(10.2));
        assert_eq!(res[1].state, RrcState::Idle);
        let trs: Vec<Transition> = adv.transitions().collect();
        assert_eq!(trs.len(), 1);
        assert_eq!((trs[0].from, trs[0].to), (RrcState::Dch, RrcState::Idle));
        assert_eq!(m.counters().timer_demotions, 1);
        assert_eq!(m.counters().t1_demotions, 0);
    }

    #[test]
    fn data_resets_the_inactivity_timer() {
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.notify_data(Instant::ZERO);
        // 5 s later (before t1 = 6.2) more data arrives.
        let adv = m.advance(secs(5.0));
        assert_eq!(adv.transitions().count(), 0);
        assert_eq!(m.notify_data(secs(5.0)), None); // still DCH, no transition
                                                    // Timer now measures from t=5: DCH until 11.2.
        assert_eq!(m.next_timer_expiry(), Some(secs(11.2)));
        let adv = m.advance(secs(11.0));
        assert_eq!(m.state(), RrcState::Dch);
        assert_eq!(adv.transitions().count(), 0);
    }

    #[test]
    fn data_in_fach_repromotes_cheaply() {
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.notify_data(Instant::ZERO);
        m.advance(secs(8.0)); // inside FACH window (6.2..16.6)
        assert_eq!(m.state(), RrcState::Fach);
        let tr = m.notify_data(secs(8.0)).expect("FACH->DCH expected");
        assert_eq!((tr.from, tr.to), (RrcState::Fach, RrcState::Dch));
        assert_eq!(m.counters().fach_promotions, 1);
        // Only the initial Idle→DCH promotion counts as a switch cycle; the
        // FACH→DCH re-promotion does not.
        assert_eq!(m.counters().promotions, 1);
    }

    #[test]
    fn fast_dormancy_demotes_immediately() {
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.notify_data(Instant::ZERO);
        m.advance(secs(1.5));
        let tr = m.fast_dormancy(secs(1.5)).expect("demotion expected");
        assert_eq!((tr.from, tr.to), (RrcState::Dch, RrcState::Idle));
        assert_eq!(tr.cause, TransitionCause::FastDormancy);
        assert_eq!(m.counters().fd_demotions, 1);
        // Idempotent when already Idle.
        assert_eq!(m.fast_dormancy(secs(1.5)), None);
        assert_eq!(m.counters().fd_demotions, 1);
    }

    #[test]
    fn fast_dormancy_from_fach() {
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.notify_data(Instant::ZERO);
        m.advance(secs(7.0));
        assert_eq!(m.state(), RrcState::Fach);
        let tr = m.fast_dormancy(secs(7.0)).unwrap();
        assert_eq!(tr.from, RrcState::Fach);
        assert_eq!(m.state(), RrcState::Idle);
    }

    #[test]
    fn advance_to_exact_expiry_boundary() {
        // Advancing exactly to the t1 expiry leaves the machine in DCH
        // (timers are "no activity for t1 seconds", i.e. strict).
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.notify_data(Instant::ZERO);
        let adv = m.advance(secs(6.2));
        assert_eq!(m.state(), RrcState::Dch);
        assert_eq!(adv.transitions().count(), 0);
        // The next microsecond tips it over.
        let adv = m.advance(secs(6.2) + Duration::from_micros(1));
        assert_eq!(m.state(), RrcState::Fach);
        assert_eq!(adv.transitions().count(), 1);
    }

    #[test]
    fn residences_always_cover_the_advance_interval() {
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.notify_data(Instant::ZERO);
        let mut t = Instant::ZERO;
        let steps = [0.5, 3.0, 6.3, 10.0, 20.0, 20.5, 40.0];
        for (i, s) in steps.iter().enumerate() {
            let to = secs(*s);
            let adv = m.advance(to);
            assert_eq!(adv.total(), to - t, "step {i}");
            t = to;
        }
    }

    #[test]
    fn full_cycle_counts_one_switch() {
        let mut m = RrcMachine::new(&att(), Instant::ZERO);
        m.notify_data(Instant::ZERO);
        m.advance(secs(1.0));
        m.fast_dormancy(secs(1.0));
        m.advance(secs(30.0));
        m.notify_data(secs(30.0));
        let c = m.counters();
        assert_eq!(c.promotions, 2); // initial + re-promotion
        assert_eq!(c.fd_demotions, 1);
        assert_eq!(c.demotions(), 1);
    }

    #[test]
    fn zero_length_advance_is_a_noop() {
        let mut m = RrcMachine::new(&att(), secs(1.0));
        let adv = m.advance(secs(1.0));
        assert_eq!(adv.residences().count(), 0);
        assert_eq!(adv.total(), Duration::ZERO);
    }

    #[test]
    fn verizon_3g_t2_zero_behaves_like_lte_shape() {
        let v = CarrierProfile::verizon_3g();
        let mut m = RrcMachine::new(&v, Instant::ZERO);
        m.notify_data(Instant::ZERO);
        m.advance(secs(12.0)); // t1 = 9.8
        assert_eq!(m.state(), RrcState::Idle);
        assert_eq!(m.counters().t1_demotions, 0);
        assert_eq!(m.counters().timer_demotions, 1);
    }
}
