//! Fast dormancy release policies.
//!
//! 3GPP Release 8 turned fast dormancy into a *request*: the device asks,
//! the base station decides (§2.2). The paper's simulations assume the base
//! station always accepts, and flag carrier policy as an open question
//! (§8, future work). We make the decision point explicit so that question
//! can be explored: the simulation engine consults a [`ReleasePolicy`]
//! before honoring each fast-dormancy request, and denied requests leave
//! the inactivity timers in charge.
//!
//! All policies here are deterministic (randomized behaviour uses a
//! counter-hash, not an RNG), preserving bit-stable simulation output.

use tailwise_trace::time::{Duration, Instant};

/// Decides whether a base station accepts a fast-dormancy request.
pub trait ReleasePolicy {
    /// Returns `true` to release the channel (demote to Idle) for a request
    /// arriving at `at`.
    fn accept(&mut self, at: Instant) -> bool;

    /// Diagnostic name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's modeling assumption: every request is honored (§2.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysAccept;

impl ReleasePolicy for AlwaysAccept {
    fn accept(&mut self, _at: Instant) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "always-accept"
    }
}

/// A network with fast dormancy disabled: every request is denied and the
/// device falls back to the inactivity timers (the status-quo world).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverAccept;

impl ReleasePolicy for NeverAccept {
    fn accept(&mut self, _at: Instant) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "never-accept"
    }
}

/// Rate-limited acceptance: requests within `min_interval` of the last
/// *accepted* request are denied. Models a base station protecting itself
/// from signaling storms — the §8 concern about "multiple phones triggering
/// the feature".
#[derive(Debug, Clone, Copy)]
pub struct RateLimited {
    min_interval: Duration,
    last_accept: Option<Instant>,
}

impl RateLimited {
    /// Creates a policy that accepts at most one release per `min_interval`.
    pub fn new(min_interval: Duration) -> RateLimited {
        RateLimited { min_interval, last_accept: None }
    }
}

impl ReleasePolicy for RateLimited {
    fn accept(&mut self, at: Instant) -> bool {
        match self.last_accept {
            Some(prev) if at - prev < self.min_interval => false,
            _ => {
                self.last_accept = Some(at);
                true
            }
        }
    }
    fn name(&self) -> &'static str {
        "rate-limited"
    }
}

/// Accepts a deterministic `p` fraction of requests, decided by a splitmix
/// hash of the request counter — reproducible without an RNG dependency.
/// Used by the fault-injection tests to exercise denial handling.
#[derive(Debug, Clone, Copy)]
pub struct FractionalAccept {
    accept_per_1024: u16,
    counter: u64,
    seed: u64,
}

impl FractionalAccept {
    /// Accepts approximately `fraction` of requests (clamped to `[0, 1]`).
    pub fn new(fraction: f64, seed: u64) -> FractionalAccept {
        let f = fraction.clamp(0.0, 1.0);
        FractionalAccept { accept_per_1024: (f * 1024.0).round() as u16, counter: 0, seed }
    }
}

impl ReleasePolicy for FractionalAccept {
    fn accept(&mut self, _at: Instant) -> bool {
        let h = tailwise_trace::mix::splitmix64(self.seed ^ self.counter);
        self.counter += 1;
        (h % 1024) < self.accept_per_1024 as u64
    }
    fn name(&self) -> &'static str {
        "fractional-accept"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> Instant {
        Instant::from_secs_f64(s)
    }

    #[test]
    fn always_and_never() {
        let mut a = AlwaysAccept;
        let mut n = NeverAccept;
        for i in 0..10 {
            assert!(a.accept(t(i as f64)));
            assert!(!n.accept(t(i as f64)));
        }
        assert_eq!(a.name(), "always-accept");
        assert_eq!(n.name(), "never-accept");
    }

    #[test]
    fn rate_limit_enforces_spacing() {
        let mut p = RateLimited::new(Duration::from_secs(10));
        assert!(p.accept(t(0.0)));
        assert!(!p.accept(t(5.0)));
        assert!(!p.accept(t(9.9)));
        assert!(p.accept(t(10.0)));
        assert!(!p.accept(t(15.0)));
        assert!(p.accept(t(20.0)));
    }

    #[test]
    fn rate_limit_denials_do_not_reset_the_clock() {
        let mut p = RateLimited::new(Duration::from_secs(10));
        assert!(p.accept(t(0.0)));
        for s in [1.0, 2.0, 3.0] {
            assert!(!p.accept(t(s)));
        }
        // Still measured from the accept at t=0, not the last denial.
        assert!(p.accept(t(10.5)));
    }

    #[test]
    fn fractional_hits_requested_rate() {
        for frac in [0.0, 0.25, 0.5, 1.0] {
            let mut p = FractionalAccept::new(frac, 42);
            let accepted = (0..10_000).filter(|_| p.accept(t(0.0))).count();
            let rate = accepted as f64 / 10_000.0;
            assert!((rate - frac).abs() < 0.03, "frac {frac}: got {rate}");
        }
    }

    #[test]
    fn fractional_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = FractionalAccept::new(0.5, seed);
            (0..64).map(|_| p.accept(t(0.0))).collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fractional_clamps_out_of_range() {
        let mut hi = FractionalAccept::new(7.0, 1);
        assert!((0..100).all(|_| hi.accept(t(0.0))));
        let mut lo = FractionalAccept::new(-1.0, 1);
        assert!((0..100).all(|_| !lo.accept(t(0.0))));
    }
}
