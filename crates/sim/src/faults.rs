//! Fault injection for robustness testing (the smoltcp idiom: every
//! simulator ships its own adverse conditions).
//!
//! The paper's results rest on clean captures and an always-accepting base
//! station. These transforms let tests and ablations ask what happens when
//! reality intrudes: jittered timestamps (scheduler noise, middlebox
//! buffering), dropped packets (loss before the capture point), and time
//! dilation (slower networks). All transforms are deterministic in the
//! seed; the engine side of fault injection (denied fast dormancy) lives
//! in `tailwise-radio`'s release policies.

use tailwise_trace::time::Duration;
use tailwise_trace::Trace;

/// Deterministic splitmix64 stream, so this crate stays rand-free.
#[derive(Debug, Clone)]
struct Stream {
    state: u64,
}

impl Stream {
    fn new(seed: u64) -> Stream {
        Stream { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Adds independent uniform jitter in `[-max_jitter, +max_jitter]` to every
/// timestamp, then restores time order.
pub fn jitter_timestamps(trace: &Trace, seed: u64, max_jitter: Duration) -> Trace {
    let mut s = Stream::new(seed ^ 0x4A17);
    let pkts: Vec<_> = trace
        .iter()
        .map(|p| {
            let u = s.next_f64() * 2.0 - 1.0;
            p.shifted(max_jitter * u)
        })
        .collect();
    Trace::from_unsorted(pkts)
}

/// Drops each packet independently with probability `prob`.
pub fn drop_packets(trace: &Trace, seed: u64, prob: f64) -> Trace {
    let prob = prob.clamp(0.0, 1.0);
    let mut s = Stream::new(seed ^ 0xD409);
    let pkts: Vec<_> = trace.iter().copied().filter(|_| s.next_f64() >= prob).collect();
    Trace::from_unsorted(pkts)
}

/// Scales every timestamp by `factor` (> 0): `factor > 1` stretches the
/// trace (slower network), `< 1` compresses it.
pub fn dilate_time(trace: &Trace, factor: f64) -> Trace {
    assert!(factor > 0.0, "time dilation factor must be positive");
    let pkts: Vec<_> = trace
        .iter()
        .map(|p| {
            let mut q = *p;
            q.ts = tailwise_trace::Instant::from_micros(
                (p.ts.as_micros() as f64 * factor).round() as i64
            );
            q
        })
        .collect();
    Trace::from_unsorted(pkts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_trace::packet::{Direction, Packet};
    use tailwise_trace::Instant;

    fn trace(n: usize, step_ms: i64) -> Trace {
        Trace::from_sorted(
            (0..n)
                .map(|i| Packet::new(Instant::from_millis(i as i64 * step_ms), Direction::Up, 100))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn jitter_preserves_count_and_order() {
        let t = trace(500, 1000);
        let j = jitter_timestamps(&t, 1, Duration::from_millis(300));
        assert_eq!(j.len(), t.len());
        for w in j.packets().windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
        assert_ne!(j, t);
    }

    #[test]
    fn jitter_is_bounded() {
        let t = trace(200, 10_000);
        let j = jitter_timestamps(&t, 2, Duration::from_millis(500));
        // With 10 s spacing and 0.5 s jitter, packet i stays within
        // [i*10 - 0.5, i*10 + 0.5] and ordering is never ambiguous.
        for (i, p) in j.iter().enumerate() {
            let center = i as i64 * 10_000;
            assert!((p.ts.as_millis() - center).abs() <= 500);
        }
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let t = trace(10_000, 10);
        let d = drop_packets(&t, 3, 0.3);
        let rate = 1.0 - d.len() as f64 / t.len() as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
        assert_eq!(drop_packets(&t, 3, 0.0).len(), t.len());
        assert_eq!(drop_packets(&t, 3, 1.0).len(), 0);
    }

    #[test]
    fn dilation_scales_gaps() {
        let t = trace(10, 1000);
        let d = dilate_time(&t, 2.0);
        assert_eq!(d.gaps()[0], Duration::from_millis(2000));
        let c = dilate_time(&t, 0.5);
        assert_eq!(c.gaps()[0], Duration::from_millis(500));
    }

    #[test]
    fn faults_are_deterministic() {
        let t = trace(300, 137);
        assert_eq!(
            jitter_timestamps(&t, 9, Duration::from_millis(50)),
            jitter_timestamps(&t, 9, Duration::from_millis(50))
        );
        assert_eq!(drop_packets(&t, 9, 0.2), drop_packets(&t, 9, 0.2));
        assert_ne!(drop_packets(&t, 9, 0.2), drop_packets(&t, 10, 0.2));
    }
}
