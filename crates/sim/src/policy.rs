//! Policy interfaces: the two decision points every scheme implements.
//!
//! The paper's control module (Fig. 4) makes exactly two kinds of decision:
//!
//! * **after a packet** — how long to wait before demoting the radio
//!   ([`IdlePolicy`]; MakeIdle, the 4.5-second tail, 95% IAT, the Oracle and
//!   the status quo are all instances);
//! * **when a session arrives while Idle** — how long to hold it so more
//!   sessions batch into one promotion ([`ActivePolicy`]; MakeActive fixed
//!   and learning variants).
//!
//! Policies are pure state machines over observed history: the engine owns
//! all side effects (radio state, energy, counters), which is what makes
//! every scheme directly comparable.

use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::stats::SlidingWindow;
use tailwise_trace::time::{Duration, Instant};

/// Everything an [`IdlePolicy`] may observe when deciding.
pub struct IdleContext<'a> {
    /// The carrier's parameters (timers, powers, switch energies).
    pub profile: &'a CarrierProfile,
    /// Sliding window of recent inter-arrival times (the paper's
    /// "latest n packets", §4.2). Maintained by the engine.
    pub window: &'a SlidingWindow,
    /// Timestamp of the packet just processed.
    pub now: Instant,
}

/// Outcome of an idle decision for the upcoming gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleDecision {
    /// Leave the inactivity timers in charge (the status-quo behaviour).
    Timers,
    /// Request fast dormancy after this much further silence.
    DemoteAfter(Duration),
}

/// A demotion policy: decides, after each packet, when to give up the
/// channel.
pub trait IdlePolicy {
    /// Scheme name as used in the paper's figure legends.
    fn name(&self) -> String;

    /// Decides for the gap that follows a packet at `ctx.now`.
    ///
    /// `actual_gap` is the true time until the next packet (or
    /// `Duration::FOREVER` at end of trace). It exists so *offline*
    /// comparators (the Oracle) can be expressed in the same interface;
    /// online policies must not read it — the engine's confusion-matrix
    /// accounting (§6.3) would be meaningless otherwise.
    fn decide(&mut self, ctx: &IdleContext<'_>, actual_gap: Duration) -> IdleDecision;

    /// Whether [`decide`](Self::decide) reads the inter-arrival window.
    ///
    /// The engine maintains the window (an O(capacity) sorted insert per
    /// gap) only when this returns true; the baselines that ignore it —
    /// status quo, fixed waits, the Oracle — override this to skip that
    /// work. Purely a performance hint: a policy that returns false
    /// simply sees an empty window.
    fn uses_window(&self) -> bool {
        true
    }
}

/// The status quo: never request fast dormancy.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatusQuo;

impl IdlePolicy for StatusQuo {
    fn name(&self) -> String {
        "status-quo".into()
    }
    fn decide(&mut self, _ctx: &IdleContext<'_>, _actual_gap: Duration) -> IdleDecision {
        IdleDecision::Timers
    }
    fn uses_window(&self) -> bool {
        false
    }
}

/// Demote after a fixed silence — the shape of both the "4.5-second tail"
/// baseline (Falaki et al., §6.2) and the "95% IAT" baseline (same rule
/// with a per-trace percentile as the constant).
#[derive(Debug, Clone)]
pub struct FixedWait {
    wait: Duration,
    label: String,
}

impl FixedWait {
    /// A fixed-wait policy with a custom legend label.
    pub fn new(wait: Duration, label: impl Into<String>) -> FixedWait {
        FixedWait { wait, label: label.into() }
    }

    /// The "4.5-second tail" baseline.
    pub fn four_and_a_half_seconds() -> FixedWait {
        FixedWait::new(Duration::from_millis(4500), "4.5-second")
    }

    /// The configured wait.
    pub fn wait(&self) -> Duration {
        self.wait
    }
}

impl IdlePolicy for FixedWait {
    fn name(&self) -> String {
        self.label.clone()
    }
    fn decide(&mut self, _ctx: &IdleContext<'_>, _actual_gap: Duration) -> IdleDecision {
        IdleDecision::DemoteAfter(self.wait)
    }
    fn uses_window(&self) -> bool {
        false
    }
}

/// A session-batching policy: decides how long to hold sessions that arrive
/// while the radio is Idle (§5).
pub trait ActivePolicy {
    /// Scheme name as used in the paper's figure legends.
    fn name(&self) -> String;

    /// A session arrived at `at` with the radio Idle and no round open.
    /// Returns the hold window; buffered sessions all start at
    /// `at + hold`.
    fn open_round(&mut self, at: Instant) -> Duration;

    /// The round that opened most recently has released. `arrival_offsets`
    /// are the buffered sessions' arrival times in seconds relative to the
    /// round opener (first element 0.0, non-decreasing). Learning policies
    /// update here.
    fn close_round(&mut self, arrival_offsets: &[f64]);
}

/// The degenerate batcher: never holds anything (used to express plain
/// MakeIdle in the combined harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBatching;

impl ActivePolicy for NoBatching {
    fn name(&self) -> String {
        "no-batching".into()
    }
    fn open_round(&mut self, _at: Instant) -> Duration {
        Duration::ZERO
    }
    fn close_round(&mut self, _arrival_offsets: &[f64]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_trace::stats::SlidingWindow;

    fn ctx<'a>(profile: &'a CarrierProfile, window: &'a SlidingWindow) -> IdleContext<'a> {
        IdleContext { profile, window, now: Instant::ZERO }
    }

    #[test]
    fn status_quo_always_defers_to_timers() {
        let p = CarrierProfile::att_hspa();
        let w = SlidingWindow::new(4);
        let mut sq = StatusQuo;
        for gap_s in [0.0, 1.0, 100.0] {
            assert_eq!(
                sq.decide(&ctx(&p, &w), Duration::from_secs_f64(gap_s)),
                IdleDecision::Timers
            );
        }
        assert_eq!(sq.name(), "status-quo");
    }

    #[test]
    fn fixed_wait_is_constant_and_labeled() {
        let p = CarrierProfile::att_hspa();
        let w = SlidingWindow::new(4);
        let mut f = FixedWait::four_and_a_half_seconds();
        assert_eq!(f.name(), "4.5-second");
        assert_eq!(
            f.decide(&ctx(&p, &w), Duration::from_secs(1)),
            IdleDecision::DemoteAfter(Duration::from_millis(4500))
        );
        let mut iat = FixedWait::new(Duration::from_millis(850), "95% IAT");
        assert_eq!(iat.name(), "95% IAT");
        assert_eq!(
            iat.decide(&ctx(&p, &w), Duration::FOREVER),
            IdleDecision::DemoteAfter(Duration::from_millis(850))
        );
    }

    #[test]
    fn no_batching_opens_zero_rounds() {
        let mut nb = NoBatching;
        assert_eq!(nb.open_round(Instant::from_secs(5)), Duration::ZERO);
        nb.close_round(&[0.0]); // must not panic
    }
}
