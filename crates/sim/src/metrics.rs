//! Decision-quality metrics: the false/missed switch accounting of §6.3.
//!
//! The paper scores every demotion opportunity against the Oracle's
//! offline-optimal choice (switch iff the gap exceeds `t_threshold`):
//!
//! * **False switch (false positive)** — the algorithm demoted, the Oracle
//!   would not have: `FP / (FP + TN)`;
//! * **Missed switch (false negative)** — the algorithm kept the radio up,
//!   the Oracle would have demoted: `FN / (FN + TP)`.

/// Confusion counts over demotion decisions, scored against the Oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Algorithm demoted, Oracle demoted.
    pub tp: u64,
    /// Algorithm demoted, Oracle did not (false switch).
    pub fp: u64,
    /// Neither demoted.
    pub tn: u64,
    /// Algorithm did not demote, Oracle did (missed switch).
    pub fn_: u64,
}

impl Confusion {
    /// Records one decision.
    pub fn record(&mut self, algorithm_switched: bool, oracle_switched: bool) {
        match (algorithm_switched, oracle_switched) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total decisions recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// False-switch rate `FP / (FP + TN)` (§6.3), as a fraction.
    /// Zero when there were no negatives.
    pub fn false_switch_rate(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }

    /// Missed-switch rate `FN / (FN + TP)` (§6.3), as a fraction.
    /// Zero when there were no positives.
    pub fn missed_switch_rate(&self) -> f64 {
        let denom = self.fn_ + self.tp;
        if denom == 0 {
            0.0
        } else {
            self.fn_ as f64 / denom as f64
        }
    }
}

/// Mean of an f64 slice (`None` if empty).
pub fn mean_f64(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Median (lower middle) of an f64 slice (`None` if empty).
pub fn median_f64(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    let mid = (v.len() - 1) / 2;
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
    Some(v[mid])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_routes_all_four_cells() {
        let mut c = Confusion::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, false);
        c.record(false, true);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
        assert_eq!(c.false_switch_rate(), 0.5);
        assert_eq!(c.missed_switch_rate(), 0.5);
    }

    #[test]
    fn rates_match_paper_definitions() {
        // FalseSwitch = N_FS / (N_FS + N_TN); MissedSwitch = N_MS / (N_MS + N_TP).
        let c = Confusion { tp: 30, fp: 5, tn: 95, fn_: 10 };
        assert!((c.false_switch_rate() - 5.0 / 100.0).abs() < 1e-12);
        assert!((c.missed_switch_rate() - 10.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_denominators_yield_zero() {
        let c = Confusion::default();
        assert_eq!(c.false_switch_rate(), 0.0);
        assert_eq!(c.missed_switch_rate(), 0.0);
        let all_pos = Confusion { tp: 5, fn_: 1, ..Default::default() };
        assert_eq!(all_pos.false_switch_rate(), 0.0);
    }

    #[test]
    fn mean_median_helpers() {
        assert_eq!(mean_f64(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median_f64(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median_f64(&[4.0, 1.0, 2.0, 3.0]), Some(2.0)); // lower middle
        assert_eq!(mean_f64(&[]), None);
        assert_eq!(median_f64(&[]), None);
    }
}
