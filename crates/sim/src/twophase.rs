//! The two-phase simulation API: request extraction and scripted replay.
//!
//! A device's fast-dormancy *requests* are a function of its trace
//! alone. The engine's request rule — after the packet that opens a gap,
//! ask the [`IdlePolicy`] for a wait `w`, and request dormancy at
//! `prev + w` iff `gap > w` and `w` is inside the tail window — reads
//! only the packet timestamps and the policy's view of them (the
//! inter-arrival window, which the engine feeds from gaps regardless of
//! whether earlier requests were granted: a denial changes the *radio's*
//! state, never the observed gaps). That independence is what made the
//! in-memory cell simulation ([`crate::cell`]) exact; this module
//! promotes it from an implementation detail to the engine's public
//! surface:
//!
//! * **Phase 1** — [`record_requests`]: a cheap streaming pass that
//!   extracts the time-stamped demotion-request stream
//!   ([`RequestTrace`]) without building an [`RrcMachine`], an energy
//!   meter, or a [`SimReport`]. A coordinator
//!   (one shared base station, a cell topology, an RNC model) can run
//!   phase 1 over an entire population, adjudicate the merged request
//!   streams however it likes, and only then pay for full simulation.
//! * **Phase 2** — [`replay_requests`]: an exact replay of the full
//!   engine against a scripted grant/deny sequence, one verdict per
//!   phase-1 request, in request order.
//!
//! ## Exactness contract
//!
//! For any trace, profile, config and (deterministic) release policy
//! `R`, feeding phase 1's request times through `R` and replaying the
//! verdicts yields a report **bit-identical** to the lock-step
//! `run_with_release(.., R)` — same energy bits, same counters, same
//! confusion matrix. Pinned by the property test below over random
//! traces × policies × release behaviors. The contract needs the idle
//! policy's decisions to be a pure function of `(profile, window)` —
//! true of every [`IdlePolicy`] in the tree (MakeIdle's mutable state is
//! scratch buffers and a profile-keyed cache, not learned history) — and
//! does **not** extend to MakeActive batching, whose trace rewriting
//! depends on the radio being Idle and therefore on earlier grants.
//!
//! [`RrcMachine`]: tailwise_radio::rrc::RrcMachine

use tailwise_radio::fastdormancy::ReleasePolicy;
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::stats::SlidingWindow;
use tailwise_trace::time::{Duration, Instant};
use tailwise_trace::Trace;

use crate::engine::{run_with_release, SimConfig};
use crate::policy::{IdleContext, IdleDecision, IdlePolicy};
use crate::report::SimReport;

/// Phase-1 output: when a device would request fast dormancy.
///
/// Times are in trace order (strictly non-decreasing) — exactly the
/// order the engine presents requests to a
/// [`ReleasePolicy`], so a coordinator can merge streams from many
/// devices and hand each device back one verdict per entry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestTrace {
    /// Timestamp of each fast-dormancy request.
    pub times: Vec<Instant>,
}

impl RequestTrace {
    /// Number of requests the device would send.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the device never requests dormancy (e.g. status quo).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Rebuilds a request trace from a stored timestamp vector,
    /// validating the non-decreasing invariant every consumer (the
    /// k-way coordinator merge, scripted replay) relies on.
    ///
    /// This is the stable serialization contract: a `RequestTrace` is
    /// *exactly* its timestamp vector — no hidden state — so
    /// `from_times(t.into_times())` is the identity and any container
    /// that round-trips `Vec<Instant>` (e.g. the fleet cache's `.twc`
    /// spill format) round-trips the trace bit-for-bit.
    pub fn from_times(times: Vec<Instant>) -> Result<RequestTrace, String> {
        if let Some(w) = times.windows(2).find(|w| w[0] > w[1]) {
            return Err(format!(
                "request times must be non-decreasing, got {} after {}",
                w[1].as_micros(),
                w[0].as_micros()
            ));
        }
        Ok(RequestTrace { times })
    }

    /// The timestamp vector, surrendering the trace. Inverse of
    /// [`from_times`](Self::from_times) (see there for the stability
    /// contract).
    pub fn into_times(self) -> Vec<Instant> {
        self.times
    }
}

/// Phase 1: streams `trace` through `idle_policy`'s decision rule and
/// records every fast-dormancy request the engine would send.
///
/// This is the cheap pass: no RRC machine, no energy metering, no
/// oracle scoring — per gap it does exactly the work the policy's
/// decision needs (one `decide` call plus, for window-using policies,
/// one sliding-window insert), so populations can be scanned for their
/// signaling footprint at a fraction of full-simulation cost.
pub fn record_requests(
    profile: &CarrierProfile,
    config: &SimConfig,
    trace: &Trace,
    idle_policy: &mut dyn IdlePolicy,
) -> RequestTrace {
    profile.validate().expect("invalid carrier profile");
    config.validate(profile).expect("invalid simulation config");

    let pkts = trace.packets();
    let mut times = Vec::new();
    if pkts.is_empty() {
        return RequestTrace { times };
    }
    let mut window = SlidingWindow::new(config.window_capacity);
    let maintain_window = idle_policy.uses_window();
    let tail_window = profile.tail_window();

    // Mirrors the engine's main loop gap for gap: the same synthetic
    // trailing gap, the same decide-before-the-window-learns ordering,
    // the same request condition. Any drift here breaks the exactness
    // property test below.
    for i in 1..=pkts.len() {
        let prev = pkts[i - 1];
        let gap = if i < pkts.len() { pkts[i].ts - prev.ts } else { Duration::FOREVER };
        let ctx = IdleContext { profile, window: &window, now: prev.ts };
        if let IdleDecision::DemoteAfter(w) = idle_policy.decide(&ctx, gap) {
            // A request is only sent while the timers still have the
            // radio up (w < tail window) and only when the silence
            // actually outlasts the chosen wait.
            if gap > w && w < tail_window {
                times.push(prev.ts + w);
            }
        }
        if i < pkts.len() && maintain_window {
            window.push(gap);
        }
    }
    RequestTrace { times }
}

/// The scalar outcome of one phase-2 replay, in exactly the shape a
/// fleet fold consumes: energy as `f64::to_bits` words, switch and
/// confusion counts, and the session-delay samples as bits.
///
/// This is what makes a replay *memoizable*. A replay's outcome is a
/// pure function of `(profile, config, trace, policy, verdicts)`, so a
/// coordinator that has seen the same verdict stream for the same user
/// before can fold this struct instead of re-running the engine — and
/// because everything floating-point is carried as raw bits, the fold
/// is bit-identical to the live run by construction, not by rounding
/// luck. `Eq` is derived for the same reason: two outcomes are equal
/// iff every bit agrees.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayOutcome {
    /// Packets in the replayed trace.
    pub packets: u64,
    /// Scheme-run total energy, as `f64::to_bits`.
    pub energy_bits: u64,
    /// Demote→promote switch cycles.
    pub switches: u64,
    /// Confusion-matrix false positives.
    pub false_switches: u64,
    /// Confusion-matrix false negatives.
    pub missed_switches: u64,
    /// Total scored decisions.
    pub decisions: u64,
    /// Session-delay samples, each as `f64::to_bits`, in record order.
    pub delay_bits: Vec<u64>,
}

impl ReplayOutcome {
    /// Captures the foldable outcome of a finished run.
    pub fn of(report: &SimReport) -> ReplayOutcome {
        ReplayOutcome {
            packets: report.packets as u64,
            energy_bits: report.total_energy().to_bits(),
            switches: report.switch_cycles(),
            false_switches: report.confusion.fp,
            missed_switches: report.confusion.fn_,
            decisions: report.confusion.total(),
            delay_bits: report.session_delays.iter().map(|d| d.to_bits()).collect(),
        }
    }

    /// Total energy in joules, recovered exactly from the stored bits.
    pub fn energy_j(&self) -> f64 {
        f64::from_bits(self.energy_bits)
    }

    /// The session-delay samples, recovered exactly from the stored
    /// bits, in record order.
    pub fn session_delays(&self) -> impl Iterator<Item = f64> + '_ {
        self.delay_bits.iter().map(|&b| f64::from_bits(b))
    }

    /// Energy saved relative to a bare baseline total, in percent —
    /// the same arithmetic (same bits) as
    /// [`SimReport::savings_vs_energy`].
    pub fn savings_vs_energy(&self, base: f64) -> f64 {
        if base <= 0.0 {
            return 0.0;
        }
        (base - self.energy_j()) / base * 100.0
    }
}

/// Phase-2 release shim: replays a scripted verdict sequence, one
/// verdict per request, in request order.
struct ScriptedRelease<'a> {
    verdicts: &'a [bool],
    cursor: usize,
}

impl ReleasePolicy for ScriptedRelease<'_> {
    fn accept(&mut self, _at: Instant) -> bool {
        let v = *self
            .verdicts
            .get(self.cursor)
            .expect("phase-2 replay sent more requests than phase 1 recorded");
        self.cursor += 1;
        v
    }
    fn name(&self) -> &'static str {
        "scripted"
    }
}

/// Phase 2: runs the full engine with the base station scripted to
/// answer request `i` with `verdicts[i]`.
///
/// `verdicts` must hold exactly one entry per [`record_requests`]
/// request for the same `(profile, config, trace, policy)` — that is
/// the two-phase contract, and both directions of a mismatch panic
/// (a drifted policy or trace is a bug, never a silently wrong report).
pub fn replay_requests(
    profile: &CarrierProfile,
    config: &SimConfig,
    trace: &Trace,
    idle_policy: &mut dyn IdlePolicy,
    verdicts: &[bool],
) -> SimReport {
    let mut scripted = ScriptedRelease { verdicts, cursor: 0 };
    let report = run_with_release(profile, config, trace, idle_policy, &mut scripted);
    assert_eq!(
        scripted.cursor,
        verdicts.len(),
        "phase-2 replay sent fewer requests than phase 1 recorded"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::oracle::OracleIdle;
    use crate::policy::{FixedWait, StatusQuo};
    use proptest::prelude::*;
    use tailwise_radio::admission::{AdmissionPolicy, LoadReactive, REQUEST_MESSAGES};
    use tailwise_radio::fastdormancy::{AlwaysAccept, FractionalAccept, NeverAccept, RateLimited};
    use tailwise_trace::packet::{Direction, Packet};

    fn trace_from_gaps(gaps_ms: &[i64]) -> Trace {
        let mut t = Instant::ZERO;
        let mut pkts = vec![Packet::new(t, Direction::Down, 500)];
        for (i, &g) in gaps_ms.iter().enumerate() {
            t += Duration::from_millis(g);
            let dir = if i % 3 == 0 { Direction::Up } else { Direction::Down };
            pkts.push(Packet::new(t, dir, 500));
        }
        Trace::from_sorted(pkts).unwrap()
    }

    /// Adjudicates a request trace through a release policy, the way a
    /// single-device coordinator would.
    fn adjudicate(requests: &RequestTrace, release: &mut dyn ReleasePolicy) -> Vec<bool> {
        requests.times.iter().map(|&at| release.accept(at)).collect()
    }

    #[test]
    fn status_quo_requests_nothing() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = trace_from_gaps(&[500, 30_000, 200]);
        let r = record_requests(&p, &cfg, &t, &mut StatusQuo);
        assert!(r.is_empty());
        // And the empty trace is empty for everyone.
        let r = record_requests(&p, &cfg, &Trace::new(), &mut FixedWait::new(Duration::ZERO, "x"));
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn request_times_are_packet_time_plus_wait() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        // Gaps: 30 s (request), 0.4 s (below wait: none), 20 s (request),
        // plus the trailing flush (request).
        let t = trace_from_gaps(&[30_000, 400, 20_000]);
        let wait = Duration::from_millis(1500);
        let r = record_requests(&p, &cfg, &t, &mut FixedWait::new(wait, "1.5s"));
        let pkts = t.packets();
        assert_eq!(r.times, vec![pkts[0].ts + wait, pkts[2].ts + wait, pkts[3].ts + wait],);
    }

    #[test]
    fn from_times_round_trips_and_rejects_disorder() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = trace_from_gaps(&[30_000, 400, 20_000]);
        let r = record_requests(&p, &cfg, &t, &mut FixedWait::new(Duration::from_secs(1), "1s"));
        // The stable-serialization identity: a trace is exactly its
        // timestamp vector.
        let back = RequestTrace::from_times(r.clone().into_times()).unwrap();
        assert_eq!(back, r);
        // Equal adjacent times are legal (two requests in one instant)…
        let tie = vec![Instant::from_secs(1), Instant::from_secs(1)];
        assert_eq!(RequestTrace::from_times(tie.clone()).unwrap().times, tie);
        // …but a backwards step is a validation error, not a panic.
        let err = RequestTrace::from_times(vec![Instant::from_secs(2), Instant::ZERO]).unwrap_err();
        assert!(err.contains("non-decreasing"), "{err}");
    }

    #[test]
    fn waits_at_or_beyond_the_tail_window_never_request() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = trace_from_gaps(&[60_000]);
        let mut at_window = FixedWait::new(p.tail_window(), "tail");
        assert!(record_requests(&p, &cfg, &t, &mut at_window).is_empty());
        let mut inside = FixedWait::new(p.tail_window() - Duration::from_micros(1), "in");
        assert_eq!(record_requests(&p, &cfg, &t, &mut inside).len(), 2);
    }

    #[test]
    fn replay_with_all_grants_matches_always_accept() {
        let p = CarrierProfile::verizon_lte();
        let cfg = SimConfig::default();
        let t = trace_from_gaps(&[30_000, 800, 12_000, 45_000]);
        let requests =
            record_requests(&p, &cfg, &t, &mut FixedWait::new(Duration::from_secs(1), "1s"));
        let verdicts = vec![true; requests.len()];
        let replayed = replay_requests(
            &p,
            &cfg,
            &t,
            &mut FixedWait::new(Duration::from_secs(1), "1s"),
            &verdicts,
        );
        let direct = run(&p, &cfg, &t, &mut FixedWait::new(Duration::from_secs(1), "1s"));
        assert_eq!(replayed.energy, direct.energy);
        assert_eq!(replayed.counters, direct.counters);
        assert_eq!(replayed.confusion, direct.confusion);
    }

    #[test]
    fn replay_outcome_captures_the_fold_exactly() {
        let p = CarrierProfile::verizon_lte();
        let cfg = SimConfig::default();
        let t = trace_from_gaps(&[30_000, 800, 12_000, 45_000]);
        let requests =
            record_requests(&p, &cfg, &t, &mut FixedWait::new(Duration::from_secs(1), "1s"));
        let verdicts: Vec<bool> = (0..requests.len()).map(|i| i % 2 == 0).collect();
        let report = replay_requests(
            &p,
            &cfg,
            &t,
            &mut FixedWait::new(Duration::from_secs(1), "1s"),
            &verdicts,
        );
        let outcome = ReplayOutcome::of(&report);
        assert_eq!(outcome.packets, report.packets as u64);
        assert_eq!(outcome.energy_j().to_bits(), report.total_energy().to_bits());
        assert_eq!(outcome.switches, report.switch_cycles());
        assert_eq!(outcome.decisions, report.confusion.total());
        let delays: Vec<f64> = outcome.session_delays().collect();
        assert_eq!(delays.len(), report.session_delays.len());
        // The savings arithmetic must agree bit for bit with the live
        // report's, for any baseline (including the degenerate one).
        for base in [0.0, 1.0, report.total_energy() * 1.75] {
            assert_eq!(
                outcome.savings_vs_energy(base).to_bits(),
                report.savings_vs_energy(base).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "fewer requests than phase 1")]
    fn surplus_verdicts_panic() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = trace_from_gaps(&[30_000]);
        // StatusQuo sends no requests; one scripted verdict is a bug.
        replay_requests(&p, &cfg, &t, &mut StatusQuo, &[true]);
    }

    #[test]
    #[should_panic(expected = "more requests than phase 1")]
    fn missing_verdicts_panic() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = trace_from_gaps(&[30_000]);
        replay_requests(&p, &cfg, &t, &mut FixedWait::new(Duration::ZERO, "now"), &[]);
    }

    /// The exactness contract, exhaustively: phase 1 + external
    /// adjudication + phase 2 reproduces the lock-step engine bit for
    /// bit, across policies × release behaviors × random traces.
    #[derive(Debug, Clone, Copy)]
    enum PolicyChoice {
        StatusQuo,
        Fixed(i64),
        Oracle,
        MakeIdleLike, // FixedWait built from a percentile-ish constant
    }

    fn build_policy(choice: PolicyChoice) -> Box<dyn IdlePolicy> {
        match choice {
            PolicyChoice::StatusQuo => Box::new(StatusQuo),
            PolicyChoice::Fixed(ms) => Box::new(FixedWait::new(Duration::from_millis(ms), "fixed")),
            PolicyChoice::Oracle => Box::new(OracleIdle),
            PolicyChoice::MakeIdleLike => Box::new(WindowMedianWait),
        }
    }

    /// A window-using policy with MakeIdle's shape (reads the window,
    /// returns a data-dependent wait) without depending on
    /// tailwise-core (which depends on this crate).
    #[derive(Debug, Clone, Default)]
    struct WindowMedianWait;

    impl IdlePolicy for WindowMedianWait {
        fn name(&self) -> String {
            "window-median".into()
        }
        fn decide(&mut self, ctx: &IdleContext<'_>, _actual_gap: Duration) -> IdleDecision {
            let samples = ctx.window.sorted_samples();
            if samples.len() < 5 {
                return IdleDecision::Timers;
            }
            IdleDecision::DemoteAfter(samples[samples.len() / 2])
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum ReleaseChoice {
        Always,
        Never,
        Fractional(u8),
        RateLimited(i64),
        /// The load-coupled [`AdmissionPolicy`]: watermark msg/s over a
        /// window, fed the adjudication-time message model.
        Reactive(u64, u64),
    }

    /// Lifts a load-observing [`AdmissionPolicy`] into a
    /// [`ReleasePolicy`] by charging each verdict's adjudication-time
    /// messages back into the policy — exactly what a cell coordinator
    /// does, so the lock-step reference and the external adjudication
    /// see the same stateful policy.
    struct ObservingRelease<A: AdmissionPolicy>(A);

    impl<A: AdmissionPolicy> ReleasePolicy for ObservingRelease<A> {
        fn accept(&mut self, at: Instant) -> bool {
            let ok = self.0.admit(at);
            self.0.observe(at, if ok { 3 } else { REQUEST_MESSAGES });
            ok
        }
        fn name(&self) -> &'static str {
            "observing-admission"
        }
    }

    fn build_release(choice: ReleaseChoice) -> Box<dyn ReleasePolicy> {
        match choice {
            ReleaseChoice::Always => Box::new(AlwaysAccept),
            ReleaseChoice::Never => Box::new(NeverAccept),
            ReleaseChoice::Fractional(p) => Box::new(FractionalAccept::new(p as f64 / 255.0, 42)),
            ReleaseChoice::RateLimited(ms) => Box::new(RateLimited::new(Duration::from_millis(ms))),
            ReleaseChoice::Reactive(watermark, window) => {
                Box::new(ObservingRelease(LoadReactive::new(watermark, window)))
            }
        }
    }

    // The vendored proptest stub has no `prop_oneof!`; pick variants by
    // mapping an index + payload tuple instead.
    fn arb_policy() -> impl Strategy<Value = PolicyChoice> {
        (0usize..4, 0i64..20_000).prop_map(|(which, ms)| match which {
            0 => PolicyChoice::StatusQuo,
            1 => PolicyChoice::Fixed(ms),
            2 => PolicyChoice::Oracle,
            _ => PolicyChoice::MakeIdleLike,
        })
    }

    fn arb_release() -> impl Strategy<Value = ReleaseChoice> {
        (0usize..5, 0u64..256, 1i64..60_000).prop_map(|(which, frac, ms)| match which {
            0 => ReleaseChoice::Always,
            1 => ReleaseChoice::Never,
            2 => ReleaseChoice::Fractional(frac as u8),
            3 => ReleaseChoice::RateLimited(ms),
            // Low watermarks over small windows keep the reactive
            // governor engaging on CI-sized traces.
            _ => ReleaseChoice::Reactive(frac % 8, 1 + ms as u64 % 4),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn two_phase_replay_is_bit_identical_to_lockstep(
            gaps_ms in prop::collection::vec(1i64..60_000, 1..120),
            policy in arb_policy(),
            release in arb_release(),
            carrier in 0usize..4,
        ) {
            let p = &CarrierProfile::paper_carriers()[carrier];
            let cfg = SimConfig::default();
            let t = trace_from_gaps(&gaps_ms);

            // Reference: the lock-step engine consulting the release
            // policy inline.
            let reference =
                run_with_release(p, &cfg, &t, build_policy(policy).as_mut(), build_release(release).as_mut());

            // Two-phase: extract requests, adjudicate externally with a
            // fresh instance of the same release policy, replay.
            let requests = record_requests(p, &cfg, &t, build_policy(policy).as_mut());
            let verdicts = adjudicate(&requests, build_release(release).as_mut());
            let replayed =
                replay_requests(p, &cfg, &t, build_policy(policy).as_mut(), &verdicts);

            prop_assert_eq!(replayed.energy, reference.energy);
            prop_assert_eq!(replayed.counters, reference.counters);
            prop_assert_eq!(replayed.confusion, reference.confusion);
            prop_assert_eq!(replayed.denied_fd, reference.denied_fd);
            prop_assert_eq!(replayed.premature_promotions, reference.premature_promotions);
            // Denials observed by the engine = denials scripted.
            let scripted_denials = verdicts.iter().filter(|v| !**v).count() as u64;
            prop_assert_eq!(replayed.denied_fd, scripted_denials);
        }

        /// Deny-heavy and alternating grant/deny scripts: a verdict
        /// script granting every `n`-th request (starting at `offset`)
        /// must replay bit-identically to the lock-step engine running
        /// the equivalent stateful policy. `n = 2` is the alternating
        /// script (both phases), large `n` the deny-heavy storm; the
        /// all-deny limit is `offset ≥` the request count.
        #[test]
        fn scripted_grant_patterns_replay_exactly(
            gaps_ms in prop::collection::vec(1i64..60_000, 1..120),
            policy in arb_policy(),
            (n, offset) in (1u64..6, 0u64..6),
            carrier in 0usize..4,
        ) {
            /// Grants request `i` iff `i % n == offset % n` — the
            /// stateful twin of the pattern script.
            struct EveryNth {
                n: u64,
                offset: u64,
                counter: u64,
            }
            impl ReleasePolicy for EveryNth {
                fn accept(&mut self, _at: Instant) -> bool {
                    let ok = self.counter % self.n == self.offset % self.n;
                    self.counter += 1;
                    ok
                }
                fn name(&self) -> &'static str {
                    "every-nth"
                }
            }

            let p = &CarrierProfile::paper_carriers()[carrier];
            let cfg = SimConfig::default();
            let t = trace_from_gaps(&gaps_ms);

            let requests = record_requests(p, &cfg, &t, build_policy(policy).as_mut());
            let verdicts: Vec<bool> =
                (0..requests.len() as u64).map(|i| i % n == offset % n).collect();
            let replayed =
                replay_requests(p, &cfg, &t, build_policy(policy).as_mut(), &verdicts);
            let reference = run_with_release(
                p,
                &cfg,
                &t,
                build_policy(policy).as_mut(),
                &mut EveryNth { n, offset, counter: 0 },
            );

            prop_assert_eq!(replayed.energy, reference.energy);
            prop_assert_eq!(replayed.counters, reference.counters);
            prop_assert_eq!(replayed.confusion, reference.confusion);
            prop_assert_eq!(
                replayed.denied_fd,
                verdicts.iter().filter(|v| !**v).count() as u64
            );
        }
    }
}
