//! The Oracle comparator (§6.2).
//!
//! "The Oracle is an algorithm in which the packet inter-arrival time is
//! known before the packet comes, and the algorithm compares the
//! inter-arrival time with the t_threshold defined in Section 4.1."
//!
//! It demotes *immediately* after a packet exactly when the upcoming gap
//! exceeds the threshold, paying one switch cycle instead of the tail —
//! the per-gap optimal choice, and therefore "an upper bound of how much
//! energy can be saved without introducing extra delay". It is also the
//! ground truth for the §6.3 false/missed switch rates.

use tailwise_trace::time::Duration;

use crate::policy::{IdleContext, IdleDecision, IdlePolicy};

/// The offline-optimal demotion policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleIdle;

impl IdlePolicy for OracleIdle {
    fn name(&self) -> String {
        "oracle".into()
    }

    fn decide(&mut self, ctx: &IdleContext<'_>, actual_gap: Duration) -> IdleDecision {
        // The one policy allowed to read the future.
        if actual_gap > ctx.profile.t_threshold() {
            IdleDecision::DemoteAfter(Duration::ZERO)
        } else {
            IdleDecision::Timers
        }
    }

    fn uses_window(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_radio::profile::CarrierProfile;
    use tailwise_trace::stats::SlidingWindow;
    use tailwise_trace::time::Instant;

    #[test]
    fn oracle_switches_exactly_above_threshold() {
        let p = CarrierProfile::att_hspa();
        let w = SlidingWindow::new(4);
        let ctx = IdleContext { profile: &p, window: &w, now: Instant::ZERO };
        let mut o = OracleIdle;
        let th = p.t_threshold();
        assert_eq!(o.decide(&ctx, th), IdleDecision::Timers);
        assert_eq!(
            o.decide(&ctx, th + Duration::from_micros(1)),
            IdleDecision::DemoteAfter(Duration::ZERO)
        );
        assert_eq!(o.decide(&ctx, Duration::FOREVER), IdleDecision::DemoteAfter(Duration::ZERO));
    }
}
