//! Cell-level simulation: many devices, one base station (§8 future work).
//!
//! The paper closes by asking what happens "on the base station side,
//! considering issues such as handling multiple phones triggering the
//! feature". This module answers with a multi-device simulation:
//!
//! * every device runs its own trace and [`IdlePolicy`];
//! * all fast-dormancy requests flow through **one shared**
//!   [`AdmissionPolicy`] (the base station), in global timestamp order —
//!   any release policy lifts into that surface unchanged, and
//!   load-reactive policies additionally observe the adjudication-time
//!   message load ([`tailwise_radio::admission`]);
//! * the cell report aggregates energy, grants/denials, and the
//!   RRC-message load the base station actually absorbs (per-second peak
//!   and overload accounting against a configurable signaling capacity).
//!
//! ## Built on the two-phase API
//!
//! The coordination runs on [`crate::twophase`], whose exactness
//! argument (demotion *requests* depend only on the trace, never on
//! grants) this module originally proved in-line: phase 1
//! ([`record_requests`]) collects every device's request stream without
//! a full simulation; the shared policy adjudicates the merged,
//! time-ordered stream; phase 2 ([`replay_requests`]) replays each
//! device exactly against its scripted verdicts. The result is
//! identical to a lock-step co-simulation, and pass 1 now costs a
//! window scan per device instead of a full engine run. The fleet's
//! cell topologies scale the same recipe to whole populations.

use tailwise_obs::{span, NullRecorder, Recorder};
use tailwise_radio::admission::{AdmissionPolicy, REQUEST_MESSAGES};
use tailwise_radio::profile::CarrierProfile;
use tailwise_radio::signaling::SignalingModel;
use tailwise_trace::time::Instant;
use tailwise_trace::Trace;

use crate::engine::SimConfig;
use crate::policy::IdlePolicy;
use crate::report::SimReport;
use crate::twophase::{record_requests, replay_requests};

/// One device entering the cell: its traffic and its control policy.
pub struct CellDevice {
    /// Display name ("phone 3").
    pub name: String,
    /// The device's packet trace.
    pub trace: Trace,
    /// The device's demotion policy.
    pub policy: Box<dyn IdlePolicy>,
}

/// Outcome of a cell simulation.
#[derive(Debug)]
pub struct CellReport {
    /// Per-device reports, in input order.
    pub devices: Vec<SimReport>,
    /// Fast-dormancy requests granted by the base station.
    pub granted: u64,
    /// Fast-dormancy requests denied.
    pub denied: u64,
    /// Total RRC messages the cell absorbed (per [`SignalingModel`]).
    pub total_messages: u64,
    /// Peak RRC messages in any one-second window.
    pub peak_messages_per_s: u64,
    /// Seconds in which the message load exceeded `capacity_per_s`
    /// (zero when no capacity was configured).
    pub overload_seconds: u64,
}

impl CellReport {
    /// Total energy across all devices, J.
    pub fn total_energy(&self) -> f64 {
        self.devices.iter().map(|d| d.total_energy()).sum()
    }

    /// Total switch cycles across all devices.
    pub fn total_switches(&self) -> u64 {
        self.devices.iter().map(|d| d.switch_cycles()).sum()
    }
}

/// Runs `devices` against one shared base-station `admission` policy.
///
/// `capacity_per_s` (RRC messages the cell can absorb per second, `None`
/// = unbounded) only affects the overload accounting, not behaviour —
/// modeling capacity-reactive admission is what the pluggable
/// `admission` policy is for: a load-reactive policy
/// ([`tailwise_radio::admission::LoadReactive`]) observes the
/// adjudication-time message load (grants cost
/// [`SignalingModel::per_fd_demotion`] messages, denials
/// [`REQUEST_MESSAGES`]), while lifted release policies
/// (e.g. [`tailwise_radio::fastdormancy::RateLimited`]) ignore it.
pub fn run_cell(
    profile: &CarrierProfile,
    config: &SimConfig,
    devices: Vec<CellDevice>,
    admission: &mut dyn AdmissionPolicy,
    signaling: &SignalingModel,
    capacity_per_s: Option<u64>,
) -> CellReport {
    run_cell_observed(profile, config, devices, admission, signaling, capacity_per_s, &NullRecorder)
}

/// [`run_cell`] under a [`Recorder`]: pass-1 request collection records
/// under the `simulate` span, the shared-policy loop under
/// `adjudicate`, pass-2 scripted replay under `replay`, and grants /
/// denials land on the `requests_granted` / `requests_denied` counters.
/// Recording only observes — the report is bit-identical to the
/// un-observed run.
pub fn run_cell_observed(
    profile: &CarrierProfile,
    config: &SimConfig,
    mut devices: Vec<CellDevice>,
    admission: &mut dyn AdmissionPolicy,
    signaling: &SignalingModel,
    capacity_per_s: Option<u64>,
    recorder: &dyn Recorder,
) -> CellReport {
    // Pass 1: collect each device's fast-dormancy request times — the
    // cheap streaming pass, no energy simulation.
    let request_times: Vec<Vec<Instant>> = {
        let _simulate = span(recorder, "simulate");
        devices
            .iter_mut()
            .map(|dev| record_requests(profile, config, &dev.trace, dev.policy.as_mut()).times)
            .collect()
    };

    // Base station adjudicates the merged request stream in time order
    // (ties broken by device index, deterministically).
    let _adjudicate = span(recorder, "adjudicate");
    let mut merged: Vec<(Instant, usize, usize)> = Vec::new();
    for (dev, times) in request_times.iter().enumerate() {
        for (seq, &at) in times.iter().enumerate() {
            merged.push((at, dev, seq));
        }
    }
    merged.sort_by_key(|&(at, dev, seq)| (at, dev, seq));
    let mut verdicts: Vec<Vec<bool>> = request_times.iter().map(|t| vec![false; t.len()]).collect();
    let (mut granted, mut denied) = (0u64, 0u64);
    for &(at, dev, seq) in &merged {
        let ok = admission.admit(at);
        admission.observe(at, if ok { signaling.per_fd_demotion } else { REQUEST_MESSAGES });
        verdicts[dev][seq] = ok;
        if ok {
            granted += 1;
        } else {
            denied += 1;
        }
    }
    recorder.counter("requests_granted").add(granted);
    recorder.counter("requests_denied").add(denied);
    drop(_adjudicate);

    // Pass 2: replay each device against its scripted verdicts, recording
    // transitions for the load analysis. The transition-log cap is
    // lifted: a truncated log would silently undercount the cell's
    // message load.
    let _replay = span(recorder, "replay");
    let replay_config =
        SimConfig { record_transitions: true, transition_log_limit: usize::MAX, ..config.clone() };
    let mut reports = Vec::with_capacity(devices.len());
    let mut message_events: Vec<(Instant, u32)> = Vec::new();
    for (dev, verdict_list) in devices.iter_mut().zip(verdicts) {
        let mut r = replay_requests(
            profile,
            &replay_config,
            &dev.trace,
            dev.policy.as_mut(),
            &verdict_list,
        );
        r.scheme = format!("{} ({})", r.scheme, dev.name);
        if let Some(ts) = r.transitions.take() {
            message_events.extend(ts.iter().map(|t| (t.at, signaling.messages_for(t))));
        }
        reports.push(r);
    }
    drop(_replay);

    // Per-second load histogram.
    message_events.sort_by_key(|&(at, _)| at);
    let total_messages: u64 = message_events.iter().map(|&(_, m)| m as u64).sum();
    let mut peak = 0u64;
    let mut overload = 0u64;
    let mut idx = 0;
    while idx < message_events.len() {
        let second = message_events[idx].0.as_micros().div_euclid(1_000_000);
        let mut load = 0u64;
        while idx < message_events.len()
            && message_events[idx].0.as_micros().div_euclid(1_000_000) == second
        {
            load += message_events[idx].1 as u64;
            idx += 1;
        }
        peak = peak.max(load);
        if let Some(cap) = capacity_per_s {
            if load > cap {
                overload += 1;
            }
        }
    }

    CellReport {
        devices: reports,
        granted,
        denied,
        total_messages,
        peak_messages_per_s: peak,
        overload_seconds: overload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedWait;
    use tailwise_radio::fastdormancy::{AlwaysAccept, RateLimited};
    use tailwise_trace::packet::{Direction, Packet};
    use tailwise_trace::time::Duration;

    fn heartbeat_device(name: &str, offset_ms: i64, n: usize) -> CellDevice {
        let pkts: Vec<Packet> = (0..n)
            .map(|i| {
                Packet::new(
                    Instant::from_millis(offset_ms + i as i64 * 30_000),
                    Direction::Down,
                    120,
                )
            })
            .collect();
        CellDevice {
            name: name.into(),
            trace: Trace::from_sorted(pkts).unwrap(),
            policy: Box::new(FixedWait::new(Duration::from_millis(500), "0.5s")),
        }
    }

    fn cell(n_devices: usize) -> Vec<CellDevice> {
        (0..n_devices)
            .map(|i| heartbeat_device(&format!("phone {i}"), i as i64 * 1_000, 40))
            .collect()
    }

    #[test]
    fn always_accept_cell_matches_independent_runs() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let report =
            run_cell(&p, &cfg, cell(4), &mut AlwaysAccept, &SignalingModel::default(), None);
        assert_eq!(report.devices.len(), 4);
        assert_eq!(report.denied, 0);
        // Each device independently: one request per gap + trailing.
        assert_eq!(report.granted, 4 * 40);
        // And each device's energy equals a standalone run.
        let mut solo_policy = FixedWait::new(Duration::from_millis(500), "0.5s");
        let solo = crate::engine::run(&p, &cfg, &cell(4)[0].trace, &mut solo_policy);
        assert!((report.devices[0].total_energy() - solo.total_energy()).abs() < 1e-9);
    }

    #[test]
    fn shared_rate_limit_spreads_denials_across_devices() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        // 8 devices × a request every 30 s, but the cell only grants one
        // release per 10 s: about 2/3 of requests must be denied.
        let mut release = RateLimited::new(Duration::from_secs(10));
        let report = run_cell(&p, &cfg, cell(8), &mut release, &SignalingModel::default(), None);
        assert!(report.denied > 0, "a shared rate limit must deny someone");
        assert!(report.granted > 0);
        // Denials hit more than one device (fairness of time-ordering).
        let devices_denied = report.devices.iter().filter(|d| d.denied_fd > 0).count();
        assert!(devices_denied >= 2, "only {devices_denied} device(s) saw denials");
        // Denied devices fall back to timers: cell energy must exceed the
        // always-accept cell's.
        let free = run_cell(&p, &cfg, cell(8), &mut AlwaysAccept, &SignalingModel::default(), None);
        assert!(report.total_energy() > free.total_energy());
    }

    #[test]
    fn message_load_accounting_is_conserved() {
        let p = CarrierProfile::verizon_lte();
        let cfg = SimConfig::default();
        let model = SignalingModel::default();
        let report = run_cell(&p, &cfg, cell(3), &mut AlwaysAccept, &model, None);
        // Total messages must equal the per-device counter accounting.
        let expect: u64 = report.devices.iter().map(|d| model.total_messages(&d.counters)).sum();
        assert_eq!(report.total_messages, expect);
        assert!(report.peak_messages_per_s > 0);
        assert_eq!(report.overload_seconds, 0); // no capacity configured
    }

    #[test]
    fn overload_accounting_flags_synchronized_cells() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        // All devices phase-locked (offset 0): promotions collide in the
        // same seconds, so a tight capacity must overload.
        let devices: Vec<CellDevice> =
            (0..6).map(|i| heartbeat_device(&format!("p{i}"), 0, 30)).collect();
        let tight =
            run_cell(&p, &cfg, devices, &mut AlwaysAccept, &SignalingModel::default(), Some(35));
        assert!(tight.overload_seconds > 0, "synchronized cell must overload a 35 msg/s cap");
        // De-phased devices spread the load.
        let spread =
            run_cell(&p, &cfg, cell(6), &mut AlwaysAccept, &SignalingModel::default(), Some(35));
        assert_eq!(spread.overload_seconds, 0, "de-phased devices fit under the cap");
    }

    #[test]
    fn load_reactive_cell_governs_the_storm() {
        use tailwise_radio::admission::LoadReactive;
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let model = SignalingModel::default();
        // Chatty 10 s heartbeats sit *inside* AT&T's 16.6 s tail window:
        // a granted release buys a full 28-message re-promotion the
        // timers would never have caused — the §8 storm. Phase-locked
        // devices collide in the same seconds, so a 1 msg/s watermark
        // must deny part of it…
        let storm = || -> Vec<CellDevice> {
            (0..8)
                .map(|i| {
                    let pkts: Vec<Packet> = (0..30)
                        .map(|k| {
                            Packet::new(Instant::from_millis(k * 10_000), Direction::Down, 120)
                        })
                        .collect();
                    CellDevice {
                        name: format!("p{i}"),
                        trace: Trace::from_sorted(pkts).unwrap(),
                        policy: Box::new(FixedWait::new(Duration::from_millis(500), "0.5s")),
                    }
                })
                .collect()
        };
        let mut reactive = LoadReactive::new(1, 5);
        let governed = run_cell(&p, &cfg, storm(), &mut reactive, &model, Some(35));
        assert!(governed.denied > 0, "watermark never engaged");
        assert!(governed.granted > 0, "governor latched shut");
        // …and each denied release keeps the radio in the FACH tail
        // instead of buying an Idle→DCH re-promotion: fewer total RRC
        // messages than the always-accept cell absorbing the same storm.
        let free = run_cell(&p, &cfg, storm(), &mut AlwaysAccept, &model, Some(35));
        assert!(
            governed.total_messages < free.total_messages,
            "reactive admission must shed signaling load: {} vs {}",
            governed.total_messages,
            free.total_messages
        );
        assert!(governed.total_energy() > free.total_energy(), "shedding load costs energy");
    }

    #[test]
    fn observed_cell_matches_unobserved_and_records_phases() {
        use tailwise_obs::{Recorder as _, StatsRecorder};
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let model = SignalingModel::default();
        let recorder = StatsRecorder::new();
        let plain = run_cell(&p, &cfg, cell(4), &mut AlwaysAccept, &model, Some(35));
        let observed =
            run_cell_observed(&p, &cfg, cell(4), &mut AlwaysAccept, &model, Some(35), &recorder);
        // Recording must not perturb the result.
        assert_eq!(plain.granted, observed.granted);
        assert_eq!(plain.denied, observed.denied);
        assert_eq!(plain.total_messages, observed.total_messages);
        assert_eq!(plain.peak_messages_per_s, observed.peak_messages_per_s);
        assert_eq!(plain.overload_seconds, observed.overload_seconds);
        assert_eq!(plain.total_energy().to_bits(), observed.total_energy().to_bits());
        for (a, b) in plain.devices.iter().zip(&observed.devices) {
            assert_eq!(a.total_energy().to_bits(), b.total_energy().to_bits());
        }
        // And the recorder saw every phase plus the adjudication tally.
        let s = recorder.snapshot();
        for phase in ["simulate", "adjudicate", "replay"] {
            assert_eq!(s.spans[phase].count, 1, "{phase}");
        }
        assert_eq!(s.counter("requests_granted"), observed.granted);
        assert_eq!(s.counter("requests_denied"), observed.denied);
    }

    #[test]
    fn empty_cell_is_empty() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let r =
            run_cell(&p, &cfg, Vec::new(), &mut AlwaysAccept, &SignalingModel::default(), Some(10));
        assert_eq!(r.total_energy(), 0.0);
        assert_eq!(r.total_messages, 0);
        assert_eq!(r.peak_messages_per_s, 0);
    }
}
