//! The trace-driven simulation engine (§6.1's methodology, generalized).
//!
//! One pass over a packet trace, against one carrier profile and one
//! [`IdlePolicy`]. For every inter-packet gap the engine:
//!
//! 1. asks the policy how long it would wait before requesting fast
//!    dormancy (the decision may not inspect the future);
//! 2. plays the gap forward on the [`RrcMachine`], applying the demotion if
//!    the gap outlasts the chosen wait and the base station's
//!    [`ReleasePolicy`] accepts;
//! 3. charges every joule to the shared [`EnergyMeter`]: intra-burst gaps
//!    (≤ `intra_burst_gap`) at the direction's bulk power (the paper's
//!    per-second data model), tail time at the state powers, and switch
//!    events at the profile's switch energies;
//! 4. scores the decision against the Oracle rule (`gap > t_threshold`)
//!    for the §6.3 false/missed switch rates.
//!
//! The engine is deterministic: same trace, profile and policies ⇒ the
//! same report, bit for bit.

use tailwise_radio::energy::EnergyMeter;
use tailwise_radio::fastdormancy::{AlwaysAccept, ReleasePolicy};
use tailwise_radio::profile::CarrierProfile;
use tailwise_radio::rrc::{RrcMachine, RrcState, Transition, TransitionCause};
use tailwise_trace::stats::SlidingWindow;
use tailwise_trace::time::{Duration, Instant};
use tailwise_trace::Trace;

use crate::metrics::Confusion;
use crate::policy::{IdleContext, IdleDecision, IdlePolicy};
use crate::report::SimReport;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Gaps at or below this are charged as data transfer at bulk power;
    /// longer gaps are tail time owned by the RRC policy. Must stay below
    /// every profile's `t1` (default 0.5 s; see `DESIGN.md` §3).
    pub intra_burst_gap: Duration,
    /// Capacity of the inter-arrival sliding window handed to policies
    /// (the paper's n; default 100, swept in Fig. 13).
    pub window_capacity: usize,
    /// Record per-gap `(time, wait)` decisions (Fig. 14). Bounded by
    /// `decision_log_limit`.
    pub record_decisions: bool,
    /// Maximum decision-log entries kept.
    pub decision_log_limit: usize,
    /// Record the power timeline (Fig. 3). Bounded by `timeline_limit`.
    pub record_timeline: bool,
    /// Maximum timeline segments kept.
    pub timeline_limit: usize,
    /// Record every RRC transition with its timestamp (used by the
    /// cell-level signaling analysis). Bounded by `transition_log_limit`.
    pub record_transitions: bool,
    /// Maximum transition-log entries kept.
    pub transition_log_limit: usize,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            intra_burst_gap: Duration::from_millis(500),
            window_capacity: 100,
            record_decisions: false,
            decision_log_limit: 200_000,
            record_timeline: false,
            timeline_limit: 200_000,
            record_transitions: false,
            transition_log_limit: 2_000_000,
        }
    }
}

impl SimConfig {
    /// Checks config consistency against a profile.
    pub fn validate(&self, profile: &CarrierProfile) -> Result<(), String> {
        if self.window_capacity == 0 {
            return Err("window_capacity must be at least 1".into());
        }
        if self.intra_burst_gap <= Duration::ZERO {
            return Err("intra_burst_gap must be positive".into());
        }
        if self.intra_burst_gap >= profile.t1 {
            return Err(format!(
                "intra_burst_gap ({}) must stay below the profile's t1 ({}) so data time \
                 cannot hide timer expiries",
                self.intra_burst_gap, profile.t1
            ));
        }
        Ok(())
    }
}

/// One piece of the power timeline (Fig. 3): constant draw over an
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSegment {
    /// Segment start.
    pub start: Instant,
    /// Segment end.
    pub end: Instant,
    /// Power drawn over the segment, W.
    pub power: f64,
    /// What the radio was doing.
    pub kind: SegmentKind,
}

/// Classification of a power-timeline segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Transmitting or receiving data.
    Data,
    /// Tail residence in DCH / RRC_CONNECTED.
    TailDch,
    /// Tail residence in FACH.
    TailFach,
    /// Idle (≈0 W).
    Idle,
    /// Promotion (switch energy spread over the promotion delay).
    Promotion,
}

/// Runs `idle_policy` over `trace`, with the base station honoring
/// fast-dormancy requests per `release`.
///
/// Use [`run`] for the paper's always-accept assumption.
pub fn run_with_release(
    profile: &CarrierProfile,
    config: &SimConfig,
    trace: &Trace,
    idle_policy: &mut dyn IdlePolicy,
    release: &mut dyn ReleasePolicy,
) -> SimReport {
    profile.validate().expect("invalid carrier profile");
    config.validate(profile).expect("invalid simulation config");

    let mut report = SimReport::new(idle_policy.name(), profile.name.to_string());
    let pkts = trace.packets();
    report.packets = pkts.len();
    report.span = trace.span();
    if pkts.is_empty() {
        return report;
    }

    let mut meter = EnergyMeter::new(profile.clone());
    let mut machine = RrcMachine::new(profile, pkts[0].ts);
    let mut window = SlidingWindow::new(config.window_capacity);
    let maintain_window = idle_policy.uses_window();
    let mut confusion = Confusion::default();
    let mut decisions: Vec<(Instant, Duration)> = Vec::new();
    let mut timeline: Vec<PowerSegment> = Vec::new();
    let mut transitions: Vec<Transition> = Vec::new();
    let threshold = profile.t_threshold();
    let tail_window = profile.tail_window();

    // First packet: the radio promotes out of Idle.
    handle_packet_arrival(
        &mut machine,
        &mut meter,
        &mut report,
        profile,
        pkts[0].ts,
        /*gap_for_latency=*/ Duration::FOREVER,
        tail_window,
        config,
        &mut timeline,
        &mut transitions,
    );

    for i in 1..=pkts.len() {
        let prev = pkts[i - 1];
        // The trailing "gap" after the final packet is effectively infinite:
        // flush the tail so short traces account their last cycle fully.
        let (gap, next_ts) = if i < pkts.len() {
            (pkts[i].ts - prev.ts, pkts[i].ts)
        } else {
            (Duration::FOREVER, prev.ts + tail_window + Duration::from_micros(1))
        };

        // 1. Policy decision (before the window learns this gap).
        let ctx = IdleContext { profile, window: &window, now: prev.ts };
        let decision = idle_policy.decide(&ctx, gap);
        let wants_demote = match decision {
            IdleDecision::Timers => false,
            IdleDecision::DemoteAfter(w) => gap > w,
        };
        if config.record_decisions && decisions.len() < config.decision_log_limit {
            if let IdleDecision::DemoteAfter(w) = decision {
                if gap > config.intra_burst_gap {
                    decisions.push((prev.ts, w));
                }
            }
        }

        // 2. Oracle comparison (§6.3).
        confusion.record(wants_demote, gap > threshold);

        // 3. Play the gap forward. A fast-dormancy request is only worth
        // sending while the timers still have the radio up, and a denied
        // request changes nothing except the wasted signaling message —
        // the gap then plays out exactly as if the policy had deferred.
        let demote_wait = match decision {
            IdleDecision::DemoteAfter(w) if wants_demote && w < tail_window => {
                let demote_at = prev.ts + w;
                if release.accept(demote_at) {
                    Some(demote_at)
                } else {
                    report.denied_fd += 1;
                    None
                }
            }
            _ => None,
        };
        if let Some(demote_at) = demote_wait {
            // The synthetic trailing gap ends at the tail-window flush,
            // which a long policy wait can overshoot; never run backwards.
            let next_ts = next_ts.max(demote_at);
            charge_advance(
                &mut machine,
                &mut meter,
                demote_at,
                config,
                &mut timeline,
                &mut transitions,
            );
            let tr = machine
                .fast_dormancy(demote_at)
                .expect("wait below the tail window, radio must still be up");
            meter.add_fd_demotion();
            record_transition(&mut transitions, config, tr);
            // Remainder of the gap is spent Idle.
            charge_advance(
                &mut machine,
                &mut meter,
                next_ts,
                config,
                &mut timeline,
                &mut transitions,
            );
        } else if gap <= config.intra_burst_gap {
            // Intra-burst: data energy at bulk power for the packet that
            // closes the gap (§6.1's per-second model). Timers cannot fire
            // inside a data gap (intra_burst_gap < t1, validated).
            let adv = machine.advance(next_ts);
            debug_assert_eq!(adv.transitions().count(), 0);
            meter.add_data(pkts[i].dir, gap);
            push_segment(
                &mut timeline,
                config,
                prev.ts,
                next_ts,
                profile.p_data(pkts[i].dir),
                SegmentKind::Data,
            );
        } else {
            charge_advance(
                &mut machine,
                &mut meter,
                next_ts,
                config,
                &mut timeline,
                &mut transitions,
            );
        }

        // 4. Next packet arrives (skipped for the synthetic trailing gap).
        if i < pkts.len() {
            handle_packet_arrival(
                &mut machine,
                &mut meter,
                &mut report,
                profile,
                next_ts,
                gap,
                tail_window,
                config,
                &mut timeline,
                &mut transitions,
            );
            if maintain_window {
                window.push(gap);
            }
        }
    }

    report.energy = meter.breakdown();
    report.counters = machine.counters();
    report.confusion = confusion;
    report.decisions = config.record_decisions.then_some(decisions);
    report.timeline = config.record_timeline.then_some(timeline);
    report.transitions = config.record_transitions.then_some(transitions);
    report
}

/// Runs with the paper's always-accept fast-dormancy assumption (§2.2).
pub fn run(
    profile: &CarrierProfile,
    config: &SimConfig,
    trace: &Trace,
    idle_policy: &mut dyn IdlePolicy,
) -> SimReport {
    run_with_release(profile, config, trace, idle_policy, &mut AlwaysAccept)
}

/// Advances the machine to `to`, charging residences and timer-demotion
/// energy, and recording timeline segments.
fn charge_advance(
    machine: &mut RrcMachine,
    meter: &mut EnergyMeter,
    to: Instant,
    config: &SimConfig,
    timeline: &mut Vec<PowerSegment>,
    transitions: &mut Vec<Transition>,
) {
    let mut cursor = machine.now();
    let adv = machine.advance(to);
    for r in adv.residences() {
        meter.add_residence(r);
        let (power, kind) = match r.state {
            RrcState::Dch => (meter.profile().p_dch, SegmentKind::TailDch),
            RrcState::Fach => (meter.profile().p_fach, SegmentKind::TailFach),
            RrcState::Idle => (0.0, SegmentKind::Idle),
        };
        push_segment(timeline, config, cursor, cursor + r.dur, power, kind);
        cursor += r.dur;
    }
    for t in adv.transitions() {
        if t.cause == TransitionCause::Timer && t.to == RrcState::Idle {
            meter.add_timer_demotion();
        }
        record_transition(transitions, config, t);
    }
}

/// Appends to the transition log if recording is on and under the cap.
fn record_transition(transitions: &mut Vec<Transition>, config: &SimConfig, t: Transition) {
    if config.record_transitions && transitions.len() < config.transition_log_limit {
        transitions.push(t);
    }
}

/// Handles a packet arriving at `at`: promotion accounting and the
/// policy-added-latency bookkeeping.
#[allow(clippy::too_many_arguments)]
fn handle_packet_arrival(
    machine: &mut RrcMachine,
    meter: &mut EnergyMeter,
    report: &mut SimReport,
    profile: &CarrierProfile,
    at: Instant,
    preceding_gap: Duration,
    tail_window: Duration,
    config: &SimConfig,
    timeline: &mut Vec<PowerSegment>,
    transitions: &mut Vec<Transition>,
) {
    if let Some(tr) = machine.notify_data(at) {
        record_transition(transitions, config, tr);
        if tr.from == RrcState::Idle {
            meter.add_promotion();
            // A promotion inside the status-quo tail window exists only
            // because the policy demoted early: the promotion delay it
            // imposes is policy-added latency.
            if preceding_gap <= tail_window {
                report.premature_promotions += 1;
            }
            push_segment(
                timeline,
                config,
                at,
                at + profile.promotion_delay,
                if profile.promotion_delay > Duration::ZERO {
                    profile.e_promote / profile.promotion_delay.as_secs_f64()
                } else {
                    0.0
                },
                SegmentKind::Promotion,
            );
        }
    }
}

fn push_segment(
    timeline: &mut Vec<PowerSegment>,
    config: &SimConfig,
    start: Instant,
    end: Instant,
    power: f64,
    kind: SegmentKind,
) {
    if !config.record_timeline || timeline.len() >= config.timeline_limit || end <= start {
        return;
    }
    timeline.push(PowerSegment { start, end, power, kind });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedWait, StatusQuo};
    use tailwise_radio::fastdormancy::NeverAccept;
    use tailwise_trace::packet::{Direction, Packet};

    fn att() -> CarrierProfile {
        CarrierProfile::att_hspa()
    }

    fn trace_at_secs(secs: &[f64]) -> Trace {
        Trace::from_sorted(
            secs.iter()
                .map(|&s| Packet::new(Instant::from_secs_f64(s), Direction::Down, 1000))
                .collect(),
        )
        .unwrap()
    }

    /// Status-quo energy of a two-packet trace must equal the closed-form
    /// E(gap) plus the data/promotion bookkeeping shared by every scheme.
    #[test]
    fn status_quo_matches_closed_form_gap_energy() {
        let p = att();
        let cfg = SimConfig::default();
        for gap_s in [1.0, 3.0, 8.0, 16.6, 20.0, 120.0] {
            let t = trace_at_secs(&[0.0, gap_s]);
            let r = run(&p, &cfg, &t, &mut StatusQuo);
            // Components: initial promotion + E(gap) [tail + possible cycle]
            // + trailing flush (full tail + timer demotion).
            let trailing = p.hold_energy(p.tail_window()) + p.e_demote_timer();
            let expect = p.e_promote + p.gap_energy(Duration::from_secs_f64(gap_s)) + trailing;
            assert!(
                (r.energy.total() - expect).abs() < 1e-6,
                "gap {gap_s}: got {} expected {expect}",
                r.energy.total()
            );
        }
    }

    #[test]
    fn oracle_style_immediate_demotion_costs_one_switch() {
        let p = att();
        let cfg = SimConfig::default();
        let t = trace_at_secs(&[0.0, 30.0]);
        // Demote immediately after every packet.
        let mut pol = FixedWait::new(Duration::ZERO, "immediate");
        let r = run(&p, &cfg, &t, &mut pol);
        // promotion + FD demote + promotion + FD demote (trailing flush).
        let expect = 2.0 * (p.e_promote + p.e_demote_fd());
        assert!((r.energy.total() - expect).abs() < 1e-9, "got {}", r.energy.total());
        assert_eq!(r.counters.promotions, 2);
        assert_eq!(r.counters.fd_demotions, 2);
        assert_eq!(r.counters.timer_demotions, 0);
    }

    #[test]
    fn proactive_beats_status_quo_on_long_gaps() {
        let p = att();
        let cfg = SimConfig::default();
        // Heartbeat-ish: packets every 30 s — the classic tail-energy hog.
        let secs: Vec<f64> = (0..40).map(|i| i as f64 * 30.0).collect();
        let t = trace_at_secs(&secs);
        let base = run(&p, &cfg, &t, &mut StatusQuo);
        let mut pol = FixedWait::new(Duration::from_millis(1500), "1.5s");
        let r = run(&p, &cfg, &t, &mut pol);
        assert!(
            r.energy.total() < base.energy.total() * 0.5,
            "{} vs {}",
            r.energy.total(),
            base.energy.total()
        );
        assert!(r.savings_vs(&base) > 50.0);
    }

    #[test]
    fn proactive_loses_on_short_gaps() {
        let p = att();
        let cfg = SimConfig::default();
        // Gaps of 1 s: below t_threshold (1.2 s), demoting wastes energy.
        // Long enough that the per-gap waste dominates the one-off trailing
        // tail flush that every run pays.
        let secs: Vec<f64> = (0..500).map(|i| i as f64 * 1.0).collect();
        let t = trace_at_secs(&secs);
        let base = run(&p, &cfg, &t, &mut StatusQuo);
        let mut eager = FixedWait::new(Duration::from_millis(10), "eager");
        let r = run(&p, &cfg, &t, &mut eager);
        assert!(r.energy.total() > base.energy.total());
        assert!(r.savings_vs(&base) < 0.0);
        // And it thrashes the signaling plane.
        assert!(r.counters.promotions > base.counters.promotions * 10);
    }

    #[test]
    fn intra_burst_gaps_charge_data_energy() {
        let p = att();
        let cfg = SimConfig::default();
        // 10 packets 100 ms apart: one burst, all data.
        let secs: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let t = trace_at_secs(&secs);
        let r = run(&p, &cfg, &t, &mut StatusQuo);
        let expect_data = 9.0 * 0.1 * p.p_recv;
        assert!((r.energy.data_down - expect_data).abs() < 1e-9);
        assert_eq!(r.energy.data_up, 0.0);
        // Exactly one promotion, and the trailing tail flush.
        assert_eq!(r.counters.promotions, 1);
        assert!(r.energy.tail() > 0.0);
    }

    #[test]
    fn confusion_matrix_against_oracle_rule() {
        let p = att(); // threshold 1.2 s
        let cfg = SimConfig::default();
        // Gaps: 0.5 (short), 10 (long), 0.8 (short), 30 (long) + trailing ∞.
        let t = trace_at_secs(&[0.0, 0.5, 10.5, 11.3, 41.3]);
        // Policy waits 2 s: demotes only on gaps > 2 s (the two long ones
        // plus the trailing flush).
        let mut pol = FixedWait::new(Duration::from_secs(2), "2s");
        let r = run(&p, &cfg, &t, &mut pol);
        assert_eq!(r.confusion.tp, 3); // 10, 30, trailing
        assert_eq!(r.confusion.tn, 2); // 0.5, 0.8
        assert_eq!(r.confusion.fp, 0);
        assert_eq!(r.confusion.fn_, 0);
        // An always-on policy misses every long gap.
        let r = run(&p, &cfg, &t, &mut StatusQuo);
        assert_eq!(r.confusion.fn_, 3);
        assert_eq!(r.confusion.missed_switch_rate(), 1.0);
        // A hair-trigger policy false-switches on the short gaps.
        let mut eager = FixedWait::new(Duration::from_millis(100), "eager");
        let r = run(&p, &cfg, &t, &mut eager);
        assert_eq!(r.confusion.fp, 2);
        assert_eq!(r.confusion.false_switch_rate(), 1.0);
    }

    #[test]
    fn denied_fast_dormancy_falls_back_to_timers() {
        let p = att();
        let cfg = SimConfig::default();
        let t = trace_at_secs(&[0.0, 30.0]);
        let mut pol = FixedWait::new(Duration::ZERO, "immediate");
        let accepted = run(&p, &cfg, &t, &mut pol);
        let mut pol = FixedWait::new(Duration::ZERO, "immediate");
        let denied = run_with_release(&p, &cfg, &t, &mut pol, &mut NeverAccept);
        assert_eq!(denied.denied_fd, 2);
        assert_eq!(denied.counters.fd_demotions, 0);
        // With every request denied the energy reverts to status quo.
        let base = run(&p, &cfg, &t, &mut StatusQuo);
        assert!((denied.energy.total() - base.energy.total()).abs() < 1e-9);
        assert!(accepted.energy.total() < denied.energy.total());
    }

    #[test]
    fn premature_promotions_are_counted() {
        let p = att();
        let cfg = SimConfig::default();
        // Gap of 3 s: inside the 16.6 s status-quo tail, so a promotion
        // after an eager demote is policy-added latency.
        let t = trace_at_secs(&[0.0, 3.0]);
        let mut eager = FixedWait::new(Duration::from_millis(100), "eager");
        let r = run(&p, &cfg, &t, &mut eager);
        assert_eq!(r.premature_promotions, 1);
        let base = run(&p, &cfg, &t, &mut StatusQuo);
        assert_eq!(base.premature_promotions, 0);
    }

    #[test]
    fn decision_log_records_waits() {
        let p = att();
        let cfg = SimConfig { record_decisions: true, ..Default::default() };
        let t = trace_at_secs(&[0.0, 5.0, 10.0]);
        let mut pol = FixedWait::new(Duration::from_secs(2), "2s");
        let r = run(&p, &cfg, &t, &mut pol);
        let d = r.decisions.as_ref().unwrap();
        assert_eq!(d.len(), 3); // two real gaps + trailing
        assert!(d.iter().all(|&(_, w)| w == Duration::from_secs(2)));
    }

    #[test]
    fn timeline_segments_tile_the_trace() {
        let p = att();
        let cfg = SimConfig { record_timeline: true, ..Default::default() };
        let t = trace_at_secs(&[0.0, 0.2, 8.0, 40.0]);
        let r = run(&p, &cfg, &t, &mut StatusQuo);
        let tl = r.timeline.as_ref().unwrap();
        assert!(!tl.is_empty());
        // Non-promotion segments must be contiguous and non-overlapping.
        let mut cursor = Instant::ZERO;
        for s in tl.iter().filter(|s| s.kind != SegmentKind::Promotion) {
            assert_eq!(s.start, cursor, "segment gap at {cursor}");
            assert!(s.end > s.start);
            cursor = s.end;
        }
        // Total timeline energy matches the meter, minus demotions (which
        // are instantaneous impulses the timeline cannot depict).
        let tl_energy: f64 = tl.iter().map(|s| s.power * (s.end - s.start).as_secs_f64()).sum();
        assert!((tl_energy - (r.energy.total() - r.energy.demote)).abs() < 1e-6);
    }

    #[test]
    fn empty_and_single_packet_traces() {
        let p = att();
        let cfg = SimConfig::default();
        let empty = run(&p, &cfg, &Trace::new(), &mut StatusQuo);
        assert_eq!(empty.energy.total(), 0.0);
        assert_eq!(empty.packets, 0);

        let single = run(&p, &cfg, &trace_at_secs(&[0.0]), &mut StatusQuo);
        // Promotion + full tail + timer demotion (trailing flush).
        let expect = p.e_promote + p.hold_energy(p.tail_window()) + p.e_demote_timer();
        assert!((single.energy.total() - expect).abs() < 1e-9);
        assert_eq!(single.counters.promotions, 1);
    }

    #[test]
    fn engine_is_deterministic() {
        let p = att();
        let cfg = SimConfig::default();
        let secs: Vec<f64> = (0..200).map(|i| (i as f64) * 1.7 % 97.0).collect();
        let mut sorted = secs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let t = trace_at_secs(&sorted);
        let a = run(&p, &cfg, &t, &mut FixedWait::new(Duration::from_secs(1), "x"));
        let b = run(&p, &cfg, &t, &mut FixedWait::new(Duration::from_secs(1), "x"));
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.confusion, b.confusion);
    }

    #[test]
    fn config_validation_rejects_bad_combos() {
        let p = att();
        let cfg = SimConfig { window_capacity: 0, ..Default::default() };
        assert!(cfg.validate(&p).is_err());
        // intra_burst_gap above t1 = 6.2 s would hide timer expiries.
        let cfg = SimConfig { intra_burst_gap: Duration::from_secs(10), ..Default::default() };
        assert!(cfg.validate(&p).is_err());
        assert!(SimConfig::default().validate(&p).is_ok());
    }
}
