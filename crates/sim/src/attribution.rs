//! Per-application energy attribution — "which app is burning the
//! battery?"
//!
//! The paper's Figure 1 and the profiling line of related work (Qian et
//! al., ref. \[17\]) motivate exactly this tool: given a multi-application
//! capture, attribute every joule of radio energy to the application that
//! caused it. The attribution rule follows the causal structure of the
//! tail-energy model:
//!
//! * **data energy** of a packet → that packet's application;
//! * **tail energy** of a gap (and any timer demotion closing it) → the
//!   application of the packet *preceding* the gap: that is the traffic
//!   that kept the radio up;
//! * **promotion energy** → the application of the packet that forced the
//!   radio up.
//!
//! The decomposition is exact: summed across applications it reproduces
//! the engine's status-quo totals to floating-point precision (tested).

use std::collections::BTreeMap;

use tailwise_radio::energy::{EnergyBreakdown, EnergyMeter};
use tailwise_radio::profile::CarrierProfile;
use tailwise_radio::rrc::{RrcMachine, RrcState, TransitionCause};
use tailwise_trace::packet::AppId;
use tailwise_trace::time::Duration;
use tailwise_trace::Trace;

use crate::engine::SimConfig;

/// Energy attributed to one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppEnergy {
    /// The application.
    pub app: AppId,
    /// Its energy, by component.
    pub energy: EnergyBreakdown,
    /// Packets it contributed.
    pub packets: usize,
}

/// The full attribution for a trace.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Per-application rows, ordered by descending total energy.
    pub apps: Vec<AppEnergy>,
}

impl AttributionReport {
    /// Total energy across applications, J.
    pub fn total(&self) -> f64 {
        self.apps.iter().map(|a| a.energy.total()).sum()
    }

    /// The row for one application, if present.
    pub fn app(&self, app: AppId) -> Option<&AppEnergy> {
        self.apps.iter().find(|a| a.app == app)
    }

    /// Fraction of total energy owed to `app` (0 when absent).
    pub fn share(&self, app: AppId) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.app(app).map_or(0.0, |a| a.energy.total() / total)
    }
}

/// Attributes a trace's status-quo radio energy to its applications.
pub fn attribute(profile: &CarrierProfile, config: &SimConfig, trace: &Trace) -> AttributionReport {
    profile.validate().expect("invalid carrier profile");
    config.validate(profile).expect("invalid simulation config");

    let mut meters: BTreeMap<AppId, (EnergyMeter, usize)> = BTreeMap::new();
    fn meter_of<'a>(
        meters: &'a mut BTreeMap<AppId, (EnergyMeter, usize)>,
        profile: &CarrierProfile,
        app: AppId,
    ) -> &'a mut (EnergyMeter, usize) {
        meters.entry(app).or_insert_with(|| (EnergyMeter::new(profile.clone()), 0))
    }

    let pkts = trace.packets();
    if pkts.is_empty() {
        return AttributionReport { apps: Vec::new() };
    }

    let mut machine = RrcMachine::new(profile, pkts[0].ts);
    let tail_window = profile.tail_window();

    // First packet: promotion charged to its app.
    machine.notify_data(pkts[0].ts);
    {
        let (m, n) = meter_of(&mut meters, profile, pkts[0].app);
        m.add_promotion();
        *n += 1;
    }

    for i in 1..=pkts.len() {
        let prev = pkts[i - 1];
        let (gap, next_ts) = if i < pkts.len() {
            (pkts[i].ts - prev.ts, pkts[i].ts)
        } else {
            (Duration::FOREVER, prev.ts + tail_window + Duration::from_micros(1))
        };

        if gap <= config.intra_burst_gap && i < pkts.len() {
            // Data time belongs to the arriving packet's app.
            let adv = machine.advance(next_ts);
            debug_assert_eq!(adv.transitions().count(), 0);
            let (m, _) = meter_of(&mut meters, profile, pkts[i].app);
            m.add_data(pkts[i].dir, gap);
        } else {
            // Tail time (and any timer demotion) belongs to the app whose
            // traffic kept the radio up: the gap's opener.
            let adv = machine.advance(next_ts);
            let (m, _) = meter_of(&mut meters, profile, prev.app);
            for r in adv.residences() {
                m.add_residence(r);
            }
            for t in adv.transitions() {
                if t.cause == TransitionCause::Timer && t.to == RrcState::Idle {
                    m.add_timer_demotion();
                }
            }
        }

        if i < pkts.len() {
            if let Some(tr) = machine.notify_data(next_ts) {
                if tr.from == RrcState::Idle {
                    let (m, _) = meter_of(&mut meters, profile, pkts[i].app);
                    m.add_promotion();
                }
            }
            let (_, n) = meter_of(&mut meters, profile, pkts[i].app);
            *n += 1;
        }
    }

    let mut apps: Vec<AppEnergy> = meters
        .into_iter()
        .map(|(app, (meter, packets))| AppEnergy { app, energy: meter.breakdown(), packets })
        .collect();
    apps.sort_by(|a, b| {
        b.energy.total().partial_cmp(&a.energy.total()).expect("energies are finite")
    });
    AttributionReport { apps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::policy::StatusQuo;
    use tailwise_trace::packet::{Direction, Packet};
    use tailwise_trace::Instant;

    fn two_app_trace() -> Trace {
        // App 1: heartbeats every 30 s (tail hog, tiny data).
        // App 2: one dense burst (data hog, one tail).
        let mut pkts = Vec::new();
        for i in 0..20 {
            pkts.push(
                Packet::new(Instant::from_secs(i * 30), Direction::Down, 100).with_app(AppId(1)),
            );
        }
        for j in 0..50 {
            pkts.push(
                Packet::new(Instant::from_millis(601_000 + j * 20), Direction::Down, 1400)
                    .with_app(AppId(2)),
            );
        }
        Trace::from_unsorted(pkts)
    }

    #[test]
    fn attribution_sums_to_engine_total() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = two_app_trace();
        let engine = run(&p, &cfg, &t, &mut StatusQuo);
        let attr = attribute(&p, &cfg, &t);
        assert!(
            (attr.total() - engine.total_energy()).abs() < 1e-9,
            "attribution {} vs engine {}",
            attr.total(),
            engine.total_energy()
        );
    }

    #[test]
    fn heartbeat_app_owns_the_tail() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let attr = attribute(&p, &cfg, &two_app_trace());
        let hb = attr.app(AppId(1)).expect("app 1 present");
        let bulk = attr.app(AppId(2)).expect("app 2 present");
        // The heartbeat app transfers ~2 kB but owns far more tail energy.
        assert!(hb.energy.tail() > bulk.energy.tail() * 3.0);
        // The bulk app owns nearly all data energy.
        assert!(bulk.energy.data() > hb.energy.data() * 5.0);
        // Shares sum to 1.
        assert!((attr.share(AppId(1)) + attr.share(AppId(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rows_are_sorted_by_total_energy() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let attr = attribute(&p, &cfg, &two_app_trace());
        for w in attr.apps.windows(2) {
            assert!(w[0].energy.total() >= w[1].energy.total());
        }
    }

    #[test]
    fn packet_counts_are_attributed() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let attr = attribute(&p, &cfg, &two_app_trace());
        let total: usize = attr.apps.iter().map(|a| a.packets).sum();
        assert_eq!(total, two_app_trace().len());
        assert_eq!(attr.app(AppId(1)).unwrap().packets, 20);
        assert_eq!(attr.app(AppId(2)).unwrap().packets, 50);
    }

    #[test]
    fn empty_trace_attributes_nothing() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let attr = attribute(&p, &cfg, &Trace::new());
        assert!(attr.apps.is_empty());
        assert_eq!(attr.total(), 0.0);
        assert_eq!(attr.share(AppId(1)), 0.0);
    }

    #[test]
    fn interleaved_apps_split_tails_causally() {
        // App 1 packet, 10 s gap, app 2 packet, 10 s gap. Each app owns
        // the tail *it* opened.
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = Trace::from_sorted(vec![
            Packet::new(Instant::from_secs(0), Direction::Up, 100).with_app(AppId(1)),
            Packet::new(Instant::from_secs(10), Direction::Up, 100).with_app(AppId(2)),
        ])
        .unwrap();
        let attr = attribute(&p, &cfg, &t);
        let a1 = attr.app(AppId(1)).unwrap();
        let a2 = attr.app(AppId(2)).unwrap();
        // App 1's gap is 10 s (E(10) worth of tail); app 2 owns the
        // trailing full-tail flush — slightly more.
        assert!(a1.energy.tail() > 0.0);
        assert!(a2.energy.tail() > a1.energy.tail());
        // Both apps promoted the radio once... app 1 at t=0, app 2 never
        // (radio never idles between 0 and 10 s on AT&T).
        assert!(a1.energy.promote > 0.0);
        assert_eq!(a2.energy.promote, 0.0);
    }
}
