//! # tailwise-sim
//!
//! The trace-driven simulation engine of the tailwise reproduction of
//! *"Traffic-Aware Techniques to Reduce 3G/LTE Wireless Energy
//! Consumption"* (Deng & Balakrishnan, CoNEXT 2012).
//!
//! * [`policy`] — the two decision interfaces every scheme implements
//!   ([`policy::IdlePolicy`] for demotion, [`policy::ActivePolicy`] for
//!   session batching) plus the trivial baselines (status quo, fixed
//!   waits);
//! * [`engine`] — the deterministic single-pass simulator: gap-by-gap
//!   energy accounting, fast-dormancy negotiation, Oracle-scored decision
//!   quality, optional decision and power-timeline logs;
//! * [`twophase`] — the two-phase API on top of the engine: phase 1
//!   extracts a device's fast-dormancy request stream without a full
//!   simulation, phase 2 replays the engine exactly against a scripted
//!   grant/deny sequence — the substrate for every multi-device
//!   coordinator (the in-memory [`cell`], the fleet's cell topologies);
//! * [`batching`] — the MakeActive trace transform (§5) and the combined
//!   MakeIdle+MakeActive pipeline;
//! * [`oracle`] — the offline-optimal comparator (§6.2);
//! * [`report`] — run outcomes and the paper's relative metrics;
//! * [`metrics`] — false/missed switch accounting (§6.3);
//! * [`faults`] — deterministic trace perturbations for robustness tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod batching;
pub mod cell;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod oracle;
pub mod policy;
pub mod report;
pub mod twophase;

pub use attribution::{attribute, AppEnergy, AttributionReport};
pub use batching::{batch_sessions, run_batched, BatchingOutcome};
pub use cell::{run_cell, CellDevice, CellReport};
pub use engine::{run, run_with_release, PowerSegment, SegmentKind, SimConfig};
pub use metrics::Confusion;
pub use oracle::OracleIdle;
pub use policy::{
    ActivePolicy, FixedWait, IdleContext, IdleDecision, IdlePolicy, NoBatching, StatusQuo,
};
pub use report::SimReport;
pub use twophase::{record_requests, replay_requests, ReplayOutcome, RequestTrace};

#[cfg(test)]
mod proptests {
    //! Cross-cutting engine invariants on random workloads.

    use proptest::prelude::*;
    use tailwise_radio::profile::CarrierProfile;
    use tailwise_trace::packet::{Direction, Packet};
    use tailwise_trace::time::{Duration, Instant};
    use tailwise_trace::Trace;

    use crate::engine::{run, SimConfig};
    use crate::oracle::OracleIdle;
    use crate::policy::{FixedWait, StatusQuo};

    fn trace_from_gaps(gaps_ms: &[i64]) -> Trace {
        let mut t = Instant::ZERO;
        let mut pkts = vec![Packet::new(t, Direction::Down, 500)];
        for (i, &g) in gaps_ms.iter().enumerate() {
            t += Duration::from_millis(g);
            let dir = if i % 3 == 0 { Direction::Up } else { Direction::Down };
            pkts.push(Packet::new(t, dir, 500));
        }
        Trace::from_sorted(pkts).unwrap()
    }

    fn carriers() -> Vec<CarrierProfile> {
        CarrierProfile::paper_carriers()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The Oracle is per-gap optimal: no wait-based policy can consume
        /// less energy on any trace (§6.2's "upper bound" claim).
        #[test]
        fn oracle_lower_bounds_every_wait_policy(
            gaps_ms in prop::collection::vec(1i64..60_000, 1..120),
            wait_ms in 0i64..20_000,
            carrier in 0usize..4,
        ) {
            let p = &carriers()[carrier];
            let cfg = SimConfig::default();
            let t = trace_from_gaps(&gaps_ms);
            let oracle = run(p, &cfg, &t, &mut OracleIdle);
            let fixed = run(p, &cfg, &t, &mut FixedWait::new(Duration::from_millis(wait_ms), "w"));
            let sq = run(p, &cfg, &t, &mut StatusQuo);
            prop_assert!(oracle.total_energy() <= fixed.total_energy() + 1e-6);
            prop_assert!(oracle.total_energy() <= sq.total_energy() + 1e-6);
        }

        /// Energy components always sum to the total, and all are
        /// non-negative.
        #[test]
        fn energy_breakdown_is_consistent(
            gaps_ms in prop::collection::vec(1i64..30_000, 1..100),
            wait_ms in 0i64..10_000,
            carrier in 0usize..4,
        ) {
            let p = &carriers()[carrier];
            let cfg = SimConfig::default();
            let t = trace_from_gaps(&gaps_ms);
            let r = run(p, &cfg, &t, &mut FixedWait::new(Duration::from_millis(wait_ms), "w"));
            let e = r.energy;
            let sum = e.data_up + e.data_down + e.tail_dch + e.tail_fach + e.promote + e.demote;
            prop_assert!((sum - e.total()).abs() < 1e-9);
            for part in [e.data_up, e.data_down, e.tail_dch, e.tail_fach, e.promote, e.demote] {
                prop_assert!(part >= 0.0);
            }
        }

        /// Promotions and demotions stay balanced (every cycle closes),
        /// and the confusion matrix covers every gap exactly once.
        #[test]
        fn cycle_and_decision_conservation(
            gaps_ms in prop::collection::vec(1i64..30_000, 1..100),
            wait_ms in 0i64..10_000,
            carrier in 0usize..4,
        ) {
            let p = &carriers()[carrier];
            let cfg = SimConfig::default();
            let t = trace_from_gaps(&gaps_ms);
            let r = run(p, &cfg, &t, &mut FixedWait::new(Duration::from_millis(wait_ms), "w"));
            let c = r.counters;
            // The trailing flush always demotes at the end, closing the
            // final cycle.
            prop_assert_eq!(c.promotions, c.demotions());
            // One decision per gap plus the trailing one.
            prop_assert_eq!(r.confusion.total(), gaps_ms.len() as u64 + 1);
        }

        /// Status-quo total energy equals the closed-form sum of E(gap)
        /// over tail gaps plus data and promotion terms — the engine agrees
        /// with the paper's Figure 5 model on every workload.
        #[test]
        fn status_quo_equals_closed_form(
            gaps_ms in prop::collection::vec(1i64..40_000, 1..80),
            carrier in 0usize..4,
        ) {
            let p = &carriers()[carrier];
            let cfg = SimConfig::default();
            let t = trace_from_gaps(&gaps_ms);
            let r = run(p, &cfg, &t, &mut StatusQuo);

            let mut expect = p.e_promote; // first promotion
            let pkts = t.packets();
            for i in 1..pkts.len() {
                let gap = pkts[i].ts - pkts[i - 1].ts;
                if gap <= cfg.intra_burst_gap {
                    expect += p.p_data(pkts[i].dir) * gap.as_secs_f64();
                } else {
                    // gap_energy already includes the switch cycle for
                    // gaps that outlast the timers.
                    expect += p.gap_energy(gap);
                }
            }
            // Trailing flush: full tail + timer demotion.
            expect += p.hold_energy(p.tail_window()) + p.e_demote_timer();
            prop_assert!(
                (r.total_energy() - expect).abs() < 1e-6,
                "engine {} vs closed form {}",
                r.total_energy(),
                expect
            );
        }
    }
}
