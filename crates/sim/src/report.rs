//! Simulation reports and cross-scheme comparison arithmetic.
//!
//! A [`SimReport`] is the complete outcome of one engine run. The paper's
//! evaluation metrics are all *relative* — savings over the status quo
//! (Figs. 9/10a/11a/17), switches normalized by the status quo
//! (Figs. 10b/11b/18), energy saved per extra switch (Figs. 10c/11c) — so
//! the comparison arithmetic lives here, next to the data it consumes.

use tailwise_radio::energy::EnergyBreakdown;
use tailwise_radio::rrc::TransitionCounters;
use tailwise_trace::time::{Duration, Instant};

use crate::engine::PowerSegment;
use crate::metrics::{mean_f64, median_f64, Confusion};

/// Everything one simulation run produced.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Scheme label (figure legend name).
    pub scheme: String,
    /// Carrier the run was simulated against.
    pub carrier: String,
    /// Number of packets in the (possibly batched) trace.
    pub packets: usize,
    /// Span of the trace.
    pub span: Duration,
    /// Energy, decomposed per Figure 1.
    pub energy: EnergyBreakdown,
    /// RRC transition counters.
    pub counters: TransitionCounters,
    /// Decision quality vs the Oracle (§6.3).
    pub confusion: Confusion,
    /// Fast-dormancy requests the base station denied.
    pub denied_fd: u64,
    /// Promotions that exist only because the policy demoted inside the
    /// status-quo tail window (each adds one promotion delay of latency).
    pub premature_promotions: u64,
    /// Per-gap `(decision time, chosen wait)` log (Fig. 14), if recorded.
    pub decisions: Option<Vec<(Instant, Duration)>>,
    /// Power timeline (Fig. 3), if recorded.
    pub timeline: Option<Vec<PowerSegment>>,
    /// Timestamped RRC transitions (cell-level signaling analysis), if
    /// recorded.
    pub transitions: Option<Vec<tailwise_radio::rrc::Transition>>,
    /// Per-session delays introduced by MakeActive batching (seconds);
    /// empty when no batching ran.
    pub session_delays: Vec<f64>,
    /// Number of batching rounds MakeActive closed.
    pub batching_rounds: u64,
}

impl SimReport {
    /// Creates an empty report shell.
    pub fn new(scheme: String, carrier: String) -> SimReport {
        SimReport { scheme, carrier, ..Default::default() }
    }

    /// Total energy, J.
    pub fn total_energy(&self) -> f64 {
        self.energy.total()
    }

    /// The paper's switch metric: demote→promote cycles.
    pub fn switch_cycles(&self) -> u64 {
        self.counters.promotions
    }

    /// Energy saved relative to `baseline`, in percent
    /// (Figs. 9, 10a, 11a, 17). Negative when the scheme loses energy.
    pub fn savings_vs(&self, baseline: &SimReport) -> f64 {
        self.savings_vs_energy(baseline.total_energy())
    }

    /// [`savings_vs`](Self::savings_vs) against a bare baseline energy
    /// total — the form a cached baseline (which keeps only the total,
    /// not the whole report) can evaluate. Same arithmetic, same bits.
    pub fn savings_vs_energy(&self, base: f64) -> f64 {
        if base <= 0.0 {
            return 0.0;
        }
        (base - self.total_energy()) / base * 100.0
    }

    /// Switch count normalized by `baseline` (Figs. 10b, 11b, 18).
    pub fn normalized_switches(&self, baseline: &SimReport) -> f64 {
        let base = baseline.switch_cycles();
        if base == 0 {
            return if self.switch_cycles() == 0 { 1.0 } else { f64::INFINITY };
        }
        self.switch_cycles() as f64 / base as f64
    }

    /// Energy saved per state switch, J (Figs. 10c, 11c): total joules
    /// saved against the baseline divided by the scheme's switch count.
    pub fn energy_saved_per_switch(&self, baseline: &SimReport) -> f64 {
        let switches = self.switch_cycles();
        if switches == 0 {
            return 0.0;
        }
        (baseline.total_energy() - self.total_energy()) / switches as f64
    }

    /// Mean session delay introduced by batching, seconds (Fig. 15,
    /// Table 3). Zero when nothing was delayed.
    pub fn mean_session_delay(&self) -> f64 {
        mean_f64(&self.session_delays).unwrap_or(0.0)
    }

    /// Median session delay, seconds.
    pub fn median_session_delay(&self) -> f64 {
        median_f64(&self.session_delays).unwrap_or(0.0)
    }

    /// Policy-added latency: premature promotions × the carrier promotion
    /// delay would be seconds; reported here as the raw count so callers
    /// can scale by their profile.
    pub fn added_promotion_count(&self) -> u64 {
        self.premature_promotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total_tail: f64, promotions: u64) -> SimReport {
        let mut r = SimReport::new("x".into(), "c".into());
        r.energy.tail_dch = total_tail;
        r.counters.promotions = promotions;
        r
    }

    #[test]
    fn savings_percentage() {
        let base = report(100.0, 10);
        let better = report(40.0, 10);
        let worse = report(130.0, 10);
        assert!((better.savings_vs(&base) - 60.0).abs() < 1e-12);
        assert!((worse.savings_vs(&base) + 30.0).abs() < 1e-12);
        assert_eq!(report(5.0, 1).savings_vs(&report(0.0, 1)), 0.0);
    }

    #[test]
    fn normalized_switches_handles_zero_baseline() {
        let base = report(1.0, 0);
        assert_eq!(report(1.0, 0).normalized_switches(&base), 1.0);
        assert!(report(1.0, 3).normalized_switches(&base).is_infinite());
        let base = report(1.0, 4);
        assert_eq!(report(1.0, 6).normalized_switches(&base), 1.5);
    }

    #[test]
    fn energy_saved_per_switch() {
        let base = report(100.0, 10);
        let scheme = report(40.0, 20);
        assert!((scheme.energy_saved_per_switch(&base) - 3.0).abs() < 1e-12);
        assert_eq!(report(40.0, 0).energy_saved_per_switch(&base), 0.0);
    }

    #[test]
    fn delay_stats_empty_and_filled() {
        let mut r = report(0.0, 0);
        assert_eq!(r.mean_session_delay(), 0.0);
        assert_eq!(r.median_session_delay(), 0.0);
        r.session_delays = vec![2.0, 4.0, 9.0];
        assert_eq!(r.mean_session_delay(), 5.0);
        assert_eq!(r.median_session_delay(), 4.0);
    }
}
