//! MakeActive session batching: the trace transform of §5.
//!
//! When the radio is Idle and a new session (burst) wants to start, the
//! control module may hold it so that sessions arriving shortly after share
//! one Idle→Active promotion: "other new sessions that might come between
//! time t and t+T_fix_delay will all get buffered and will start together
//! at time t+T_fix_delay". Held sessions shift *rigidly* — "once a session
//! begins, its packets do not get further delayed" — so TCP dynamics inside
//! a session are unaffected.
//!
//! In the trace-driven setting this is a trace→trace transform: the engine
//! then replays the batched trace under MakeIdle (the paper's
//! "MakeIdle+MakeActive" rows). A burst finds the radio Idle when it
//! arrives more than the carrier's `t_threshold` after the last activity —
//! the horizon by which MakeIdle will have demoted (its candidate waits are
//! capped at `t_threshold`, where switching provably beats holding).

use tailwise_radio::fastdormancy::ReleasePolicy;
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::bursts::{self, Burst};
use tailwise_trace::time::{Duration, Instant};
use tailwise_trace::Trace;

use crate::engine::{run_with_release, SimConfig};
use crate::policy::{ActivePolicy, IdlePolicy};
use crate::report::SimReport;

/// Result of batching a trace.
#[derive(Debug, Clone)]
pub struct BatchingOutcome {
    /// The time-shifted trace.
    pub trace: Trace,
    /// Delay of every buffered session, seconds (the Fig. 15 / Table 3
    /// population). Sessions that found the radio active are not delayed
    /// and do not appear.
    pub delays: Vec<f64>,
    /// Number of batching rounds closed.
    pub rounds: u64,
}

struct OpenRound {
    opener: Instant,
    release: Instant,
    /// (burst index, arrival) of each buffered session.
    buffered: Vec<(usize, Instant)>,
}

/// Applies MakeActive batching to `trace`.
pub fn batch_sessions(
    profile: &CarrierProfile,
    config: &SimConfig,
    trace: &Trace,
    active: &mut dyn ActivePolicy,
) -> BatchingOutcome {
    let bursts = bursts::segment(trace, config.intra_burst_gap);
    let horizon = profile.t_threshold();
    let mut shifts: Vec<Duration> = vec![Duration::ZERO; bursts.len()];
    let mut delays: Vec<f64> = Vec::new();
    let mut rounds: u64 = 0;

    let mut active_until = Instant::ZERO - Duration::FOREVER; // radio starts Idle
    let mut open: Option<OpenRound> = None;

    for (i, b) in bursts.iter().enumerate() {
        if let Some(round) = &mut open {
            if b.start <= round.release {
                round.buffered.push((i, b.start));
                continue;
            }
            // Release before handling this burst.
            let closed = open.take().expect("round is open");
            close_round(
                &closed,
                &bursts,
                &mut shifts,
                &mut delays,
                &mut active_until,
                horizon,
                active,
            );
            rounds += 1;
        }
        if b.start <= active_until {
            // Radio still active: transmit as scheduled.
            active_until = b.end + horizon;
        } else {
            // Radio idle: open a batching round (a zero hold means the
            // policy does not batch — transmit immediately).
            let hold = active.open_round(b.start).max_zero();
            if hold.is_zero() {
                active_until = b.end + horizon;
            } else {
                open = Some(OpenRound {
                    opener: b.start,
                    release: b.start + hold,
                    buffered: vec![(i, b.start)],
                });
            }
        }
    }
    if let Some(round) = open.take() {
        close_round(&round, &bursts, &mut shifts, &mut delays, &mut active_until, horizon, active);
        rounds += 1;
    }

    // Rebuild the trace with per-burst shifts.
    let pkts = trace.packets();
    let mut shifted = Vec::with_capacity(pkts.len());
    for (i, b) in bursts.iter().enumerate() {
        let shift = shifts[i];
        for p in &pkts[b.first..b.end_index()] {
            shifted.push(p.shifted(shift));
        }
    }
    BatchingOutcome { trace: Trace::from_unsorted(shifted), delays, rounds }
}

fn close_round(
    round: &OpenRound,
    bursts: &[Burst],
    shifts: &mut [Duration],
    delays: &mut Vec<f64>,
    active_until: &mut Instant,
    horizon: Duration,
    active: &mut dyn ActivePolicy,
) {
    let mut offsets: Vec<f64> = Vec::with_capacity(round.buffered.len());
    for &(idx, arrival) in &round.buffered {
        let shift = round.release - arrival;
        debug_assert!(!shift.is_negative());
        shifts[idx] = shift;
        delays.push(shift.as_secs_f64());
        offsets.push((arrival - round.opener).as_secs_f64());
        let shifted_end = bursts[idx].end + shift;
        *active_until = (*active_until).max(shifted_end + horizon);
    }
    active.close_round(&offsets);
}

/// Runs the full MakeIdle+MakeActive pipeline: batch sessions, then replay
/// the batched trace under `idle_policy`.
pub fn run_batched(
    profile: &CarrierProfile,
    config: &SimConfig,
    trace: &Trace,
    idle_policy: &mut dyn IdlePolicy,
    active: &mut dyn ActivePolicy,
    release: &mut dyn ReleasePolicy,
) -> SimReport {
    let outcome = batch_sessions(profile, config, trace, active);
    let mut report = run_with_release(profile, config, &outcome.trace, idle_policy, release);
    report.scheme = format!("{}+{}", report.scheme, active.name());
    report.session_delays = outcome.delays;
    report.batching_rounds = outcome.rounds;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NoBatching;
    use tailwise_trace::packet::{Direction, Packet};

    fn att() -> CarrierProfile {
        CarrierProfile::att_hspa()
    }

    fn trace_at_secs(secs: &[f64]) -> Trace {
        Trace::from_sorted(
            secs.iter()
                .map(|&s| Packet::new(Instant::from_secs_f64(s), Direction::Down, 500))
                .collect(),
        )
        .unwrap()
    }

    /// A fixed-hold test policy.
    struct Hold(f64, Vec<Vec<f64>>);
    impl ActivePolicy for Hold {
        fn name(&self) -> String {
            "hold".into()
        }
        fn open_round(&mut self, _at: Instant) -> Duration {
            Duration::from_secs_f64(self.0)
        }
        fn close_round(&mut self, offsets: &[f64]) {
            self.1.push(offsets.to_vec());
        }
    }

    #[test]
    fn no_batching_is_identity() {
        let t = trace_at_secs(&[0.0, 10.0, 20.0]);
        let out = batch_sessions(&att(), &SimConfig::default(), &t, &mut NoBatching);
        assert_eq!(out.trace, t);
        assert!(out.delays.is_empty());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn sessions_inside_hold_window_merge() {
        // Sessions at 0 s, 3 s, 30 s; hold = 5 s. The first two join one
        // round releasing at t=5; the third opens its own round.
        let t = trace_at_secs(&[0.0, 3.0, 30.0]);
        let mut pol = Hold(5.0, Vec::new());
        let out = batch_sessions(&att(), &SimConfig::default(), &t, &mut pol);
        assert_eq!(out.rounds, 2);
        // First two packets both now start at t=5.
        let ts: Vec<f64> = out.trace.iter().map(|p| p.ts.as_secs_f64()).collect();
        assert!((ts[0] - 5.0).abs() < 1e-9);
        assert!((ts[1] - 5.0).abs() < 1e-9);
        assert!((ts[2] - 35.0).abs() < 1e-9);
        // Delays: 5 s (opener), 2 s (second), 5 s (third round's opener).
        let mut d = out.delays.clone();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(d.len(), 3);
        assert!((d[0] - 2.0).abs() < 1e-9);
        assert!((d[1] - 5.0).abs() < 1e-9);
        assert!((d[2] - 5.0).abs() < 1e-9);
        // The learner saw the offsets of the first round.
        assert_eq!(pol.1[0], vec![0.0, 3.0]);
        assert_eq!(pol.1[1], vec![0.0]);
    }

    #[test]
    fn bursts_arriving_while_active_are_not_delayed() {
        // Burst at 0 released at 2 s; burst at 2.5 s arrives within the
        // post-release activity horizon (t_threshold = 1.2 s after the
        // shifted end) → not delayed.
        let t = trace_at_secs(&[0.0, 2.5, 60.0]);
        let mut pol = Hold(2.0, Vec::new());
        let out = batch_sessions(&att(), &SimConfig::default(), &t, &mut pol);
        let ts: Vec<f64> = out.trace.iter().map(|p| p.ts.as_secs_f64()).collect();
        assert!((ts[0] - 2.0).abs() < 1e-9, "opener shifted to release");
        assert!((ts[1] - 2.5).abs() < 1e-9, "active-window burst untouched");
        // Two rounds: the opener at 0 and the far burst at 60.
        assert_eq!(out.rounds, 2);
        assert_eq!(out.delays.len(), 2);
    }

    #[test]
    fn batching_reduces_switches_without_burning_energy() {
        let p = att();
        let cfg = SimConfig::default();
        // Background chatter: sessions every 8 s (inside a 20 s hold window
        // several batch together).
        let secs: Vec<f64> = (0..60).map(|i| i as f64 * 8.0).collect();
        let t = trace_at_secs(&secs);
        let mut idle = crate::policy::FixedWait::new(Duration::from_millis(1000), "1s");
        let plain = crate::engine::run(&p, &cfg, &t, &mut idle);
        let mut idle = crate::policy::FixedWait::new(Duration::from_millis(1000), "1s");
        let mut hold = Hold(20.0, Vec::new());
        let batched = run_batched(
            &p,
            &cfg,
            &t,
            &mut idle,
            &mut hold,
            &mut tailwise_radio::fastdormancy::AlwaysAccept,
        );
        assert!(
            batched.switch_cycles() < plain.switch_cycles() / 2,
            "{} vs {}",
            batched.switch_cycles(),
            plain.switch_cycles()
        );
        assert!(batched.total_energy() < plain.total_energy());
        assert!(batched.batching_rounds > 0);
        assert!(!batched.session_delays.is_empty());
        assert!(batched.scheme.contains("hold"));
    }

    #[test]
    fn batched_trace_preserves_packet_count_and_intra_burst_shape() {
        // One three-packet burst, then a lone far session, so each round
        // holds exactly one burst and rigid shifting is observable.
        let t = trace_at_secs(&[0.0, 0.1, 0.2, 40.0]);
        let mut pol = Hold(5.0, Vec::new());
        let out = batch_sessions(&att(), &SimConfig::default(), &t, &mut pol);
        assert_eq!(out.trace.len(), t.len());
        let ts: Vec<f64> = out.trace.iter().map(|p| p.ts.as_secs_f64()).collect();
        // Burst shifted rigidly to its release at t=5, spacing intact.
        assert!((ts[0] - 5.0).abs() < 1e-9);
        assert!((ts[1] - ts[0] - 0.1).abs() < 1e-9);
        assert!((ts[2] - ts[1] - 0.1).abs() < 1e-9);
        assert!((ts[3] - 45.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_batches_to_empty() {
        let out = batch_sessions(
            &att(),
            &SimConfig::default(),
            &Trace::new(),
            &mut Hold(5.0, Vec::new()),
        );
        assert!(out.trace.is_empty());
        assert_eq!(out.rounds, 0);
    }
}
