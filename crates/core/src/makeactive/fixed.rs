//! MakeActive with a fixed delay bound (§5.1).
//!
//! "A simple strawman is to set a fixed delay bound, T_fix_delay. ... In
//! our implementation, we make T_fix_delay = k × (t1 + t2) where k is the
//! average number of bursts during each of the radio's active period."
//!
//! The rationale: under the status quo, bursts arriving within `t1 + t2`
//! of each other already share one Active period without extra switches,
//! so holding sessions for `k` of those windows restores the status-quo
//! switch count.

use tailwise_radio::profile::CarrierProfile;
use tailwise_sim::policy::ActivePolicy;
use tailwise_sim::SimConfig;
use tailwise_trace::bursts;
use tailwise_trace::time::{Duration, Instant};
use tailwise_trace::Trace;

/// Upper bound on the hold window: guards against degenerate `k` estimates
/// on extremely bursty traces (the paper's own delays stay well below
/// this).
pub const DEFAULT_MAX_BOUND: Duration = Duration::from_secs(30);

/// The fixed-delay-bound batcher.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedDelayBound {
    bound: Duration,
}

impl FixedDelayBound {
    /// Uses an explicit bound.
    pub fn new(bound: Duration) -> FixedDelayBound {
        FixedDelayBound { bound: bound.max_zero().min(DEFAULT_MAX_BOUND) }
    }

    /// The paper's rule with an explicit `k`: `T_fix = k · (t1 + t2)`.
    pub fn from_k(profile: &CarrierProfile, k: f64) -> FixedDelayBound {
        Self::new(profile.tail_window() * k.max(0.0))
    }

    /// Estimates `k` from a trace — the average number of bursts per
    /// status-quo Active period — and applies the paper's rule.
    pub fn from_trace(
        profile: &CarrierProfile,
        config: &SimConfig,
        trace: &Trace,
    ) -> FixedDelayBound {
        let bs = bursts::segment(trace, config.intra_burst_gap);
        let k = bursts::bursts_per_active_period(&bs, profile.tail_window());
        Self::from_k(profile, k.max(1.0))
    }

    /// The bound in force.
    pub fn bound(&self) -> Duration {
        self.bound
    }
}

impl ActivePolicy for FixedDelayBound {
    fn name(&self) -> String {
        "makeactive-fix".into()
    }

    fn open_round(&mut self, _at: Instant) -> Duration {
        self.bound
    }

    fn close_round(&mut self, _arrival_offsets: &[f64]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_trace::packet::{Direction, Packet};

    #[test]
    fn bound_follows_the_paper_formula() {
        let p = CarrierProfile::att_hspa(); // t1 + t2 = 16.6 s
        let f = FixedDelayBound::from_k(&p, 1.0);
        assert_eq!(f.bound(), Duration::from_secs_f64(16.6));
        // k = 1.5 exceeds the 30 s cap on AT&T (24.9 s < 30 → uncapped).
        let f = FixedDelayBound::from_k(&p, 1.5);
        assert!((f.bound().as_secs_f64() - 24.9).abs() < 1e-9);
        // Extreme k hits the cap.
        let f = FixedDelayBound::from_k(&p, 10.0);
        assert_eq!(f.bound(), DEFAULT_MAX_BOUND);
    }

    #[test]
    fn open_round_returns_the_constant_bound() {
        let mut f = FixedDelayBound::new(Duration::from_secs(7));
        assert_eq!(f.open_round(Instant::ZERO), Duration::from_secs(7));
        assert_eq!(f.open_round(Instant::from_secs(100)), Duration::from_secs(7));
        f.close_round(&[0.0, 2.0]); // no-op, must not panic
        assert_eq!(f.open_round(Instant::ZERO), Duration::from_secs(7));
    }

    #[test]
    fn from_trace_estimates_k() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        // Bursts every 5 s: all share active periods (gap < 16.6 s), so the
        // whole trace is one active period with 12 bursts → k = 12 → cap.
        let pkts: Vec<Packet> =
            (0..12).map(|i| Packet::new(Instant::from_secs(i * 5), Direction::Up, 100)).collect();
        let t = Trace::from_sorted(pkts).unwrap();
        let f = FixedDelayBound::from_trace(&p, &cfg, &t);
        assert_eq!(f.bound(), DEFAULT_MAX_BOUND);

        // Bursts every 60 s: each its own active period → k = 1 → 16.6 s.
        let pkts: Vec<Packet> =
            (0..12).map(|i| Packet::new(Instant::from_secs(i * 60), Direction::Up, 100)).collect();
        let t = Trace::from_sorted(pkts).unwrap();
        let f = FixedDelayBound::from_trace(&p, &cfg, &t);
        assert_eq!(f.bound(), p.tail_window());
    }

    #[test]
    fn negative_and_zero_inputs_clamp() {
        let p = CarrierProfile::att_hspa();
        assert_eq!(FixedDelayBound::from_k(&p, -2.0).bound(), Duration::ZERO);
        assert_eq!(FixedDelayBound::new(Duration::from_secs(-5)).bound(), Duration::ZERO);
    }
}
