//! MakeActive with the bank-of-experts learner (§5.2 + appendix).
//!
//! Each expert proposes a fixed session-delay bound `T_i = i` seconds; the
//! Learn-α two-layer forecaster maintains weights over the experts (and
//! over the switching rate α itself) and the policy announces the weighted
//! average as the hold window for each batching round. After the round
//! releases, every expert is scored with the paper's loss
//! `L(i) = γ·Delay(T_i) + 1/b` and the weights update.
//!
//! "Figure 16 shows that due to the loss function, the algorithm will
//! reduce the delay bound as the number of buffered bursts increase" — the
//! [`LearningDelay::history`] log exposes exactly that trajectory for the
//! Fig. 16 harness.

use tailwise_experts::learn_alpha::LearnAlpha;
use tailwise_experts::loss::MakeActiveLoss;
use tailwise_sim::policy::ActivePolicy;
use tailwise_trace::time::{Duration, Instant};

/// Configuration for [`LearningDelay`].
#[derive(Debug, Clone, PartialEq)]
pub struct LearningConfig {
    /// Number of delay experts; expert `i` proposes `i × expert_step`
    /// (paper: `T_i = i, i ∈ 1..n` seconds).
    pub experts: usize,
    /// Spacing between consecutive experts' proposals.
    pub expert_step: Duration,
    /// Number of α-experts in the Learn-α outer layer (`m`).
    pub alpha_experts: usize,
    /// Loss scale γ (paper: 0.008).
    pub gamma: f64,
    /// Keep at most this many history entries (Fig. 16 log).
    pub history_limit: usize,
}

impl Default for LearningConfig {
    fn default() -> LearningConfig {
        LearningConfig {
            experts: 16,
            expert_step: Duration::from_secs(1),
            alpha_experts: 8,
            gamma: 0.008,
            history_limit: 100_000,
        }
    }
}

/// One Fig.-16 history point: what the learner proposed and what it saw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// The hold window announced for the round, seconds.
    pub proposed_delay: f64,
    /// Sessions that ended up buffered in the round.
    pub buffered: usize,
}

/// The learning batcher.
#[derive(Debug, Clone)]
pub struct LearningDelay {
    config: LearningConfig,
    /// Expert proposals in seconds (fixed).
    proposals: Vec<f64>,
    learner: LearnAlpha,
    loss: MakeActiveLoss,
    /// Hold announced for the currently open round (to be logged at close).
    pending: Option<f64>,
    history: Vec<RoundRecord>,
}

impl LearningDelay {
    /// Creates a learner with the default configuration.
    pub fn new() -> LearningDelay {
        Self::with_config(LearningConfig::default())
    }

    /// Creates a learner with a custom configuration.
    pub fn with_config(config: LearningConfig) -> LearningDelay {
        assert!(config.experts >= 1, "need at least one delay expert");
        let proposals: Vec<f64> =
            (1..=config.experts).map(|i| config.expert_step.as_secs_f64() * i as f64).collect();
        let learner = LearnAlpha::with_default_grid(config.experts, config.alpha_experts);
        let loss = MakeActiveLoss::new(config.gamma);
        LearningDelay { config, proposals, learner, loss, pending: None, history: Vec::new() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LearningConfig {
        &self.config
    }

    /// The per-round learning trajectory (Fig. 16).
    pub fn history(&self) -> &[RoundRecord] {
        &self.history
    }

    /// The delay the learner would currently announce, seconds.
    pub fn current_delay(&self) -> f64 {
        self.learner.predict(&self.proposals)
    }

    /// The learner's current combined weights over the delay experts
    /// (diagnostic).
    pub fn expert_weights(&self) -> Vec<f64> {
        self.learner.combined_weights()
    }
}

impl Default for LearningDelay {
    fn default() -> Self {
        Self::new()
    }
}

impl ActivePolicy for LearningDelay {
    fn name(&self) -> String {
        "makeactive-learn".into()
    }

    fn open_round(&mut self, _at: Instant) -> Duration {
        let delay = self.current_delay();
        self.pending = Some(delay);
        Duration::from_secs_f64(delay)
    }

    fn close_round(&mut self, arrival_offsets: &[f64]) {
        debug_assert!(!arrival_offsets.is_empty());
        let losses = self.loss.losses(&self.proposals, arrival_offsets);
        self.learner.update(&losses);
        let proposed = self.pending.take().unwrap_or_else(|| self.current_delay());
        if self.history.len() < self.config.history_limit {
            self.history
                .push(RoundRecord { proposed_delay: proposed, buffered: arrival_offsets.len() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rounds(ld: &mut LearningDelay, rounds: usize, offsets: &[f64]) {
        for _ in 0..rounds {
            let _ = ld.open_round(Instant::ZERO);
            ld.close_round(offsets);
        }
    }

    #[test]
    fn initial_delay_is_mid_range() {
        let ld = LearningDelay::new();
        // Uniform weights over 1..=16 s → (1+16)/2 = 8.5 s.
        assert!((ld.current_delay() - 8.5).abs() < 1e-9);
    }

    #[test]
    fn lonely_sessions_shrink_the_delay() {
        // Every round buffers exactly one session: batching buys nothing,
        // delay is pure loss, so the learner should drift toward the
        // smallest expert.
        let mut ld = LearningDelay::new();
        let before = ld.current_delay();
        run_rounds(&mut ld, 200, &[0.0]);
        let after = ld.current_delay();
        assert!(after < before * 0.5, "delay {before} -> {after}");
        assert!(after < 3.0, "delay should approach 1 s, got {after}");
    }

    #[test]
    fn dense_arrivals_sustain_longer_delays() {
        // Sessions pour in throughout a 10 s window: larger bounds buffer
        // more sessions and win on the 1/b term.
        let offsets: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut sparse = LearningDelay::new();
        run_rounds(&mut sparse, 150, &[0.0]);
        let mut dense = LearningDelay::new();
        run_rounds(&mut dense, 150, &offsets);
        assert!(
            dense.current_delay() > sparse.current_delay() + 1.0,
            "dense {} vs sparse {}",
            dense.current_delay(),
            sparse.current_delay()
        );
    }

    #[test]
    fn history_records_each_round() {
        let mut ld = LearningDelay::new();
        run_rounds(&mut ld, 5, &[0.0, 1.0]);
        assert_eq!(ld.history().len(), 5);
        for r in ld.history() {
            assert_eq!(r.buffered, 2);
            assert!(r.proposed_delay > 0.0);
        }
    }

    #[test]
    fn fig16_shape_delay_falls_as_buffering_is_observed() {
        // Reproduce the Fig. 16 dynamic in miniature: rounds where only
        // one burst is ever buffered drive the proposed delay down across
        // iterations.
        let mut ld = LearningDelay::new();
        run_rounds(&mut ld, 30, &[0.0]);
        let h = ld.history();
        assert!(h.first().unwrap().proposed_delay > h.last().unwrap().proposed_delay);
    }

    #[test]
    fn delays_stay_within_the_expert_hull() {
        let mut ld = LearningDelay::new();
        for round in 0..100 {
            let offsets: Vec<f64> = (0..(round % 7 + 1)).map(|i| i as f64 * 1.3).collect();
            let d = ld.open_round(Instant::ZERO).as_secs_f64();
            assert!((1.0..=16.0 + 1e-9).contains(&d), "round {round}: {d}");
            ld.close_round(&offsets);
        }
    }

    #[test]
    fn weights_remain_normalized() {
        let mut ld = LearningDelay::new();
        run_rounds(&mut ld, 50, &[0.0, 0.5, 4.0]);
        let w = ld.expert_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn custom_config_is_respected() {
        let cfg = LearningConfig {
            experts: 4,
            expert_step: Duration::from_millis(500),
            alpha_experts: 3,
            gamma: 0.05,
            history_limit: 2,
        };
        let mut ld = LearningDelay::with_config(cfg);
        // Hull is now 0.5..=2.0 s.
        let d = ld.current_delay();
        assert!((0.5..=2.0).contains(&d));
        run_rounds(&mut ld, 5, &[0.0]);
        assert_eq!(ld.history().len(), 2); // capped
    }
}
