//! MakeActive: session batching to restore status-quo signaling levels
//! (§5).
//!
//! MakeIdle alone demotes aggressively and can multiply the number of
//! Idle↔Active switch cycles (signaling overhead at the base station).
//! MakeActive compensates by *delaying the start of new sessions* while the
//! radio is Idle so that several sessions share one promotion. Two
//! variants, exactly as in the paper:
//!
//! * [`fixed::FixedDelayBound`] — hold every round for
//!   `T_fix = k · (t1+t2)` (§5.1);
//! * [`learning::LearningDelay`] — learn the hold per round with a
//!   Learn-α bank of experts, halving the added delay at equal switch
//!   counts (§5.2, Fig. 15).
//!
//! Both implement `tailwise_sim::policy::ActivePolicy`; the trace transform
//! that applies them lives in `tailwise_sim::batching`.

pub mod fixed;
pub mod learning;

pub use fixed::FixedDelayBound;
pub use learning::{LearningConfig, LearningDelay, RoundRecord};
