//! The on-device control module of Figure 4.
//!
//! The paper's deployment story: a shim in the socket library reports every
//! socket call to a control module, which configures the radio (via fast
//! dormancy) and may hold new sessions for batching. This module is that
//! control module, expressed in the poll-based style of embedded network
//! stacks (the smoltcp idiom):
//!
//! * feed it socket events with [`ControlModule::on_event`];
//! * call [`ControlModule::poll`] whenever [`ControlModule::poll_at`] says
//!   something is due (an armed fast-dormancy timer, a batching release);
//! * obey the returned [`Action`]s — they are the module's only side
//!   channel, so the host OS keeps full control of the modem.
//!
//! The simulation engine does not go through this interface (it drives the
//! policies directly for speed); `examples/online_control.rs` and the
//! integration tests do, which keeps the deployable API honest.

use tailwise_radio::profile::CarrierProfile;
use tailwise_sim::policy::{ActivePolicy, IdleContext, IdlePolicy};
use tailwise_sim::IdleDecision;
use tailwise_trace::stats::SlidingWindow;
use tailwise_trace::time::{Duration, Instant};

use crate::makeactive::LearningDelay;
use crate::makeidle::MakeIdle;

/// A socket-layer event, as reported by the library shim (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketEvent {
    /// An application opened a new connection (a session wants to start).
    Connect,
    /// Bytes were handed to the network on an existing connection.
    Send {
        /// Payload size in bytes.
        bytes: u32,
    },
    /// Bytes arrived from the network.
    Recv {
        /// Payload size in bytes.
        bytes: u32,
    },
    /// A connection closed.
    Close,
}

/// A command from the control module to the host OS / modem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a 3GPP fast-dormancy request to the base station.
    RequestFastDormancy,
    /// Buffer this session; do not bring the radio up for it yet.
    HoldSession {
        /// The connection being held.
        flow: u32,
        /// When the hold expires.
        release_at: Instant,
    },
    /// Release all held sessions now (the radio is coming up once for all
    /// of them).
    ReleaseSessions {
        /// The flows being released, in arrival order.
        flows: Vec<u32>,
    },
}

/// The control module: MakeIdle always on, MakeActive optional.
#[derive(Debug)]
pub struct ControlModule {
    profile: CarrierProfile,
    makeidle: MakeIdle,
    window: SlidingWindow,
    batcher: Option<LearningDelay>,
    /// §6.5: "when any [delay-sensitive application] is running in the
    /// foreground, the system disables MakeActive."
    interactive: bool,
    last_packet: Option<Instant>,
    /// Armed fast-dormancy deadline (cleared by traffic or by firing).
    fd_deadline: Option<Instant>,
    /// Mirror of the modem's idle/active state.
    radio_idle: bool,
    /// Held sessions: (flow, arrival).
    held: Vec<(u32, Instant)>,
    /// When the open batching round releases.
    release_at: Option<Instant>,
}

impl ControlModule {
    /// A control module running MakeIdle only.
    pub fn new(profile: CarrierProfile) -> ControlModule {
        Self::build(profile, None)
    }

    /// A control module running MakeIdle plus the learning MakeActive.
    pub fn with_batching(profile: CarrierProfile) -> ControlModule {
        Self::build(profile, Some(LearningDelay::new()))
    }

    fn build(profile: CarrierProfile, batcher: Option<LearningDelay>) -> ControlModule {
        profile.validate().expect("invalid carrier profile");
        ControlModule {
            profile,
            makeidle: MakeIdle::new(),
            window: SlidingWindow::new(100),
            batcher,
            interactive: false,
            last_packet: None,
            fd_deadline: None,
            radio_idle: true,
            held: Vec::new(),
            release_at: None,
        }
    }

    /// Marks an interactive (delay-sensitive) application as foregrounded,
    /// disabling session holding while set (§6.5).
    pub fn set_interactive(&mut self, interactive: bool) {
        self.interactive = interactive;
    }

    /// Whether the module currently believes the radio is idle.
    pub fn radio_idle(&self) -> bool {
        self.radio_idle
    }

    /// Sessions currently held for batching.
    pub fn held_sessions(&self) -> usize {
        self.held.len()
    }

    /// The next instant at which [`poll`](Self::poll) has work to do, if
    /// any. Hosts should arrange a timer for this instant.
    pub fn poll_at(&self) -> Option<Instant> {
        match (self.fd_deadline, self.release_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Reports a socket event at time `now` on connection `flow`.
    pub fn on_event(&mut self, now: Instant, flow: u32, event: SocketEvent) -> Vec<Action> {
        // Fire anything already due first, so ordering cannot be skipped
        // by a busy host.
        let mut actions = self.poll(now);
        match event {
            SocketEvent::Connect => {
                let batching_wanted =
                    self.batcher.is_some() && !self.interactive && self.radio_idle;
                if batching_wanted {
                    if self.release_at.is_none() {
                        let hold = self
                            .batcher
                            .as_mut()
                            .expect("batching_wanted implies batcher")
                            .open_round(now);
                        self.release_at = Some(now + hold);
                    }
                    let release_at = self.release_at.expect("round just ensured");
                    self.held.push((flow, now));
                    actions.push(Action::HoldSession { flow, release_at });
                } else {
                    // Session starts immediately: traffic will follow.
                    self.note_traffic(now);
                }
            }
            SocketEvent::Send { .. } | SocketEvent::Recv { .. } => {
                self.note_traffic(now);
                // Re-arm the demotion timer from this packet.
                let ctx = IdleContext { profile: &self.profile, window: &self.window, now };
                self.fd_deadline = match self.makeidle.decide(&ctx, Duration::FOREVER) {
                    IdleDecision::DemoteAfter(w) => Some(now + w),
                    IdleDecision::Timers => None,
                };
            }
            SocketEvent::Close => {}
        }
        actions
    }

    /// Fires any timers that are due at `now`: batching releases and
    /// fast-dormancy requests.
    pub fn poll(&mut self, now: Instant) -> Vec<Action> {
        let mut actions = Vec::new();
        if let Some(release) = self.release_at {
            if now >= release {
                let flows: Vec<u32> = self.held.iter().map(|&(f, _)| f).collect();
                let opener = self.held.first().map(|&(_, a)| a);
                if let (Some(batcher), Some(opener)) = (self.batcher.as_mut(), opener) {
                    let offsets: Vec<f64> =
                        self.held.iter().map(|&(_, a)| (a - opener).as_secs_f64()).collect();
                    batcher.close_round(&offsets);
                }
                self.held.clear();
                self.release_at = None;
                if !flows.is_empty() {
                    // The release itself is traffic: the radio comes up.
                    self.note_traffic(now.max(release));
                    actions.push(Action::ReleaseSessions { flows });
                }
            }
        }
        if let Some(deadline) = self.fd_deadline {
            if now >= deadline && !self.radio_idle {
                self.radio_idle = true;
                self.fd_deadline = None;
                actions.push(Action::RequestFastDormancy);
            }
        }
        actions
    }

    fn note_traffic(&mut self, now: Instant) {
        if let Some(prev) = self.last_packet {
            let gap = (now - prev).max_zero();
            self.window.push(gap);
        }
        self.last_packet = Some(now);
        self.radio_idle = false;
        self.fd_deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> Instant {
        Instant::from_secs_f64(s)
    }

    /// Warm the window with long gaps so MakeIdle decides to demote.
    fn warmed_module() -> ControlModule {
        let mut m = ControlModule::new(CarrierProfile::att_hspa());
        for i in 0..20 {
            m.on_event(t(i as f64 * 30.0), 1, SocketEvent::Send { bytes: 100 });
        }
        m
    }

    #[test]
    fn fast_dormancy_fires_after_the_learned_wait() {
        let mut m = warmed_module();
        assert!(!m.radio_idle());
        let deadline = m.poll_at().expect("an FD timer must be armed");
        // Nothing due just before the deadline...
        assert!(m.poll(deadline - Duration::from_millis(1)).is_empty());
        // ...and the request fires at it.
        let actions = m.poll(deadline);
        assert_eq!(actions, vec![Action::RequestFastDormancy]);
        assert!(m.radio_idle());
        // Idempotent afterwards.
        assert!(m.poll(deadline + Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn traffic_rearms_the_demotion_timer() {
        let mut m = warmed_module();
        let d1 = m.poll_at().unwrap();
        // Traffic after the deadline: the pending fast dormancy fires
        // first, the new packet re-promotes, and a fresh deadline is armed.
        let next = d1 + Duration::from_secs(1);
        let actions = m.on_event(next, 1, SocketEvent::Recv { bytes: 100 });
        assert!(actions.contains(&Action::RequestFastDormancy));
        assert!(!m.radio_idle());
        let d2 = m.poll_at().unwrap();
        assert!(d2 >= next);
        assert!(d2 > d1);
    }

    #[test]
    fn cold_module_defers_to_timers() {
        let mut m = ControlModule::new(CarrierProfile::att_hspa());
        m.on_event(t(0.0), 1, SocketEvent::Send { bytes: 10 });
        // Window too cold for MakeIdle: no FD timer armed.
        assert_eq!(m.poll_at(), None);
    }

    #[test]
    fn connects_while_idle_are_held_and_released_together() {
        let mut m = ControlModule::with_batching(CarrierProfile::att_hspa());
        // Warm up and let the radio demote.
        for i in 0..20 {
            m.on_event(t(i as f64 * 30.0), 1, SocketEvent::Send { bytes: 100 });
        }
        let deadline = m.poll_at().unwrap();
        m.poll(deadline);
        assert!(m.radio_idle());

        // Two sessions connect while idle.
        let base = deadline + Duration::from_secs(10);
        let a1 = m.on_event(base, 7, SocketEvent::Connect);
        assert_eq!(a1.len(), 1);
        let release_at = match a1[0] {
            Action::HoldSession { flow: 7, release_at } => release_at,
            ref other => panic!("expected hold, got {other:?}"),
        };
        assert!(release_at > base);
        let a2 = m.on_event(base + Duration::from_secs(1), 8, SocketEvent::Connect);
        assert!(matches!(a2[0], Action::HoldSession { flow: 8, .. }));
        assert_eq!(m.held_sessions(), 2);

        // At the release instant both flows come out together.
        let actions = m.poll(release_at);
        assert!(actions.contains(&Action::ReleaseSessions { flows: vec![7, 8] }));
        assert_eq!(m.held_sessions(), 0);
        assert!(!m.radio_idle(), "release brings the radio up");
    }

    #[test]
    fn interactive_mode_disables_holding() {
        let mut m = ControlModule::with_batching(CarrierProfile::att_hspa());
        for i in 0..20 {
            m.on_event(t(i as f64 * 30.0), 1, SocketEvent::Send { bytes: 100 });
        }
        let deadline = m.poll_at().unwrap();
        m.poll(deadline);
        assert!(m.radio_idle());

        m.set_interactive(true);
        let actions = m.on_event(deadline + Duration::from_secs(5), 9, SocketEvent::Connect);
        // No hold: the session starts immediately (only possibly-due timer
        // actions may precede, none here).
        assert!(actions.iter().all(|a| !matches!(a, Action::HoldSession { .. })));
        assert_eq!(m.held_sessions(), 0);
        assert!(!m.radio_idle());
    }

    #[test]
    fn connects_while_active_start_immediately() {
        let mut m = ControlModule::with_batching(CarrierProfile::att_hspa());
        m.on_event(t(0.0), 1, SocketEvent::Send { bytes: 10 });
        assert!(!m.radio_idle());
        let actions = m.on_event(t(0.5), 2, SocketEvent::Connect);
        assert!(actions.iter().all(|a| !matches!(a, Action::HoldSession { .. })));
    }

    #[test]
    fn close_events_are_inert() {
        let mut m = warmed_module();
        let before = m.poll_at();
        let actions =
            m.on_event(m.poll_at().unwrap() - Duration::from_millis(1), 1, SocketEvent::Close);
        assert!(actions.is_empty());
        assert_eq!(m.poll_at(), before);
    }
}
