//! MakeIdle: the online demotion predictor of §4.
//!
//! After each packet, MakeIdle chooses how long to wait before requesting
//! fast dormancy, using the empirical inter-arrival distribution of the
//! last *n* packets (§4.2). The paper's recipe:
//!
//! 1. `P(t_wait) = P(no packet in t_wait + t_threshold | none in t_wait)` —
//!    the conditional confidence that the burst has ended, which grows with
//!    the observed silence (exposed here as
//!    [`MakeIdle::p_gap_exceeds_threshold`]);
//! 2. pick the wait by *energy*: choose the `t_wait` that maximizes
//!    `f(t_wait) = E[E_no_switch] − E[E_wait_switch]` (eqs. 1–2).
//!
//! ### Formula reconstruction (documented deviation)
//!
//! Read literally, the paper's eq. 1 does not depend on `t_wait` and its
//! integrand `P(iat = t)·dE/dt` has units of power, not energy. We use the
//! reading that makes the surrounding argument go through (see DESIGN.md
//! §3): for each candidate wait `w`, compare the *expected gap energy* of
//! the strategy "hold for `w`, then demote if still silent" against the
//! status quo, both under the windowed empirical distribution `F`:
//!
//! ```text
//! E_status_quo   = E_F[ E(T) ]                       (E = Fig. 5 tail energy)
//! E_strategy(w)  = E_F[ E(T) · 1{T ≤ w} ]
//!                + P_F(T > w) · (hold(w) + E_switch)
//! f(w)           = E_status_quo − E_strategy(w)
//! ```
//!
//! The chosen wait is `argmax f(w)` over a grid of candidates in
//! `[0, t_threshold]`; if even the best candidate has `f(w) ≤ 0` the radio
//! is left to the inactivity timers. Waits above `t_threshold` are never
//! useful: past the threshold, switching immediately already beats holding
//! (§4.1), so the grid is capped there.
//!
//! One virtual sample augments the window: a single *session-ending gap*
//! (full tail energy). A window of `n` packets cannot witness a gap longer
//! than the burst that fills it — after a 200-packet transfer every
//! windowed inter-arrival is a millisecond, and the raw empirical
//! distribution would "prove" that long gaps never happen, pinning the
//! radio up forever. The paper's conditional formulation has the same
//! escape hatch (silence beyond the observed support drives
//! `P(t_wait) → 1`); the virtual sample expresses it in the energy
//! formulation with weight `1/(n+1)`, which also reproduces the Fig. 13
//! shape — small windows are more optimistic, so false switches fall as
//! `n` grows while missed switches stay flat.
//!
//! The evaluation is O(n + C·log n) per decision (suffix sums over the
//! sorted window; C = grid size), fast enough to run per-packet on a phone
//! — the §6.6 overhead bench measures exactly this path.

use tailwise_sim::policy::{IdleContext, IdleDecision, IdlePolicy};
use tailwise_trace::time::Duration;

/// Configuration for [`MakeIdle`].
#[derive(Debug, Clone, PartialEq)]
pub struct MakeIdleConfig {
    /// Number of candidate waits on the `[0, t_threshold]` grid
    /// (endpoints included). Swept by `ablation_candidate_grid`.
    pub candidates: usize,
    /// Gaps observed before the predictor engages; until then it defers to
    /// the inactivity timers (cold start).
    pub min_samples: usize,
}

impl Default for MakeIdleConfig {
    fn default() -> MakeIdleConfig {
        MakeIdleConfig { candidates: 25, min_samples: 10 }
    }
}

/// Fingerprint of every profile/config input the cached candidate grid
/// depends on (`t_threshold` fixes the waits; `t1`/`p_dch`/`p_fach` fix
/// each wait's hold energy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GridKey {
    threshold_us: i64,
    candidates: usize,
    t1_us: i64,
    p_dch_bits: u64,
    p_fach_bits: u64,
}

/// The MakeIdle policy. The inter-arrival window itself is owned by the
/// simulation engine (its capacity is the paper's *n*, default 100,
/// swept in Fig. 13) and handed in through the [`IdleContext`].
#[derive(Debug, Clone, Default)]
pub struct MakeIdle {
    config: MakeIdleConfig,
    /// Scratch buffer of cumulative sample microseconds (reused across
    /// decisions): `prefix_us[k]` = Σ of the first `k` sorted samples.
    /// Integer accumulation keeps the per-sample sweep to one add; the
    /// float conversion happens only at the O(candidates) cut points.
    prefix_us: Vec<i64>,
    /// Scratch: per-candidate `(k, Σ first k sample-µs)` where `k` is
    /// the number of samples ≤ the candidate wait.
    cut: Vec<(usize, i64)>,
    /// Cached candidate grid for the current profile: `(wait,
    /// hold_energy(wait))` per candidate. Profiles are fixed for a whole
    /// run, so this builds once; the key fingerprints every profile
    /// field the cached values depend on, so a policy instance reused
    /// across carriers stays correct.
    grid: Vec<(Duration, f64)>,
    grid_key: Option<GridKey>,
}

impl MakeIdle {
    /// Creates a MakeIdle policy with the default configuration.
    pub fn new() -> MakeIdle {
        MakeIdle::default()
    }

    /// Creates a MakeIdle policy with a custom configuration.
    pub fn with_config(config: MakeIdleConfig) -> MakeIdle {
        MakeIdle { config, ..MakeIdle::default() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MakeIdleConfig {
        &self.config
    }

    /// The paper's step-1 diagnostic: `P(no packet within w + t_threshold |
    /// no packet within w)` under the window distribution.
    pub fn p_gap_exceeds_threshold(ctx: &IdleContext<'_>, w: Duration) -> f64 {
        ctx.window.conditional_survival(w, w + ctx.profile.t_threshold())
    }

    /// Evaluates `f(w)` for every candidate and returns the best
    /// `(wait, f)` pair, or `None` when the window is still cold.
    ///
    /// Public so the Fig. 14 harness can plot the chosen waits without
    /// running a full simulation.
    ///
    /// ### Hot-path note
    ///
    /// This runs once per packet gap over the whole fleet, so the
    /// per-sample energy evaluation is done in closed form: `E(t)` is
    /// piecewise linear in `t` below the tail window and constant above
    /// it, so Σ `E(sᵢ)` over any sorted prefix reduces to prefix sums of
    /// raw sample seconds plus per-piece coefficients. The only
    /// per-sample work left is one conversion and one addition;
    /// [`best_wait_reference`](Self::best_wait_reference) keeps the
    /// direct per-sample evaluation and the equivalence is pinned by a
    /// property test.
    pub fn best_wait(&mut self, ctx: &IdleContext<'_>) -> Option<(Duration, f64)> {
        let samples = ctx.window.sorted_samples();
        if samples.len() < self.config.min_samples {
            return None;
        }
        let profile = ctx.profile;
        let e_switch = profile.e_switch();
        let t1 = profile.t1;
        let tail_window = profile.tail_window();
        let t1_secs = t1.as_secs_f64();
        // Past both timers E(t) is the constant full status-quo cycle —
        // also the energy of the virtual session-ending pseudo-sample
        // (see module docs).
        let e_cycle = profile.gap_energy(tail_window + Duration::from_secs(1));
        let n = samples.len() as f64 + 1.0;

        // The candidate grid (and each candidate's hold energy) depends
        // only on the profile, which is fixed for a whole run: build once.
        let c = self.config.candidates.max(2);
        let threshold = profile.t_threshold();
        let key = GridKey {
            threshold_us: threshold.as_micros(),
            candidates: c,
            t1_us: t1.as_micros(),
            p_dch_bits: profile.p_dch.to_bits(),
            p_fach_bits: profile.p_fach.to_bits(),
        };
        if self.grid_key != Some(key) {
            self.grid.clear();
            for i in 0..c {
                let w = Duration::from_micros(
                    (threshold.as_micros() as f64 * i as f64 / (c - 1) as f64).round() as i64,
                );
                self.grid.push((w, profile.hold_energy(w)));
            }
            self.grid_key = Some(key);
        }

        // One sweep over the sorted samples builds the cumulative-µs
        // prefix AND the per-candidate cuts (k = #samples ≤ wait, plus
        // the prefix at k) — candidates ascend, so a single forward
        // pointer replaces a binary search per candidate, and the only
        // per-sample work is one integer add.
        self.prefix_us.clear();
        self.prefix_us.push(0);
        self.cut.clear();
        let mut acc: i64 = 0;
        let mut gi = 0;
        for (idx, &s) in samples.iter().enumerate() {
            while gi < c && s > self.grid[gi].0 {
                self.cut.push((idx, acc));
                gi += 1;
            }
            acc += s.as_micros();
            self.prefix_us.push(acc);
        }
        while gi < c {
            self.cut.push((samples.len(), acc));
            gi += 1;
        }
        let secs = |us: i64| us as f64 * 1e-6;
        // Piece boundaries within the sorted samples.
        let k1 = samples.partition_point(|&s| s <= t1);
        let k2 = samples.partition_point(|&s| s <= tail_window);
        // Σ E(sᵢ) for the first k sorted samples, in closed form from the
        // prefix sums (E is linear within each piece).
        let energy_prefix = |k: usize, pus_k: i64| -> f64 {
            if k <= k1 {
                // Piece 1 only (s ≤ t1): E = p_dch·s.
                return profile.p_dch * secs(pus_k);
            }
            let mut sum = profile.p_dch * secs(self.prefix_us[k1]);
            // Piece 2 (t1 < s ≤ t1+t2): E = p_dch·t1 + p_fach·(s − t1).
            let b = k.min(k2);
            let m = (b - k1) as f64;
            let piece_secs = secs(self.prefix_us[b] - self.prefix_us[k1]);
            sum += m * profile.p_dch * t1_secs + profile.p_fach * (piece_secs - m * t1_secs);
            // Piece 3 (s beyond the timers): E is the constant cycle.
            if k > k2 {
                sum += (k - k2) as f64 * e_cycle;
            }
            sum
        };
        let e_status_quo = (energy_prefix(samples.len(), acc) + e_cycle) / n;

        let mut best: Option<(Duration, f64)> = None;
        for (&(w, hold), &(k, pus_k)) in self.grid.iter().zip(&self.cut) {
            // k samples interrupt the hold; the virtual long gap survives
            // every candidate.
            let survivors = samples.len() - k + 1;
            let e_strategy = (energy_prefix(k, pus_k) + survivors as f64 * (hold + e_switch)) / n;
            let f = e_status_quo - e_strategy;
            if best.is_none_or(|(_, fb)| f > fb) {
                best = Some((w, f));
            }
        }
        best
    }

    /// The direct per-sample evaluation of `f(w)` — the formula as
    /// written in the module docs, with no algebraic regrouping. Kept as
    /// the oracle for the [`best_wait`](Self::best_wait) equivalence
    /// property test and for ablation studies that want to instrument
    /// per-sample energies.
    pub fn best_wait_reference(&self, ctx: &IdleContext<'_>) -> Option<(Duration, f64)> {
        let samples = ctx.window.sorted_samples();
        if samples.len() < self.config.min_samples {
            return None;
        }
        let profile = ctx.profile;
        let threshold = profile.t_threshold();
        let e_switch = profile.e_switch();
        let e_virtual = profile.gap_energy(profile.tail_window() + Duration::from_secs(1));
        let n = samples.len() as f64 + 1.0;

        let mut energies = Vec::with_capacity(samples.len());
        let mut acc = 0.0;
        for &s in samples {
            acc += profile.gap_energy(s);
            energies.push(acc);
        }
        let e_status_quo = (acc + e_virtual) / n;
        let prefix = |k: usize| if k == 0 { 0.0 } else { energies[k - 1] };

        let c = self.config.candidates.max(2);
        let mut best: Option<(Duration, f64)> = None;
        for i in 0..c {
            let w = Duration::from_micros(
                (threshold.as_micros() as f64 * i as f64 / (c - 1) as f64).round() as i64,
            );
            let k = samples.partition_point(|&s| s <= w);
            let survivors = samples.len() - k + 1;
            let e_strategy =
                (prefix(k) + survivors as f64 * (profile.hold_energy(w) + e_switch)) / n;
            let f = e_status_quo - e_strategy;
            if best.is_none_or(|(_, fb)| f > fb) {
                best = Some((w, f));
            }
        }
        best
    }
}

impl IdlePolicy for MakeIdle {
    fn name(&self) -> String {
        "makeidle".into()
    }

    fn decide(&mut self, ctx: &IdleContext<'_>, _actual_gap: Duration) -> IdleDecision {
        match self.best_wait(ctx) {
            Some((w, f)) if f > 0.0 => IdleDecision::DemoteAfter(w),
            // Cold window, or every candidate loses to the status quo.
            _ => IdleDecision::Timers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_radio::profile::CarrierProfile;
    use tailwise_trace::stats::SlidingWindow;
    use tailwise_trace::time::Instant;

    fn window_of(gaps_s: &[f64]) -> SlidingWindow {
        let mut w = SlidingWindow::new(100);
        for &g in gaps_s {
            w.push(Duration::from_secs_f64(g));
        }
        w
    }

    fn ctx<'a>(p: &'a CarrierProfile, w: &'a SlidingWindow) -> IdleContext<'a> {
        IdleContext { profile: p, window: w, now: Instant::ZERO }
    }

    #[test]
    fn cold_window_defers_to_timers() {
        let p = CarrierProfile::att_hspa();
        let w = window_of(&[10.0; 5]); // below min_samples = 10
        let mut mi = MakeIdle::new();
        assert_eq!(mi.decide(&ctx(&p, &w), Duration::from_secs(30)), IdleDecision::Timers);
        assert!(mi.best_wait(&ctx(&p, &w)).is_none());
    }

    #[test]
    fn long_gap_history_demotes_immediately() {
        // Every observed gap is 30 s: holding is pure waste, so the best
        // wait is (near) zero and f is strongly positive.
        let p = CarrierProfile::att_hspa();
        let w = window_of(&[30.0; 50]);
        let mut mi = MakeIdle::new();
        let (wait, f) = mi.best_wait(&ctx(&p, &w)).unwrap();
        assert!(f > 0.0);
        assert_eq!(wait, Duration::ZERO);
        match mi.decide(&ctx(&p, &w), Duration::from_secs(30)) {
            IdleDecision::DemoteAfter(d) => assert_eq!(d, Duration::ZERO),
            other => panic!("expected demote, got {other:?}"),
        }
    }

    #[test]
    fn short_gap_history_waits_out_the_support() {
        // Every observed gap is 0.3 s: in-burst silence must be waited
        // out, but silence *beyond* the observed support means the session
        // ended (the virtual-sample prior) — so the chosen wait sits just
        // past 0.3 s and never below it.
        let p = CarrierProfile::att_hspa();
        let w = window_of(&[0.3; 50]);
        let mut mi = MakeIdle::new();
        let (wait, f) = mi.best_wait(&ctx(&p, &w)).unwrap();
        assert!(f > 0.0, "f = {f}");
        // Samples exactly at the wait count as interrupting the hold
        // (the engine demotes only when gap > wait), so w* = 0.3 itself
        // is the tightest safe wait.
        assert!(wait >= Duration::from_millis(300), "w* = {wait}");
        assert!(wait <= p.t_threshold());
        // A 0.25 s gap (inside the support) therefore never demotes…
        match mi.decide(&ctx(&p, &w), Duration::from_millis(250)) {
            IdleDecision::DemoteAfter(chosen) => {
                assert!(chosen >= Duration::from_millis(250));
            }
            IdleDecision::Timers => {}
        }
    }

    #[test]
    fn bimodal_history_waits_out_the_short_mode() {
        // Half the gaps are 0.4 s (in-burst), half are 30 s (session ends).
        // The optimal strategy holds just past the short mode, then
        // demotes: 0 < w* ≤ threshold, and demoting must win (f > 0).
        let p = CarrierProfile::att_hspa();
        let mut gaps = vec![0.4; 25];
        gaps.extend(vec![30.0; 25]);
        let w = window_of(&gaps);
        let mut mi = MakeIdle::new();
        let (wait, f) = mi.best_wait(&ctx(&p, &w)).unwrap();
        assert!(f > 0.0, "f = {f}");
        // Samples exactly at the wait count as interrupting the hold, so
        // w* = 0.4 s itself already excludes the short mode.
        assert!(wait >= Duration::from_millis(400), "w* = {wait}");
        assert!(wait <= p.t_threshold());
    }

    #[test]
    fn chosen_wait_never_exceeds_threshold() {
        let p = CarrierProfile::verizon_lte();
        for pattern in [&[0.1, 5.0][..], &[1.0, 1.0, 20.0], &[8.0; 3]] {
            let gaps: Vec<f64> = pattern.iter().cycle().take(60).copied().collect();
            let w = window_of(&gaps);
            let mut mi = MakeIdle::new();
            if let Some((wait, _)) = mi.best_wait(&ctx(&p, &w)) {
                assert!(wait <= p.t_threshold());
            }
        }
    }

    #[test]
    fn p_twait_increases_with_wait_on_bursty_traffic() {
        // The paper's observation: "P(t_wait) increases as t_wait
        // increases" on real (bursty) inter-arrival distributions.
        let p = CarrierProfile::att_hspa();
        let mut gaps = vec![0.05; 40]; // dense in-burst gaps
        gaps.extend(vec![10.0; 20]); // session gaps
        let w = window_of(&gaps);
        let c = ctx(&p, &w);
        let p0 = MakeIdle::p_gap_exceeds_threshold(&c, Duration::ZERO);
        let p_half = MakeIdle::p_gap_exceeds_threshold(&c, Duration::from_millis(600));
        assert!(p_half >= p0, "{p_half} < {p0}");
    }

    #[test]
    fn decision_ignores_the_actual_gap() {
        // MakeIdle is online: whatever the future holds, the decision is a
        // function of the window only.
        let p = CarrierProfile::att_hspa();
        let w = window_of(&[30.0; 50]);
        let mut mi = MakeIdle::new();
        let a = mi.decide(&ctx(&p, &w), Duration::from_millis(1));
        let b = mi.decide(&ctx(&p, &w), Duration::from_secs(1000));
        assert_eq!(a, b);
    }

    #[test]
    fn reused_instance_refreshes_grid_across_profiles() {
        // Two profiles with the same t_threshold (all powers and switch
        // energies scaled ×2, so the ratio is invariant) must not share
        // cached hold energies when one MakeIdle instance serves both.
        let a = CarrierProfile::att_hspa();
        let mut b = a.clone();
        b.p_dch *= 2.0;
        b.p_fach *= 2.0;
        b.e_promote *= 2.0;
        b.e_demote_base *= 2.0;
        assert_eq!(a.t_threshold(), b.t_threshold());

        let mut gaps = vec![0.4; 25];
        gaps.extend(vec![30.0; 25]);
        let w = window_of(&gaps);
        let mut mi = MakeIdle::new();
        for p in [&a, &b, &a] {
            let fast = mi.best_wait(&ctx(p, &w)).unwrap();
            let reference = mi.best_wait_reference(&ctx(p, &w)).unwrap();
            assert_eq!(fast.0, reference.0, "wait mismatch on {}", p.name);
            assert!(
                (fast.1 - reference.1).abs() <= 1e-9 * reference.1.abs().max(1.0),
                "f mismatch on {}: {fast:?} vs {reference:?}",
                p.name
            );
        }
    }

    #[test]
    fn grid_resolution_changes_granularity_not_direction() {
        let p = CarrierProfile::att_hspa();
        let mut gaps = vec![0.4; 25];
        gaps.extend(vec![30.0; 25]);
        let w = window_of(&gaps);
        let mut coarse = MakeIdle::with_config(MakeIdleConfig { candidates: 3, min_samples: 10 });
        let mut fine = MakeIdle::with_config(MakeIdleConfig { candidates: 200, min_samples: 10 });
        let (_, f_coarse) = coarse.best_wait(&ctx(&p, &w)).unwrap();
        let (_, f_fine) = fine.best_wait(&ctx(&p, &w)).unwrap();
        // Finer grids can only find an equal-or-better optimum.
        assert!(f_fine + 1e-12 >= f_coarse);
    }
}
