//! The paper-literal confidence rule — an ablation comparator for
//! MakeIdle's energy rule.
//!
//! §4.2 step 1 defines the conditional probability
//! `P(t_wait) = P(no packet within t_wait + t_threshold | none within
//! t_wait)` and asks for the smallest wait that makes it "high enough";
//! step 2 then defines "high enough" through expected energy, which is
//! what [`crate::makeidle::MakeIdle`] implements. This module implements
//! the *literal* alternative — a fixed confidence threshold θ — so the
//! `ablation_decision_rule` bench can quantify what the energy
//! formulation buys:
//!
//! > demote after the smallest `w` with `P(w) ≥ θ`.
//!
//! A pure θ rule has no notion of how much energy is at stake, so it
//! over-switches on cheap gaps and under-switches on expensive ones; the
//! ablation shows it trailing the energy rule at every θ.

use tailwise_sim::policy::{IdleContext, IdleDecision, IdlePolicy};
use tailwise_trace::time::Duration;

/// MakeIdle with the literal `P(t_wait) ≥ θ` decision rule.
#[derive(Debug, Clone)]
pub struct ConfidenceRule {
    /// Confidence threshold θ ∈ (0, 1].
    theta: f64,
    /// Candidate-grid resolution over `[0, t_threshold]`.
    candidates: usize,
    /// Cold-start sample requirement.
    min_samples: usize,
}

impl ConfidenceRule {
    /// Creates a rule with threshold θ and defaults matching
    /// [`crate::makeidle::MakeIdleConfig`].
    ///
    /// # Panics
    /// Panics if θ is outside `(0, 1]`.
    pub fn new(theta: f64) -> ConfidenceRule {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0,1], got {theta}");
        ConfidenceRule { theta, candidates: 25, min_samples: 10 }
    }

    /// The threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Smallest candidate wait whose conditional confidence reaches θ,
    /// if any.
    pub fn first_confident_wait(&self, ctx: &IdleContext<'_>) -> Option<Duration> {
        if ctx.window.len() < self.min_samples {
            return None;
        }
        let threshold = ctx.profile.t_threshold();
        let c = self.candidates.max(2);
        for i in 0..c {
            let w = Duration::from_micros(
                (threshold.as_micros() as f64 * i as f64 / (c - 1) as f64).round() as i64,
            );
            // Conditional survival is the paper's P(t_wait); beyond the
            // window support it degenerates to 1 ("nothing observed this
            // long"), mirroring MakeIdle's virtual-sample optimism.
            if ctx.window.conditional_survival(w, w + threshold) >= self.theta {
                return Some(w);
            }
        }
        None
    }
}

impl IdlePolicy for ConfidenceRule {
    fn name(&self) -> String {
        format!("confidence-{:.2}", self.theta)
    }

    fn decide(&mut self, ctx: &IdleContext<'_>, _actual_gap: Duration) -> IdleDecision {
        match self.first_confident_wait(ctx) {
            Some(w) => IdleDecision::DemoteAfter(w),
            None => IdleDecision::Timers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_radio::profile::CarrierProfile;
    use tailwise_trace::stats::SlidingWindow;
    use tailwise_trace::time::Instant;

    fn window_of(gaps_s: &[f64]) -> SlidingWindow {
        let mut w = SlidingWindow::new(100);
        for &g in gaps_s {
            w.push(Duration::from_secs_f64(g));
        }
        w
    }

    fn ctx<'a>(p: &'a CarrierProfile, w: &'a SlidingWindow) -> IdleContext<'a> {
        IdleContext { profile: p, window: w, now: Instant::ZERO }
    }

    #[test]
    fn cold_window_defers() {
        let p = CarrierProfile::att_hspa();
        let w = window_of(&[5.0; 3]);
        let mut r = ConfidenceRule::new(0.9);
        assert_eq!(r.decide(&ctx(&p, &w), Duration::FOREVER), IdleDecision::Timers);
    }

    #[test]
    fn long_gaps_trigger_immediate_confidence() {
        // Every gap 30 s: P(0) = P(gap > 1.2 | gap > 0) = 1 ≥ θ.
        let p = CarrierProfile::att_hspa();
        let w = window_of(&[30.0; 50]);
        let mut r = ConfidenceRule::new(0.9);
        match r.decide(&ctx(&p, &w), Duration::FOREVER) {
            IdleDecision::DemoteAfter(d) => assert_eq!(d, Duration::ZERO),
            other => panic!("expected demote, got {other:?}"),
        }
    }

    #[test]
    fn mixed_gaps_need_some_waiting() {
        // Half 0.4 s, half 30 s: at w = 0, P = 25/50 = 0.5 < 0.9; past the
        // short mode P = 1.
        let p = CarrierProfile::att_hspa();
        let mut gaps = vec![0.4; 25];
        gaps.extend(vec![30.0; 25]);
        let w = window_of(&gaps);
        let r = ConfidenceRule::new(0.9);
        let wait = r.first_confident_wait(&ctx(&p, &w)).unwrap();
        assert!(wait >= Duration::from_millis(400), "wait {wait}");
    }

    #[test]
    fn lower_theta_is_more_eager() {
        let p = CarrierProfile::att_hspa();
        let mut gaps = vec![0.4; 30];
        gaps.extend(vec![0.9; 10]);
        gaps.extend(vec![30.0; 10]);
        let w = window_of(&gaps);
        let eager = ConfidenceRule::new(0.2).first_confident_wait(&ctx(&p, &w));
        let strict = ConfidenceRule::new(0.95).first_confident_wait(&ctx(&p, &w));
        match (eager, strict) {
            (Some(e), Some(s)) => assert!(e <= s, "eager {e} vs strict {s}"),
            other => panic!("both thresholds should find a wait: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "theta must be in (0,1]")]
    fn rejects_bad_theta() {
        let _ = ConfidenceRule::new(0.0);
    }
}
