//! The evaluation schemes of §6.2, as one dispatchable enum.
//!
//! Every bar group in Figures 9–11 and 17–18 compares the same six
//! schemes. [`Scheme`] gives the harness (and downstream users) a single
//! entry point that builds the right policy stack and runs the engine:
//!
//! | Scheme | Paper legend | Construction |
//! |--------|--------------|--------------|
//! | [`Scheme::StatusQuo`] | status quo (normalizer) | inactivity timers only |
//! | [`Scheme::FixedTail45`] | "4.5-second" | demote after a fixed 4.5 s |
//! | [`Scheme::PercentileIat`] | "95% IAT" | demote after the trace's 95th-percentile inter-arrival |
//! | [`Scheme::MakeIdle`] | "MakeIdle" | §4 online predictor |
//! | [`Scheme::Oracle`] | "Oracle" | offline optimum (§6.2) |
//! | [`Scheme::MakeIdleActiveFix`] | "MakeIdle+MakeActive Fix" | §4 + §5.1 batching |
//! | [`Scheme::MakeIdleActiveLearn`] | "MakeIdle+MakeActive Learn" | §4 + §5.2 learning batcher |
//!
//! Note the paper's caveat, which holds here too: the 95% IAT scheme is
//! "tested over the same data on which it has been trained" — its wait is
//! computed from the full trace before the run.

use tailwise_radio::profile::CarrierProfile;
use tailwise_sim::batching::run_batched;
use tailwise_sim::engine::{run, SimConfig};
use tailwise_sim::oracle::OracleIdle;
use tailwise_sim::policy::{FixedWait, IdlePolicy, StatusQuo};
use tailwise_sim::report::SimReport;
use tailwise_sim::twophase::{record_requests, replay_requests, RequestTrace};
use tailwise_trace::stats::EmpiricalDist;
use tailwise_trace::time::Duration;
use tailwise_trace::Trace;

use crate::makeactive::{FixedDelayBound, LearningDelay};
use crate::makeidle::MakeIdle;

/// One of the paper's evaluation schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Carrier inactivity timers only — the normalizer for every figure.
    StatusQuo,
    /// The "4.5-second tail" proposal of Falaki et al. (ref. \[6\]).
    FixedTail45,
    /// Demote after the trace's `q`-quantile inter-arrival time
    /// (the paper's "95% IAT" with `q = 0.95`).
    PercentileIat(f64),
    /// The §4 online predictor.
    MakeIdle,
    /// The §6.2 offline optimum.
    Oracle,
    /// MakeIdle plus the §5.1 fixed-delay batcher.
    MakeIdleActiveFix,
    /// MakeIdle plus the §5.2 learning batcher.
    MakeIdleActiveLearn,
}

impl Scheme {
    /// The six schemes shown in the paper's comparison figures, in legend
    /// order.
    pub fn paper_set() -> Vec<Scheme> {
        vec![
            Scheme::FixedTail45,
            Scheme::PercentileIat(0.95),
            Scheme::MakeIdle,
            Scheme::Oracle,
            Scheme::MakeIdleActiveLearn,
            Scheme::MakeIdleActiveFix,
        ]
    }

    /// Figure-legend label.
    pub fn label(&self) -> String {
        match self {
            Scheme::StatusQuo => "status quo".into(),
            Scheme::FixedTail45 => "4.5-second".into(),
            Scheme::PercentileIat(q) => format!("{:.0}% IAT", q * 100.0),
            Scheme::MakeIdle => "MakeIdle".into(),
            Scheme::Oracle => "Oracle".into(),
            Scheme::MakeIdleActiveFix => "MakeIdle+MakeActive Fix".into(),
            Scheme::MakeIdleActiveLearn => "MakeIdle+MakeActive Learn".into(),
        }
    }

    /// The canonical scheme names accepted by `Scheme::from_str`,
    /// for error messages and documentation.
    pub const NAMES: [&'static str; 7] = [
        "statusquo",
        "tail45",
        "iat95",
        "makeidle",
        "oracle",
        "makeidle-activefix",
        "makeidle-activelearn",
    ];

    /// Runs the scheme over `trace` on `profile`, with the paper's
    /// always-accept fast-dormancy assumption.
    pub fn run(&self, profile: &CarrierProfile, config: &SimConfig, trace: &Trace) -> SimReport {
        let mut report = match self {
            Scheme::StatusQuo => run(profile, config, trace, &mut StatusQuo),
            Scheme::FixedTail45 => {
                run(profile, config, trace, &mut FixedWait::four_and_a_half_seconds())
            }
            Scheme::PercentileIat(q) => {
                let wait = percentile_iat(trace, *q);
                run(profile, config, trace, &mut FixedWait::new(wait, self.label()))
            }
            Scheme::MakeIdle => run(profile, config, trace, &mut MakeIdle::new()),
            Scheme::Oracle => run(profile, config, trace, &mut OracleIdle),
            Scheme::MakeIdleActiveFix => {
                let mut batcher = FixedDelayBound::from_trace(profile, config, trace);
                run_batched(
                    profile,
                    config,
                    trace,
                    &mut MakeIdle::new(),
                    &mut batcher,
                    &mut tailwise_radio::fastdormancy::AlwaysAccept,
                )
            }
            Scheme::MakeIdleActiveLearn => run_batched(
                profile,
                config,
                trace,
                &mut MakeIdle::new(),
                &mut LearningDelay::new(),
                &mut tailwise_radio::fastdormancy::AlwaysAccept,
            ),
        };
        report.scheme = self.label();
        report
    }

    /// Whether the scheme can run through the two-phase
    /// request/replay API ([`tailwise_sim::twophase`]).
    ///
    /// True for every scheme whose demotion requests are a pure function
    /// of the trace — all of them except the MakeActive variants, whose
    /// session batching rewrites the trace based on the radio being
    /// Idle, and therefore on earlier grant outcomes. Cell-topology
    /// fleets require a scriptable scheme.
    pub fn scriptable(&self) -> bool {
        !matches!(self, Scheme::MakeIdleActiveFix | Scheme::MakeIdleActiveLearn)
    }

    /// Builds the scheme's demotion policy for `trace`, or `None` for
    /// the MakeActive variants (see [`scriptable`](Self::scriptable)).
    ///
    /// `trace` is needed because the 95%-IAT baseline computes its wait
    /// from the whole trace (§6.2 grants that baseline its training
    /// data); the other schemes ignore it.
    pub fn idle_policy(&self, trace: &Trace) -> Option<Box<dyn IdlePolicy>> {
        Some(match self {
            Scheme::StatusQuo => Box::new(StatusQuo),
            Scheme::FixedTail45 => Box::new(FixedWait::four_and_a_half_seconds()),
            Scheme::PercentileIat(q) => {
                Box::new(FixedWait::new(percentile_iat(trace, *q), self.label()))
            }
            Scheme::MakeIdle => Box::new(MakeIdle::new()),
            Scheme::Oracle => Box::new(OracleIdle),
            Scheme::MakeIdleActiveFix | Scheme::MakeIdleActiveLearn => return None,
        })
    }

    /// Phase 1 of the two-phase API at scheme granularity: the
    /// time-stamped fast-dormancy requests this scheme would send over
    /// `trace` — without a full simulation. `None` for the MakeActive
    /// variants.
    pub fn request_trace(
        &self,
        profile: &CarrierProfile,
        config: &SimConfig,
        trace: &Trace,
    ) -> Option<RequestTrace> {
        let mut policy = self.idle_policy(trace)?;
        Some(record_requests(profile, config, trace, policy.as_mut()))
    }

    /// Phase 2 at scheme granularity: replays the scheme exactly against
    /// a scripted grant/deny sequence (one verdict per
    /// [`request_trace`](Self::request_trace) entry, in order). `None`
    /// for the MakeActive variants.
    ///
    /// With all-true verdicts this is bit-identical to
    /// [`run`](Self::run)'s always-accept world — the property cell
    /// topologies lean on for their unlimited-capacity baseline.
    pub fn run_scripted(
        &self,
        profile: &CarrierProfile,
        config: &SimConfig,
        trace: &Trace,
        verdicts: &[bool],
    ) -> Option<SimReport> {
        let mut policy = self.idle_policy(trace)?;
        let mut report = replay_requests(profile, config, trace, policy.as_mut(), verdicts);
        report.scheme = self.label();
        Some(report)
    }
}

/// The stable on-disk/CLI token of each scheme.
///
/// Round-trips through `Scheme::from_str` for every scheme in
/// [`Scheme::NAMES`] (scenario files and the `tailwise` CLI rely on
/// this). `PercentileIat(q)` renders as `iat<percent>` with the percent
/// in shortest round-trip float form (`iat95`, `iat87.5`); re-parsing
/// recovers `q` exactly whenever `q` itself came from such a token.
impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::StatusQuo => f.write_str("statusquo"),
            Scheme::FixedTail45 => f.write_str("tail45"),
            Scheme::PercentileIat(q) => {
                let pct = q * 100.0;
                if pct.fract() == 0.0 {
                    write!(f, "iat{}", pct as i64)
                } else {
                    write!(f, "iat{pct:?}")
                }
            }
            Scheme::MakeIdle => f.write_str("makeidle"),
            Scheme::Oracle => f.write_str("oracle"),
            Scheme::MakeIdleActiveFix => f.write_str("makeidle-activefix"),
            Scheme::MakeIdleActiveLearn => f.write_str("makeidle-activelearn"),
        }
    }
}

/// Parses a scheme token (canonical names plus a few historical CLI
/// aliases), case-insensitively.
impl std::str::FromStr for Scheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Scheme, String> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "statusquo" | "status-quo" => return Ok(Scheme::StatusQuo),
            "tail45" | "4.5s" => return Ok(Scheme::FixedTail45),
            "95iat" => return Ok(Scheme::PercentileIat(0.95)),
            "makeidle" => return Ok(Scheme::MakeIdle),
            "oracle" => return Ok(Scheme::Oracle),
            "makeidle-activefix" | "activefix" => return Ok(Scheme::MakeIdleActiveFix),
            "makeidle-activelearn" | "activelearn" => return Ok(Scheme::MakeIdleActiveLearn),
            _ => {}
        }
        if let Some(pct) = lower.strip_prefix("iat") {
            let pct: f64 =
                pct.parse().map_err(|_| format!("invalid IAT percentile in scheme {s:?}"))?;
            if !(0.0..100.0).contains(&pct) || pct <= 0.0 {
                return Err(format!("IAT percentile must be in (0, 100), got {pct}"));
            }
            return Ok(Scheme::PercentileIat(pct / 100.0));
        }
        Err(format!("unknown scheme {s:?}; one of {}", Scheme::NAMES.join(", ")))
    }
}

/// The `q`-quantile of a trace's inter-arrival distribution — the "95%
/// IAT" statistic (§6.2), computed over the whole trace exactly as the
/// paper grants that baseline.
pub fn percentile_iat(trace: &Trace, q: f64) -> Duration {
    let dist = EmpiricalDist::from_samples(trace.gaps());
    dist.quantile(q).unwrap_or(Duration::from_millis(4500))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_trace::packet::{Direction, Packet};
    use tailwise_trace::Instant;

    /// A heartbeat-plus-bursts trace long enough for MakeIdle to warm up.
    fn workload() -> Trace {
        let mut pkts = Vec::new();
        let mut t = 0.0;
        for i in 0..300 {
            // A small burst: 4 packets, 50 ms apart.
            for j in 0..4 {
                pkts.push(Packet::new(
                    Instant::from_secs_f64(t + j as f64 * 0.05),
                    if j == 0 { Direction::Up } else { Direction::Down },
                    600,
                ));
            }
            // Inter-burst gap alternates 8 s / 25 s.
            t += if i % 2 == 0 { 8.0 } else { 25.0 };
        }
        Trace::from_sorted(pkts).unwrap()
    }

    #[test]
    fn all_schemes_run_and_label_correctly() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = workload();
        let base = Scheme::StatusQuo.run(&p, &cfg, &t);
        assert_eq!(base.scheme, "status quo");
        for s in Scheme::paper_set() {
            let r = s.run(&p, &cfg, &t);
            assert_eq!(r.scheme, s.label());
            assert!(r.total_energy() > 0.0, "{}", s.label());
        }
    }

    #[test]
    fn figure9_ordering_holds_on_heartbeat_workload() {
        // The qualitative ordering the paper reports: MakeIdle tracks the
        // Oracle closely and beats the naive baselines; batching saves at
        // least as much as plain MakeIdle.
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = workload();
        let base = Scheme::StatusQuo.run(&p, &cfg, &t);
        let oracle = Scheme::Oracle.run(&p, &cfg, &t);
        let makeidle = Scheme::MakeIdle.run(&p, &cfg, &t);
        let tail45 = Scheme::FixedTail45.run(&p, &cfg, &t);

        let s_oracle = oracle.savings_vs(&base);
        let s_makeidle = makeidle.savings_vs(&base);
        let s_tail45 = tail45.savings_vs(&base);

        assert!(s_oracle > 40.0, "oracle saves {s_oracle}%");
        assert!(s_makeidle > 30.0, "makeidle saves {s_makeidle}%");
        assert!(s_oracle + 1e-9 >= s_makeidle, "oracle bounds makeidle");
        assert!(s_makeidle > s_tail45, "makeidle {s_makeidle}% vs 4.5s {s_tail45}%");
    }

    #[test]
    fn batching_restores_switch_counts() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = workload();
        let base = Scheme::StatusQuo.run(&p, &cfg, &t);
        let makeidle = Scheme::MakeIdle.run(&p, &cfg, &t);
        let learn = Scheme::MakeIdleActiveLearn.run(&p, &cfg, &t);
        // MakeIdle alone inflates switches; batching pulls them back down.
        assert!(makeidle.switch_cycles() > base.switch_cycles());
        assert!(learn.switch_cycles() < makeidle.switch_cycles());
        // And the batched run actually delayed some sessions.
        assert!(!learn.session_delays.is_empty());
        assert!(learn.batching_rounds > 0);
    }

    #[test]
    fn scheme_names_round_trip() {
        let mut all = vec![Scheme::StatusQuo];
        all.extend(Scheme::paper_set());
        for scheme in all {
            let token = scheme.to_string();
            assert!(Scheme::NAMES.contains(&token.as_str()), "{token} not in NAMES");
            assert_eq!(token.parse::<Scheme>().unwrap(), scheme, "{token}");
        }
        // Fractional percentiles round-trip through the iat<pct> form.
        let odd = Scheme::PercentileIat(0.875);
        assert_eq!(odd.to_string(), "iat87.5");
        assert_eq!("iat87.5".parse::<Scheme>().unwrap(), odd);
        // Aliases and case-insensitivity.
        assert_eq!("MakeIdle".parse::<Scheme>().unwrap(), Scheme::MakeIdle);
        assert_eq!("95iat".parse::<Scheme>().unwrap(), Scheme::PercentileIat(0.95));
        assert_eq!("activelearn".parse::<Scheme>().unwrap(), Scheme::MakeIdleActiveLearn);
        // Rejections name the valid set.
        let err = "makeactive".parse::<Scheme>().unwrap_err();
        assert!(err.contains("makeidle-activefix"), "{err}");
        assert!("iat0".parse::<Scheme>().is_err());
        assert!("iat100".parse::<Scheme>().is_err());
        assert!("iatx".parse::<Scheme>().is_err());
    }

    #[test]
    fn scripted_all_grants_matches_run_for_every_scriptable_scheme() {
        let p = CarrierProfile::att_hspa();
        let cfg = SimConfig::default();
        let t = workload();
        let mut all = vec![Scheme::StatusQuo];
        all.extend(Scheme::paper_set());
        for s in all {
            let (Some(requests), true) = (s.request_trace(&p, &cfg, &t), s.scriptable()) else {
                // MakeActive variants are excluded from the two-phase API.
                assert!(!s.scriptable());
                assert!(s.request_trace(&p, &cfg, &t).is_none());
                assert!(s.run_scripted(&p, &cfg, &t, &[]).is_none());
                continue;
            };
            let verdicts = vec![true; requests.len()];
            let scripted = s.run_scripted(&p, &cfg, &t, &verdicts).unwrap();
            let direct = s.run(&p, &cfg, &t);
            assert_eq!(scripted.scheme, direct.scheme);
            assert_eq!(
                scripted.total_energy().to_bits(),
                direct.total_energy().to_bits(),
                "{} drifted through the two-phase path",
                s.label()
            );
            assert_eq!(scripted.counters, direct.counters);
            assert_eq!(scripted.confusion, direct.confusion);
        }
        // Request counts mirror the engine's accepted demotions.
        let requests = Scheme::MakeIdle.request_trace(&p, &cfg, &t).unwrap();
        let direct = Scheme::MakeIdle.run(&p, &cfg, &t);
        assert_eq!(requests.len() as u64, direct.counters.fd_demotions);
    }

    #[test]
    fn percentile_iat_matches_distribution() {
        let t = workload();
        let p95 = percentile_iat(&t, 0.95);
        let dist = EmpiricalDist::from_samples(t.gaps());
        assert_eq!(dist.quantile(0.95).unwrap(), p95);
        // Empty traces fall back to the 4.5 s default.
        assert_eq!(percentile_iat(&Trace::new(), 0.95), Duration::from_millis(4500));
    }
}
