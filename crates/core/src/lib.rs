//! # tailwise-core
//!
//! The primary contribution of *"Traffic-Aware Techniques to Reduce 3G/LTE
//! Wireless Energy Consumption"* (Deng & Balakrishnan, CoNEXT 2012),
//! reproduced as a Rust library:
//!
//! * [`makeidle`] — the §4 online demotion predictor: after each packet,
//!   choose from the windowed inter-arrival distribution how long to wait
//!   before triggering fast dormancy;
//! * [`makeactive`] — the §5 session batchers that restore status-quo
//!   signaling levels: a fixed delay bound and the Learn-α bank-of-experts
//!   learner;
//! * [`schemes`] — the full §6.2 evaluation line-up (status quo,
//!   4.5-second tail, 95% IAT, MakeIdle, Oracle, and the two combined
//!   pipelines) behind one dispatchable [`schemes::Scheme`] enum;
//! * [`control`] — the deployable Figure-4 control module: a poll-based
//!   socket-event API suitable for an OS integration, built on the same
//!   policies the simulator measures.
//!
//! ## Quick start
//!
//! ```
//! use tailwise_core::prelude::*;
//!
//! // A chatty background app: one packet every 20 s for an hour.
//! let trace = tailwise_trace::Trace::from_sorted(
//!     (0..180)
//!         .map(|i| tailwise_trace::Packet::new(
//!             tailwise_trace::Instant::from_secs(i * 20),
//!             tailwise_trace::Direction::Down,
//!             120,
//!         ))
//!         .collect(),
//! )
//! .unwrap();
//!
//! let profile = CarrierProfile::att_hspa();
//! let config = SimConfig::default();
//! let baseline = Scheme::StatusQuo.run(&profile, &config, &trace);
//! let makeidle = Scheme::MakeIdle.run(&profile, &config, &trace);
//! assert!(makeidle.savings_vs(&baseline) > 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confidence;
pub mod control;
pub mod makeactive;
pub mod makeidle;
pub mod schemes;

pub use confidence::ConfidenceRule;
pub use control::{Action, ControlModule, SocketEvent};
pub use makeactive::{FixedDelayBound, LearningConfig, LearningDelay};
pub use makeidle::{MakeIdle, MakeIdleConfig};
pub use schemes::{percentile_iat, Scheme};

/// One-stop imports for library users.
pub mod prelude {
    pub use crate::control::{Action, ControlModule, SocketEvent};
    pub use crate::makeactive::{FixedDelayBound, LearningDelay};
    pub use crate::makeidle::MakeIdle;
    pub use crate::schemes::Scheme;
    pub use tailwise_radio::profile::CarrierProfile;
    pub use tailwise_sim::engine::SimConfig;
    pub use tailwise_sim::report::SimReport;
}

#[cfg(test)]
mod proptests {
    //! End-to-end invariants of the contribution algorithms on random
    //! workloads.

    use proptest::prelude::*;
    use tailwise_radio::profile::CarrierProfile;
    use tailwise_sim::engine::{run, SimConfig};
    use tailwise_sim::oracle::OracleIdle;
    use tailwise_sim::policy::StatusQuo;
    use tailwise_trace::packet::{Direction, Packet};
    use tailwise_trace::time::{Duration, Instant};
    use tailwise_trace::Trace;

    use crate::makeidle::MakeIdle;
    use crate::schemes::Scheme;

    fn trace_from_gaps(gaps_ms: &[i64]) -> Trace {
        let mut t = Instant::ZERO;
        let mut pkts = vec![Packet::new(t, Direction::Down, 400)];
        for &g in gaps_ms {
            t += Duration::from_millis(g);
            pkts.push(Packet::new(t, Direction::Down, 400));
        }
        Trace::from_sorted(pkts).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// MakeIdle never beats the Oracle and never panics, whatever the
        /// workload or carrier.
        #[test]
        fn makeidle_is_bounded_by_the_oracle(
            gaps_ms in prop::collection::vec(1i64..50_000, 5..150),
            carrier in 0usize..4,
        ) {
            let p = &CarrierProfile::paper_carriers()[carrier];
            let cfg = SimConfig::default();
            let t = trace_from_gaps(&gaps_ms);
            let oracle = run(p, &cfg, &t, &mut OracleIdle);
            let mi = run(p, &cfg, &t, &mut MakeIdle::new());
            prop_assert!(oracle.total_energy() <= mi.total_energy() + 1e-6);
        }

        /// The combined pipelines keep every packet: batching shifts
        /// sessions but never drops or reorders data within one.
        #[test]
        fn batched_schemes_conserve_packets(
            gaps_ms in prop::collection::vec(1i64..50_000, 5..120),
            carrier in 0usize..4,
        ) {
            let p = &CarrierProfile::paper_carriers()[carrier];
            let cfg = SimConfig::default();
            let t = trace_from_gaps(&gaps_ms);
            for s in [Scheme::MakeIdleActiveFix, Scheme::MakeIdleActiveLearn] {
                let r = s.run(p, &cfg, &t);
                prop_assert_eq!(r.packets, t.len());
                // Delays are bounded by the batchers' maximum holds.
                for &d in &r.session_delays {
                    prop_assert!((0.0..=30.0 + 1e-9).contains(&d));
                }
            }
        }

        /// The closed-form MakeIdle evaluation agrees with the direct
        /// per-sample formula on arbitrary windows and carriers: the
        /// optimum values match to float tolerance (the argmax itself may
        /// legitimately differ only between exactly-tied candidates).
        #[test]
        fn makeidle_closed_form_matches_reference(
            gaps_ms in prop::collection::vec(1i64..60_000, 10..120),
            carrier in 0usize..6,
        ) {
            use tailwise_sim::policy::IdleContext;
            use tailwise_trace::stats::SlidingWindow;

            let p = &CarrierProfile::all_presets()[carrier];
            let mut window = SlidingWindow::new(100);
            for &g in &gaps_ms {
                window.push(Duration::from_millis(g));
            }
            let ctx = IdleContext { profile: p, window: &window, now: Instant::ZERO };
            let mut mi = MakeIdle::new();
            let fast = mi.best_wait(&ctx).expect("window is warm");
            let reference = mi.best_wait_reference(&ctx).expect("window is warm");
            let scale = reference.1.abs().max(1.0);
            prop_assert!(
                (fast.1 - reference.1).abs() <= 1e-9 * scale,
                "f mismatch: fast {:?} vs reference {:?}",
                fast,
                reference
            );
        }

        /// On workloads whose every gap is longer than the tail window,
        /// the status quo is the worst possible scheme — everything else
        /// must save energy (or tie).
        #[test]
        fn long_gap_workloads_always_favor_proactive_schemes(
            gaps_s in prop::collection::vec(20i64..120, 15..60),
            carrier in 0usize..4,
        ) {
            let p = &CarrierProfile::paper_carriers()[carrier];
            let cfg = SimConfig::default();
            let gaps_ms: Vec<i64> = gaps_s.iter().map(|&s| s * 1000).collect();
            let t = trace_from_gaps(&gaps_ms);
            let base = run(p, &cfg, &t, &mut StatusQuo);
            for s in [Scheme::MakeIdle, Scheme::Oracle] {
                let r = s.run(p, &cfg, &t);
                prop_assert!(
                    r.total_energy() <= base.total_energy() + 1e-6,
                    "{} used more than status quo", s.label()
                );
            }
        }
    }
}
