//! The seven application workload models of §6.1.
//!
//! The paper collected a 2-hour tcpdump trace for a popular Android app in
//! each of seven categories. The traces themselves are unavailable, so each
//! model here synthesizes traffic from the paper's own description of the
//! category (quoted in each type's docs). The models are deliberately
//! simple — renewal processes of request/response bursts — because that is
//! exactly the structure the paper's algorithms key on: inter-burst gap
//! distributions and burst batching opportunities.
//!
//! All models are deterministic given an RNG seed.

use rand::Rng;
use tailwise_trace::packet::AppId;
use tailwise_trace::time::{Duration, Instant};
use tailwise_trace::Trace;

use crate::burst::{self, BurstSpec};
use crate::dist;

/// The seven §6.1 application categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppKind {
    /// News reader with a background breaking-news fetcher.
    News,
    /// Instant messaging with periodic heartbeats.
    Im,
    /// Micro-blog client auto-fetching new posts.
    MicroBlog,
    /// Offline game with a once-a-minute advertisement bar.
    GameAds,
    /// Email client synchronizing every five minutes.
    Email,
    /// Social network used interactively in the foreground.
    Social,
    /// Stock ticker updating about once per second in the foreground.
    Finance,
}

impl AppKind {
    /// All categories in the paper's presentation order (Fig. 1 / Fig. 9).
    pub const ALL: [AppKind; 7] = [
        AppKind::News,
        AppKind::Im,
        AppKind::MicroBlog,
        AppKind::GameAds,
        AppKind::Email,
        AppKind::Social,
        AppKind::Finance,
    ];

    /// Stable application id used in packet attribution.
    pub fn id(&self) -> AppId {
        AppId(match self {
            AppKind::News => 1,
            AppKind::Im => 2,
            AppKind::MicroBlog => 3,
            AppKind::GameAds => 4,
            AppKind::Email => 5,
            AppKind::Social => 6,
            AppKind::Finance => 7,
        })
    }

    /// Display name matching the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::News => "News",
            AppKind::Im => "IM",
            AppKind::MicroBlog => "MicroBlog",
            AppKind::GameAds => "Game",
            AppKind::Email => "Email",
            AppKind::Social => "Social",
            AppKind::Finance => "Finance",
        }
    }

    /// Whether the category runs unattended in the background ("always
    /// on"); foreground categories are gated by usage sessions when
    /// composed into user traces.
    pub fn is_background(&self) -> bool {
        !matches!(self, AppKind::Social | AppKind::Finance)
    }

    /// The default model for this category.
    pub fn default_model(&self) -> AppParams {
        AppParams::defaults(*self)
    }

    /// The stable lowercase token (`"im"`, `"news"`, …) scenario files
    /// and the CLI use; round-trips through `AppKind::from_str`.
    pub fn token(&self) -> &'static str {
        match self {
            AppKind::News => "news",
            AppKind::Im => "im",
            AppKind::MicroBlog => "microblog",
            AppKind::GameAds => "game",
            AppKind::Email => "email",
            AppKind::Social => "social",
            AppKind::Finance => "finance",
        }
    }
}

/// Writes the stable lowercase token (see [`AppKind::token`]).
impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Parses an application token case-insensitively (`"game-ads"` and
/// `"gameads"` are accepted aliases for `"game"`).
impl std::str::FromStr for AppKind {
    type Err = String;

    fn from_str(s: &str) -> Result<AppKind, String> {
        let lower = s.to_ascii_lowercase();
        if lower == "game-ads" || lower == "gameads" {
            return Ok(AppKind::GameAds);
        }
        AppKind::ALL.into_iter().find(|k| k.token() == lower).ok_or_else(|| {
            format!("unknown app {s:?}; one of {}", AppKind::ALL.map(|k| k.token()).join(", "))
        })
    }
}

/// Tunable parameters of one application model.
///
/// Defaults implement the §6.1 descriptions; every field is public so
/// studies can perturb them.
#[derive(Debug, Clone, PartialEq)]
pub struct AppParams {
    /// The category being modeled.
    pub kind: AppKind,
    /// Mean (or base) interval between traffic events.
    pub mean_event_interval: Duration,
    /// Uniform jitter applied to the interval where the description is
    /// periodic-with-jitter; for Poisson-like categories the interval is
    /// exponential and this is ignored.
    pub interval_jitter: Duration,
    /// Whether event spacing is exponential (true) or uniform jitter
    /// around the base interval (false).
    pub exponential_intervals: bool,
    /// Downlink packets per event: uniform in `[burst_min, burst_max]`.
    pub burst_min: u32,
    /// See `burst_min`.
    pub burst_max: u32,
    /// Mean intra-burst packet gap.
    pub intra_gap: Duration,
    /// Downlink payload size per packet.
    pub response_len: u32,
    /// Rate of secondary events (chats for IM, pushes for Email), per
    /// second; zero disables.
    pub secondary_rate: f64,
}

impl AppParams {
    /// The paper-faithful defaults for `kind` (see the `AppKind` docs for
    /// the §6.1 wording each default encodes).
    pub fn defaults(kind: AppKind) -> AppParams {
        match kind {
            // "a background process running to fetch breaking news"
            AppKind::News => AppParams {
                kind,
                mean_event_interval: Duration::from_secs(240),
                interval_jitter: Duration::ZERO,
                exponential_intervals: true,
                burst_min: 40,
                burst_max: 180,
                intra_gap: Duration::from_millis(12),
                response_len: 1400,
                secondary_rate: 0.0,
            },
            // "sends heartbeat packets to the server periodically,
            // typically every 5 to 20 seconds"
            AppKind::Im => AppParams {
                kind,
                mean_event_interval: Duration::from_millis(12_500),
                interval_jitter: Duration::from_millis(7_500),
                exponential_intervals: false,
                burst_min: 1,
                burst_max: 1,
                intra_gap: Duration::from_millis(120),
                response_len: 94,
                secondary_rate: 1.0 / 1200.0, // a chat roughly every 20 min
            },
            // "automatically fetches new tweets without user input"
            AppKind::MicroBlog => AppParams {
                kind,
                mean_event_interval: Duration::from_secs(120),
                interval_jitter: Duration::from_secs(60),
                exponential_intervals: false,
                burst_min: 30,
                burst_max: 120,
                intra_gap: Duration::from_millis(12),
                response_len: 1400,
                secondary_rate: 0.0,
            },
            // "an advertisement bar that changes the content roughly once
            // per minute"
            AppKind::GameAds => AppParams {
                kind,
                mean_event_interval: Duration::from_secs(62),
                interval_jitter: Duration::from_secs(10),
                exponential_intervals: false,
                burst_min: 8,
                burst_max: 25,
                intra_gap: Duration::from_millis(15),
                response_len: 1200,
                secondary_rate: 0.0,
            },
            // "synchronizing with an email server every five minutes"
            AppKind::Email => AppParams {
                kind,
                mean_event_interval: Duration::from_secs(300),
                interval_jitter: Duration::from_secs(8),
                exponential_intervals: false,
                burst_min: 30,
                burst_max: 150,
                intra_gap: Duration::from_millis(12),
                response_len: 1400,
                secondary_rate: 1.0 / 3600.0, // occasional push
            },
            // "read the news feeds, clicks to see pictures, and posts
            // comments" — interactive foreground with human think times
            AppKind::Social => AppParams {
                kind,
                mean_event_interval: Duration::from_secs(8), // Pareto scale
                interval_jitter: Duration::ZERO,
                exponential_intervals: false,
                burst_min: 60,
                burst_max: 250,
                intra_gap: Duration::from_millis(10),
                response_len: 1400,
                secondary_rate: 0.0,
            },
            // "updates roughly once per second when running in the
            // foreground"
            AppKind::Finance => AppParams {
                kind,
                mean_event_interval: Duration::from_millis(1000),
                interval_jitter: Duration::from_millis(200),
                exponential_intervals: false,
                burst_min: 1,
                burst_max: 2,
                intra_gap: Duration::from_millis(60),
                response_len: 420,
                secondary_rate: 0.0,
            },
        }
    }

    /// Generates a trace covering `[0, span)`.
    ///
    /// Flow ids are unique per burst, namespaced by the application id so
    /// merged user traces keep flows distinct.
    pub fn generate<R: Rng + ?Sized>(&self, span: Duration, rng: &mut R) -> Trace {
        let app = self.kind.id();
        let mut packets = Vec::new();
        let mut flow: u32 = app.0 as u32 * 1_000_000;
        let mut t = Instant::ZERO + self.first_offset(rng);
        let horizon = Instant::ZERO + span;
        while t < horizon {
            flow += 1;
            match self.kind {
                AppKind::Social => {
                    // One interactive action; think time follows.
                    let spec = self.burst_spec(rng);
                    let (pkts, _) = burst::generate(rng, t, &spec, flow, app);
                    packets.extend(pkts);
                    let think = dist::pareto_f64(rng, 2.0, 1.5, 90.0);
                    t += Duration::from_secs_f64(think);
                }
                _ => {
                    let spec = self.burst_spec(rng);
                    let (pkts, _) = burst::generate(rng, t, &spec, flow, app);
                    packets.extend(pkts);
                    t += self.next_interval(rng);
                }
            }
            // Secondary events (chat/push) are superimposed Poisson arrivals:
            // approximate by flipping a coin sized to the elapsed interval.
            if self.secondary_rate > 0.0 {
                let window = self.mean_event_interval.as_secs_f64();
                if rng.random::<f64>() < self.secondary_rate * window {
                    flow += 1;
                    packets.extend(self.secondary_event(rng, t, flow, app));
                }
            }
        }
        // Bursts can straddle event boundaries; sort and trim to the span.
        packets.retain(|p| p.ts < horizon);
        Trace::from_unsorted(packets)
    }

    fn first_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        // Desynchronize app start-up so merged traces do not phase-lock.
        dist::uniform_duration(rng, Duration::ZERO, self.mean_event_interval)
    }

    fn next_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        if self.exponential_intervals {
            // Clamp below to keep pathological zero-gaps out.
            dist::exp_duration(rng, self.mean_event_interval).max(Duration::from_secs(5))
        } else {
            let lo = self.mean_event_interval.saturating_sub(self.interval_jitter);
            let hi = self.mean_event_interval + self.interval_jitter;
            dist::uniform_duration(rng, lo, hi + Duration::from_micros(1))
        }
    }

    fn burst_spec<R: Rng + ?Sized>(&self, rng: &mut R) -> BurstSpec {
        let down = if self.burst_max > self.burst_min {
            rng.random_range(self.burst_min..=self.burst_max)
        } else {
            self.burst_min
        };
        if down <= 2 {
            BurstSpec {
                down_packets: down,
                mean_gap: self.intra_gap,
                request_len: 96,
                response_len: self.response_len,
                ack_every: 0,
            }
        } else {
            BurstSpec {
                down_packets: down,
                mean_gap: self.intra_gap,
                request_len: 350,
                response_len: self.response_len,
                ack_every: 4,
            }
        }
    }

    /// A chat session (IM) or push notification (Email): a short run of
    /// small exchanges.
    fn secondary_event<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        start: Instant,
        flow: u32,
        app: AppId,
    ) -> Vec<tailwise_trace::Packet> {
        let mut out = Vec::new();
        let exchanges = rng.random_range(3..=12);
        let mut t = start;
        for _ in 0..exchanges {
            let spec = BurstSpec {
                down_packets: rng.random_range(1..=3),
                mean_gap: Duration::from_millis(150),
                request_len: 180,
                response_len: 240,
                ack_every: 0,
            };
            let (pkts, end) = burst::generate(rng, t, &spec, flow, app);
            out.extend(pkts);
            t = end + Duration::from_secs_f64(dist::exp_f64(rng, 6.0).clamp(1.0, 30.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tailwise_trace::bursts;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    const TWO_HOURS: Duration = Duration::from_secs(7200);

    #[test]
    fn every_app_generates_a_valid_two_hour_trace() {
        for kind in AppKind::ALL {
            let t = kind.default_model().generate(TWO_HOURS, &mut rng(1));
            assert!(!t.is_empty(), "{} produced no packets", kind.name());
            assert!(t.span() <= TWO_HOURS);
            for p in t.iter() {
                assert_eq!(p.app, kind.id(), "{}", kind.name());
                assert!(p.ts >= Instant::ZERO && p.ts < Instant::ZERO + TWO_HOURS);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in [AppKind::Im, AppKind::News, AppKind::Social] {
            let a = kind.default_model().generate(TWO_HOURS, &mut rng(7));
            let b = kind.default_model().generate(TWO_HOURS, &mut rng(7));
            assert_eq!(a, b, "{}", kind.name());
            let c = kind.default_model().generate(TWO_HOURS, &mut rng(8));
            assert_ne!(a, c, "{}", kind.name());
        }
    }

    #[test]
    fn im_heartbeats_land_in_the_5_to_20s_band() {
        // Heartbeat gaps dominate an IM trace; the bulk of inter-burst gaps
        // must sit in the paper's 5–20 s band.
        let t = AppKind::Im.default_model().generate(TWO_HOURS, &mut rng(2));
        let bs = bursts::segment_default(&t);
        let gaps: Vec<f64> = bs.windows(2).map(|w| (w[1].start - w[0].end).as_secs_f64()).collect();
        let in_band = gaps.iter().filter(|&&g| (4.0..=21.0).contains(&g)).count();
        assert!(
            in_band as f64 / gaps.len() as f64 > 0.8,
            "only {}/{} gaps in band",
            in_band,
            gaps.len()
        );
    }

    #[test]
    fn email_syncs_about_every_five_minutes() {
        let t = AppKind::Email.default_model().generate(TWO_HOURS, &mut rng(3));
        let bs = bursts::segment_default(&t);
        // ~2h/300s ≈ 24 syncs; pushes add a few small bursts on top, so
        // count only sync-sized bursts (a sync carries ≥ 10 down packets).
        let syncs = bs.iter().filter(|b| b.len >= 10).count();
        assert!((20..=32).contains(&syncs), "{syncs} sync bursts of {} total", bs.len());
    }

    #[test]
    fn finance_is_nearly_continuous() {
        let t = AppKind::Finance.default_model().generate(Duration::from_secs(600), &mut rng(4));
        // ~1 update/s for 10 min: at least 900 packets (request+response).
        assert!(t.len() >= 900, "{} packets", t.len());
        // And near-uniform coverage: no silent minute.
        let bs = bursts::segment(&t, Duration::from_secs(3));
        assert_eq!(bs.len(), 1, "ticker should never pause >3 s");
    }

    #[test]
    fn game_ads_refresh_about_once_a_minute() {
        let t = AppKind::GameAds.default_model().generate(TWO_HOURS, &mut rng(5));
        let bs = bursts::segment_default(&t);
        assert!((95..=145).contains(&bs.len()), "{} ad refreshes", bs.len());
    }

    #[test]
    fn social_think_times_are_heavy_tailed() {
        let t = AppKind::Social.default_model().generate(TWO_HOURS, &mut rng(6));
        let bs = bursts::segment_default(&t);
        let gaps: Vec<f64> = bs.windows(2).map(|w| (w[1].start - w[0].end).as_secs_f64()).collect();
        assert!(!gaps.is_empty());
        let long = gaps.iter().filter(|&&g| g > 20.0).count();
        let short = gaps.iter().filter(|&&g| g < 5.0).count();
        assert!(long > 0, "no long think times");
        assert!(short > long, "Pareto mass should concentrate at the scale end");
    }

    #[test]
    fn background_flags_match_paper_usage() {
        assert!(AppKind::News.is_background());
        assert!(AppKind::Im.is_background());
        assert!(AppKind::Email.is_background());
        assert!(!AppKind::Social.is_background());
        assert!(!AppKind::Finance.is_background());
    }

    #[test]
    fn flows_are_namespaced_per_app() {
        let t = AppKind::News.default_model().generate(TWO_HOURS, &mut rng(9));
        for p in t.iter() {
            assert!(p.flow > 1_000_000 && p.flow < 2_000_000);
        }
    }

    #[test]
    fn tokens_round_trip() {
        for kind in AppKind::ALL {
            let token = kind.token();
            assert_eq!(kind.to_string(), token);
            assert_eq!(token.parse::<AppKind>().unwrap(), kind);
            assert_eq!(token.to_uppercase().parse::<AppKind>().unwrap(), kind);
        }
        assert_eq!("game-ads".parse::<AppKind>().unwrap(), AppKind::GameAds);
        assert_eq!("gameads".parse::<AppKind>().unwrap(), AppKind::GameAds);
        let err = "solitaire".parse::<AppKind>().unwrap_err();
        assert!(err.contains("microblog"), "{err}");
    }

    #[test]
    fn app_ids_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in AppKind::ALL {
            assert!(seen.insert(kind.id()), "duplicate id for {}", kind.name());
        }
        assert_eq!(AppKind::News.id(), AppId(1));
        assert_eq!(AppKind::Finance.id(), AppId(7));
    }
}
