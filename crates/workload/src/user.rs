//! Multi-day, multi-application user trace synthesis.
//!
//! The paper's evaluation data is "real user data from six different users
//! ... and from four different users ... Across all users, we collected 28
//! days of data. For each user, the amount of data collected varies from
//! two to five days" (§6.1). Those captures are proprietary, so this module
//! synthesizes stand-ins with the same *structure*: each user runs a
//! personal mix of the §6.1 applications — background apps around the
//! clock, foreground apps during diurnal usage sessions — for a per-user
//! number of days, driven by a per-user seed.
//!
//! The built-in populations mirror the figure populations: six users for
//! the Verizon 3G panels (Fig. 10/12a), three for the Verizon LTE panels
//! (Fig. 11/12b), 28 user-days in total.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tailwise_trace::mix::splitmix64 as splitmix;
use tailwise_trace::time::Duration;
use tailwise_trace::Trace;

use crate::apps::{AppKind, AppParams};
use crate::diurnal::{DiurnalProfile, DAY};

/// A synthetic user: an application mix plus usage habits.
#[derive(Debug, Clone, PartialEq)]
pub struct UserModel {
    /// Display name ("3G user 1").
    pub name: String,
    /// Master seed; every derived stream re-seeds from this.
    pub seed: u64,
    /// Days of data to synthesize (paper: 2–5 per user).
    pub days: u32,
    /// Applications running unattended all day.
    pub background_apps: Vec<AppParams>,
    /// Applications used only during foreground sessions.
    pub foreground_apps: Vec<AppParams>,
    /// Time-of-day shape of foreground use.
    pub diurnal: DiurnalProfile,
    /// Mean foreground sessions per day.
    pub sessions_per_day: f64,
    /// Median foreground session length.
    pub median_session: Duration,
}

impl UserModel {
    /// Total span of the synthesized trace.
    pub fn span(&self) -> Duration {
        DAY * self.days as i64
    }

    /// Synthesizes the user's full trace.
    ///
    /// Deterministic: the same `UserModel` always yields the same trace.
    pub fn generate(&self) -> Trace {
        let span = self.span();
        let mut parts: Vec<Trace> = Vec::new();

        for (i, app) in self.background_apps.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(splitmix(self.seed ^ (0xB000 + i as u64)));
            parts.push(app.generate(span, &mut rng));
        }

        if !self.foreground_apps.is_empty() {
            let mut srng = StdRng::seed_from_u64(splitmix(self.seed ^ 0x5E55));
            let sessions = self.diurnal.usage_sessions(
                &mut srng,
                self.days,
                self.sessions_per_day,
                self.median_session,
            );
            for (si, (start, dur)) in sessions.iter().enumerate() {
                // Each session uses one foreground app (users rarely split
                // attention between two foreground apps).
                let app = &self.foreground_apps[si % self.foreground_apps.len()];
                let mut rng = StdRng::seed_from_u64(splitmix(self.seed ^ (0xF000 + si as u64)));
                let t = app.generate(*dur, &mut rng);
                let shift = *start - tailwise_trace::Instant::ZERO;
                let shifted: Vec<_> = t.into_iter().map(|p| p.shifted(shift)).collect();
                parts.push(Trace::from_unsorted(shifted));
            }
        }

        Trace::merge(parts)
    }

    /// The six-user population of the Verizon 3G panels (Figures 10, 12a,
    /// 15a). Days per user: 5+4+3+2+3+3 = 20.
    pub fn verizon_3g_users() -> Vec<UserModel> {
        let b = |k: AppKind| AppParams::defaults(k);
        vec![
            UserModel {
                name: "3G user 1".into(),
                seed: splitmix(0x3001),
                days: 5,
                background_apps: vec![b(AppKind::Im), b(AppKind::Email), b(AppKind::News)],
                foreground_apps: vec![b(AppKind::Social), b(AppKind::Finance)],
                diurnal: DiurnalProfile::typical(),
                sessions_per_day: 10.0,
                median_session: Duration::from_secs(420),
            },
            UserModel {
                name: "3G user 2".into(),
                seed: splitmix(0x3002),
                days: 4,
                background_apps: vec![b(AppKind::Im), b(AppKind::MicroBlog)],
                foreground_apps: vec![b(AppKind::Social)],
                diurnal: DiurnalProfile::heavy(),
                sessions_per_day: 14.0,
                median_session: Duration::from_secs(600),
            },
            UserModel {
                name: "3G user 3".into(),
                seed: splitmix(0x3003),
                days: 3,
                background_apps: vec![b(AppKind::Email), b(AppKind::GameAds)],
                foreground_apps: vec![b(AppKind::Finance)],
                diurnal: DiurnalProfile::light(),
                sessions_per_day: 6.0,
                median_session: Duration::from_secs(300),
            },
            UserModel {
                name: "3G user 4".into(),
                seed: splitmix(0x3004),
                days: 2,
                background_apps: vec![b(AppKind::Im)],
                foreground_apps: vec![b(AppKind::Social)],
                diurnal: DiurnalProfile::typical(),
                sessions_per_day: 8.0,
                median_session: Duration::from_secs(240),
            },
            UserModel {
                name: "3G user 5".into(),
                seed: splitmix(0x3005),
                days: 3,
                background_apps: vec![b(AppKind::News), b(AppKind::MicroBlog), b(AppKind::Email)],
                foreground_apps: vec![],
                diurnal: DiurnalProfile::typical(),
                sessions_per_day: 0.0,
                median_session: Duration::from_secs(300),
            },
            UserModel {
                name: "3G user 6".into(),
                seed: splitmix(0x3006),
                days: 3,
                background_apps: vec![b(AppKind::Im), b(AppKind::Email), b(AppKind::GameAds)],
                foreground_apps: vec![b(AppKind::Social), b(AppKind::Finance)],
                diurnal: DiurnalProfile::heavy(),
                sessions_per_day: 12.0,
                median_session: Duration::from_secs(480),
            },
        ]
    }

    /// The three-user population of the Verizon LTE panels (Figures 11,
    /// 12b, 15b). Days per user: 3+3+2 = 8 (28 total with the 3G users).
    pub fn verizon_lte_users() -> Vec<UserModel> {
        let b = |k: AppKind| AppParams::defaults(k);
        vec![
            UserModel {
                name: "LTE user 1".into(),
                seed: splitmix(0x17E1),
                days: 3,
                background_apps: vec![b(AppKind::Im), b(AppKind::News), b(AppKind::Email)],
                foreground_apps: vec![b(AppKind::Social)],
                diurnal: DiurnalProfile::typical(),
                sessions_per_day: 11.0,
                median_session: Duration::from_secs(420),
            },
            UserModel {
                name: "LTE user 2".into(),
                seed: splitmix(0x17E2),
                days: 3,
                background_apps: vec![b(AppKind::MicroBlog), b(AppKind::GameAds)],
                foreground_apps: vec![b(AppKind::Social), b(AppKind::Finance)],
                diurnal: DiurnalProfile::heavy(),
                sessions_per_day: 13.0,
                median_session: Duration::from_secs(540),
            },
            UserModel {
                name: "LTE user 3".into(),
                seed: splitmix(0x17E3),
                days: 2,
                background_apps: vec![b(AppKind::Im), b(AppKind::Email)],
                foreground_apps: vec![b(AppKind::Finance)],
                diurnal: DiurnalProfile::light(),
                sessions_per_day: 5.0,
                median_session: Duration::from_secs(300),
            },
        ]
    }

    /// A down-scaled copy of this user (fewer days) for fast tests and
    /// smoke runs.
    pub fn scaled_to_days(&self, days: u32) -> UserModel {
        let mut u = self.clone();
        u.days = days;
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_trace::bursts;
    use tailwise_trace::Instant;

    #[test]
    fn populations_total_28_user_days() {
        let d3: u32 = UserModel::verizon_3g_users().iter().map(|u| u.days).sum();
        let dl: u32 = UserModel::verizon_lte_users().iter().map(|u| u.days).sum();
        assert_eq!(d3, 20);
        assert_eq!(dl, 8);
        assert_eq!(d3 + dl, 28); // §6.1: "we collected 28 days of data"
        for u in UserModel::verizon_3g_users().iter().chain(&UserModel::verizon_lte_users()) {
            assert!((2..=5).contains(&u.days), "{}: {} days", u.name, u.days);
        }
    }

    #[test]
    fn user_trace_is_valid_and_deterministic() {
        let u = UserModel::verizon_3g_users()[3].scaled_to_days(1);
        let a = u.generate();
        let b = u.generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.span() <= u.span());
        for w in a.packets().windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn different_users_get_different_traffic() {
        let users = UserModel::verizon_3g_users();
        let a = users[0].scaled_to_days(1).generate();
        let b = users[1].scaled_to_days(1).generate();
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn background_apps_cover_the_night() {
        // IM heartbeats must appear in the 2–5 am window even though
        // foreground sessions avoid it.
        let u = UserModel::verizon_3g_users()[0].scaled_to_days(1);
        let t = u.generate();
        let night = t.slice(Instant::from_secs(2 * 3600), Instant::from_secs(5 * 3600));
        assert!(night.len() > 100, "only {} packets between 2 am and 5 am", night.len());
    }

    #[test]
    fn foreground_apps_appear_only_in_sessions() {
        let u = UserModel::verizon_3g_users()[0].scaled_to_days(1);
        let t = u.generate();
        let social = t.filter_app(AppKind::Social.id());
        let finance = t.filter_app(AppKind::Finance.id());
        assert!(!social.is_empty() || !finance.is_empty(), "no foreground traffic at all");
        // Foreground traffic clusters: its bursts-per-hour variance must be
        // high compared to a background app's.
        let im = t.filter_app(AppKind::Im.id());
        assert!(!im.is_empty());
        let hourly = |tr: &Trace| {
            let mut counts = [0usize; 24];
            for p in tr.iter() {
                counts[(p.ts.as_micros() / 3_600_000_000) as usize % 24] += 1;
            }
            counts
        };
        let im_counts = hourly(&im);
        let empty_im_hours = im_counts.iter().filter(|&&c| c == 0).count();
        assert!(empty_im_hours <= 2, "IM missing from {empty_im_hours} hours");
    }

    #[test]
    fn multi_day_traces_scale_roughly_linearly() {
        let u1 = UserModel::verizon_lte_users()[2].scaled_to_days(1);
        let u2 = UserModel::verizon_lte_users()[2].scaled_to_days(2);
        let n1 = u1.generate().len() as f64;
        let n2 = u2.generate().len() as f64;
        let ratio = n2 / n1;
        assert!((1.5..=2.6).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn merged_trace_interleaves_apps() {
        let u = UserModel::verizon_3g_users()[0].scaled_to_days(1);
        let t = u.generate();
        let apps = t.apps();
        assert!(apps.len() >= 3, "expected several apps, got {apps:?}");
        // And the merged trace still segments into sane bursts.
        let bs = bursts::segment_default(&t);
        assert!(bs.len() > 100);
    }
}
