//! Sampling primitives for the workload generators.
//!
//! The generators need a handful of standard distributions (exponential
//! inter-arrivals, Pareto think times, log-normal durations). Rather than
//! pull in `rand_distr`, the few we need are implemented here by inverse
//! transform / Box–Muller over `rand`'s uniform source — ~40 lines that keep
//! the dependency surface minimal and the sampling auditable.

use rand::Rng;
use tailwise_trace::time::Duration;

/// Exponential sample with the given mean (inverse transform).
pub fn exp_f64<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    // random::<f64>() ∈ [0,1); flip to (0,1] so ln() is finite.
    let u: f64 = 1.0 - rng.random::<f64>();
    -mean * u.ln()
}

/// Exponential duration with the given mean.
pub fn exp_duration<R: Rng + ?Sized>(rng: &mut R, mean: Duration) -> Duration {
    Duration::from_secs_f64(exp_f64(rng, mean.as_secs_f64()))
}

/// Uniform duration in `[lo, hi)`.
pub fn uniform_duration<R: Rng + ?Sized>(rng: &mut R, lo: Duration, hi: Duration) -> Duration {
    debug_assert!(hi >= lo);
    if hi == lo {
        return lo;
    }
    Duration::from_micros(rng.random_range(lo.as_micros()..hi.as_micros()))
}

/// Bounded Pareto sample: scale `xm`, shape `alpha`, hard cap `cap`.
///
/// Pareto think times are the standard model for human interactive pauses;
/// the cap keeps a single sample from swallowing a whole usage session.
pub fn pareto_f64<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64, cap: f64) -> f64 {
    debug_assert!(xm > 0.0 && alpha > 0.0 && cap >= xm);
    let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    (xm / u.powf(1.0 / alpha)).min(cap)
}

/// Log-normal sample parameterized by the *median* (`exp(mu)`) and `sigma`
/// of the underlying normal, via Box–Muller.
pub fn lognormal_f64<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    debug_assert!(median > 0.0 && sigma >= 0.0);
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Poisson sample by Knuth's method; suitable for the small rates the
/// generators use (events per hour, packets per burst).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    // For large lambda fall back to a normal approximation to stay O(1).
    if lambda > 64.0 {
        let z = {
            let u1: f64 = 1.0 - rng.random::<f64>();
            let u2: f64 = rng.random::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
        };
        return (lambda + lambda.sqrt() * z).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 50_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| exp_f64(&mut r, mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.1, "estimated mean {est}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        assert!((0..10_000).all(|_| exp_f64(&mut r, 0.001) > 0.0));
    }

    #[test]
    fn uniform_duration_respects_bounds() {
        let mut r = rng();
        let lo = Duration::from_millis(100);
        let hi = Duration::from_millis(200);
        for _ in 0..10_000 {
            let d = uniform_duration(&mut r, lo, hi);
            assert!(d >= lo && d < hi);
        }
        assert_eq!(uniform_duration(&mut r, lo, lo), lo);
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = pareto_f64(&mut r, 2.0, 1.5, 60.0);
            assert!((2.0..=60.0).contains(&x));
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // With alpha = 1.2 a noticeable fraction of mass sits far above xm.
        let mut r = rng();
        let big = (0..20_000).filter(|_| pareto_f64(&mut r, 1.0, 1.2, 1e9) > 10.0).count();
        let frac = big as f64 / 20_000.0;
        // P(X > 10) = 10^-1.2 ≈ 0.063.
        assert!((frac - 0.063).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    fn lognormal_median_converges() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_001).map(|_| lognormal_f64(&mut r, 5.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 5.0).abs() < 0.25, "median {med}");
    }

    #[test]
    fn poisson_mean_converges_small_and_large_lambda() {
        let mut r = rng();
        for lambda in [0.5, 4.0, 200.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
            let est = sum as f64 / n as f64;
            assert!((est - lambda).abs() < lambda.max(1.0) * 0.05, "λ={lambda}: {est}");
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(exp_f64(&mut a, 1.0).to_bits(), exp_f64(&mut b, 1.0).to_bits());
        }
    }
}
