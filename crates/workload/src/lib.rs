//! # tailwise-workload
//!
//! Synthetic smartphone traffic for the tailwise reproduction of *"Traffic-
//! Aware Techniques to Reduce 3G/LTE Wireless Energy Consumption"* (Deng &
//! Balakrishnan, CoNEXT 2012).
//!
//! The paper evaluates on proprietary tcpdump captures: 2-hour traces of
//! seven application categories plus 28 days of real-user data (§6.1).
//! This crate synthesizes structural stand-ins from the paper's own
//! descriptions (see `DESIGN.md` §3 for the substitution argument):
//!
//! * [`apps`] — the seven application models (News, IM, MicroBlog, Game,
//!   Email, Social, Finance) as parameterized renewal processes;
//! * [`burst`] — the shared request/response burst shape;
//! * [`diurnal`] — time-of-day usage-session structure for multi-day traces;
//! * [`user`] — the 9-user / 28-day populations mirroring the figure
//!   panels;
//! * [`dist`] — the few sampling primitives the above need (exponential,
//!   bounded Pareto, log-normal, Poisson), implemented over `rand`'s
//!   uniform source.
//!
//! Everything is deterministic given the model seeds: regenerating a
//! dataset is bit-stable across runs and platforms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod burst;
pub mod dist;
pub mod diurnal;
pub mod user;

pub use apps::{AppKind, AppParams};
pub use diurnal::{DiurnalProfile, DAY};
pub use user::UserModel;

#[cfg(test)]
mod proptests {
    //! Property-based tests over generator invariants.

    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tailwise_trace::time::Duration;

    use crate::apps::AppKind;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn app_traces_are_always_valid(
            seed in 0u64..1_000,
            kind_idx in 0usize..7,
            span_min in 5i64..40,
        ) {
            let kind = AppKind::ALL[kind_idx];
            let span = Duration::from_secs(span_min * 60);
            let mut rng = StdRng::seed_from_u64(seed);
            let t = kind.default_model().generate(span, &mut rng);
            // Valid ordering (enforced by construction) and bounded span.
            for w in t.packets().windows(2) {
                prop_assert!(w[0].ts <= w[1].ts);
            }
            prop_assert!(t.span() <= span);
            for p in t.iter() {
                prop_assert_eq!(p.app, kind.id());
                prop_assert!(p.len > 0);
            }
        }

        #[test]
        fn packet_volume_scales_with_span(
            seed in 0u64..200,
            kind_idx in 0usize..7,
        ) {
            // Twice the span must produce meaningfully more packets
            // (within stochastic slack) — guards against generators that
            // stop early or run away.
            let kind = AppKind::ALL[kind_idx];
            let short = kind.default_model().generate(
                Duration::from_secs(1800), &mut StdRng::seed_from_u64(seed));
            let long = kind.default_model().generate(
                Duration::from_secs(3600), &mut StdRng::seed_from_u64(seed));
            prop_assert!(!short.is_empty());
            prop_assert!(long.len() as f64 >= short.len() as f64 * 1.2);
            prop_assert!(long.len() as f64 <= short.len() as f64 * 4.0 + 200.0);
        }
    }
}
