//! Burst construction: the shared building block of every application
//! model.
//!
//! All seven §6.1 applications ultimately emit *transfer bursts* — an
//! uplink request followed by a volley of downlink packets with
//! millisecond-scale inter-arrivals, optionally acknowledged. The knobs
//! that differ between applications (how often bursts happen, how large
//! they are) live in [`crate::apps`]; the packet-level shape lives here.

use rand::Rng;
use tailwise_trace::packet::{AppId, Direction, Packet};
use tailwise_trace::time::{Duration, Instant};

use crate::dist;

/// Shape of one request/response transfer burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Downlink packets in the burst (requests/acks are added on top).
    pub down_packets: u32,
    /// Mean intra-burst packet gap (exponential).
    pub mean_gap: Duration,
    /// Uplink request size in bytes.
    pub request_len: u32,
    /// Downlink payload packet size in bytes (MTU-ish for bulk).
    pub response_len: u32,
    /// Send an uplink ACK every `ack_every` downlink packets (0 = none).
    pub ack_every: u32,
}

impl BurstSpec {
    /// A small control exchange (heartbeats, presence): 1 packet each way.
    pub fn heartbeat() -> BurstSpec {
        BurstSpec {
            down_packets: 1,
            mean_gap: Duration::from_millis(120),
            request_len: 78,
            response_len: 94,
            ack_every: 0,
        }
    }

    /// A content fetch of `down_packets` MTU-sized packets.
    pub fn fetch(down_packets: u32) -> BurstSpec {
        BurstSpec {
            down_packets,
            mean_gap: Duration::from_millis(25),
            request_len: 350,
            response_len: 1400,
            ack_every: 4,
        }
    }
}

/// Generates one burst starting at `start`; returns the packets in time
/// order together with the timestamp of the last packet.
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    start: Instant,
    spec: &BurstSpec,
    flow: u32,
    app: AppId,
) -> (Vec<Packet>, Instant) {
    let mut pkts = Vec::with_capacity(spec.down_packets as usize + 4);
    let mut t = start;
    // Uplink request opens the burst.
    pkts.push(Packet::new(t, Direction::Up, spec.request_len).with_flow(flow).with_app(app));
    for i in 0..spec.down_packets {
        t += dist::exp_duration(rng, spec.mean_gap);
        pkts.push(Packet::new(t, Direction::Down, spec.response_len).with_flow(flow).with_app(app));
        if spec.ack_every > 0 && (i + 1) % spec.ack_every == 0 {
            t += Duration::from_millis(rng.random_range(1..8));
            pkts.push(Packet::new(t, Direction::Up, 52).with_flow(flow).with_app(app));
        }
    }
    (pkts, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn burst_opens_with_uplink_request() {
        let (pkts, _) = generate(&mut rng(), Instant::ZERO, &BurstSpec::fetch(10), 5, AppId(3));
        assert_eq!(pkts[0].dir, Direction::Up);
        assert_eq!(pkts[0].ts, Instant::ZERO);
        assert_eq!(pkts[0].flow, 5);
        assert_eq!(pkts[0].app, AppId(3));
    }

    #[test]
    fn burst_is_time_ordered_and_ends_at_reported_instant() {
        let (pkts, end) =
            generate(&mut rng(), Instant::from_secs(9), &BurstSpec::fetch(30), 1, AppId(1));
        for w in pkts.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
        assert_eq!(pkts.last().unwrap().ts, end);
        assert!(end > Instant::from_secs(9));
    }

    #[test]
    fn packet_counts_match_spec() {
        let spec = BurstSpec { ack_every: 4, ..BurstSpec::fetch(20) };
        let (pkts, _) = generate(&mut rng(), Instant::ZERO, &spec, 0, AppId(0));
        let down = pkts.iter().filter(|p| p.dir == Direction::Down).count();
        let up = pkts.iter().filter(|p| p.dir == Direction::Up).count();
        assert_eq!(down, 20);
        assert_eq!(up, 1 + 20 / 4); // request + acks
    }

    #[test]
    fn heartbeat_is_two_packets() {
        let (pkts, _) = generate(&mut rng(), Instant::ZERO, &BurstSpec::heartbeat(), 0, AppId(0));
        assert_eq!(pkts.len(), 2);
        assert_eq!(pkts[0].dir, Direction::Up);
        assert_eq!(pkts[1].dir, Direction::Down);
    }

    #[test]
    fn bursts_stay_compact() {
        // A 40-packet fetch with 25 ms mean gaps should span well under the
        // 0.5 s intra-burst threshold per gap (it is one burst downstream).
        let (pkts, _) = generate(&mut rng(), Instant::ZERO, &BurstSpec::fetch(40), 0, AppId(0));
        for w in pkts.windows(2) {
            assert!(w[1].ts - w[0].ts < Duration::from_millis(500));
        }
    }
}
