//! Diurnal activity modulation for multi-day user traces.
//!
//! Real user captures (the paper's 28 days across 9 users) have strong
//! time-of-day structure: heavy interactive use in the evening, nothing but
//! background heartbeats at night. Background applications run around the
//! clock; *foreground* applications only run while the user is actually on
//! the phone. This module generates those usage sessions.

use rand::Rng;
use tailwise_trace::time::{Duration, Instant};

use crate::dist;

/// Seconds per hour/day, as durations.
const HOUR: Duration = Duration::from_secs(3600);
/// One day.
pub const DAY: Duration = Duration::from_secs(86_400);

/// Relative propensity to start a foreground session in each hour of the
/// day (0 = midnight). Values are weights, not probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    weights: [f64; 24],
}

impl DiurnalProfile {
    /// A typical smartphone-user shape: near-silent 1 am – 6 am, commute
    /// bumps, evening peak.
    pub fn typical() -> DiurnalProfile {
        DiurnalProfile {
            weights: [
                0.15, 0.05, 0.02, 0.02, 0.02, 0.05, // 00–05
                0.30, 0.80, 1.00, 0.70, 0.60, 0.70, // 06–11
                0.90, 0.80, 0.60, 0.60, 0.70, 0.90, // 12–17
                1.10, 1.30, 1.40, 1.20, 0.80, 0.40, // 18–23
            ],
        }
    }

    /// A flat profile (no time-of-day structure) — useful as an ablation
    /// control.
    pub fn flat() -> DiurnalProfile {
        DiurnalProfile { weights: [1.0; 24] }
    }

    /// A heavier user: the typical shape, uniformly scaled.
    pub fn heavy() -> DiurnalProfile {
        let mut p = Self::typical();
        for w in &mut p.weights {
            *w *= 1.8;
        }
        p
    }

    /// A lighter user.
    pub fn light() -> DiurnalProfile {
        let mut p = Self::typical();
        for w in &mut p.weights {
            *w *= 0.5;
        }
        p
    }

    /// The weight for the hour containing `t` (hours cycle per day).
    pub fn weight_at(&self, t: Instant) -> f64 {
        let secs = t.as_micros().rem_euclid(DAY.as_micros()) / 1_000_000;
        self.weights[(secs / 3600) as usize % 24]
    }

    /// Raw weight table.
    pub fn weights(&self) -> &[f64; 24] {
        &self.weights
    }

    /// Generates foreground usage sessions over `days` days.
    ///
    /// Sessions start as an inhomogeneous Poisson process with rate
    /// `base_sessions_per_day` shaped by the hourly weights (thinning
    /// method), and last log-normal(`median_session`) each. Sessions are
    /// non-overlapping: a session that would start inside the previous one
    /// is skipped (the user is already on the phone).
    pub fn usage_sessions<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        days: u32,
        base_sessions_per_day: f64,
        median_session: Duration,
    ) -> Vec<(Instant, Duration)> {
        let horizon = Instant::ZERO + DAY * days as i64;
        let mean_weight: f64 = self.weights.iter().sum::<f64>() / 24.0;
        let max_weight = self.weights.iter().copied().fold(0.0f64, f64::max);
        if max_weight <= 0.0 || base_sessions_per_day <= 0.0 {
            return Vec::new();
        }
        // Candidate rate: sessions/day at the *peak* hour, in events/sec.
        let peak_rate = base_sessions_per_day * (max_weight / mean_weight) / DAY.as_secs_f64();
        let mut sessions: Vec<(Instant, Duration)> = Vec::new();
        let mut t = Instant::ZERO;
        loop {
            t += dist::exp_duration(rng, Duration::from_secs_f64(1.0 / peak_rate));
            if t >= horizon {
                break;
            }
            // Thinning: accept with probability w(t)/max_weight.
            if rng.random::<f64>() >= self.weight_at(t) / max_weight {
                continue;
            }
            if let Some(&(start, dur)) = sessions.last() {
                if t < start + dur {
                    continue; // still in the previous session
                }
            }
            let dur = Duration::from_secs_f64(
                dist::lognormal_f64(rng, median_session.as_secs_f64(), 0.7)
                    .clamp(30.0, 3.0 * HOUR.as_secs_f64()),
            );
            sessions.push((t, dur));
        }
        sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD1)
    }

    #[test]
    fn weight_lookup_cycles_daily() {
        let p = DiurnalProfile::typical();
        let eight_pm_day0 = Instant::from_secs(20 * 3600);
        let eight_pm_day3 = eight_pm_day0 + DAY * 3;
        assert_eq!(p.weight_at(eight_pm_day0), p.weight_at(eight_pm_day3));
        assert_eq!(p.weight_at(eight_pm_day0), 1.40);
        // 3 am is the trough.
        assert_eq!(p.weight_at(Instant::from_secs(3 * 3600)), 0.02);
    }

    #[test]
    fn sessions_fall_within_horizon_and_do_not_overlap() {
        let p = DiurnalProfile::typical();
        let sessions = p.usage_sessions(&mut rng(), 5, 8.0, Duration::from_secs(400));
        assert!(!sessions.is_empty());
        for (start, dur) in &sessions {
            assert!(*start >= Instant::ZERO && *start < Instant::ZERO + DAY * 5);
            assert!(*dur >= Duration::from_secs(30));
        }
        for w in sessions.windows(2) {
            assert!(w[1].0 >= w[0].0 + w[0].1, "sessions overlap: {w:?}");
        }
    }

    #[test]
    fn session_count_tracks_the_requested_rate() {
        let p = DiurnalProfile::typical();
        let sessions = p.usage_sessions(&mut rng(), 30, 10.0, Duration::from_secs(300));
        let per_day = sessions.len() as f64 / 30.0;
        // Thinning + overlap-skipping lands near the target.
        assert!((5.0..=13.0).contains(&per_day), "{per_day} sessions/day");
    }

    #[test]
    fn night_hours_see_far_fewer_sessions() {
        let p = DiurnalProfile::typical();
        let sessions = p.usage_sessions(&mut rng(), 60, 12.0, Duration::from_secs(300));
        let hour_of =
            |t: Instant| (t.as_micros().rem_euclid(DAY.as_micros()) / 3_600_000_000) as u32;
        let night = sessions.iter().filter(|(s, _)| (1..6).contains(&hour_of(*s))).count();
        let evening = sessions.iter().filter(|(s, _)| (18..23).contains(&hour_of(*s))).count();
        assert!(evening > night * 5, "evening {evening} vs night {night} sessions");
    }

    #[test]
    fn flat_profile_is_uniform() {
        let p = DiurnalProfile::flat();
        for h in 0..24 {
            assert_eq!(p.weight_at(Instant::from_secs(h * 3600)), 1.0);
        }
    }

    #[test]
    fn zero_rate_yields_no_sessions() {
        let p = DiurnalProfile::typical();
        assert!(p.usage_sessions(&mut rng(), 3, 0.0, Duration::from_secs(300)).is_empty());
    }

    #[test]
    fn heavy_and_light_scale_the_same_shape() {
        let h = DiurnalProfile::heavy();
        let l = DiurnalProfile::light();
        let t = Instant::from_secs(20 * 3600);
        assert!(h.weight_at(t) > l.weight_at(t));
        let ratio = h.weight_at(t) / l.weight_at(t);
        let t2 = Instant::from_secs(8 * 3600);
        assert!((h.weight_at(t2) / l.weight_at(t2) - ratio).abs() < 1e-12);
    }
}
