//! Emission of scenario files that re-parse to the same document.
//!
//! [`DocWriter`] is a small append-only builder: callers lay out
//! comments, `[table]` / `[[table]]` headers, and typed `key = value`
//! lines in the order they should appear on disk. Every emitter is
//! lossless under [`parse`](crate::parse()):
//!
//! * strings are escaped with the same escape set the parser accepts;
//! * floats print via Rust's shortest round-trip formatting, with a
//!   forced `.0` so they re-parse as floats rather than integers;
//! * integers print in decimal.
//!
//! Non-finite floats cannot be represented in the format; emitting one
//! is a caller bug and panics.

use std::fmt::Write as _;

/// Append-only writer producing a parseable scenario document.
#[derive(Debug, Default)]
pub struct DocWriter {
    out: String,
}

/// True when `key` consists solely of bare-key characters
/// (`A-Z a-z 0-9 _ -`) and is non-empty — the only keys the format can
/// express.
pub fn is_bare_key(key: &str) -> bool {
    !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Escapes `s` for a double-quoted basic string.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a float so it re-parses exactly and as a float.
///
/// Panics on non-finite values — the format has no representation for
/// them, and a scenario containing one is already corrupt.
pub fn format_float(v: f64) -> String {
    assert!(v.is_finite(), "scenario files cannot represent non-finite float {v}");
    // `{:?}` is Rust's shortest representation that round-trips through
    // `str::parse::<f64>`, and always contains `.` or `e` — so the
    // parser classifies it as a float.
    format!("{v:?}")
}

impl DocWriter {
    /// A new empty document.
    pub fn new() -> DocWriter {
        DocWriter::default()
    }

    /// Appends a `# comment` line (multi-line text becomes one comment
    /// line per input line).
    pub fn comment(&mut self, text: &str) -> &mut Self {
        for line in text.lines() {
            if line.is_empty() {
                self.out.push_str("#\n");
            } else {
                let _ = writeln!(self.out, "# {line}");
            }
        }
        self
    }

    /// Appends a blank separator line.
    pub fn blank(&mut self) -> &mut Self {
        self.out.push('\n');
        self
    }

    /// Opens a `[name]` table.
    pub fn table(&mut self, name: &str) -> &mut Self {
        assert!(is_bare_key(name), "table name {name:?} is not a bare key");
        let _ = writeln!(self.out, "[{name}]");
        self
    }

    /// Appends a `[[name]]` table-array element header.
    pub fn array_table(&mut self, name: &str) -> &mut Self {
        assert!(is_bare_key(name), "table name {name:?} is not a bare key");
        let _ = writeln!(self.out, "[[{name}]]");
        self
    }

    /// Writes `key = "value"`.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, &format!("\"{}\"", escape_str(value)))
    }

    /// Writes `key = value` for a signed integer.
    pub fn int(&mut self, key: &str, value: i64) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    /// Writes `key = value` for an unsigned integer.
    pub fn uint(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    /// Writes `key = value` for a finite float (panics on NaN/inf).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, &format_float(value))
    }

    /// Writes `key = true|false`.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Writes `key = ["a", "b", …]`.
    pub fn str_array<S: AsRef<str>>(&mut self, key: &str, values: &[S]) -> &mut Self {
        let body: Vec<String> =
            values.iter().map(|v| format!("\"{}\"", escape_str(v.as_ref()))).collect();
        self.raw(key, &format!("[{}]", body.join(", ")))
    }

    /// Writes `key = [1, 2, …]` for unsigned integers.
    pub fn uint_array(&mut self, key: &str, values: &[u64]) -> &mut Self {
        let body: Vec<String> = values.iter().map(u64::to_string).collect();
        self.raw(key, &format!("[{}]", body.join(", ")))
    }

    /// Writes `key = [0.5, 1.0, …]` for finite floats (panics on
    /// NaN/inf, like [`DocWriter::float`]).
    pub fn float_array(&mut self, key: &str, values: &[f64]) -> &mut Self {
        let body: Vec<String> = values.iter().copied().map(format_float).collect();
        self.raw(key, &format!("[{}]", body.join(", ")))
    }

    fn raw(&mut self, key: &str, rendered: &str) -> &mut Self {
        assert!(is_bare_key(key), "key {key:?} is not a bare key");
        let _ = writeln!(self.out, "{key} = {rendered}");
        self
    }

    /// The finished document text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn written_documents_reparse_losslessly() {
        let mut w = DocWriter::new();
        w.comment("generated by a test\nsecond line")
            .blank()
            .table("scenario")
            .str("name", "tricky \"name\"\nwith\ttabs \\")
            .uint("users", u64::MAX)
            .int("offset", -42)
            .float("weight", 0.1)
            .float("whole", 3.0)
            .bool("enabled", false)
            .str_array("schemes", &["makeidle", "oracle"])
            .uint_array("sizes", &[1, 200_000])
            .float_array("busy", &[0.25, 1.0]);
        w.blank().array_table("carrier").str("profile", "att-hspa");
        let text = w.finish();

        let doc = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        let s = doc.table("scenario").unwrap();
        assert_eq!(s.req_str("name").unwrap(), "tricky \"name\"\nwith\ttabs \\");
        assert_eq!(s.req_u64("users").unwrap(), u64::MAX);
        assert_eq!(s.get_int("offset").unwrap(), Some(-42));
        assert_eq!(s.req_float("weight").unwrap(), 0.1);
        // 3.0 must come back as a *float*, not an integer.
        assert!(matches!(s.get("whole").unwrap().value, crate::Value::Float(v) if v == 3.0));
        assert_eq!(s.get_bool("enabled").unwrap(), Some(false));
        assert_eq!(s.req_array("schemes").unwrap().len(), 2);
        let busy = crate::value::float_elements("busy", s.req_array("busy").unwrap()).unwrap();
        assert_eq!(busy, vec![0.25, 1.0]);
        assert_eq!(doc.array_of_tables("carrier").len(), 1);
    }

    #[test]
    fn float_formatting_round_trips_extremes() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7, 95.0] {
            let text = format_float(v);
            assert_eq!(text.parse::<f64>().unwrap(), v, "{text}");
            assert!(text.contains('.') || text.contains('e'), "{text} would reparse as int");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_panic() {
        format_float(f64::NAN);
    }

    #[test]
    fn bare_key_validation() {
        assert!(is_bare_key("shard_size"));
        assert!(is_bare_key("att-hspa"));
        assert!(!is_bare_key(""));
        assert!(!is_bare_key("a b"));
        assert!(!is_bare_key("a.b"));
    }
}
