//! # tailwise-scenfile
//!
//! A dependency-free parser and writer for the on-disk scenario format
//! of the tailwise fleet simulator (`tailwise fleet run <file.toml>`).
//!
//! The format is a strict subset of TOML — tables, arrays of tables,
//! basic strings, 64-bit integers, floats, booleans, and one-line
//! inline arrays — chosen so experiments are shareable and diffable
//! without pulling `serde`/`toml` into the offline build environment
//! (see the workspace's vendored-dependency policy). The full grammar
//! and the scenario schema built on top of it are specified in
//! `docs/SCENARIO_FORMAT.md`.
//!
//! Three design rules shape the API:
//!
//! 1. **Positions everywhere.** Every parse or schema error is a
//!    [`ScenError`] carrying a 1-based line/column ([`Pos`]) and renders
//!    compiler-style (`file.toml:12:7: message`), so a typo in a 200-line
//!    sweep file is a jump-to-location fix, not a hunt.
//! 2. **Typed, strict access.** [`Table`] exposes typed getters that
//!    range-check integers (seeds are `u64`; hex literals like `0xF1EE7`
//!    parse exactly), coerce `1` → `1.0` where a float is expected, and
//!    support [`Table::deny_unknown`] so schemas reject misspelled keys
//!    instead of ignoring them.
//! 3. **Round-trip emission.** [`DocWriter`] emits documents that
//!    re-parse to the same values — the basis of the
//!    `Scenario → to_file → from_file → ==` property pinned by
//!    `tailwise-fleet`'s tests.
//!
//! ## Example
//!
//! ```
//! use tailwise_scenfile::{parse, DocWriter};
//!
//! let mut w = DocWriter::new();
//! w.table("scenario").str("name", "demo").uint("users", 1000);
//! w.blank().array_table("app").str("kind", "im").float("weight", 3.0);
//! let text = w.finish();
//!
//! let doc = parse(&text).unwrap();
//! let scenario = doc.table("scenario").unwrap();
//! assert_eq!(scenario.req_u64("users").unwrap(), 1000);
//! assert_eq!(doc.array_of_tables("app")[0].req_float("weight").unwrap(), 3.0);
//!
//! // Errors carry line and column:
//! let err = parse("users 1000").unwrap_err();
//! assert_eq!((err.pos.line, err.pos.col), (1, 7));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod parse;
pub mod value;
pub mod write;

pub use error::{Pos, ScenError, ScenErrorKind};
pub use parse::parse;
pub use value::{float_elements, str_elements, u64_elements, Entry, Item, Table, Value};
pub use write::{escape_str, format_float, is_bare_key, DocWriter};
