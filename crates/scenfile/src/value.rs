//! The parsed document tree: values, positioned items, and tables with
//! typed, error-reporting accessors.

use std::collections::BTreeMap;

use crate::error::{Pos, ScenError};

/// A primitive or array value.
///
/// Integers are held as `i128` internally so both `i64` and `u64`
/// literals (e.g. hexadecimal master seeds) survive parsing exactly; the
/// typed accessors range-check on the way out.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic (double-quoted) string.
    Str(String),
    /// An integer literal (decimal, `0x`, `0o`, or `0b`).
    Int(i128),
    /// A float literal.
    Float(f64),
    /// `true` or `false`.
    Bool(bool),
    /// A one-line inline array `[v, v, …]`.
    Array(Vec<Item>),
}

impl Value {
    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "a string",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Bool(_) => "a boolean",
            Value::Array(_) => "an array",
        }
    }
}

/// A value plus the position it was parsed at (used for type errors).
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// The parsed value.
    pub value: Value,
    /// Where the value starts.
    pub pos: Pos,
}

/// One `key = value` binding inside a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Where the key starts (used for duplicate/unknown-key errors).
    pub key_pos: Pos,
    /// The bound value.
    pub item: Item,
}

/// A table: `key = value` entries, named sub-tables (`[name]`), and
/// arrays of tables (`[[name]]`). The document root is itself a `Table`.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    pos: Pos,
    /// Whether a `[name]` header line has explicitly defined this table
    /// (as opposed to implicit creation as a dotted-header parent);
    /// guards the duplicate-definition check.
    explicit: bool,
    entries: BTreeMap<String, Entry>,
    tables: BTreeMap<String, Table>,
    arrays: BTreeMap<String, Vec<Table>>,
}

impl Table {
    /// An empty table anchored at `pos` (its header line, or 1:1 for the
    /// document root).
    pub fn new(pos: Pos) -> Table {
        Table {
            pos,
            explicit: false,
            entries: BTreeMap::new(),
            tables: BTreeMap::new(),
            arrays: BTreeMap::new(),
        }
    }

    /// The position of the table's header (1:1 for the root).
    pub fn pos(&self) -> Pos {
        self.pos
    }

    /// True when the table holds no entries, sub-tables, or table arrays.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.tables.is_empty() && self.arrays.is_empty()
    }

    // ------------------------------------------------------------------
    // Construction (used by the parser).

    /// Inserts a `key = value` entry; errors on any name collision.
    pub(crate) fn insert_entry(&mut self, key: &str, entry: Entry) -> Result<(), ScenError> {
        let pos = entry.key_pos;
        if let Some(prev) = self.entries.get(key) {
            return Err(ScenError::at(
                pos,
                format!("duplicate key `{key}` (first set at {})", prev.key_pos),
            ));
        }
        if self.tables.contains_key(key) || self.arrays.contains_key(key) {
            return Err(ScenError::at(pos, format!("key `{key}` collides with a table name")));
        }
        self.entries.insert(key.to_string(), entry);
        Ok(())
    }

    /// Explicitly defines the sub-table `key` (a `[key]` header line);
    /// errors on collisions and double definitions.
    pub(crate) fn define_table(&mut self, key: &str, pos: Pos) -> Result<&mut Table, ScenError> {
        if self.entries.contains_key(key) || self.arrays.contains_key(key) {
            return Err(ScenError::at(
                pos,
                format!("table `[{key}]` collides with an existing key or table array"),
            ));
        }
        if let Some(prev) = self.tables.get(key) {
            if prev.explicit {
                return Err(ScenError::at(
                    pos,
                    format!("table `[{key}]` defined twice (first at {})", prev.pos),
                ));
            }
        }
        let table = self.tables.entry(key.to_string()).or_insert_with(|| Table::new(pos));
        table.explicit = true;
        Ok(table)
    }

    /// Walks into the sub-table `key`, creating it implicitly when
    /// absent (dotted-header parents). When `key` names a table array,
    /// walks into its most recent element, per TOML's dotted-path rule.
    pub(crate) fn open_table(&mut self, key: &str, pos: Pos) -> Result<&mut Table, ScenError> {
        if self.entries.contains_key(key) {
            return Err(ScenError::at(pos, format!("`{key}` is a value key, not a table")));
        }
        if let Some(list) = self.arrays.get_mut(key) {
            return Ok(list.last_mut().expect("table arrays are never empty"));
        }
        Ok(self.tables.entry(key.to_string()).or_insert_with(|| Table::new(pos)))
    }

    /// The most recent element of the table array `key`, if any.
    pub(crate) fn last_array_table(&mut self, key: &str) -> Option<&mut Table> {
        self.arrays.get_mut(key).and_then(|list| list.last_mut())
    }

    /// Appends a fresh element to the table array `key`.
    pub(crate) fn push_array_table(
        &mut self,
        key: &str,
        pos: Pos,
    ) -> Result<&mut Table, ScenError> {
        if self.entries.contains_key(key) || self.tables.contains_key(key) {
            return Err(ScenError::at(
                pos,
                format!("table array `[[{key}]]` collides with an existing key or table"),
            ));
        }
        let list = self.arrays.entry(key.to_string()).or_default();
        list.push(Table::new(pos));
        Ok(list.last_mut().expect("just pushed"))
    }

    // ------------------------------------------------------------------
    // Untyped lookups.

    /// The raw item bound to `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Item> {
        self.entries.get(key).map(|e| &e.item)
    }

    /// The sub-table `[key]`, if defined.
    pub fn table(&self, key: &str) -> Option<&Table> {
        self.tables.get(key)
    }

    /// The elements of the table array `[[key]]` (empty when absent).
    pub fn array_of_tables(&self, key: &str) -> &[Table] {
        self.arrays.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All entry keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// All sub-table names, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// All table-array names, sorted.
    pub fn array_names(&self) -> impl Iterator<Item = &str> {
        self.arrays.keys().map(String::as_str)
    }

    /// Errors (at the offending name's position) if the table holds an
    /// entry key not in `keys`, a sub-table not in `tables`, or a table
    /// array not in `arrays`. The scenario schema uses this so typos fail
    /// loudly instead of being silently ignored.
    pub fn deny_unknown(
        &self,
        keys: &[&str],
        tables: &[&str],
        arrays: &[&str],
    ) -> Result<(), ScenError> {
        for (key, entry) in &self.entries {
            if !keys.contains(&key.as_str()) {
                return Err(ScenError::at(
                    entry.key_pos,
                    format!("unknown key `{key}`; expected one of: {}", keys.join(", ")),
                ));
            }
        }
        for (name, table) in &self.tables {
            if !tables.contains(&name.as_str()) {
                return Err(ScenError::at(table.pos, format!("unknown table `[{name}]`")));
            }
        }
        for (name, list) in &self.arrays {
            if !arrays.contains(&name.as_str()) {
                let pos = list.first().map(|t| t.pos).unwrap_or(self.pos);
                return Err(ScenError::at(pos, format!("unknown table array `[[{name}]]`")));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Typed optional accessors: `Ok(None)` when absent, a positioned
    // error when present with the wrong type.

    /// Optional string.
    pub fn get_str(&self, key: &str) -> Result<Option<&str>, ScenError> {
        match self.get(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Str(s) => Ok(Some(s)),
                other => Err(type_error(key, other, item.pos, "a string")),
            },
        }
    }

    /// Optional `i64` (range-checked).
    pub fn get_int(&self, key: &str) -> Result<Option<i64>, ScenError> {
        match self.get(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Int(i) => i64::try_from(*i).map(Some).map_err(|_| {
                    ScenError::at(item.pos, format!("`{key}` is out of range for a 64-bit integer"))
                }),
                other => Err(type_error(key, other, item.pos, "an integer")),
            },
        }
    }

    /// Optional `u64` (range-checked; rejects negatives).
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, ScenError> {
        match self.get(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Int(i) => u64::try_from(*i).map(Some).map_err(|_| {
                    ScenError::at(
                        item.pos,
                        format!("`{key}` must be a non-negative 64-bit integer"),
                    )
                }),
                other => Err(type_error(key, other, item.pos, "an integer")),
            },
        }
    }

    /// Optional `u32` (range-checked).
    pub fn get_u32(&self, key: &str) -> Result<Option<u32>, ScenError> {
        match self.get_u64(key)? {
            None => Ok(None),
            Some(v) => u32::try_from(v).map(Some).map_err(|_| {
                let pos = self.get(key).map(|i| i.pos).unwrap_or(self.pos);
                ScenError::at(pos, format!("`{key}` is out of range for a 32-bit integer"))
            }),
        }
    }

    /// Optional float. Integer literals coerce (so `weight = 1` works
    /// where `1.0` is meant).
    pub fn get_float(&self, key: &str) -> Result<Option<f64>, ScenError> {
        match self.get(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Float(f) => Ok(Some(*f)),
                Value::Int(i) => Ok(Some(*i as f64)),
                other => Err(type_error(key, other, item.pos, "a float")),
            },
        }
    }

    /// Optional boolean.
    pub fn get_bool(&self, key: &str) -> Result<Option<bool>, ScenError> {
        match self.get(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Bool(b) => Ok(Some(*b)),
                other => Err(type_error(key, other, item.pos, "a boolean")),
            },
        }
    }

    /// Optional array of raw items.
    pub fn get_array(&self, key: &str) -> Result<Option<&[Item]>, ScenError> {
        match self.get(key) {
            None => Ok(None),
            Some(item) => match &item.value {
                Value::Array(items) => Ok(Some(items)),
                other => Err(type_error(key, other, item.pos, "an array")),
            },
        }
    }

    // ------------------------------------------------------------------
    // Required accessors: a positioned error when absent.

    /// Required string.
    pub fn req_str(&self, key: &str) -> Result<&str, ScenError> {
        self.get_str(key)?.ok_or_else(|| self.missing(key))
    }

    /// Required `u64`.
    pub fn req_u64(&self, key: &str) -> Result<u64, ScenError> {
        self.get_u64(key)?.ok_or_else(|| self.missing(key))
    }

    /// Required float (integer literals coerce).
    pub fn req_float(&self, key: &str) -> Result<f64, ScenError> {
        self.get_float(key)?.ok_or_else(|| self.missing(key))
    }

    /// Required array.
    pub fn req_array(&self, key: &str) -> Result<&[Item], ScenError> {
        self.get_array(key)?.ok_or_else(|| self.missing(key))
    }

    fn missing(&self, key: &str) -> ScenError {
        ScenError::at(self.pos, format!("missing required key `{key}`"))
    }
}

fn type_error(key: &str, got: &Value, pos: Pos, want: &str) -> ScenError {
    ScenError::at(pos, format!("`{key}` is {}, expected {want}", got.type_name()))
}

/// Extracts the strings of an array, erroring (with each element's
/// position) on non-string elements. Convenience for sweep axes like
/// `values = ["makeidle", "oracle"]`.
pub fn str_elements<'a>(key: &str, items: &'a [Item]) -> Result<Vec<&'a str>, ScenError> {
    items
        .iter()
        .map(|item| match &item.value {
            Value::Str(s) => Ok(s.as_str()),
            other => Err(ScenError::at(
                item.pos,
                format!("elements of `{key}` must be strings, found {}", other.type_name()),
            )),
        })
        .collect()
}

/// Extracts the `u64`s of an array, erroring on non-integer elements.
pub fn u64_elements(key: &str, items: &[Item]) -> Result<Vec<u64>, ScenError> {
    items
        .iter()
        .map(|item| match &item.value {
            Value::Int(i) => u64::try_from(*i).map_err(|_| {
                ScenError::at(
                    item.pos,
                    format!("elements of `{key}` must be non-negative 64-bit integers"),
                )
            }),
            other => Err(ScenError::at(
                item.pos,
                format!("elements of `{key}` must be integers, found {}", other.type_name()),
            )),
        })
        .collect()
}

/// Extracts the floats of an array, coercing integer elements the way
/// [`Table::get_float`] does (a manifest writing `[1.0, 2]` means the
/// same thing either way).
pub fn float_elements(key: &str, items: &[Item]) -> Result<Vec<f64>, ScenError> {
    items
        .iter()
        .map(|item| match &item.value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(ScenError::at(
                item.pos,
                format!("elements of `{key}` must be floats, found {}", other.type_name()),
            )),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(key: &str, value: Value) -> Table {
        let mut t = Table::new(Pos::new(1, 1));
        t.insert_entry(
            key,
            Entry { key_pos: Pos::new(2, 1), item: Item { value, pos: Pos::new(2, 8) } },
        )
        .unwrap();
        t
    }

    #[test]
    fn typed_accessors_check_types_and_report_positions() {
        let t = table_with("users", Value::Str("many".into()));
        let err = t.get_int("users").unwrap_err();
        assert_eq!(err.pos, Pos::new(2, 8));
        assert!(err.message.contains("`users` is a string, expected an integer"), "{err}");
        assert_eq!(t.get_str("users").unwrap(), Some("many"));
        assert_eq!(t.get_str("absent").unwrap(), None);
    }

    #[test]
    fn int_coerces_to_float_but_not_vice_versa() {
        let t = table_with("w", Value::Int(3));
        assert_eq!(t.get_float("w").unwrap(), Some(3.0));
        let t = table_with("n", Value::Float(3.5));
        assert!(t.get_int("n").is_err());
    }

    #[test]
    fn integer_range_checks() {
        let t = table_with("seed", Value::Int(u64::MAX as i128));
        assert_eq!(t.get_u64("seed").unwrap(), Some(u64::MAX));
        assert!(t.get_int("seed").is_err());
        let t = table_with("neg", Value::Int(-1));
        assert!(t.get_u64("neg").is_err());
        assert_eq!(t.get_int("neg").unwrap(), Some(-1));
        let t = table_with("big", Value::Int(1 << 40));
        assert!(t.get_u32("big").is_err());
    }

    #[test]
    fn required_accessors_point_at_the_table_header() {
        let t = Table::new(Pos::new(5, 1));
        let err = t.req_str("name").unwrap_err();
        assert_eq!(err.pos, Pos::new(5, 1));
        assert!(err.message.contains("missing required key `name`"));
    }

    #[test]
    fn duplicate_and_colliding_names_are_rejected() {
        let mut t = table_with("k", Value::Int(1));
        let dup = t
            .insert_entry(
                "k",
                Entry {
                    key_pos: Pos::new(9, 1),
                    item: Item { value: Value::Int(2), pos: Pos::new(9, 5) },
                },
            )
            .unwrap_err();
        assert!(dup.message.contains("duplicate key `k`"), "{dup}");
        assert!(dup.message.contains("2:1"), "{dup}");
        assert!(t.define_table("k", Pos::new(10, 1)).is_err());
        assert!(t.push_array_table("k", Pos::new(11, 1)).is_err());
    }

    #[test]
    fn deny_unknown_reports_the_offending_name() {
        let t = table_with("uzers", Value::Int(1));
        let err = t.deny_unknown(&["users"], &[], &[]).unwrap_err();
        assert_eq!(err.pos, Pos::new(2, 1));
        assert!(err.message.contains("unknown key `uzers`"));
        assert!(err.message.contains("users"));
    }

    #[test]
    fn element_extractors() {
        let items = vec![
            Item { value: Value::Str("a".into()), pos: Pos::new(1, 10) },
            Item { value: Value::Int(3), pos: Pos::new(1, 15) },
        ];
        let err = str_elements("values", &items).unwrap_err();
        assert_eq!(err.pos, Pos::new(1, 15));
        let ints = vec![Item { value: Value::Int(7), pos: Pos::new(1, 10) }];
        assert_eq!(u64_elements("values", &ints).unwrap(), vec![7]);
    }
}
