//! The line-oriented TOML-subset parser.
//!
//! The accepted grammar (see `docs/SCENARIO_FORMAT.md` for the full
//! spec) is deliberately line-oriented: every non-blank line is a
//! comment, a `[table]` header, a `[[table-array]]` header, or one
//! `key = value` binding. Arrays therefore fit on a single line — the
//! one restriction versus real TOML that keeps this parser small enough
//! to audit while still reporting precise line/column positions.

use crate::error::{Pos, ScenError};
use crate::value::{Entry, Item, Table, Value};

/// Parses a document into its root [`Table`].
///
/// Errors carry the 1-based line/column where the problem was detected;
/// attach the file path afterwards with
/// [`ScenError::with_origin`](crate::ScenError::with_origin).
pub fn parse(src: &str) -> Result<Table, ScenError> {
    let mut root = Table::new(Pos::START);
    // Path of `[..]` headers from the root to the table currently
    // receiving `key = value` lines; empty means the root itself.
    let mut current: Vec<PathSeg> = Vec::new();

    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut cur = Cursor::new(raw_line, line_no);
        cur.skip_ws();
        if cur.at_end_or_comment() {
            continue;
        }
        if cur.peek() == Some('[') {
            let header_pos = cur.pos();
            let is_array = cur.lookahead_is("[[");
            let opener = if is_array { "[[" } else { "[" };
            let closer = if is_array { "]]" } else { "]" };
            cur.expect_literal(opener)?;
            cur.skip_ws();
            let path = parse_header_path(&mut cur)?;
            cur.skip_ws();
            cur.expect_literal(closer)?;
            cur.skip_ws();
            cur.expect_line_end()?;
            current = Vec::with_capacity(path.len());
            for (depth, seg) in path.iter().enumerate() {
                let last = depth == path.len() - 1;
                current.push(PathSeg {
                    name: seg.clone(),
                    kind: if last && is_array { SegKind::ArrayElem } else { SegKind::Table },
                    pos: header_pos,
                    define: last,
                });
            }
            // Materialize the path now so empty tables still exist and
            // double definitions are caught at the header line.
            navigate(&mut root, &mut current)?;
        } else {
            let key_pos = cur.pos();
            let key = cur.parse_bare_key()?;
            cur.skip_ws();
            if cur.peek() != Some('=') {
                return Err(ScenError::at(cur.pos(), format!("expected `=` after key `{key}`")));
            }
            cur.advance();
            cur.skip_ws();
            let item = parse_value(&mut cur)?;
            cur.skip_ws();
            cur.expect_line_end()?;
            let table = navigate(&mut root, &mut current)?;
            table.insert_entry(&key, Entry { key_pos, item })?;
        }
    }
    Ok(root)
}

#[derive(Clone, Copy, PartialEq)]
enum SegKind {
    Table,
    ArrayElem,
}

struct PathSeg {
    name: String,
    kind: SegKind,
    pos: Pos,
    /// True on the final segment of a header line the first time it is
    /// walked: that walk *defines* the table (or appends the array
    /// element). Re-walks for subsequent `key = value` lines must reuse
    /// the existing table instead.
    define: bool,
}

/// Walks (and on first visit, creates) the table at `path`, flipping
/// each segment's `define` flag off so later walks reuse it.
fn navigate<'a>(root: &'a mut Table, path: &mut [PathSeg]) -> Result<&'a mut Table, ScenError> {
    let mut table = root;
    for seg in path.iter_mut() {
        let define = std::mem::take(&mut seg.define);
        table = match seg.kind {
            SegKind::ArrayElem => {
                if define {
                    table.push_array_table(&seg.name, seg.pos)?
                } else {
                    table.last_array_table(&seg.name).ok_or_else(|| {
                        ScenError::at(seg.pos, format!("internal: lost table array `{}`", seg.name))
                    })?
                }
            }
            SegKind::Table => {
                if define {
                    table.define_table(&seg.name, seg.pos)?
                } else {
                    table.open_table(&seg.name, seg.pos)?
                }
            }
        };
    }
    Ok(table)
}

/// `a` or `a.b.c` inside a header.
fn parse_header_path(cur: &mut Cursor) -> Result<Vec<String>, ScenError> {
    let mut path = vec![cur.parse_bare_key()?];
    loop {
        cur.skip_ws();
        if cur.peek() == Some('.') {
            cur.advance();
            cur.skip_ws();
            path.push(cur.parse_bare_key()?);
        } else {
            return Ok(path);
        }
    }
}

fn parse_value(cur: &mut Cursor) -> Result<Item, ScenError> {
    let pos = cur.pos();
    let value = match cur.peek() {
        None => return Err(ScenError::at(pos, "expected a value")),
        Some('"') => Value::Str(parse_basic_string(cur)?),
        Some('[') => parse_array(cur)?,
        Some('t') | Some('f') if cur.lookahead_is("true") || cur.lookahead_is("false") => {
            let b = cur.lookahead_is("true");
            cur.expect_literal(if b { "true" } else { "false" })?;
            // `trueish` must not parse as `true` + trailing garbage —
            // require a terminator right after the literal.
            if !cur.at_value_boundary() {
                return Err(ScenError::at(pos, "expected a value"));
            }
            Value::Bool(b)
        }
        Some(c) if c == '+' || c == '-' || c.is_ascii_digit() => parse_number(cur)?,
        Some(c) => {
            return Err(ScenError::at(
                pos,
                format!("expected a value, found `{c}` (strings must be double-quoted)"),
            ))
        }
    };
    Ok(Item { value, pos })
}

fn parse_array(cur: &mut Cursor) -> Result<Value, ScenError> {
    cur.expect_literal("[")?;
    let mut items = Vec::new();
    loop {
        cur.skip_ws();
        match cur.peek() {
            None => {
                return Err(ScenError::at(
                    cur.pos(),
                    "unterminated array (arrays must close on the same line)",
                ))
            }
            Some(']') => {
                cur.advance();
                return Ok(Value::Array(items));
            }
            _ => {
                if !items.is_empty() {
                    if cur.peek() != Some(',') {
                        return Err(ScenError::at(
                            cur.pos(),
                            "expected `,` or `]` in array".to_string(),
                        ));
                    }
                    cur.advance();
                    cur.skip_ws();
                    // Allow a trailing comma before the closer.
                    if cur.peek() == Some(']') {
                        cur.advance();
                        return Ok(Value::Array(items));
                    }
                }
                items.push(parse_value(cur)?);
            }
        }
    }
}

fn parse_basic_string(cur: &mut Cursor) -> Result<String, ScenError> {
    let open_pos = cur.pos();
    cur.expect_literal("\"")?;
    let mut out = String::new();
    loop {
        match cur.peek() {
            None => {
                return Err(ScenError::at(open_pos, "unterminated string".to_string()));
            }
            Some('"') => {
                cur.advance();
                return Ok(out);
            }
            Some('\\') => {
                let esc_pos = cur.pos();
                cur.advance();
                match cur.peek() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some(other) => {
                        return Err(ScenError::at(
                            esc_pos,
                            format!(
                                "unknown escape `\\{other}` (supported: \\\" \\\\ \\n \\t \\r)"
                            ),
                        ))
                    }
                    None => return Err(ScenError::at(open_pos, "unterminated string".to_string())),
                }
                cur.advance();
            }
            Some(c) => {
                out.push(c);
                cur.advance();
            }
        }
    }
}

fn parse_number(cur: &mut Cursor) -> Result<Value, ScenError> {
    let pos = cur.pos();
    let mut token = String::new();
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.' | '_') {
            token.push(c);
            cur.advance();
        } else {
            break;
        }
    }
    if !cur.at_value_boundary() {
        return Err(ScenError::at(cur.pos(), format!("unexpected character after `{token}`")));
    }
    let clean: String = token.chars().filter(|&c| c != '_').collect();
    let (sign, magnitude) = match clean.strip_prefix('-') {
        Some(rest) => (-1i128, rest),
        None => (1i128, clean.strip_prefix('+').unwrap_or(&clean)),
    };
    let radix = match magnitude.get(..2) {
        Some("0x") | Some("0X") => Some(16),
        Some("0o") | Some("0O") => Some(8),
        Some("0b") | Some("0B") => Some(2),
        _ => None,
    };
    if let Some(radix) = radix {
        return match u64::from_str_radix(&magnitude[2..], radix) {
            Ok(v) => Ok(Value::Int(sign * v as i128)),
            Err(_) => Err(ScenError::at(pos, format!("invalid integer literal `{token}`"))),
        };
    }
    let is_float = clean.contains(['.', 'e', 'E']);
    if is_float {
        match clean.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::Float(v)),
            _ => Err(ScenError::at(pos, format!("invalid float literal `{token}`"))),
        }
    } else {
        match clean.parse::<i128>() {
            Ok(v) if i128::from(u64::MAX).wrapping_neg() <= v && v <= i128::from(u64::MAX) => {
                Ok(Value::Int(v))
            }
            _ => Err(ScenError::at(pos, format!("invalid integer literal `{token}`"))),
        }
    }
}

/// A character cursor over one line, tracking 1-based columns.
struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
}

impl Cursor {
    fn new(line_text: &str, line: usize) -> Cursor {
        Cursor { chars: line_text.chars().collect(), i: 0, line }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.i + 1)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn advance(&mut self) {
        self.i += 1;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.advance();
        }
    }

    fn lookahead_is(&self, literal: &str) -> bool {
        literal.chars().enumerate().all(|(k, c)| self.chars.get(self.i + k) == Some(&c))
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), ScenError> {
        if self.lookahead_is(literal) {
            self.i += literal.chars().count();
            Ok(())
        } else {
            Err(ScenError::at(self.pos(), format!("expected `{literal}`")))
        }
    }

    fn at_end_or_comment(&self) -> bool {
        matches!(self.peek(), None | Some('#'))
    }

    /// True at whitespace, a comment, an array delimiter, or the line
    /// end — everywhere a completed value may legally stop.
    fn at_value_boundary(&self) -> bool {
        matches!(self.peek(), None | Some('#') | Some(' ') | Some('\t') | Some(',') | Some(']'))
    }

    fn expect_line_end(&mut self) -> Result<(), ScenError> {
        self.skip_ws();
        if self.at_end_or_comment() {
            Ok(())
        } else {
            Err(ScenError::at(self.pos(), "unexpected trailing characters".to_string()))
        }
    }

    /// `A-Z a-z 0-9 _ -`, at least one character.
    fn parse_bare_key(&mut self) -> Result<String, ScenError> {
        let start = self.pos();
        let mut key = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                key.push(c);
                self.advance();
            } else {
                break;
            }
        }
        if key.is_empty() {
            return Err(ScenError::at(
                start,
                "expected a key (letters, digits, `_`, `-`)".to_string(),
            ));
        }
        Ok(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn must(src: &str) -> Table {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}"))
    }

    #[test]
    fn parses_flat_keys_of_every_type() {
        let doc = must(concat!(
            "name = \"paper mix\"   # trailing comment\n",
            "users = 10_000\n",
            "seed = 0xF1EE7\n",
            "weight = 2.5\n",
            "negative = -3\n",
            "sci = 1e3\n",
            "enabled = true\n",
            "values = [\"a\", \"b\"]\n",
            "counts = [1, 2, 3,]\n",
        ));
        assert_eq!(doc.get_str("name").unwrap(), Some("paper mix"));
        assert_eq!(doc.get_u64("users").unwrap(), Some(10_000));
        assert_eq!(doc.get_u64("seed").unwrap(), Some(0xF1EE7));
        assert_eq!(doc.get_float("weight").unwrap(), Some(2.5));
        assert_eq!(doc.get_int("negative").unwrap(), Some(-3));
        assert_eq!(doc.get_float("sci").unwrap(), Some(1000.0));
        assert_eq!(doc.get_bool("enabled").unwrap(), Some(true));
        assert_eq!(doc.get_array("values").unwrap().unwrap().len(), 2);
        assert_eq!(doc.get_array("counts").unwrap().unwrap().len(), 3);
    }

    #[test]
    fn parses_tables_and_arrays_of_tables() {
        let doc = must(concat!(
            "top = 1\n",
            "\n",
            "[scenario]\n",
            "users = 5\n",
            "\n",
            "[scenario.sim]\n",
            "window = 100\n",
            "\n",
            "[[carrier]]\n",
            "profile = \"att-hspa\"\n",
            "\n",
            "[[carrier]]\n",
            "profile = \"verizon-lte\"\n",
        ));
        assert_eq!(doc.get_int("top").unwrap(), Some(1));
        let scenario = doc.table("scenario").unwrap();
        assert_eq!(scenario.get_u64("users").unwrap(), Some(5));
        assert_eq!(scenario.table("sim").unwrap().get_int("window").unwrap(), Some(100));
        let carriers = doc.array_of_tables("carrier");
        assert_eq!(carriers.len(), 2);
        assert_eq!(carriers[1].get_str("profile").unwrap(), Some("verizon-lte"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = must(r#"s = "a \"quoted\" line\nwith\ttabs \\ done""#);
        assert_eq!(doc.get_str("s").unwrap(), Some("a \"quoted\" line\nwith\ttabs \\ done"));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let doc = must("seed = 18446744073709551615\n");
        assert_eq!(doc.get_u64("seed").unwrap(), Some(u64::MAX));
    }

    // ------------------------------------------------------------------
    // Golden error positions: each malformed input must fail at the
    // documented line/column with the documented message.

    fn err_of(src: &str) -> ScenError {
        parse(src).expect_err("expected a parse error")
    }

    #[test]
    fn golden_missing_equals() {
        let e = err_of("users 1000\n");
        assert_eq!(e.pos, Pos::new(1, 7));
        assert_eq!(e.message, "expected `=` after key `users`");
    }

    #[test]
    fn golden_missing_value() {
        let e = err_of("[scenario]\nusers =\n");
        assert_eq!(e.pos, Pos::new(2, 8));
        assert_eq!(e.message, "expected a value");
    }

    #[test]
    fn golden_unquoted_string() {
        let e = err_of("scheme = makeidle\n");
        assert_eq!(e.pos, Pos::new(1, 10));
        assert!(e.message.contains("strings must be double-quoted"), "{e}");
    }

    #[test]
    fn golden_unterminated_string_points_at_opening_quote() {
        let e = err_of("name = \"oops\n");
        assert_eq!(e.pos, Pos::new(1, 8));
        assert_eq!(e.message, "unterminated string");
    }

    #[test]
    fn golden_unknown_escape() {
        let e = err_of(r#"name = "a\qb""#);
        assert_eq!(e.pos, Pos::new(1, 10));
        assert!(e.message.starts_with("unknown escape `\\q`"), "{e}");
    }

    #[test]
    fn golden_unterminated_array() {
        let e = err_of("values = [1, 2\n");
        assert_eq!(e.pos, Pos::new(1, 15));
        assert!(e.message.contains("unterminated array"), "{e}");
    }

    #[test]
    fn golden_array_missing_comma() {
        let e = err_of("values = [1 2]\n");
        assert_eq!(e.pos, Pos::new(1, 13));
        assert!(e.message.contains("expected `,` or `]`"), "{e}");
    }

    #[test]
    fn golden_unclosed_header() {
        let e = err_of("[scenario\nusers = 1\n");
        assert_eq!(e.pos, Pos::new(1, 10));
        assert_eq!(e.message, "expected `]`");
    }

    #[test]
    fn golden_duplicate_key_cites_first_definition() {
        let e = err_of("users = 1\nusers = 2\n");
        assert_eq!(e.pos, Pos::new(2, 1));
        assert!(e.message.contains("duplicate key `users` (first set at 1:1)"), "{e}");
    }

    #[test]
    fn golden_duplicate_table() {
        let e = err_of("[a]\nx = 1\n[a]\ny = 2\n");
        assert_eq!(e.pos, Pos::new(3, 1));
        assert!(e.message.contains("table `[a]` defined twice (first at 1:1)"), "{e}");
    }

    #[test]
    fn golden_trailing_garbage() {
        let e = err_of("users = 1 oops\n");
        assert_eq!(e.pos, Pos::new(1, 11));
        assert_eq!(e.message, "unexpected trailing characters");
    }

    #[test]
    fn golden_bad_literals() {
        assert!(err_of("x = 1.2.3\n").message.contains("invalid float literal `1.2.3`"));
        assert!(err_of("x = 0xZZ\n").message.contains("invalid integer literal `0xZZ`"));
        assert!(err_of("x = truely\n").message.contains("expected a value"));
        // Integers larger than u64 are rejected, not silently wrapped.
        assert!(err_of("x = 99999999999999999999999\n").message.contains("invalid integer"));
    }

    #[test]
    fn golden_flag_like_line() {
        // CLI flags pasted into a scenario file fail at the `=` check
        // (hyphens are legal bare-key characters, so `--users` lexes as
        // a key).
        let e = err_of("--users 1000\n");
        assert_eq!(e.pos, Pos::new(1, 9));
        assert_eq!(e.message, "expected `=` after key `--users`");
        let e = err_of("= 3\n");
        assert_eq!(e.pos, Pos::new(1, 1));
        assert!(e.message.contains("expected a key"), "{e}");
    }

    #[test]
    fn blank_and_comment_lines_are_free() {
        let doc = must("# a comment\n\n   \t\n# another\nx = 1\n");
        assert_eq!(doc.get_int("x").unwrap(), Some(1));
    }

    #[test]
    fn empty_tables_still_exist() {
        let doc = must("[scenario]\n");
        assert!(doc.table("scenario").is_some());
        assert!(doc.table("scenario").unwrap().is_empty());
    }
}
