//! Line/column-carrying parse and schema errors.

use std::fmt;

/// A 1-based line/column position inside a scenario file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: usize,
    /// Column number (in characters), starting at 1.
    pub col: usize,
}

impl Pos {
    /// The start of the document.
    pub const START: Pos = Pos { line: 1, col: 1 };

    /// Builds a position.
    pub const fn new(line: usize, col: usize) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse or schema error, carrying the position it was detected at.
///
/// Renders as `origin:line:col: message` (the conventional compiler
/// format, so editors can jump to the offending key), with `origin`
/// omitted when the source was an anonymous string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenError {
    /// Where the error was detected.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
    /// File path (or other source label), when known.
    pub origin: Option<String>,
}

impl ScenError {
    /// An error at an explicit position.
    pub fn at(pos: Pos, message: impl Into<String>) -> ScenError {
        ScenError { pos, message: message.into(), origin: None }
    }

    /// Attaches a source label (typically the file path) if none is set.
    pub fn with_origin(mut self, origin: impl Into<String>) -> ScenError {
        if self.origin.is_none() {
            self.origin = Some(origin.into());
        }
        self
    }
}

impl fmt::Display for ScenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.origin {
            Some(origin) => write!(f, "{origin}:{}: {}", self.pos, self.message),
            None => write!(f, "{}: {}", self.pos, self.message),
        }
    }
}

impl std::error::Error for ScenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compiler_style() {
        let e = ScenError::at(Pos::new(3, 7), "expected a value");
        assert_eq!(e.to_string(), "3:7: expected a value");
        let e = e.with_origin("scenarios/x.toml");
        assert_eq!(e.to_string(), "scenarios/x.toml:3:7: expected a value");
        // A second origin does not overwrite the first.
        let e = e.with_origin("other.toml");
        assert_eq!(e.origin.as_deref(), Some("scenarios/x.toml"));
    }

    #[test]
    fn positions_order_naturally() {
        assert!(Pos::new(1, 9) < Pos::new(2, 1));
        assert!(Pos::new(2, 1) < Pos::new(2, 2));
        assert_eq!(Pos::START, Pos::new(1, 1));
    }
}
