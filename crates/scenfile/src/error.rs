//! Line/column-carrying parse and schema errors.

use std::fmt;

/// A 1-based line/column position inside a scenario file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: usize,
    /// Column number (in characters), starting at 1.
    pub col: usize,
}

impl Pos {
    /// The start of the document.
    pub const START: Pos = Pos { line: 1, col: 1 };

    /// Builds a position.
    pub const fn new(line: usize, col: usize) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Broad classification of a [`ScenError`]: which side of the
/// read/write pipeline produced it. Every scenario-facing fallible
/// operation — parsing, schema validation, serialization, file writes,
/// and runtime source resolution — returns the one `ScenError` type, so
/// callers match on a single error and branch on `kind` when the
/// distinction matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenErrorKind {
    /// Reading a document: lexical, structural, or schema-level failure
    /// (the default for [`ScenError::at`]).
    Parse,
    /// Emitting a document: the value is not representable on disk, or
    /// the rendered text could not be written.
    Emit,
    /// Resolving a parsed scenario at run time (e.g. a `[corpus]`
    /// directory that is missing, empty, or holds an unreadable trace).
    /// Still positioned: anchored at the key that named the resource.
    Run,
}

/// A parse, schema, emission, or runtime error, carrying the position it
/// was detected at (or anchors to).
///
/// Renders as `origin:line:col: message` (the conventional compiler
/// format, so editors can jump to the offending key), with `origin`
/// omitted when the source was an anonymous string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenError {
    /// Where the error was detected.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
    /// File path (or other source label), when known.
    pub origin: Option<String>,
    /// Which pipeline stage failed.
    pub kind: ScenErrorKind,
}

impl ScenError {
    /// A read-side error at an explicit position.
    pub fn at(pos: Pos, message: impl Into<String>) -> ScenError {
        ScenError { pos, message: message.into(), origin: None, kind: ScenErrorKind::Parse }
    }

    /// An emission error (serialization refusals, file-write failures).
    /// Emission errors describe a value, not a document, so they anchor
    /// at [`Pos::START`].
    pub fn emit(message: impl Into<String>) -> ScenError {
        ScenError {
            pos: Pos::START,
            message: message.into(),
            origin: None,
            kind: ScenErrorKind::Emit,
        }
    }

    /// A runtime resolution error anchored at the position of the key
    /// that named the failing resource.
    pub fn runtime(pos: Pos, message: impl Into<String>) -> ScenError {
        ScenError { pos, message: message.into(), origin: None, kind: ScenErrorKind::Run }
    }

    /// Attaches a source label (typically the file path) if none is set.
    pub fn with_origin(mut self, origin: impl Into<String>) -> ScenError {
        if self.origin.is_none() {
            self.origin = Some(origin.into());
        }
        self
    }
}

impl fmt::Display for ScenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.origin {
            Some(origin) => write!(f, "{origin}:{}: {}", self.pos, self.message),
            None => write!(f, "{}: {}", self.pos, self.message),
        }
    }
}

impl std::error::Error for ScenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compiler_style() {
        let e = ScenError::at(Pos::new(3, 7), "expected a value");
        assert_eq!(e.to_string(), "3:7: expected a value");
        let e = e.with_origin("scenarios/x.toml");
        assert_eq!(e.to_string(), "scenarios/x.toml:3:7: expected a value");
        // A second origin does not overwrite the first.
        let e = e.with_origin("other.toml");
        assert_eq!(e.origin.as_deref(), Some("scenarios/x.toml"));
    }

    #[test]
    fn kinds_classify_the_pipeline_stage() {
        assert_eq!(ScenError::at(Pos::START, "x").kind, ScenErrorKind::Parse);
        let e = ScenError::emit("not representable");
        assert_eq!((e.kind, e.pos), (ScenErrorKind::Emit, Pos::START));
        let e = ScenError::runtime(Pos::new(4, 7), "corpus gone");
        assert_eq!((e.kind, e.pos), (ScenErrorKind::Run, Pos::new(4, 7)));
    }

    #[test]
    fn positions_order_naturally() {
        assert!(Pos::new(1, 9) < Pos::new(2, 1));
        assert!(Pos::new(2, 1) < Pos::new(2, 2));
        assert_eq!(Pos::START, Pos::new(1, 1));
    }
}
