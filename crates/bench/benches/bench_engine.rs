//! Simulation-engine throughput: packets per second through the full
//! accounting pipeline, per scheme.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tailwise_core::schemes::Scheme;
use tailwise_radio::profile::CarrierProfile;
use tailwise_sim::engine::SimConfig;
use tailwise_trace::time::Duration;
use tailwise_trace::Trace;
use tailwise_workload::apps::AppKind;

fn workload() -> Trace {
    // A one-hour mixed trace: IM + News + Email merged.
    let span = Duration::from_secs(3600);
    let parts: Vec<Trace> = [AppKind::Im, AppKind::News, AppKind::Email]
        .iter()
        .enumerate()
        .map(|(i, k)| {
            let mut rng = StdRng::seed_from_u64(0xBE00 + i as u64);
            k.default_model().generate(span, &mut rng)
        })
        .collect();
    Trace::merge(parts)
}

fn engine_throughput(c: &mut Criterion) {
    let profile = CarrierProfile::att_hspa();
    let cfg = SimConfig::default();
    let trace = workload();
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for scheme in [Scheme::StatusQuo, Scheme::MakeIdle, Scheme::Oracle, Scheme::MakeIdleActiveLearn]
    {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| black_box(scheme.run(&profile, &cfg, black_box(&trace))))
        });
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
