//! Learner micro-benchmarks: Fixed-Share and Learn-α update costs and
//! their scaling with the expert count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tailwise_experts::fixed_share::FixedShare;
use tailwise_experts::learn_alpha::LearnAlpha;

fn losses(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37).sin().abs()).collect()
}

fn fixed_share_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixed_share_update");
    for n in [4usize, 16, 64, 256] {
        let ls = losses(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut f = FixedShare::new(n, 0.05);
            b.iter(|| black_box(f.update(black_box(&ls))))
        });
    }
    group.finish();
}

fn learn_alpha_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("learn_alpha_update");
    for m in [2usize, 8, 32] {
        let ls = losses(16);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let mut la = LearnAlpha::with_default_grid(16, m);
            b.iter(|| {
                la.update(black_box(&ls));
                black_box(la.predict(&ls))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fixed_share_update, learn_alpha_update);
criterion_main!(benches);
