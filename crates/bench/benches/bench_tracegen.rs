//! Workload-generator throughput: packets synthesized per second.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tailwise_trace::time::Duration;
use tailwise_workload::apps::AppKind;
use tailwise_workload::user::UserModel;

fn app_generation(c: &mut Criterion) {
    let span = Duration::from_secs(3600);
    let mut group = c.benchmark_group("tracegen_app_1h");
    for kind in [AppKind::Im, AppKind::News, AppKind::Finance] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(kind.default_model().generate(span, &mut rng))
            })
        });
    }
    group.finish();
}

fn user_generation(c: &mut Criterion) {
    let user = UserModel::verizon_lte_users()[2].scaled_to_days(1);
    c.bench_function("tracegen_user_1day", |b| b.iter(|| black_box(user.generate())));
}

criterion_group!(benches, app_generation, user_generation);
criterion_main!(benches);
