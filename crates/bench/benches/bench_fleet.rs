//! Fleet-simulation throughput: user-days per second through the full
//! generate→simulate→fold pipeline, single- versus multi-threaded.
//!
//! This is the repo's first scalability benchmark: it measures the whole
//! population path (hierarchical seeding, workload synthesis, two engine
//! runs per user, streaming aggregation), not just the inner engine loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tailwise_core::schemes::Scheme;
use tailwise_fleet::{run, Scenario};
use tailwise_radio::profile::CarrierProfile;

fn fleet_scenario(users: u64) -> Scenario {
    let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.shard_size = 8;
    s.master_seed = 0xBEAC4;
    s
}

fn fleet_throughput(c: &mut Criterion) {
    let scenario = fleet_scenario(24);
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut group = c.benchmark_group("fleet_throughput");
    group.throughput(Throughput::Elements(scenario.user_days()));
    for threads in [1usize, 2, max_threads] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}threads")),
            &threads,
            |b, &threads| b.iter(|| black_box(run(black_box(&scenario), threads))),
        );
    }
    group.finish();
}

fn fleet_scheme_cost(c: &mut Criterion) {
    // Per-scheme population cost: how much slower is the full learning
    // pipeline than plain MakeIdle at fleet scale?
    let mut group = c.benchmark_group("fleet_scheme");
    group.throughput(Throughput::Elements(8));
    for scheme in [Scheme::MakeIdle, Scheme::Oracle, Scheme::MakeIdleActiveLearn] {
        let mut scenario = fleet_scenario(8);
        scenario.scheme = scheme;
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scenario,
            |b, scenario| b.iter(|| black_box(run(scenario, 2))),
        );
    }
    group.finish();
}

criterion_group!(benches, fleet_throughput, fleet_scheme_cost);
criterion_main!(benches);
