//! Fleet-simulation throughput: user-days per second through the full
//! generate→simulate→fold pipeline, single- versus multi-threaded.
//!
//! This is the repo's first scalability benchmark: it measures the whole
//! population path (hierarchical seeding, workload synthesis, two engine
//! runs per user, streaming aggregation), not just the inner engine loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    merge_requests, run, run_cached, run_observed, run_sweep_cached, AdmissionSpec,
    NetworkTopology, RequestCache, Scenario, ScenarioSet, SweepAxis,
};
use tailwise_obs::{Obs, Recorder, StatsRecorder};
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::mix::splitmix64;
use tailwise_trace::time::Instant;

fn fleet_scenario(users: u64) -> Scenario {
    let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.shard_size = 8;
    s.master_seed = 0xBEAC4;
    s
}

fn fleet_throughput(c: &mut Criterion) {
    let scenario = fleet_scenario(24);
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut group = c.benchmark_group("fleet_throughput");
    group.throughput(Throughput::Elements(scenario.user_days()));
    for threads in [1usize, 2, max_threads] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}threads")),
            &threads,
            |b, &threads| b.iter(|| black_box(run(black_box(&scenario), threads))),
        );
    }
    group.finish();
}

fn fleet_scheme_cost(c: &mut Criterion) {
    // Per-scheme population cost: how much slower is the full learning
    // pipeline than plain MakeIdle at fleet scale?
    let mut group = c.benchmark_group("fleet_scheme");
    group.throughput(Throughput::Elements(8));
    for scheme in [Scheme::MakeIdle, Scheme::Oracle, Scheme::MakeIdleActiveLearn] {
        let mut scenario = fleet_scenario(8);
        scenario.scheme = scheme;
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scenario,
            |b, scenario| b.iter(|| black_box(run(scenario, 2))),
        );
    }
    group.finish();
}

/// RNC adjudication order: [`merge_requests`]' hybrid (cursor heap
/// below its 64-stream cutover, concat+pdqsort at or above) measured
/// either side of the cutover against the two fixed strategies — the
/// always-sort PR 4 path and an always-heap k-way merge. Streams are
/// synthetic but shaped like phase-1 output: one stream per user,
/// non-decreasing timestamps, Poisson-ish spacing.
///
/// The shapes hold total elements near 0.5M while sweeping stream
/// count across the cutover, plus the many-short shape a per-cell
/// partition actually sees. Measured (2026-08): the heap wins 16x32768
/// (20.4 ms vs sort's 24.8 ms) through 48x10922 (26.8 vs 28.3 ms),
/// loses from 64x8192 (30.0 vs 24.7 ms), and pdqsort's sequential
/// traffic widens the gap from there (512x48: 0.79 vs 1.20 ms). The
/// hybrid must track `kway_merge` below the cutover and `concat_sort`
/// at or above it; a regression here means the cutover constant has
/// drifted from the hardware truth.
fn rnc_adjudication(c: &mut Criterion) {
    // The always-sort strategy, inlined (the library keeps its
    // strategies private behind the dispatch).
    let concat_sort = |streams: &[(u64, Vec<Instant>)]| -> Vec<(Instant, u64, u32)> {
        let mut merged: Vec<(Instant, u64, u32)> = streams
            .iter()
            .flat_map(|(user, times)| {
                times.iter().enumerate().map(|(seq, &at)| (at, *user, seq as u32))
            })
            .collect();
        merged.sort_unstable();
        merged
    };
    // The always-heap strategy, inlined for the same reason.
    let kway_merge = |streams: &[(u64, Vec<Instant>)]| -> Vec<(Instant, u64, u32)> {
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(Instant, u64, u32, usize)>> =
            std::collections::BinaryHeap::with_capacity(streams.len());
        for (slot, (user, times)) in streams.iter().enumerate() {
            if let Some(&first) = times.first() {
                heap.push(std::cmp::Reverse((first, *user, 0, slot)));
            }
        }
        let total: usize = streams.iter().map(|(_, times)| times.len()).sum();
        let mut merged = Vec::with_capacity(total);
        while let Some(std::cmp::Reverse((at, user, seq, slot))) = heap.pop() {
            merged.push((at, user, seq));
            let times = &streams[slot].1;
            let next = seq as usize + 1;
            if next < times.len() {
                heap.push(std::cmp::Reverse((times[next], user, next as u32, slot)));
            }
        }
        merged
    };

    for (users, per_user) in [(16usize, 32768usize), (48, 10922), (64, 8192), (512, 48)] {
        let synth_streams = |users: usize| -> Vec<(u64, Vec<Instant>)> {
            (0..users as u64)
                .map(|user| {
                    let mut at = (splitmix64(user) % 5_000_000) as i64;
                    let times = (0..per_user)
                        .map(|k| {
                            at += 1_000 + (splitmix64(user ^ (k as u64) << 32) % 60_000_000) as i64;
                            Instant::from_micros(at)
                        })
                        .collect();
                    (user, times)
                })
                .collect()
        };
        let streams = synth_streams(users);
        let total = (users * per_user) as u64;
        let mut group = c.benchmark_group(format!("rnc_adjudication/{users}x{per_user}"));
        group.throughput(Throughput::Elements(total));
        group.bench_function("hybrid", |b| {
            b.iter(|| black_box(merge_requests(black_box(&streams))))
        });
        group.bench_function("kway_merge", |b| {
            b.iter(|| black_box(kway_merge(black_box(&streams))))
        });
        group.bench_function("concat_sort", |b| {
            b.iter(|| black_box(concat_sort(black_box(&streams))))
        });
        group.finish();
    }
}

/// Where fleet time goes, and what watching it costs. One observed
/// topology run prints the per-span phase breakdown (the same numbers
/// `--metrics` manifests carry), then the group times the identical
/// scenario under a `NullRecorder` versus a full `StatsRecorder` —
/// the measurable cost of the recording itself, which the determinism
/// contract requires to perturb nothing but wall time.
fn fleet_phases(c: &mut Criterion) {
    let mut scenario = fleet_scenario(16);
    scenario.cells = Some(NetworkTopology::with_rncs(3, 12));
    let recorder = StatsRecorder::new();
    let report = run_observed(&scenario, 2, Obs { recorder: &recorder, progress: None });
    eprintln!("fleet phase breakdown ({} user-days, 3 RNCs x 12 cells):", report.user_days);
    if let Some(timings) = &report.timings {
        for (name, seconds) in timings.phases() {
            eprintln!("  {name:<11} {seconds:>8.3} s");
        }
    }

    let mut group = c.benchmark_group("fleet_phases");
    group.throughput(Throughput::Elements(scenario.user_days()));
    group.bench_function("null_recorder", |b| b.iter(|| black_box(run(black_box(&scenario), 2))));
    group.bench_function("stats_recorder", |b| {
        b.iter(|| {
            let recorder = StatsRecorder::new();
            let obs = Obs { recorder: &recorder, progress: None };
            black_box(run_observed(black_box(&scenario), 2, obs))
        })
    });
    group.finish();
}

/// Phase-1 caching across an admission sweep. `single_run` is the
/// normalizer; `sweep_uncached` pays 4 full two-pass runs; `sweep_warm`
/// serves every cell's extraction and baselines from a pre-warmed
/// in-memory cache, leaving only the per-cell adjudicate + replay
/// (plus pass-2 trace synthesis — replay consumes traces, which the
/// runner regenerates rather than holds).
///
/// Measured honestly (2 threads, debug-free release, 2026-08): single
/// 2.88 s, uncached sweep 11.84 s (4.1x), warm sweep 158 ms. The warm
/// number collapsed from PR 7's 2.13x-of-single to well under one run
/// because the replay memo (`sweep_replay_memo` below) now serves
/// pass-2 outcomes too: after the first measured iteration every
/// `(user, verdict-stream)` pair is cached, so iterations fold stored
/// outcomes instead of re-running the engine per cell.
fn sweep_cached(c: &mut Criterion) {
    let mut base = fleet_scenario(16);
    base.cells = Some(NetworkTopology::with_rncs(3, 12));
    let set = ScenarioSet {
        base: base.clone(),
        axes: vec![SweepAxis::Admission(vec![
            AdmissionSpec::Always,
            AdmissionSpec::RateLimited { min_interval: tailwise_trace::Duration::from_secs(2) },
            AdmissionSpec::LoadReactive { watermark_per_s: 50, window_s: 5 },
            AdmissionSpec::LoadReactive { watermark_per_s: 10, window_s: 5 },
        ])],
    };
    assert_eq!(set.expansion_count(), 4);

    let mut group = c.benchmark_group("sweep_cached");
    group.throughput(Throughput::Elements(base.user_days()));
    group.bench_function("single_run", |b| b.iter(|| black_box(run(black_box(&base), 2))));
    group.bench_function("sweep_uncached", |b| {
        b.iter(|| black_box(run_sweep_cached(black_box(&set), 2, Obs::none(), None)))
    });
    group.bench_function("sweep_warm", |b| {
        // Warm the cache once; every measured iteration then replays
        // all four cells from it.
        let cache = RequestCache::in_memory();
        run_cached(&base, 2, Obs::none(), Some(&cache));
        b.iter(|| black_box(run_sweep_cached(black_box(&set), 2, Obs::none(), Some(&cache))))
    });
    group.finish();
}

/// Phase-2 replay memoization across the same admission sweep as
/// `sweep_cached`. The warm path here has seen the *whole sweep* once,
/// so every cell's `(user, verdict-stream)` pairs are memoized: cells
/// fold stored outcomes instead of synthesizing traces and re-running
/// the engine, and only adjudication + folding remain per cell. The
/// honest miss rate of the measured shape prints alongside (0% once
/// warm — the sweep's verdict streams are deterministic).
///
/// Measured (2 threads, 2026-08): single run 3.16 s, warm memoized
/// 4-cell sweep 141 ms ±2 ms — 0.045x a single run against the
/// issue's ≤1.6x acceptance bar, with 64 replay hits and 0 misses
/// per warm sweep.
fn sweep_replay_memo(c: &mut Criterion) {
    let mut base = fleet_scenario(16);
    base.cells = Some(NetworkTopology::with_rncs(3, 12));
    let set = ScenarioSet {
        base: base.clone(),
        axes: vec![SweepAxis::Admission(vec![
            AdmissionSpec::Always,
            AdmissionSpec::RateLimited { min_interval: tailwise_trace::Duration::from_secs(2) },
            AdmissionSpec::LoadReactive { watermark_per_s: 50, window_s: 5 },
            AdmissionSpec::LoadReactive { watermark_per_s: 10, window_s: 5 },
        ])],
    };
    assert_eq!(set.expansion_count(), 4);

    let mut group = c.benchmark_group("sweep_replay_memo");
    group.throughput(Throughput::Elements(base.user_days()));
    group.bench_function("single_run", |b| b.iter(|| black_box(run(black_box(&base), 2))));
    group.bench_function("sweep_warm_memo", |b| {
        // Warm with one full sweep: phase-1 extraction, baselines, and
        // every cell's replay outcomes all land in the cache.
        let cache = RequestCache::in_memory();
        run_sweep_cached(&set, 2, Obs::none(), Some(&cache));
        // Record the measured shape's honest hit/miss split once.
        let recorder = StatsRecorder::new();
        let obs = Obs { recorder: &recorder, progress: None };
        run_sweep_cached(&set, 2, obs, Some(&cache));
        let snapshot = recorder.snapshot();
        let hits = snapshot.counters.get("replay_hits").copied().unwrap_or(0);
        let misses = snapshot.counters.get("replay_misses").copied().unwrap_or(0);
        eprintln!(
            "sweep_replay_memo warm shape: {hits} replay hits, {misses} misses \
             ({:.1}% miss rate)",
            100.0 * misses as f64 / (hits + misses).max(1) as f64
        );
        b.iter(|| black_box(run_sweep_cached(black_box(&set), 2, Obs::none(), Some(&cache))))
    });
    group.finish();
}

criterion_group!(
    benches,
    fleet_throughput,
    fleet_scheme_cost,
    rnc_adjudication,
    fleet_phases,
    sweep_cached,
    sweep_replay_memo
);
criterion_main!(benches);
