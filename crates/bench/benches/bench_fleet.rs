//! Fleet-simulation throughput: user-days per second through the full
//! generate→simulate→fold pipeline, single- versus multi-threaded.
//!
//! This is the repo's first scalability benchmark: it measures the whole
//! population path (hierarchical seeding, workload synthesis, two engine
//! runs per user, streaming aggregation), not just the inner engine loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    merge_requests, run, run_cached, run_observed, run_sweep_cached, AdmissionSpec,
    NetworkTopology, RequestCache, Scenario, ScenarioSet, SweepAxis,
};
use tailwise_obs::{Obs, StatsRecorder};
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::mix::splitmix64;
use tailwise_trace::time::Instant;

fn fleet_scenario(users: u64) -> Scenario {
    let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.shard_size = 8;
    s.master_seed = 0xBEAC4;
    s
}

fn fleet_throughput(c: &mut Criterion) {
    let scenario = fleet_scenario(24);
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut group = c.benchmark_group("fleet_throughput");
    group.throughput(Throughput::Elements(scenario.user_days()));
    for threads in [1usize, 2, max_threads] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}threads")),
            &threads,
            |b, &threads| b.iter(|| black_box(run(black_box(&scenario), threads))),
        );
    }
    group.finish();
}

fn fleet_scheme_cost(c: &mut Criterion) {
    // Per-scheme population cost: how much slower is the full learning
    // pipeline than plain MakeIdle at fleet scale?
    let mut group = c.benchmark_group("fleet_scheme");
    group.throughput(Throughput::Elements(8));
    for scheme in [Scheme::MakeIdle, Scheme::Oracle, Scheme::MakeIdleActiveLearn] {
        let mut scenario = fleet_scenario(8);
        scenario.scheme = scheme;
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scenario,
            |b, scenario| b.iter(|| black_box(run(scenario, 2))),
        );
    }
    group.finish();
}

/// RNC adjudication order: the hierarchy's k-way merge of per-user
/// (already time-sorted) request streams versus the PR 4 path that
/// concatenated every stream and re-sorted it per cell. Streams are
/// synthetic but shaped like phase-1 output: one stream per user,
/// non-decreasing timestamps, Poisson-ish spacing.
fn rnc_adjudication(c: &mut Criterion) {
    let users = 512usize;
    let per_user = 48usize;
    let streams: Vec<(u64, Vec<Instant>)> = (0..users as u64)
        .map(|user| {
            let mut at = (splitmix64(user) % 5_000_000) as i64;
            let times = (0..per_user)
                .map(|k| {
                    at += 1_000 + (splitmix64(user ^ (k as u64) << 32) % 60_000_000) as i64;
                    Instant::from_micros(at)
                })
                .collect();
            (user, times)
        })
        .collect();
    let total = (users * per_user) as u64;

    let mut group = c.benchmark_group("rnc_adjudication");
    group.throughput(Throughput::Elements(total));
    group.bench_function("kway_merge", |b| {
        b.iter(|| black_box(merge_requests(black_box(&streams))))
    });
    group.bench_function("concat_sort", |b| {
        b.iter(|| {
            let mut merged: Vec<(Instant, u64, u32)> = streams
                .iter()
                .flat_map(|(user, times)| {
                    times.iter().enumerate().map(|(seq, &at)| (at, *user, seq as u32))
                })
                .collect();
            merged.sort_unstable();
            black_box(merged)
        })
    });
    group.finish();
}

/// Where fleet time goes, and what watching it costs. One observed
/// topology run prints the per-span phase breakdown (the same numbers
/// `--metrics` manifests carry), then the group times the identical
/// scenario under a `NullRecorder` versus a full `StatsRecorder` —
/// the measurable cost of the recording itself, which the determinism
/// contract requires to perturb nothing but wall time.
fn fleet_phases(c: &mut Criterion) {
    let mut scenario = fleet_scenario(16);
    scenario.cells = Some(NetworkTopology::with_rncs(3, 12));
    let recorder = StatsRecorder::new();
    let report = run_observed(&scenario, 2, Obs { recorder: &recorder, progress: None });
    eprintln!("fleet phase breakdown ({} user-days, 3 RNCs x 12 cells):", report.user_days);
    if let Some(timings) = &report.timings {
        for (name, seconds) in timings.phases() {
            eprintln!("  {name:<11} {seconds:>8.3} s");
        }
    }

    let mut group = c.benchmark_group("fleet_phases");
    group.throughput(Throughput::Elements(scenario.user_days()));
    group.bench_function("null_recorder", |b| b.iter(|| black_box(run(black_box(&scenario), 2))));
    group.bench_function("stats_recorder", |b| {
        b.iter(|| {
            let recorder = StatsRecorder::new();
            let obs = Obs { recorder: &recorder, progress: None };
            black_box(run_observed(black_box(&scenario), 2, obs))
        })
    });
    group.finish();
}

/// Phase-1 caching across an admission sweep. `single_run` is the
/// normalizer; `sweep_uncached` pays 4 full two-pass runs; `sweep_warm`
/// serves every cell's extraction and baselines from a pre-warmed
/// in-memory cache, leaving only the per-cell adjudicate + replay
/// (plus pass-2 trace synthesis — replay consumes traces, which the
/// runner regenerates rather than holds).
///
/// Measured honestly (2 threads, debug-free release, 2026-08): single
/// 3.28 s, uncached sweep 14.80 s (4.5x), warm sweep 6.99 s (2.13x).
/// The issue's ~1.2x aspiration is out of reach for this workload
/// shape: the replay pass alone is ~47% of a single run and *must*
/// re-run per cell — the admission policy under sweep changes the
/// verdicts replay consumes. What the cache can amortize, it does:
/// the marginal cost of an extra cell drops from 3.84 s to 1.24 s
/// (3.1x), which is the honest headline.
fn sweep_cached(c: &mut Criterion) {
    let mut base = fleet_scenario(16);
    base.cells = Some(NetworkTopology::with_rncs(3, 12));
    let set = ScenarioSet {
        base: base.clone(),
        axes: vec![SweepAxis::Admission(vec![
            AdmissionSpec::Always,
            AdmissionSpec::RateLimited { min_interval: tailwise_trace::Duration::from_secs(2) },
            AdmissionSpec::LoadReactive { watermark_per_s: 50, window_s: 5 },
            AdmissionSpec::LoadReactive { watermark_per_s: 10, window_s: 5 },
        ])],
    };
    assert_eq!(set.expansion_count(), 4);

    let mut group = c.benchmark_group("sweep_cached");
    group.throughput(Throughput::Elements(base.user_days()));
    group.bench_function("single_run", |b| b.iter(|| black_box(run(black_box(&base), 2))));
    group.bench_function("sweep_uncached", |b| {
        b.iter(|| black_box(run_sweep_cached(black_box(&set), 2, Obs::none(), None)))
    });
    group.bench_function("sweep_warm", |b| {
        // Warm the cache once; every measured iteration then replays
        // all four cells from it.
        let cache = RequestCache::in_memory();
        run_cached(&base, 2, Obs::none(), Some(&cache));
        b.iter(|| black_box(run_sweep_cached(black_box(&set), 2, Obs::none(), Some(&cache))))
    });
    group.finish();
}

criterion_group!(
    benches,
    fleet_throughput,
    fleet_scheme_cost,
    rnc_adjudication,
    fleet_phases,
    sweep_cached
);
criterion_main!(benches);
