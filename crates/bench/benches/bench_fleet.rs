//! Fleet-simulation throughput: user-days per second through the full
//! generate→simulate→fold pipeline, single- versus multi-threaded.
//!
//! This is the repo's first scalability benchmark: it measures the whole
//! population path (hierarchical seeding, workload synthesis, two engine
//! runs per user, streaming aggregation), not just the inner engine loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tailwise_core::schemes::Scheme;
use tailwise_fleet::{merge_requests, run, run_observed, NetworkTopology, Scenario};
use tailwise_obs::{Obs, StatsRecorder};
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::mix::splitmix64;
use tailwise_trace::time::Instant;

fn fleet_scenario(users: u64) -> Scenario {
    let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.shard_size = 8;
    s.master_seed = 0xBEAC4;
    s
}

fn fleet_throughput(c: &mut Criterion) {
    let scenario = fleet_scenario(24);
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut group = c.benchmark_group("fleet_throughput");
    group.throughput(Throughput::Elements(scenario.user_days()));
    for threads in [1usize, 2, max_threads] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}threads")),
            &threads,
            |b, &threads| b.iter(|| black_box(run(black_box(&scenario), threads))),
        );
    }
    group.finish();
}

fn fleet_scheme_cost(c: &mut Criterion) {
    // Per-scheme population cost: how much slower is the full learning
    // pipeline than plain MakeIdle at fleet scale?
    let mut group = c.benchmark_group("fleet_scheme");
    group.throughput(Throughput::Elements(8));
    for scheme in [Scheme::MakeIdle, Scheme::Oracle, Scheme::MakeIdleActiveLearn] {
        let mut scenario = fleet_scenario(8);
        scenario.scheme = scheme;
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scenario,
            |b, scenario| b.iter(|| black_box(run(scenario, 2))),
        );
    }
    group.finish();
}

/// RNC adjudication order: the hierarchy's k-way merge of per-user
/// (already time-sorted) request streams versus the PR 4 path that
/// concatenated every stream and re-sorted it per cell. Streams are
/// synthetic but shaped like phase-1 output: one stream per user,
/// non-decreasing timestamps, Poisson-ish spacing.
fn rnc_adjudication(c: &mut Criterion) {
    let users = 512usize;
    let per_user = 48usize;
    let streams: Vec<(u64, Vec<Instant>)> = (0..users as u64)
        .map(|user| {
            let mut at = (splitmix64(user) % 5_000_000) as i64;
            let times = (0..per_user)
                .map(|k| {
                    at += 1_000 + (splitmix64(user ^ (k as u64) << 32) % 60_000_000) as i64;
                    Instant::from_micros(at)
                })
                .collect();
            (user, times)
        })
        .collect();
    let total = (users * per_user) as u64;

    let mut group = c.benchmark_group("rnc_adjudication");
    group.throughput(Throughput::Elements(total));
    group.bench_function("kway_merge", |b| {
        b.iter(|| black_box(merge_requests(black_box(&streams))))
    });
    group.bench_function("concat_sort", |b| {
        b.iter(|| {
            let mut merged: Vec<(Instant, u64, u32)> = streams
                .iter()
                .flat_map(|(user, times)| {
                    times.iter().enumerate().map(|(seq, &at)| (at, *user, seq as u32))
                })
                .collect();
            merged.sort_unstable();
            black_box(merged)
        })
    });
    group.finish();
}

/// Where fleet time goes, and what watching it costs. One observed
/// topology run prints the per-span phase breakdown (the same numbers
/// `--metrics` manifests carry), then the group times the identical
/// scenario under a `NullRecorder` versus a full `StatsRecorder` —
/// the measurable cost of the recording itself, which the determinism
/// contract requires to perturb nothing but wall time.
fn fleet_phases(c: &mut Criterion) {
    let mut scenario = fleet_scenario(16);
    scenario.cells = Some(NetworkTopology::with_rncs(3, 12));
    let recorder = StatsRecorder::new();
    let report = run_observed(&scenario, 2, Obs { recorder: &recorder, progress: None });
    eprintln!("fleet phase breakdown ({} user-days, 3 RNCs x 12 cells):", report.user_days);
    if let Some(timings) = &report.timings {
        for (name, seconds) in timings.phases() {
            eprintln!("  {name:<11} {seconds:>8.3} s");
        }
    }

    let mut group = c.benchmark_group("fleet_phases");
    group.throughput(Throughput::Elements(scenario.user_days()));
    group.bench_function("null_recorder", |b| b.iter(|| black_box(run(black_box(&scenario), 2))));
    group.bench_function("stats_recorder", |b| {
        b.iter(|| {
            let recorder = StatsRecorder::new();
            let obs = Obs { recorder: &recorder, progress: None };
            black_box(run_observed(black_box(&scenario), 2, obs))
        })
    });
    group.finish();
}

criterion_group!(benches, fleet_throughput, fleet_scheme_cost, rnc_adjudication, fleet_phases);
criterion_main!(benches);
