//! §6.6 — the CPU cost of running the control algorithms.
//!
//! The paper implemented MakeIdle+MakeActive on phones and measured a
//! 1.7–1.9% energy overhead. Without a phone we measure the per-event CPU
//! cost of the same decision paths; EXPERIMENTS.md converts ns/packet into
//! an energy fraction under a stated CPU-power assumption.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tailwise_core::control::{ControlModule, SocketEvent};
use tailwise_core::makeactive::LearningDelay;
use tailwise_core::makeidle::MakeIdle;
use tailwise_radio::profile::CarrierProfile;
use tailwise_sim::policy::{ActivePolicy, IdleContext, IdlePolicy};
use tailwise_trace::stats::SlidingWindow;
use tailwise_trace::time::{Duration, Instant};

fn makeidle_decision(c: &mut Criterion) {
    let profile = CarrierProfile::att_hspa();
    // A realistic mixed window: bursty small gaps plus session gaps.
    let mut window = SlidingWindow::new(100);
    for i in 0..100 {
        let gap = if i % 5 == 0 { 12.0 + (i % 7) as f64 } else { 0.02 * (1 + i % 9) as f64 };
        window.push(Duration::from_secs_f64(gap));
    }
    let mut mi = MakeIdle::new();
    c.bench_function("makeidle_decide_per_packet_n100", |b| {
        b.iter(|| {
            let ctx =
                IdleContext { profile: &profile, window: black_box(&window), now: Instant::ZERO };
            black_box(mi.decide(&ctx, Duration::FOREVER))
        })
    });

    let mut big = SlidingWindow::new(400);
    for i in 0..400 {
        big.push(Duration::from_secs_f64(0.01 * (1 + i % 50) as f64));
    }
    let mut mi = MakeIdle::new();
    c.bench_function("makeidle_decide_per_packet_n400", |b| {
        b.iter(|| {
            let ctx =
                IdleContext { profile: &profile, window: black_box(&big), now: Instant::ZERO };
            black_box(mi.decide(&ctx, Duration::FOREVER))
        })
    });
}

fn makeactive_round(c: &mut Criterion) {
    let offsets: Vec<f64> = (0..8).map(|i| i as f64 * 1.3).collect();
    c.bench_function("makeactive_learn_round", |b| {
        b.iter_batched(
            LearningDelay::new,
            |mut learner| {
                let hold = learner.open_round(Instant::ZERO);
                learner.close_round(black_box(&offsets));
                black_box(hold)
            },
            BatchSize::SmallInput,
        )
    });
}

fn control_module_event(c: &mut Criterion) {
    c.bench_function("control_module_on_event", |b| {
        b.iter_batched(
            || {
                let mut m = ControlModule::new(CarrierProfile::att_hspa());
                for i in 0..120 {
                    m.on_event(
                        Instant::from_millis(i * 7_000),
                        1,
                        SocketEvent::Send { bytes: 100 },
                    );
                }
                (m, Instant::from_millis(120 * 7_000))
            },
            |(mut m, t)| black_box(m.on_event(t, 1, SocketEvent::Recv { bytes: 1400 })),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, makeidle_decision, makeactive_round, control_module_event);
criterion_main!(benches);
