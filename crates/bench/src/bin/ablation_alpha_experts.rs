//! Ablation: Learn-alpha outer-layer width.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::ablation_alpha_experts(&mut h).emit("ablation_alpha_experts");
}
