//! Figure 13: MakeIdle FP/FN vs history window size n.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::fig13_window_sweep(&mut h).emit("fig13_window_sweep");
}
