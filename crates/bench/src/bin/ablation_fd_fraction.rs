//! Ablation: fast-dormancy demotion cost fraction (§6.1 robustness).
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::ablation_fd_fraction(&mut h).emit("ablation_fd_fraction");
}
