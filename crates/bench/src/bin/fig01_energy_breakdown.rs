//! Figure 1: status-quo energy breakdown per application.
fn main() {
    tailwise_bench::figures::fig01_energy_breakdown().emit("fig01_energy_breakdown");
}
