//! Figure 16: learned delay and buffered bursts per iteration.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::fig16_learning_dynamics(&mut h).emit("fig16_learning_dynamics");
}
