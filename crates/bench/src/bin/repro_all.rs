//! Runs every table and figure reproduction and fills `results/`.
use tailwise_bench::figures as f;

fn main() {
    let started = std::time::Instant::now();
    println!("tailwise reproduction — all tables and figures\n");

    f::tab01_power().emit("tab01_power");
    f::tab02_rrc_params().emit("tab02_rrc_params");
    f::fig01_energy_breakdown().emit("fig01_energy_breakdown");
    for (t, stem) in f::fig03_power_timeline()
        .iter()
        .zip(["fig03_power_timeline_att3g", "fig03_power_timeline_verizonlte"])
    {
        t.emit(stem);
    }
    f::fig08_energy_error().emit("fig08_energy_error");
    f::fig09_apps().emit("fig09_apps");

    let mut h = tailwise_bench::Harness::new();
    for (t, stem) in f::fig10_verizon3g(&mut h).iter().zip([
        "fig10a_savings",
        "fig10b_switches",
        "fig10c_energy_per_switch",
    ]) {
        t.emit(stem);
    }
    for (t, stem) in f::fig11_verizonlte(&mut h).iter().zip([
        "fig11a_savings",
        "fig11b_switches",
        "fig11c_energy_per_switch",
    ]) {
        t.emit(stem);
    }
    for (t, stem) in f::fig12_fpfn(&mut h).iter().zip(["fig12a_fpfn_3g", "fig12b_fpfn_lte"]) {
        t.emit(stem);
    }
    f::fig13_window_sweep(&mut h).emit("fig13_window_sweep");
    f::fig14_twait_series(&mut h).emit("fig14_twait_series");
    for (t, stem) in f::fig15_delays(&mut h).iter().zip(["fig15a_delays_3g", "fig15b_delays_lte"]) {
        t.emit(stem);
    }
    f::fig16_learning_dynamics(&mut h).emit("fig16_learning_dynamics");
    f::fig17_carriers(&mut h).emit("fig17_carriers");
    f::fig18_carrier_switches(&mut h).emit("fig18_carrier_switches");
    f::tab03_session_delays(&mut h).emit("tab03_session_delays");

    f::ablation_fd_fraction(&mut h).emit("ablation_fd_fraction");
    f::ablation_gamma(&mut h).emit("ablation_gamma");
    f::ablation_candidate_grid(&mut h).emit("ablation_candidate_grid");
    f::ablation_alpha_experts(&mut h).emit("ablation_alpha_experts");
    f::ablation_decision_rule(&mut h).emit("ablation_decision_rule");

    f::ext_cell_signaling(&mut h).emit("ext_cell_signaling");
    f::ext_energy_attribution(&mut h).emit("ext_energy_attribution");

    println!(
        "done in {:.1}s — CSVs in {:?}",
        started.elapsed().as_secs_f64(),
        tailwise_bench::table::results_dir()
    );
}
