//! Figure 12: false/missed switch rates vs the Oracle.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    for (t, stem) in tailwise_bench::figures::fig12_fpfn(&mut h)
        .iter()
        .zip(["fig12a_fpfn_3g", "fig12b_fpfn_lte"])
    {
        t.emit(stem);
    }
}
