//! Figure 14: the wait MakeIdle chooses over time.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::fig14_twait_series(&mut h).emit("fig14_twait_series");
}
