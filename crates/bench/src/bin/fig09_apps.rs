//! Figure 9: energy savings per application across all schemes.
fn main() {
    tailwise_bench::figures::fig09_apps().emit("fig09_apps");
}
