//! Figure 3: power timeline across one burst + tail cycle.
fn main() {
    for (i, t) in tailwise_bench::figures::fig03_power_timeline().iter().enumerate() {
        t.emit(&format!("fig03_power_timeline_{}", if i == 0 { "att3g" } else { "verizonlte" }));
    }
}
