//! Extension: per-application energy attribution on a user-day.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::ext_energy_attribution(&mut h).emit("ext_energy_attribution");
}
