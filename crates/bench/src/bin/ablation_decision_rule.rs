//! Ablation: energy rule vs the paper-literal confidence rule.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::ablation_decision_rule(&mut h).emit("ablation_decision_rule");
}
