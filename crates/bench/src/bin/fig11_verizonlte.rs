//! Figure 11: Verizon LTE per-user savings / switches / J-per-switch.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    for (t, stem) in tailwise_bench::figures::fig11_verizonlte(&mut h).iter().zip([
        "fig11a_savings",
        "fig11b_switches",
        "fig11c_energy_per_switch",
    ]) {
        t.emit(stem);
    }
}
