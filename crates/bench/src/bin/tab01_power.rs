//! Table 1: bulk send/receive power.
fn main() {
    tailwise_bench::figures::tab01_power().emit("tab01_power");
}
