//! Ablation: MakeIdle candidate-grid resolution.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::ablation_candidate_grid(&mut h).emit("ablation_candidate_grid");
}
