//! Figure 10: Verizon 3G per-user savings / switches / J-per-switch.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    for (t, stem) in tailwise_bench::figures::fig10_verizon3g(&mut h).iter().zip([
        "fig10a_savings",
        "fig10b_switches",
        "fig10c_energy_per_switch",
    ]) {
        t.emit(stem);
    }
}
