//! Extension (§8): base-station signaling load for a cell of devices.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::ext_cell_signaling(&mut h).emit("ext_cell_signaling");
}
