//! Figure 18: switch counts normalized by the status quo, per carrier.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::fig18_carrier_switches(&mut h).emit("fig18_carrier_switches");
}
