//! Ablation: MakeActive loss scale gamma.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::ablation_gamma(&mut h).emit("ablation_gamma");
}
