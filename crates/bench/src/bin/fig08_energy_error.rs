//! Figure 8: per-second energy-model error vs fine-grained ground truth.
fn main() {
    tailwise_bench::figures::fig08_energy_error().emit("fig08_energy_error");
}
