//! Table 3: MakeActive session delays per carrier.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::tab03_session_delays(&mut h).emit("tab03_session_delays");
}
