//! Table 2: per-carrier RRC parameters.
fn main() {
    tailwise_bench::figures::tab02_rrc_params().emit("tab02_rrc_params");
}
