//! Figure 15: session delays, learning vs fixed bound.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    for (t, stem) in tailwise_bench::figures::fig15_delays(&mut h)
        .iter()
        .zip(["fig15a_delays_3g", "fig15b_delays_lte"])
    {
        t.emit(stem);
    }
}
