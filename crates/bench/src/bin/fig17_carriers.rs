//! Figure 17: energy saved per carrier per scheme.
fn main() {
    let mut h = tailwise_bench::Harness::new();
    tailwise_bench::figures::fig17_carriers(&mut h).emit("fig17_carriers");
}
