//! Dataset management: generate once, cache on disk, reuse everywhere.
//!
//! Two datasets back the whole reproduction, mirroring §6.1:
//!
//! * **application traces** — one 2-hour trace per §6.1 category
//!   (Figures 1 and 9);
//! * **user traces** — the 9-user / 28-day synthetic population
//!   (Figures 10–18, Table 3).
//!
//! Generation is deterministic, so the cache (binary `.twt` files under
//! `results/cache/`) is purely a speed-up; deleting it changes nothing.
//! Set `TAILWISE_DAYS=<n>` to cap days per user for quick smoke runs.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tailwise_trace::time::Duration;
use tailwise_trace::Trace;
use tailwise_workload::apps::AppKind;
use tailwise_workload::user::UserModel;

use crate::table::results_dir;

/// Span of each application trace (the paper's 2-hour captures).
pub const APP_TRACE_SPAN: Duration = Duration::from_secs(7200);

/// Bump when generator models change, so stale caches self-invalidate.
pub const DATASET_VERSION: u32 = 2;

fn cache_dir() -> PathBuf {
    results_dir().join("cache")
}

/// Days-per-user override from `TAILWISE_DAYS` (min 1), if set.
pub fn days_override() -> Option<u32> {
    std::env::var("TAILWISE_DAYS").ok()?.parse::<u32>().ok().map(|d| d.max(1))
}

fn cached_or<F: FnOnce() -> Trace>(name: &str, generate: F) -> Trace {
    let path = cache_dir().join(format!("{name}-v{DATASET_VERSION}.twt"));
    if let Ok(t) = tailwise_trace::io::load(&path) {
        return t;
    }
    let t = generate();
    if std::fs::create_dir_all(cache_dir()).is_ok() {
        let _ = tailwise_trace::io::save(&t, &path);
    }
    t
}

/// The 2-hour trace for one application category (cached).
pub fn app_trace(kind: AppKind) -> Trace {
    cached_or(&format!("app-{}", kind.name().to_lowercase()), || {
        let mut rng = StdRng::seed_from_u64(0xA7 ^ kind.id().0 as u64);
        kind.default_model().generate(APP_TRACE_SPAN, &mut rng)
    })
}

/// All seven application traces, in figure order.
pub fn all_app_traces() -> Vec<(AppKind, Trace)> {
    AppKind::ALL.iter().map(|&k| (k, app_trace(k))).collect()
}

fn materialize_users(models: Vec<UserModel>, tag: &str) -> Vec<(String, Trace)> {
    models
        .into_iter()
        .map(|m| {
            let m = match days_override() {
                Some(d) => m.scaled_to_days(d.min(m.days)),
                None => m,
            };
            let name = m.name.clone();
            let key = format!("user-{tag}-{}-{}d", name.replace(' ', "_"), m.days);
            let trace = cached_or(&key, || m.generate());
            (name, trace)
        })
        .collect()
}

/// The six-user Verizon 3G population (cached).
pub fn users_3g() -> Vec<(String, Trace)> {
    materialize_users(UserModel::verizon_3g_users(), "3g")
}

/// The three-user Verizon LTE population (cached).
pub fn users_lte() -> Vec<(String, Trace)> {
    materialize_users(UserModel::verizon_lte_users(), "lte")
}

/// All nine users (the Figure 17/18 population).
pub fn all_users() -> Vec<(String, Trace)> {
    let mut v = users_3g();
    v.extend(users_lte());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_traces_are_deterministic_across_calls() {
        // Both calls may hit the cache; equality must hold regardless.
        let a = app_trace(AppKind::Im);
        let b = app_trace(AppKind::Im);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.span() <= APP_TRACE_SPAN);
    }

    #[test]
    fn all_app_traces_covers_every_category() {
        let all = all_app_traces();
        assert_eq!(all.len(), 7);
        for (k, t) in &all {
            assert!(!t.is_empty(), "{} empty", k.name());
        }
    }
}
