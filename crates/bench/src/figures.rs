//! One reproduction function per table and figure of the paper.
//!
//! Each function returns [`Table`]s carrying exactly the rows/series the
//! paper plots; the `src/bin/figNN_*` binaries are thin wrappers that call
//! one function and `emit()` the result. `repro_all` runs everything.
//!
//! Carrier notes: Figures 1 and 9 come from the paper's HTC G1 (a
//! T-Mobile device), so those use the T-Mobile 3G profile; Figures 10/12a/
//! 14/15a use Verizon 3G with the six-user population; Figures 11/12b/15b
//! use Verizon LTE with the three-user population; Figures 17/18 and
//! Table 3 sweep all four Table-2 carriers over all nine users.

use std::collections::HashMap;

use tailwise_core::makeactive::{LearningConfig, LearningDelay};
use tailwise_core::makeidle::{MakeIdle, MakeIdleConfig};
use tailwise_core::schemes::Scheme;
use tailwise_radio::fastdormancy::AlwaysAccept;
use tailwise_radio::profile::CarrierProfile;
use tailwise_sim::batching::run_batched;
use tailwise_sim::engine::{run, SimConfig};
use tailwise_sim::policy::StatusQuo;
use tailwise_sim::report::SimReport;
use tailwise_trace::packet::{Direction, Packet};
use tailwise_trace::time::Instant;
use tailwise_trace::Trace;

use crate::datasets;
use crate::groundtruth;
use crate::table::{f1, f2, f3, Table};

/// Shared dataset handles plus a memo of completed runs.
pub struct Harness {
    /// Engine configuration used throughout (paper defaults).
    pub cfg: SimConfig,
    users_3g: Vec<(String, Trace)>,
    users_lte: Vec<(String, Trace)>,
    memo: HashMap<(String, String, String), SimReport>,
}

impl Harness {
    /// Loads (or generates) every dataset.
    pub fn new() -> Harness {
        Harness {
            cfg: SimConfig::default(),
            users_3g: datasets::users_3g(),
            users_lte: datasets::users_lte(),
            memo: HashMap::new(),
        }
    }

    /// The Verizon-3G user population `(name, trace)`.
    pub fn users_3g(&self) -> &[(String, Trace)] {
        &self.users_3g
    }

    /// The Verizon-LTE user population.
    pub fn users_lte(&self) -> &[(String, Trace)] {
        &self.users_lte
    }

    fn user_trace(&self, name: &str) -> &Trace {
        self.users_3g
            .iter()
            .chain(&self.users_lte)
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .unwrap_or_else(|| panic!("unknown user {name}"))
    }

    /// Runs (memoized) one scheme for one user on one carrier.
    pub fn report(&mut self, profile: &CarrierProfile, user: &str, scheme: Scheme) -> SimReport {
        let key = (profile.name.to_string(), user.to_string(), scheme.label());
        if let Some(r) = self.memo.get(&key) {
            return r.clone();
        }
        let trace = self.user_trace(user).clone();
        let r = scheme.run(profile, &self.cfg, &trace);
        self.memo.insert(key, r.clone());
        r
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

/// The schemes of the comparison figures, in legend order.
fn paper_schemes() -> Vec<Scheme> {
    Scheme::paper_set()
}

// ================================================================ Fig 1 ==

/// Figure 1: % of status-quo energy per component, per application.
pub fn fig01_energy_breakdown() -> Table {
    let profile = CarrierProfile::tmobile_3g(); // the HTC G1's network
    let cfg = SimConfig::default();
    let mut t = Table::new(
        "Fig 1 — energy consumed by the 3G interface, by component (%, status quo, T-Mobile 3G)",
        &["app", "data", "dch_timer", "fach_timer", "state_switch"],
    );
    for (kind, trace) in datasets::all_app_traces() {
        let r = run(&profile, &cfg, &trace, &mut StatusQuo);
        let (data, dch, fach, sw) = r.energy.fractions();
        t.push(vec![
            kind.name().into(),
            f1(data * 100.0),
            f1(dch * 100.0),
            f1(fach * 100.0),
            f1(sw * 100.0),
        ]);
    }
    t
}

// ================================================================ Fig 3 ==

/// Figure 3: measured power across one burst + tail cycle, for AT&T 3G
/// and Verizon LTE.
pub fn fig03_power_timeline() -> Vec<Table> {
    let burst: Vec<Packet> = vec![
        Packet::new(Instant::from_millis(0), Direction::Up, 400),
        Packet::new(Instant::from_millis(120), Direction::Down, 1400),
        Packet::new(Instant::from_millis(240), Direction::Down, 1400),
        Packet::new(Instant::from_millis(380), Direction::Up, 52),
    ];
    let trace = Trace::from_sorted(burst).unwrap();
    let cfg = SimConfig { record_timeline: true, ..Default::default() };
    let mut out = Vec::new();
    for profile in [CarrierProfile::att_hspa(), CarrierProfile::verizon_lte()] {
        let r = run(&profile, &cfg, &trace, &mut StatusQuo);
        let mut t = Table::new(
            format!("Fig 3 — power timeline of one burst + tail ({})", profile.name),
            &["start_s", "end_s", "power_w", "phase"],
        );
        for s in r.timeline.as_ref().expect("timeline recorded") {
            t.push(vec![
                f3(s.start.as_secs_f64()),
                f3(s.end.as_secs_f64()),
                f3(s.power),
                format!("{:?}", s.kind),
            ]);
        }
        out.push(t);
    }
    out
}

// ================================================================ Fig 8 ==

/// Figure 8: relative error of the per-second energy model against the
/// fine-grained ground truth (five-number summaries).
pub fn fig08_energy_error() -> Table {
    let mut t = Table::new(
        "Fig 8 — simulation energy error vs fine-grained ground truth",
        &["network", "min", "q1", "median", "q3", "max"],
    );
    for (profile, tput) in
        [(CarrierProfile::verizon_3g(), 3_000_000.0), (CarrierProfile::verizon_lte(), 12_000_000.0)]
    {
        let errors = groundtruth::error_population(&profile, tput);
        let (min, q1, med, q3, max) = groundtruth::five_number(&errors);
        t.push(vec![profile.name.into(), f3(min), f3(q1), f3(med), f3(q3), f3(max)]);
    }
    t
}

// ================================================================ Fig 9 ==

/// Figure 9: energy saved per application, per scheme (% vs status quo).
pub fn fig09_apps() -> Table {
    let profile = CarrierProfile::tmobile_3g();
    let cfg = SimConfig::default();
    let schemes = paper_schemes();
    let mut cols: Vec<String> = vec!["app".into()];
    cols.extend(schemes.iter().map(|s| s.label()));
    let mut t = Table::new(
        "Fig 9 — energy savings per application (%, T-Mobile 3G)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (kind, trace) in datasets::all_app_traces() {
        let base = Scheme::StatusQuo.run(&profile, &cfg, &trace);
        let mut row = vec![kind.name().to_string()];
        for s in &schemes {
            let r = s.run(&profile, &cfg, &trace);
            row.push(f1(r.savings_vs(&base)));
        }
        t.push(row);
    }
    t
}

// =========================================================== Figs 10/11 ==

fn per_user_panels(
    h: &mut Harness,
    profile: &CarrierProfile,
    users: Vec<String>,
    fig: &str,
) -> Vec<Table> {
    let schemes = paper_schemes();
    let mut cols: Vec<String> = vec!["user".into()];
    cols.extend(schemes.iter().map(|s| s.label()));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut savings =
        Table::new(format!("{fig}a — energy savings (%, {})", profile.name), &col_refs);
    let mut switches = Table::new(
        format!("{fig}b — state switches normalized by status quo ({})", profile.name),
        &col_refs,
    );
    let mut per_switch = Table::new(
        format!("{fig}c — energy saved per state switch (J, {})", profile.name),
        &col_refs,
    );
    for user in users {
        let base = h.report(profile, &user, Scheme::StatusQuo);
        let mut row_s = vec![user.clone()];
        let mut row_n = vec![user.clone()];
        let mut row_j = vec![user.clone()];
        for s in &schemes {
            let r = h.report(profile, &user, *s);
            row_s.push(f1(r.savings_vs(&base)));
            row_n.push(f2(r.normalized_switches(&base)));
            row_j.push(f2(r.energy_saved_per_switch(&base)));
        }
        savings.push(row_s);
        switches.push(row_n);
        per_switch.push(row_j);
    }
    vec![savings, switches, per_switch]
}

/// Figure 10: the Verizon 3G per-user panels (savings, normalized
/// switches, J per switch).
pub fn fig10_verizon3g(h: &mut Harness) -> Vec<Table> {
    let users: Vec<String> = h.users_3g().iter().map(|(n, _)| n.clone()).collect();
    per_user_panels(h, &CarrierProfile::verizon_3g(), users, "Fig 10")
}

/// Figure 11: the Verizon LTE per-user panels.
pub fn fig11_verizonlte(h: &mut Harness) -> Vec<Table> {
    let users: Vec<String> = h.users_lte().iter().map(|(n, _)| n.clone()).collect();
    per_user_panels(h, &CarrierProfile::verizon_lte(), users, "Fig 11")
}

// ================================================================ Fig 12 ==

/// Figure 12: false (FP) and missed (FN) switch rates vs the Oracle.
pub fn fig12_fpfn(h: &mut Harness) -> Vec<Table> {
    let mut out = Vec::new();
    for (profile, users, panel) in [
        (
            CarrierProfile::verizon_3g(),
            h.users_3g().iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            "Fig 12a (Verizon 3G)",
        ),
        (
            CarrierProfile::verizon_lte(),
            h.users_lte().iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            "Fig 12b (Verizon LTE)",
        ),
    ] {
        let mut t = Table::new(
            format!("{panel} — false/missed switches vs Oracle (%)"),
            &[
                "user",
                "4.5s FP",
                "4.5s FN",
                "95% IAT FP",
                "95% IAT FN",
                "MakeIdle FP",
                "MakeIdle FN",
            ],
        );
        for user in users {
            let mut row = vec![user.clone()];
            for s in [Scheme::FixedTail45, Scheme::PercentileIat(0.95), Scheme::MakeIdle] {
                let r = h.report(&profile, &user, s);
                row.push(f1(r.confusion.false_switch_rate() * 100.0));
                row.push(f1(r.confusion.missed_switch_rate() * 100.0));
            }
            t.push(row);
        }
        out.push(t);
    }
    out
}

// ================================================================ Fig 13 ==

/// Figure 13: MakeIdle FP/FN as a function of the window size n.
pub fn fig13_window_sweep(h: &mut Harness) -> Table {
    let profile = CarrierProfile::verizon_3g();
    let (user, trace) = h.users_3g()[0].clone();
    let mut t = Table::new(
        format!("Fig 13 — MakeIdle FP/FN vs window size n ({user}, Verizon 3G)"),
        &["n", "fp_pct", "fn_pct"],
    );
    for n in [10usize, 25, 50, 100, 150, 200, 300, 400] {
        let cfg = SimConfig { window_capacity: n, ..h.cfg.clone() };
        let r = run(&profile, &cfg, &trace, &mut MakeIdle::new());
        t.push(vec![
            n.to_string(),
            f2(r.confusion.false_switch_rate() * 100.0),
            f2(r.confusion.missed_switch_rate() * 100.0),
        ]);
    }
    t
}

// ================================================================ Fig 14 ==

/// Figure 14: the wait MakeIdle chooses over time (first 600 s with
/// decisions, Verizon 3G).
pub fn fig14_twait_series(h: &mut Harness) -> Table {
    let profile = CarrierProfile::verizon_3g();
    let (user, trace) = h.users_3g()[0].clone();
    let cfg = SimConfig { record_decisions: true, ..h.cfg.clone() };
    let r = run(&profile, &cfg, &trace, &mut MakeIdle::new());
    let decisions = r.decisions.as_ref().expect("decisions recorded");
    let mut t = Table::new(
        format!("Fig 14 — t_wait over time ({user}, Verizon 3G, first 600 s of decisions)"),
        &["time_s", "t_wait_s"],
    );
    let start = decisions.first().map(|&(at, _)| at).unwrap_or(Instant::ZERO);
    for &(at, w) in decisions {
        let rel = (at - start).as_secs_f64();
        if rel > 600.0 {
            break;
        }
        t.push(vec![f2(rel), f3(w.as_secs_f64())]);
    }
    t
}

// ================================================================ Fig 15 ==

/// Figure 15: mean/median session delay, learning vs fixed bound.
pub fn fig15_delays(h: &mut Harness) -> Vec<Table> {
    let mut out = Vec::new();
    for (profile, users, panel) in [
        (
            CarrierProfile::verizon_3g(),
            h.users_3g().iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            "Fig 15a (Verizon 3G)",
        ),
        (
            CarrierProfile::verizon_lte(),
            h.users_lte().iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
            "Fig 15b (Verizon LTE)",
        ),
    ] {
        let mut t = Table::new(
            format!("{panel} — session delays, learning vs fixed (s)"),
            &["user", "learn_mean", "learn_median", "fix_mean", "fix_median"],
        );
        for user in users {
            let learn = h.report(&profile, &user, Scheme::MakeIdleActiveLearn);
            let fix = h.report(&profile, &user, Scheme::MakeIdleActiveFix);
            t.push(vec![
                user.clone(),
                f2(learn.mean_session_delay()),
                f2(learn.median_session_delay()),
                f2(fix.mean_session_delay()),
                f2(fix.median_session_delay()),
            ]);
        }
        out.push(t);
    }
    out
}

// ================================================================ Fig 16 ==

/// Figure 16: learned delay and buffered-burst count per learning
/// iteration.
pub fn fig16_learning_dynamics(h: &mut Harness) -> Table {
    let profile = CarrierProfile::verizon_3g();
    let (user, trace) = h.users_3g()[0].clone();
    let mut idle = MakeIdle::new();
    let mut learner = LearningDelay::new();
    let _ = run_batched(&profile, &h.cfg, &trace, &mut idle, &mut learner, &mut AlwaysAccept);
    let mut t = Table::new(
        format!("Fig 16 — delay value vs learning iteration ({user}, Verizon 3G)"),
        &["iteration", "delay_s", "buffered_bursts"],
    );
    for (i, rec) in learner.history().iter().take(30).enumerate() {
        t.push(vec![i.to_string(), f2(rec.proposed_delay), rec.buffered.to_string()]);
    }
    t
}

// =========================================================== Figs 17/18 ==

/// One scheme's aggregate over the nine-user population.
type SchemeAggregate = (String, f64, u64);
/// A carrier's aggregates: per-scheme rows plus the status-quo reference
/// `(energy, switches)`.
type CarrierAggregate = (CarrierProfile, Vec<SchemeAggregate>, f64, u64);

/// Aggregated per-carrier runs over the full nine-user population.
fn carrier_aggregates(h: &mut Harness) -> Vec<CarrierAggregate> {
    let all_users: Vec<String> =
        h.users_3g().iter().chain(h.users_lte()).map(|(n, _)| n.clone()).collect();
    let mut out = Vec::new();
    for profile in CarrierProfile::paper_carriers() {
        let mut base_energy = 0.0;
        let mut base_switches = 0u64;
        for u in &all_users {
            let r = h.report(&profile, u, Scheme::StatusQuo);
            base_energy += r.total_energy();
            base_switches += r.switch_cycles();
        }
        let mut rows = Vec::new();
        for s in paper_schemes() {
            let mut energy = 0.0;
            let mut switches = 0u64;
            for u in &all_users {
                let r = h.report(&profile, u, s);
                energy += r.total_energy();
                switches += r.switch_cycles();
            }
            rows.push((s.label(), energy, switches));
        }
        out.push((profile, rows, base_energy, base_switches));
    }
    out
}

/// Figure 17: energy saved per carrier per scheme (%, all nine users).
pub fn fig17_carriers(h: &mut Harness) -> Table {
    let mut cols: Vec<String> = vec!["carrier".into()];
    cols.extend(paper_schemes().iter().map(|s| s.label()));
    let mut t = Table::new(
        "Fig 17 — energy saved per carrier (%, aggregated over all users)",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (profile, rows, base_energy, _) in carrier_aggregates(h) {
        let mut row = vec![profile.name.to_string()];
        for (_, energy, _) in &rows {
            row.push(f1((base_energy - energy) / base_energy * 100.0));
        }
        t.push(row);
    }
    t
}

/// Figure 18: switch counts normalized by the status quo, per carrier.
pub fn fig18_carrier_switches(h: &mut Harness) -> Table {
    let mut cols: Vec<String> = vec!["carrier".into()];
    cols.extend(paper_schemes().iter().map(|s| s.label()));
    let mut t = Table::new(
        "Fig 18 — state switches normalized by status quo, per carrier",
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (profile, rows, _, base_switches) in carrier_aggregates(h) {
        let mut row = vec![profile.name.to_string()];
        for (_, _, switches) in &rows {
            row.push(f2(*switches as f64 / base_switches.max(1) as f64));
        }
        t.push(row);
    }
    t
}

// ================================================================ Tables ==

/// Table 1: bulk send/receive power.
pub fn tab01_power() -> Table {
    let mut t = Table::new(
        "Table 1 — average bulk-transfer power (mW)",
        &["network", "sending_mw", "receiving_mw"],
    );
    for p in [CarrierProfile::att_hspa(), CarrierProfile::verizon_lte()] {
        t.push(vec![p.name.into(), f1(p.p_send * 1000.0), f1(p.p_recv * 1000.0)]);
    }
    t
}

/// Table 2: the full RRC parameter set per carrier (plus the derived
/// switch energy and threshold this reproduction calibrates).
pub fn tab02_rrc_params() -> Table {
    let mut t = Table::new(
        "Table 2 — RRC power and timer values per carrier",
        &[
            "network",
            "Psnd_mw",
            "Prcv_mw",
            "Pt1_mw",
            "Pt2_mw",
            "t1_s",
            "t2_s",
            "promo_s",
            "E_switch_J",
            "t_threshold_s",
        ],
    );
    for p in CarrierProfile::paper_carriers() {
        t.push(vec![
            p.name.into(),
            f1(p.p_send * 1000.0),
            f1(p.p_recv * 1000.0),
            f1(p.p_dch * 1000.0),
            f1(p.p_fach * 1000.0),
            f1(p.t1.as_secs_f64()),
            f1(p.t2.as_secs_f64()),
            f1(p.promotion_delay.as_secs_f64()),
            f2(p.e_switch()),
            f2(p.t_threshold().as_secs_f64()),
        ]);
    }
    t
}

/// Table 3: mean/median MakeActive session delays per carrier
/// (learning batcher, all users).
pub fn tab03_session_delays(h: &mut Harness) -> Table {
    let all_users: Vec<String> =
        h.users_3g().iter().chain(h.users_lte()).map(|(n, _)| n.clone()).collect();
    let mut t = Table::new(
        "Table 3 — MakeActive session delays per carrier (s)",
        &["network", "mean_delay", "median_delay"],
    );
    for profile in CarrierProfile::paper_carriers() {
        let mut delays: Vec<f64> = Vec::new();
        for u in &all_users {
            let r = h.report(&profile, u, Scheme::MakeIdleActiveLearn);
            delays.extend_from_slice(&r.session_delays);
        }
        let mean = tailwise_sim::metrics::mean_f64(&delays).unwrap_or(0.0);
        let median = tailwise_sim::metrics::median_f64(&delays).unwrap_or(0.0);
        t.push(vec![profile.name.into(), f2(mean), f2(median)]);
    }
    t
}

// ============================================================= Ablations ==

/// §6.1 robustness: fast-dormancy demotion cost at {10, 20, 40, 50}% of
/// the radio-off cost — "the results did not change appreciably".
pub fn ablation_fd_fraction(h: &mut Harness) -> Table {
    let users: Vec<(String, Trace)> = h.users_3g().to_vec();
    let mut t = Table::new(
        "Ablation — MakeIdle savings vs fast-dormancy energy fraction (Verizon 3G, %)",
        &["fd_fraction", "makeidle_savings_pct", "oracle_savings_pct"],
    );
    for frac in [0.1, 0.2, 0.4, 0.5] {
        let mut profile = CarrierProfile::verizon_3g();
        profile.fd_energy_fraction = frac;
        let mut base_e = 0.0;
        let mut mi_e = 0.0;
        let mut or_e = 0.0;
        for (_, trace) in &users {
            base_e += Scheme::StatusQuo.run(&profile, &h.cfg, trace).total_energy();
            mi_e += Scheme::MakeIdle.run(&profile, &h.cfg, trace).total_energy();
            or_e += Scheme::Oracle.run(&profile, &h.cfg, trace).total_energy();
        }
        t.push(vec![
            f2(frac),
            f1((base_e - mi_e) / base_e * 100.0),
            f1((base_e - or_e) / base_e * 100.0),
        ]);
    }
    t
}

/// MakeActive loss-scale sweep: the γ = 0.008 choice (§5.2).
pub fn ablation_gamma(h: &mut Harness) -> Table {
    let profile = CarrierProfile::verizon_3g();
    let users: Vec<(String, Trace)> = h.users_3g().to_vec();
    let mut t = Table::new(
        "Ablation — MakeActive-Learn vs loss scale gamma (Verizon 3G)",
        &["gamma", "savings_pct", "norm_switches", "mean_delay_s"],
    );
    for gamma in [0.001, 0.004, 0.008, 0.016, 0.064] {
        let mut base_e = 0.0;
        let mut base_sw = 0u64;
        let mut e = 0.0;
        let mut sw = 0u64;
        let mut delays: Vec<f64> = Vec::new();
        for (_, trace) in &users {
            let base = Scheme::StatusQuo.run(&profile, &h.cfg, trace);
            base_e += base.total_energy();
            base_sw += base.switch_cycles();
            let mut learner =
                LearningDelay::with_config(LearningConfig { gamma, ..Default::default() });
            let r = run_batched(
                &profile,
                &h.cfg,
                trace,
                &mut MakeIdle::new(),
                &mut learner,
                &mut AlwaysAccept,
            );
            e += r.total_energy();
            sw += r.switch_cycles();
            delays.extend_from_slice(&r.session_delays);
        }
        t.push(vec![
            f3(gamma),
            f1((base_e - e) / base_e * 100.0),
            f2(sw as f64 / base_sw.max(1) as f64),
            f2(tailwise_sim::metrics::mean_f64(&delays).unwrap_or(0.0)),
        ]);
    }
    t
}

/// MakeIdle candidate-grid resolution sweep.
pub fn ablation_candidate_grid(h: &mut Harness) -> Table {
    let profile = CarrierProfile::verizon_3g();
    let (_, trace) = h.users_3g()[0].clone();
    let base = Scheme::StatusQuo.run(&profile, &h.cfg, &trace);
    let mut t = Table::new(
        "Ablation — MakeIdle savings vs candidate-grid resolution (Verizon 3G, user 1)",
        &["candidates", "savings_pct", "fp_pct", "fn_pct"],
    );
    for candidates in [3usize, 5, 10, 25, 50, 100] {
        let mut mi = MakeIdle::with_config(MakeIdleConfig { candidates, ..Default::default() });
        let r = run(&profile, &h.cfg, &trace, &mut mi);
        t.push(vec![
            candidates.to_string(),
            f1(r.savings_vs(&base)),
            f2(r.confusion.false_switch_rate() * 100.0),
            f2(r.confusion.missed_switch_rate() * 100.0),
        ]);
    }
    t
}

/// Decision-rule ablation: the energy rule MakeIdle uses (§4.2 step 2)
/// against the paper-literal `P(t_wait) ≥ θ` confidence rule (step 1
/// alone), on the same user.
pub fn ablation_decision_rule(h: &mut Harness) -> Table {
    let profile = CarrierProfile::verizon_3g();
    let (_, trace) = h.users_3g()[0].clone();
    let base = Scheme::StatusQuo.run(&profile, &h.cfg, &trace);
    let mut t = Table::new(
        "Ablation — energy rule vs literal confidence rule (Verizon 3G, user 1)",
        &["rule", "savings_pct", "fp_pct", "fn_pct", "norm_switches"],
    );
    let mut row = |name: String, r: &SimReport| {
        t.push(vec![
            name,
            f1(r.savings_vs(&base)),
            f2(r.confusion.false_switch_rate() * 100.0),
            f2(r.confusion.missed_switch_rate() * 100.0),
            f2(r.normalized_switches(&base)),
        ]);
    };
    let energy = run(&profile, &h.cfg, &trace, &mut MakeIdle::new());
    row("energy (MakeIdle)".into(), &energy);
    for theta in [0.5, 0.7, 0.9, 0.95] {
        let mut pol = tailwise_core::confidence::ConfidenceRule::new(theta);
        let r = run(&profile, &h.cfg, &trace, &mut pol);
        row(format!("confidence θ={theta}"), &r);
    }
    t
}

/// §8 future work: base-station signaling load as the cell fills with
/// MakeIdle devices, with and without MakeActive batching, and the effect
/// of a base-station rate limit.
pub fn ext_cell_signaling(h: &mut Harness) -> Table {
    use tailwise_radio::fastdormancy::RateLimited;
    use tailwise_radio::signaling::SignalingModel;
    use tailwise_sim::cell::{run_cell, CellDevice};
    use tailwise_trace::time::Duration as D;

    let profile = CarrierProfile::verizon_3g();
    let model = SignalingModel::default();
    // One-day slices of the user population as the phones in the cell.
    let day = tailwise_workload::DAY;
    let slice = |trace: &Trace| trace.slice(Instant::ZERO, Instant::ZERO + day);
    let population: Vec<Trace> =
        h.users_3g().iter().chain(h.users_lte()).map(|(_, t)| slice(t)).collect();

    let make_devices = |n: usize, batched: bool| -> Vec<CellDevice> {
        (0..n)
            .map(|i| {
                let trace = population[i % population.len()].clone();
                let trace = if batched {
                    tailwise_sim::batching::batch_sessions(
                        &profile,
                        &h.cfg,
                        &trace,
                        &mut tailwise_core::makeactive::LearningDelay::new(),
                    )
                    .trace
                } else {
                    trace
                };
                CellDevice { name: format!("phone {i}"), trace, policy: Box::new(MakeIdle::new()) }
            })
            .collect()
    };

    let mut t = Table::new(
        "Extension (§8) — base-station load vs cell population (Verizon 3G)",
        &["devices", "scheme", "release", "msgs_total", "peak_msgs_per_s", "denied", "energy_kJ"],
    );
    for n in [3usize, 6, 12] {
        for (batched, label) in [(false, "MakeIdle"), (true, "MakeIdle+MakeActive")] {
            let r = run_cell(
                &profile,
                &h.cfg,
                make_devices(n, batched),
                &mut AlwaysAccept,
                &model,
                None,
            );
            t.push(vec![
                n.to_string(),
                label.into(),
                "always-accept".into(),
                r.total_messages.to_string(),
                r.peak_messages_per_s.to_string(),
                r.denied.to_string(),
                f2(r.total_energy() / 1000.0),
            ]);
        }
        // A protective base station: at most one release grant per second
        // across the whole cell.
        let mut limited = RateLimited::new(D::from_secs(1));
        let r = run_cell(&profile, &h.cfg, make_devices(n, false), &mut limited, &model, None);
        t.push(vec![
            n.to_string(),
            "MakeIdle".into(),
            "rate-limited 1/s".into(),
            r.total_messages.to_string(),
            r.peak_messages_per_s.to_string(),
            r.denied.to_string(),
            f2(r.total_energy() / 1000.0),
        ]);
    }
    t
}

/// Extension — per-application energy attribution (the Fig-1 motivation
/// as a library feature): who burns the battery on a full user-day?
pub fn ext_energy_attribution(h: &mut Harness) -> Table {
    let profile = CarrierProfile::att_hspa();
    let (user, trace) = h.users_3g()[0].clone();
    let day = trace.slice(Instant::ZERO, Instant::ZERO + tailwise_workload::DAY);
    let attr = tailwise_sim::attribution::attribute(&profile, &h.cfg, &day);
    let mut t = Table::new(
        format!("Extension — per-app energy attribution ({user}, day 1, AT&T)"),
        &["app", "packets", "energy_J", "share_pct", "data_J", "tail_J", "switch_J"],
    );
    for a in &attr.apps {
        let name = tailwise_workload::AppKind::ALL
            .iter()
            .find(|k| k.id() == a.app)
            .map(|k| k.name().to_string())
            .unwrap_or_else(|| a.app.to_string());
        t.push(vec![
            name,
            a.packets.to_string(),
            f1(a.energy.total()),
            f1(attr.share(a.app) * 100.0),
            f1(a.energy.data()),
            f1(a.energy.tail()),
            f1(a.energy.switch()),
        ]);
    }
    t
}

/// Learn-α outer-layer sweep: number of α-experts (m), including the
/// degenerate single-α case.
pub fn ablation_alpha_experts(h: &mut Harness) -> Table {
    let profile = CarrierProfile::verizon_3g();
    let (_, trace) = h.users_3g()[0].clone();
    let base = Scheme::StatusQuo.run(&profile, &h.cfg, &trace);
    let mut t = Table::new(
        "Ablation — MakeActive-Learn vs alpha-expert count m (Verizon 3G, user 1)",
        &["m", "savings_pct", "norm_switches", "mean_delay_s"],
    );
    for m in [1usize, 2, 4, 8, 16] {
        let mut learner =
            LearningDelay::with_config(LearningConfig { alpha_experts: m, ..Default::default() });
        let r = run_batched(
            &profile,
            &h.cfg,
            &trace,
            &mut MakeIdle::new(),
            &mut learner,
            &mut AlwaysAccept,
        );
        t.push(vec![
            m.to_string(),
            f1(r.savings_vs(&base)),
            f2(r.normalized_switches(&base)),
            f2(r.mean_session_delay()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // Dataset-free figures run fast enough to test directly.

    #[test]
    fn fig03_has_expected_phases() {
        let tables = fig03_power_timeline();
        assert_eq!(tables.len(), 2);
        for t in &tables {
            let phases: Vec<&String> = t.rows.iter().map(|r| &r[3]).collect();
            assert!(phases.iter().any(|p| p.contains("Data")), "{:?}", t.title);
            assert!(phases.iter().any(|p| p.contains("TailDch")));
            assert!(phases.iter().any(|p| p.contains("Promotion")));
        }
        // The 3G table has a FACH phase; the LTE one must not.
        assert!(tables[0].rows.iter().any(|r| r[3].contains("TailFach")));
        assert!(!tables[1].rows.iter().any(|r| r[3].contains("TailFach")));
    }

    #[test]
    fn fig08_errors_within_envelope() {
        let t = fig08_energy_error();
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let min: f64 = row[1].parse().unwrap();
            let max: f64 = row[5].parse().unwrap();
            assert!(min >= -0.15 && max <= 0.15, "{row:?}");
        }
    }

    #[test]
    fn tables_1_and_2_match_the_paper_constants() {
        let t1 = tab01_power();
        assert!(t1.render().contains("2928.0")); // Verizon LTE Psnd
        let t2 = tab02_rrc_params();
        let r = t2.render();
        assert!(r.contains("916.0")); // AT&T Pt1
        assert!(r.contains("16.3")); // T-Mobile t2
                                     // AT&T threshold anchor.
        let att_row = t2.rows.iter().find(|row| row[0].contains("AT&T")).unwrap();
        let th: f64 = att_row[9].parse().unwrap();
        assert!((th - 1.2).abs() < 0.05, "threshold {th}");
    }
}
