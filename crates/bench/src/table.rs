//! Result tables: fixed-width console rendering plus CSV persistence.
//!
//! Every figure/table binary produces one or more [`Table`]s — the same
//! rows the paper plots — prints them, and drops a CSV next to the repo's
//! `results/` directory so EXPERIMENTS.md (and any plotting stack) can
//! consume them.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human title, printed above the table.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch in {}", self.title);
        self.rows.push(cells);
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV (RFC-4180-style quoting for cells that need
    /// it).
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", csv_line(&self.columns))?;
        for row in &self.rows {
            writeln!(f, "{}", csv_line(row))?;
        }
        f.flush()
    }

    /// Prints and saves under `results/<stem>.csv`, returning the path.
    pub fn emit(&self, stem: &str) -> PathBuf {
        self.print();
        let path = results_dir().join(format!("{stem}.csv"));
        self.save_csv(&path).unwrap_or_else(|e| eprintln!("warning: could not save {path:?}: {e}"));
        path
    }
}

fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// The directory results are written to: `$TAILWISE_RESULTS` or
/// `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var_os("TAILWISE_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("a"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_enforced() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only one".into()]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("demo", &["x"]);
        t.push(vec!["plain".into()]);
        t.push(vec!["has,comma".into()]);
        t.push(vec!["has\"quote".into()]);
        let dir = std::env::temp_dir().join(format!("tailwise-table-{}", std::process::id()));
        let path = dir.join("t.csv");
        t.save_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("plain"));
        assert!(text.contains("\"has,comma\""));
        assert!(text.contains("\"has\"\"quote\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.257), "1.26");
        assert_eq!(f3(0.12345), "0.123");
    }
}
