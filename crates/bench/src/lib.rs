//! # tailwise-bench
//!
//! The reproduction harness: one target per table and figure of *"Traffic-
//! Aware Techniques to Reduce 3G/LTE Wireless Energy Consumption"* (Deng &
//! Balakrishnan, CoNEXT 2012), plus the ablations DESIGN.md commits to.
//!
//! * [`figures`] — one function per experiment, returning the same
//!   rows/series the paper plots;
//! * [`datasets`] — deterministic, disk-cached generation of the §6.1
//!   application and user datasets;
//! * [`groundtruth`] — the fine-grained energy model behind the Figure 8
//!   validation;
//! * [`table`] — console/CSV result tables.
//!
//! Binaries: `fig01_energy_breakdown` … `fig18_carrier_switches`,
//! `tab01_power` … `tab03_session_delays`, `ablation_*`, and `repro_all`
//! (runs everything and fills `results/`). Criterion benches measure the
//! §6.6 per-packet control overhead and the engine/generator throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod figures;
pub mod groundtruth;
pub mod table;

pub use figures::Harness;
pub use table::Table;
