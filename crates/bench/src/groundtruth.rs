//! The fine-grained "measured" energy model behind the Figure 8
//! validation.
//!
//! §6.1 justifies the per-second energy model by comparing its estimates
//! against power-monitor measurements of TCP bulk transfers (10 kB, 100 kB
//! and 1000 kB, five runs each), finding errors "within 10% or less".
//! Without the hardware, we substitute a finer ground-truth model built
//! from the effect the paper cites: "the value of the energy consumed per
//! bit changes as the size of traffic bursts changes" (ref. \[8\], Huang et
//! al., MobiSys 2012 — small transfers are less energy-efficient because
//! fixed per-transfer costs do not amortize). Ground truth = bulk power ×
//! duration × a size-dependent efficiency factor × deterministic per-run
//! measurement noise; the estimate under test is the paper's plain
//! `power × duration`.

use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::Direction;

/// Transfer sizes of the §6.1 validation runs, bytes.
pub const TRANSFER_SIZES: [u64; 3] = [10_000, 100_000, 1_000_000];
/// Runs per size ("each experiment contains five runs").
pub const RUNS_PER_SIZE: usize = 5;

/// Size-dependent inefficiency: small transfers burn more energy per bit
/// (per-transfer overheads — channel ramp-up, scheduling grants — do not
/// amortize). Calibrated so the model error spans roughly ±10%, matching
/// the paper's reported envelope.
pub fn efficiency_factor(bytes: u64) -> f64 {
    // 10 kB → ~1.10, 100 kB → ~1.03, 1 MB → ~0.97.
    let decades_above_10kb = (bytes as f64 / 10_000.0).log10();
    1.10 - 0.065 * decades_above_10kb
}

/// Deterministic per-run "measurement noise" in `[-0.04, +0.04]`,
/// splitmix-hashed from the run index.
pub fn run_noise(run: usize) -> f64 {
    let mut z = (run as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
    (u * 2.0 - 1.0) * 0.04
}

/// One validation sample: the relative error of the per-second model
/// against the fine-grained ground truth for a bulk transfer.
pub fn model_error(
    profile: &CarrierProfile,
    dir: Direction,
    bytes: u64,
    run: usize,
    throughput_bps: f64,
) -> f64 {
    let duration_s = bytes as f64 * 8.0 / throughput_bps;
    let power = profile.p_data(dir);
    let estimated = power * duration_s;
    let truth = power * duration_s * efficiency_factor(bytes) * (1.0 + run_noise(run));
    (estimated - truth) / truth
}

/// All errors for one profile across the §6.1 grid (sizes × runs × both
/// directions).
pub fn error_population(profile: &CarrierProfile, throughput_bps: f64) -> Vec<f64> {
    let mut out = Vec::new();
    for &size in &TRANSFER_SIZES {
        for run in 0..RUNS_PER_SIZE {
            for dir in [Direction::Up, Direction::Down] {
                out.push(model_error(profile, dir, size, run, throughput_bps));
            }
        }
    }
    out
}

/// Five-number summary `(min, q1, median, q3, max)` of an error
/// population.
pub fn five_number(errors: &[f64]) -> (f64, f64, f64, f64, f64) {
    assert!(!errors.is_empty());
    let mut v = errors.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
    (v[0], q(0.25), q(0.5), q(0.75), v[v.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_transfers_are_less_efficient() {
        assert!(efficiency_factor(10_000) > efficiency_factor(100_000));
        assert!(efficiency_factor(100_000) > efficiency_factor(1_000_000));
        assert!((efficiency_factor(10_000) - 1.10).abs() < 1e-9);
    }

    #[test]
    fn errors_stay_within_the_papers_envelope() {
        // Fig. 8's whiskers sit within ±0.15; §6.1 claims ≤10% average.
        for p in [CarrierProfile::verizon_3g(), CarrierProfile::verizon_lte()] {
            let errors = error_population(&p, 5_000_000.0);
            assert_eq!(errors.len(), 30);
            let mean_abs: f64 = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len() as f64;
            assert!(mean_abs <= 0.10, "{}: mean |err| {mean_abs}", p.name);
            let (lo, _, _, _, hi) = five_number(&errors);
            assert!(lo >= -0.15 && hi <= 0.15, "{}: [{lo}, {hi}]", p.name);
        }
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        for run in 0..100 {
            let n = run_noise(run);
            assert!((-0.04..=0.04).contains(&n));
            assert_eq!(n, run_noise(run));
        }
    }

    #[test]
    fn five_number_summary_is_ordered() {
        let errors = error_population(&CarrierProfile::verizon_lte(), 20_000_000.0);
        let (min, q1, med, q3, max) = five_number(&errors);
        assert!(min <= q1 && q1 <= med && med <= q3 && q3 <= max);
    }
}
