//! libpcap capture ingestion.
//!
//! The paper's entire data pipeline starts from tcpdump: "All the phones
//! run tcpdump in the background" (§6.1). This module turns a classic
//! libpcap file into a [`Trace`], so the algorithms run on real captures
//! exactly as they run on synthetic ones:
//!
//! * classic pcap global header, both byte orders, microsecond
//!   (`0xa1b2c3d4`) and nanosecond (`0xa1b23c4d`) timestamp variants;
//! * link types: Ethernet (DLT 1, including 802.1Q), raw IP (DLT 101) and
//!   Linux cooked capture v1 (DLT 113);
//! * IPv4 only (the 2012 setting); other ethertypes are skipped, not
//!   errors;
//! * packet **direction** is inferred by comparing the IPv4 addresses to
//!   the capturing device's address — the same convention the paper's
//!   scripts needed; packets that involve the device on neither side are
//!   dropped (broadcast chatter);
//! * **flows** get stable ids from the 5-tuple (addresses, ports,
//!   protocol), direction-normalized so both directions of a connection
//!   share one id.
//!
//! Timestamps are rebased so the first kept packet sits at the trace
//! epoch. The pcapng format is out of scope (tcpdump writes classic pcap
//! with `-w`); a [`TraceError::BadHeader`] on the pcapng magic says so
//! explicitly.

use std::collections::HashMap;
use std::io::Read;
use std::net::Ipv4Addr;

use crate::error::TraceError;
use crate::packet::{Direction, Packet};
use crate::time::Instant;
use crate::trace::Trace;

/// Classic pcap magic, microsecond timestamps.
const MAGIC_USEC: u32 = 0xA1B2_C3D4;
/// Classic pcap magic, nanosecond timestamps.
const MAGIC_NSEC: u32 = 0xA1B2_3C4D;
/// pcapng section-header magic (unsupported; detected for the error
/// message).
const MAGIC_PCAPNG: u32 = 0x0A0D_0D0A;

/// Link types we can walk to the IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkType {
    Ethernet,
    RawIp,
    LinuxSll,
}

impl LinkType {
    fn from_dlt(dlt: u32) -> Option<LinkType> {
        match dlt {
            1 => Some(LinkType::Ethernet),
            101 => Some(LinkType::RawIp),
            113 => Some(LinkType::LinuxSll),
            _ => None,
        }
    }
}

struct Reader {
    big_endian: bool,
    nanos: bool,
    link: LinkType,
}

impl Reader {
    // Note: only u32 needs file-endianness handling; the in-frame header
    // fields (ethertypes, ports) are always network byte order.
    fn u32(&self, b: &[u8]) -> u32 {
        let a: [u8; 4] = b[..4].try_into().expect("caller checked length");
        if self.big_endian {
            u32::from_be_bytes(a)
        } else {
            u32::from_le_bytes(a)
        }
    }
}

/// Reads a classic libpcap capture, attributing direction relative to
/// `device`.
///
/// Returns the trace rebased to the first kept packet. Non-IPv4 frames
/// and frames not involving `device` are skipped silently; structural
/// corruption (truncated records, unsupported link type) is an error.
pub fn read_pcap<R: Read>(mut input: R, device: Ipv4Addr) -> Result<Trace, TraceError> {
    let mut header = [0u8; 24];
    input.read_exact(&mut header)?;
    let magic_le = u32::from_le_bytes(header[..4].try_into().expect("fixed slice"));
    let magic_be = u32::from_be_bytes(header[..4].try_into().expect("fixed slice"));
    let (big_endian, nanos) = match (magic_le, magic_be) {
        (MAGIC_USEC, _) => (false, false),
        (MAGIC_NSEC, _) => (false, true),
        (_, MAGIC_USEC) => (true, false),
        (_, MAGIC_NSEC) => (true, true),
        _ if magic_le == MAGIC_PCAPNG || magic_be == MAGIC_PCAPNG => {
            return Err(TraceError::BadHeader(
                "pcapng is not supported; convert with `tcpdump -r in.pcapng -w out.pcap`".into(),
            ))
        }
        _ => return Err(TraceError::BadHeader(format!("unknown pcap magic {magic_le:#010x}"))),
    };
    let tmp = Reader { big_endian, nanos, link: LinkType::RawIp };
    let dlt = tmp.u32(&header[20..24]);
    let link = LinkType::from_dlt(dlt).ok_or_else(|| TraceError::Parse {
        location: 0,
        message: format!("unsupported link type DLT {dlt}"),
    })?;
    let r = Reader { big_endian, nanos, link };

    let dev = device.octets();
    let mut packets: Vec<Packet> = Vec::new();
    let mut flows: HashMap<(u32, u32, u16, u16, u8), u32> = HashMap::new();
    let mut rec_header = [0u8; 16];
    let mut index = 0usize;
    loop {
        match input.read_exact(&mut rec_header) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        index += 1;
        let ts_sec = r.u32(&rec_header[0..4]) as i64;
        let ts_frac = r.u32(&rec_header[4..8]) as i64;
        let incl_len = r.u32(&rec_header[8..12]) as usize;
        let orig_len = r.u32(&rec_header[12..16]);
        if incl_len > 256 * 1024 {
            return Err(TraceError::Parse {
                location: index,
                message: format!("implausible capture length {incl_len}"),
            });
        }
        let mut frame = vec![0u8; incl_len];
        input.read_exact(&mut frame).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Parse { location: index, message: "truncated packet record".into() }
            } else {
                TraceError::Io(e)
            }
        })?;

        let micros = ts_sec * 1_000_000 + if r.nanos { ts_frac / 1000 } else { ts_frac };
        let Some(ip) = ip_payload(&r, &frame) else { continue };
        if ip.len() < 20 || ip[0] >> 4 != 4 {
            continue; // not IPv4
        }
        let ihl = ((ip[0] & 0x0F) as usize) * 4;
        if ihl < 20 || ip.len() < ihl {
            continue;
        }
        let src: [u8; 4] = ip[12..16].try_into().expect("bounds checked");
        let dst: [u8; 4] = ip[16..20].try_into().expect("bounds checked");
        let dir = if src == dev {
            Direction::Up
        } else if dst == dev {
            Direction::Down
        } else {
            continue; // not this device's traffic
        };
        let proto = ip[9];
        let (sport, dport) = if (proto == 6 || proto == 17) && ip.len() >= ihl + 4 {
            (
                u16::from_be_bytes(ip[ihl..ihl + 2].try_into().expect("bounds checked")),
                u16::from_be_bytes(ip[ihl + 2..ihl + 4].try_into().expect("bounds checked")),
            )
        } else {
            (0, 0)
        };
        // Direction-normalize the 5-tuple so both directions share a flow.
        let (a, ap, b, bp) = {
            let s = (u32::from_be_bytes(src), sport);
            let d = (u32::from_be_bytes(dst), dport);
            if s <= d {
                (s.0, s.1, d.0, d.1)
            } else {
                (d.0, d.1, s.0, s.1)
            }
        };
        let next_flow = flows.len() as u32 + 1;
        let flow = *flows.entry((a, b, ap, bp, proto)).or_insert(next_flow);

        packets.push(Packet::new(Instant::from_micros(micros), dir, orig_len).with_flow(flow));
    }
    Ok(Trace::from_unsorted(packets).rebased())
}

/// Strips the link-layer framing, returning the IP payload if this frame
/// carries IPv4.
fn ip_payload<'a>(r: &Reader, frame: &'a [u8]) -> Option<&'a [u8]> {
    match r.link {
        LinkType::RawIp => Some(frame),
        LinkType::Ethernet => {
            if frame.len() < 14 {
                return None;
            }
            let mut ethertype = u16::from_be_bytes(frame[12..14].try_into().expect("len checked"));
            let mut offset = 14;
            // 802.1Q VLAN tag.
            if ethertype == 0x8100 && frame.len() >= 18 {
                ethertype = u16::from_be_bytes(frame[16..18].try_into().expect("len checked"));
                offset = 18;
            }
            (ethertype == 0x0800).then(|| &frame[offset..])
        }
        LinkType::LinuxSll => {
            if frame.len() < 16 {
                return None;
            }
            let ethertype = u16::from_be_bytes(frame[14..16].try_into().expect("len checked"));
            (ethertype == 0x0800).then(|| &frame[16..])
        }
    }
}

/// Reads a pcap file from a path; see [`read_pcap`].
pub fn load_pcap(path: &std::path::Path, device: Ipv4Addr) -> Result<Trace, TraceError> {
    read_pcap(std::fs::File::open(path)?, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    const DEV: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const SRV: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

    /// Builds a minimal IPv4/UDP packet.
    fn ipv4_udp(src: Ipv4Addr, dst: Ipv4Addr, sport: u16, dport: u16, payload: usize) -> Vec<u8> {
        let total = 20 + 8 + payload;
        let mut ip = vec![0u8; total];
        ip[0] = 0x45; // v4, ihl 5
        ip[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        ip[8] = 64; // ttl
        ip[9] = 17; // udp
        ip[12..16].copy_from_slice(&src.octets());
        ip[16..20].copy_from_slice(&dst.octets());
        ip[20..22].copy_from_slice(&sport.to_be_bytes());
        ip[22..24].copy_from_slice(&dport.to_be_bytes());
        ip
    }

    fn eth_frame(ip: &[u8]) -> Vec<u8> {
        let mut f = vec![0u8; 14];
        f[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        f.extend_from_slice(ip);
        f
    }

    /// Serializes a classic little-endian µs pcap with Ethernet framing.
    fn pcap_file(records: &[(i64, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes()); // major
        out.extend_from_slice(&4u16.to_le_bytes()); // minor
        out.extend_from_slice(&0u32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&1u32.to_le_bytes()); // DLT_EN10MB
        for (micros, frame) in records {
            out.extend_from_slice(&((micros / 1_000_000) as u32).to_le_bytes());
            out.extend_from_slice(&((micros % 1_000_000) as u32).to_le_bytes());
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(frame);
        }
        out
    }

    #[test]
    fn parses_directions_flows_and_rebases() {
        let up = eth_frame(&ipv4_udp(DEV, SRV, 5000, 53, 40));
        let down = eth_frame(&ipv4_udp(SRV, DEV, 53, 5000, 200));
        let file = pcap_file(&[(1_700_000_000_000_000, up), (1_700_000_000_250_000, down)]);
        let t = read_pcap(file.as_slice(), DEV).unwrap();
        assert_eq!(t.len(), 2);
        let p = t.packets();
        assert_eq!(p[0].ts, Instant::ZERO); // rebased
        assert_eq!(p[0].dir, Direction::Up);
        assert_eq!(p[1].dir, Direction::Down);
        assert_eq!(p[1].ts - p[0].ts, Duration::from_millis(250));
        // Both directions of the conversation share one flow id.
        assert_eq!(p[0].flow, p[1].flow);
        // orig_len is the packet length.
        assert_eq!(p[0].len as usize, 14 + 20 + 8 + 40);
    }

    #[test]
    fn skips_foreign_and_non_ip_traffic() {
        let other = Ipv4Addr::new(10, 0, 0, 99);
        let foreign = eth_frame(&ipv4_udp(SRV, other, 1, 2, 10));
        let mut arp = vec![0u8; 42];
        arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        let mine = eth_frame(&ipv4_udp(DEV, SRV, 1234, 80, 100));
        let file = pcap_file(&[(0, foreign), (1_000, arp), (2_000, mine)]);
        let t = read_pcap(file.as_slice(), DEV).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.packets()[0].dir, Direction::Up);
    }

    #[test]
    fn distinct_connections_get_distinct_flows() {
        let a = eth_frame(&ipv4_udp(DEV, SRV, 5000, 80, 10));
        let b = eth_frame(&ipv4_udp(DEV, SRV, 5001, 80, 10));
        let file = pcap_file(&[(0, a), (1_000, b)]);
        let t = read_pcap(file.as_slice(), DEV).unwrap();
        assert_ne!(t.packets()[0].flow, t.packets()[1].flow);
    }

    #[test]
    fn big_endian_and_nanosecond_variants() {
        // Hand-build a big-endian nanosecond file with one raw-IP packet.
        let ip = ipv4_udp(SRV, DEV, 53, 5000, 8);
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC_NSEC.to_be_bytes());
        out.extend_from_slice(&2u16.to_be_bytes());
        out.extend_from_slice(&4u16.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes());
        out.extend_from_slice(&65535u32.to_be_bytes());
        out.extend_from_slice(&101u32.to_be_bytes()); // DLT_RAW
        out.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        out.extend_from_slice(&500_000_000u32.to_be_bytes()); // ts_nsec
        out.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        out.extend_from_slice(&(ip.len() as u32).to_be_bytes());
        out.extend_from_slice(&ip);
        let t = read_pcap(out.as_slice(), DEV).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.packets()[0].dir, Direction::Down);
    }

    #[test]
    fn vlan_tagged_ethernet() {
        let ip = ipv4_udp(DEV, SRV, 9, 9, 4);
        let mut f = vec![0u8; 18];
        f[12..14].copy_from_slice(&0x8100u16.to_be_bytes()); // 802.1Q
        f[16..18].copy_from_slice(&0x0800u16.to_be_bytes());
        f.extend_from_slice(&ip);
        let file = pcap_file(&[(0, f)]);
        let t = read_pcap(file.as_slice(), DEV).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn linux_cooked_capture() {
        let ip = ipv4_udp(SRV, DEV, 1, 2, 4);
        let mut f = vec![0u8; 16];
        f[14..16].copy_from_slice(&0x0800u16.to_be_bytes());
        f.extend_from_slice(&ip);
        let mut out = pcap_file(&[]);
        out[20..24].copy_from_slice(&113u32.to_le_bytes()); // DLT_LINUX_SLL
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(f.len() as u32).to_le_bytes());
        out.extend_from_slice(&(f.len() as u32).to_le_bytes());
        out.extend_from_slice(&f);
        let t = read_pcap(out.as_slice(), DEV).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rejects_pcapng_with_a_helpful_message() {
        let mut out = vec![0u8; 24];
        out[..4].copy_from_slice(&MAGIC_PCAPNG.to_be_bytes());
        let err = read_pcap(out.as_slice(), DEV).unwrap_err();
        match err {
            TraceError::BadHeader(msg) => assert!(msg.contains("pcapng")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let garbage = vec![9u8; 24];
        assert!(matches!(read_pcap(garbage.as_slice(), DEV), Err(TraceError::BadHeader(_))));

        let mut truncated = pcap_file(&[(0, eth_frame(&ipv4_udp(DEV, SRV, 1, 2, 10)))]);
        truncated.truncate(truncated.len() - 5);
        assert!(matches!(read_pcap(truncated.as_slice(), DEV), Err(TraceError::Parse { .. })));

        let mut unsupported = pcap_file(&[]);
        unsupported[20..24].copy_from_slice(&147u32.to_le_bytes()); // DLT_USER0
        assert!(matches!(read_pcap(unsupported.as_slice(), DEV), Err(TraceError::Parse { .. })));
    }

    #[test]
    fn out_of_order_captures_are_sorted() {
        // Capture clocks can step backwards; the reader must still yield a
        // valid trace.
        let a = eth_frame(&ipv4_udp(DEV, SRV, 1, 2, 4));
        let b = eth_frame(&ipv4_udp(DEV, SRV, 1, 2, 4));
        let file = pcap_file(&[(5_000_000, a), (1_000_000, b)]);
        let t = read_pcap(file.as_slice(), DEV).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.start(), Some(Instant::ZERO));
        assert_eq!(t.span(), Duration::from_secs(4));
    }
}
