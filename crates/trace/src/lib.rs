//! # tailwise-trace
//!
//! Packet-trace substrate for the tailwise reproduction of *"Traffic-Aware
//! Techniques to Reduce 3G/LTE Wireless Energy Consumption"* (Deng &
//! Balakrishnan, CoNEXT 2012).
//!
//! Everything the paper's algorithms observe about the world is a packet
//! trace: timestamps, directions and lengths (§4, §6.1). This crate provides
//! that world-model and nothing else:
//!
//! * [`time`] — deterministic microsecond [`time::Instant`]/[`time::Duration`]
//!   simulation time (the smoltcp idiom: integer time, no wall clock);
//! * [`packet`]/[`Trace`] — validated, time-ordered packet containers with
//!   per-application attribution and k-way merge;
//! * [`stats`] — the sliding-window empirical inter-arrival distribution
//!   that MakeIdle's online predictor is built on (§4.2);
//! * [`bursts`] — burst/session segmentation used by MakeActive (§5);
//! * [`io`] — CSV and binary persistence with full validation;
//! * [`corpus`] — deterministic sorted directory walks over on-disk
//!   trace corpora, the substrate for population-scale trace replay;
//! * [`pcap`] — libpcap ingestion with device-relative direction
//!   inference, so real tcpdump captures (the paper's §6.1 input format)
//!   run through the same pipeline as synthetic workloads.
//!
//! The crate is `std`-only with zero third-party dependencies, so the
//! higher layers (radio model, simulator, algorithms) stay auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bursts;
pub mod corpus;
pub mod error;
pub mod io;
pub mod mix;
pub mod packet;
pub mod pcap;
pub mod stats;
pub mod time;
#[allow(clippy::module_inception)]
mod trace;

pub use corpus::{Corpus, TraceFormat};
pub use error::TraceError;
pub use packet::{AppId, Direction, Packet};
pub use time::{Duration, Instant};
pub use trace::{Trace, TraceSummary};

#[cfg(test)]
mod proptests {
    //! Property-based tests over the trace substrate invariants.

    use proptest::prelude::*;

    use crate::bursts;
    use crate::packet::{AppId, Direction, Packet};
    use crate::stats::{EmpiricalDist, SlidingWindow};
    use crate::time::{Duration, Instant};
    use crate::trace::Trace;

    fn arb_packet() -> impl Strategy<Value = Packet> {
        (0i64..100_000_000, prop::bool::ANY, 1u32..65536, 0u32..8, 0u16..8).prop_map(
            |(us, up, len, flow, app)| {
                Packet::new(
                    Instant::from_micros(us),
                    if up { Direction::Up } else { Direction::Down },
                    len,
                )
                .with_flow(flow)
                .with_app(AppId(app))
            },
        )
    }

    fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
        prop::collection::vec(arb_packet(), 0..max_len).prop_map(Trace::from_unsorted)
    }

    proptest! {
        #[test]
        fn from_unsorted_always_yields_monotonic_traces(t in arb_trace(200)) {
            for w in t.packets().windows(2) {
                prop_assert!(w[0].ts <= w[1].ts);
            }
        }

        #[test]
        fn csv_roundtrip_is_identity(t in arb_trace(100)) {
            let mut buf = Vec::new();
            crate::io::write_csv(&t, &mut buf).unwrap();
            let back = crate::io::read_csv(buf.as_slice()).unwrap();
            prop_assert_eq!(t, back);
        }

        #[test]
        fn binary_roundtrip_is_identity(t in arb_trace(100)) {
            let mut buf = Vec::new();
            crate::io::write_binary(&t, &mut buf).unwrap();
            let back = crate::io::read_binary(buf.as_slice()).unwrap();
            prop_assert_eq!(t, back);
        }

        #[test]
        fn merge_preserves_packet_multiset(
            a in arb_trace(60),
            b in arb_trace(60),
        ) {
            let m = Trace::merge([a.clone(), b.clone()]);
            prop_assert_eq!(m.len(), a.len() + b.len());
            prop_assert_eq!(m.total_bytes(), a.total_bytes() + b.total_bytes());
            for w in m.packets().windows(2) {
                prop_assert!(w[0].ts <= w[1].ts);
            }
        }

        #[test]
        fn bursts_partition_any_trace(t in arb_trace(150), gap_ms in 1i64..5_000) {
            let bs = bursts::segment(&t, Duration::from_millis(gap_ms));
            let total: usize = bs.iter().map(|b| b.len).sum();
            prop_assert_eq!(total, t.len());
            let total_bytes: u64 = bs.iter().map(|b| b.bytes).sum();
            prop_assert_eq!(total_bytes, t.total_bytes());
            for w in bs.windows(2) {
                // Separating gap really exceeds the threshold.
                let gap = t.packets()[w[1].first].ts - t.packets()[w[1].first - 1].ts;
                prop_assert!(gap > Duration::from_millis(gap_ms));
            }
            for b in &bs {
                // Intra-burst gaps do not exceed the threshold.
                for i in b.first + 1..b.end_index() {
                    let gap = t.packets()[i].ts - t.packets()[i - 1].ts;
                    prop_assert!(gap <= Duration::from_millis(gap_ms));
                }
            }
        }

        #[test]
        fn cdf_is_monotone_and_bounded(
            samples in prop::collection::vec(0i64..10_000_000, 1..200),
            probes in prop::collection::vec(0i64..10_000_000, 2..20),
        ) {
            let dist = EmpiricalDist::from_samples(
                samples.into_iter().map(Duration::from_micros).collect(),
            );
            let mut probes: Vec<i64> = probes;
            probes.sort_unstable();
            let mut prev = 0.0f64;
            for p in probes {
                let c = dist.cdf(Duration::from_micros(p));
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(c + 1e-12 >= prev);
                prev = c;
                let s = dist.survival(Duration::from_micros(p));
                prop_assert!((c + s - 1.0).abs() < 1e-12);
            }
        }

        #[test]
        fn window_matches_batch_distribution(
            samples in prop::collection::vec(0i64..1_000_000, 1..300),
            cap in 1usize..64,
        ) {
            let mut w = SlidingWindow::new(cap);
            for &s in &samples {
                w.push(Duration::from_micros(s));
            }
            // The window must equal the distribution over the last `cap` samples.
            let keep = samples.len().saturating_sub(cap);
            let expect = EmpiricalDist::from_samples(
                samples[keep..].iter().map(|&s| Duration::from_micros(s)).collect(),
            );
            prop_assert_eq!(w.sorted_samples(), expect.sorted_samples());
            for probe in [0i64, 500_000, 1_000_000] {
                let d = Duration::from_micros(probe);
                prop_assert_eq!(w.cdf(d), expect.cdf(d));
            }
        }

        #[test]
        fn quantiles_are_order_statistics(
            samples in prop::collection::vec(0i64..1_000_000, 1..100),
            q in 0.0f64..1.0,
        ) {
            let dist = EmpiricalDist::from_samples(
                samples.iter().map(|&s| Duration::from_micros(s)).collect(),
            );
            let v = dist.quantile(q).unwrap();
            // Nearest-rank quantile is always an actual sample...
            prop_assert!(dist.sorted_samples().contains(&v));
            // ...and at least a q-fraction of samples are <= it.
            prop_assert!(dist.cdf(v) + 1e-12 >= q);
        }

        #[test]
        fn mutated_binary_files_fail_cleanly(
            t in arb_trace(60),
            flips in prop::collection::vec((0usize..4096, 0u8..=255), 1..8),
            cut in 0usize..4096,
            truncate in prop::bool::ANY,
        ) {
            // Arbitrary byte corruption of a valid .twt file must yield a
            // clean TraceError or a still-valid Trace — never a panic.
            let mut buf = Vec::new();
            crate::io::write_binary(&t, &mut buf).unwrap();
            if truncate {
                buf.truncate(cut % (buf.len() + 1));
            }
            for (at, byte) in flips {
                if !buf.is_empty() {
                    let at = at % buf.len();
                    buf[at] = byte;
                }
            }
            match crate::io::read_binary(buf.as_slice()) {
                Err(_) => {}
                Ok(back) => {
                    // Whatever survives decoding is a structurally valid
                    // trace no larger than the original: monotonic
                    // timestamps, and never more packets than were
                    // written (the reader rejects trailing data, so a
                    // corrupted count cannot smuggle extras in).
                    prop_assert!(back.len() <= t.len());
                    for w in back.packets().windows(2) {
                        prop_assert!(w[0].ts <= w[1].ts);
                    }
                }
            }
        }

        #[test]
        fn mutated_csv_files_fail_cleanly(
            t in arb_trace(40),
            flips in prop::collection::vec((0usize..4096, 0u8..=255), 1..8),
            cut in 0usize..4096,
            truncate in prop::bool::ANY,
        ) {
            // Same contract for the text format, including mutations that
            // produce invalid UTF-8 (surfacing as TraceError::Io).
            let mut buf = Vec::new();
            crate::io::write_csv(&t, &mut buf).unwrap();
            if truncate {
                buf.truncate(cut % (buf.len() + 1));
            }
            for (at, byte) in flips {
                if !buf.is_empty() {
                    let at = at % buf.len();
                    buf[at] = byte;
                }
            }
            match crate::io::read_csv(buf.as_slice()) {
                Err(_) => {}
                Ok(back) => {
                    for w in back.packets().windows(2) {
                        prop_assert!(w[0].ts <= w[1].ts);
                    }
                }
            }
        }

        #[test]
        fn twc_roundtrip_is_identity(
            streams in prop::collection::vec(
                prop::collection::vec(-1_000i64..100_000_000, 0..50),
                0..12,
            ),
            seed in 0u64..u64::MAX,
            scheme_pick in 0usize..7,
        ) {
            let streams: Vec<Vec<Instant>> = streams
                .into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s.into_iter().map(Instant::from_micros).collect()
                })
                .collect();
            let schemes =
                ["statusquo", "tail45", "iat95", "iat87.5", "makeidle", "oracle", ""];
            let header = crate::io::RequestCacheHeader {
                master_seed: seed,
                users: streams.len() as u64,
                days: 7,
                mix_hash: seed.rotate_left(17),
                sim_hash: seed.rotate_right(23),
                scheme: schemes[scheme_pick].into(),
            };
            let mut buf = Vec::new();
            crate::io::write_request_streams(&header, &streams, &mut buf).unwrap();
            let (back_header, back) = crate::io::read_request_streams(buf.as_slice()).unwrap();
            prop_assert_eq!(back_header, header);
            prop_assert_eq!(back, streams);
        }

        #[test]
        fn mutated_twc_files_fail_cleanly(
            streams in prop::collection::vec(
                prop::collection::vec(0i64..100_000_000, 0..30),
                0..8,
            ),
            flips in prop::collection::vec((0usize..4096, 0u8..=255), 1..8),
            cut in 0usize..4096,
            truncate in prop::bool::ANY,
        ) {
            // Same corruption contract as .twt, tightened by the trailing
            // checksum: any byte damage to a valid .twc file must yield a
            // clean TraceError — never a panic, an oversized allocation,
            // or (because the checksum covers header and payload) a
            // silently different stream set.
            let streams: Vec<Vec<Instant>> = streams
                .into_iter()
                .map(|mut s| {
                    s.sort_unstable();
                    s.into_iter().map(Instant::from_micros).collect()
                })
                .collect();
            let header = crate::io::RequestCacheHeader {
                master_seed: 42,
                users: streams.len() as u64,
                days: 1,
                mix_hash: 7,
                sim_hash: 11,
                scheme: "makeidle".into(),
            };
            let mut buf = Vec::new();
            crate::io::write_request_streams(&header, &streams, &mut buf).unwrap();
            let pristine = buf.clone();
            if truncate {
                buf.truncate(cut % (buf.len() + 1));
            }
            for (at, byte) in flips {
                if !buf.is_empty() {
                    let at = at % buf.len();
                    buf[at] = byte;
                }
            }
            match crate::io::read_request_streams(buf.as_slice()) {
                Err(_) => {}
                Ok((h, back)) => {
                    // The mutations may have reassembled the original
                    // file; anything else must have been rejected.
                    prop_assert_eq!(buf, pristine);
                    prop_assert_eq!(h, header);
                    prop_assert_eq!(back, streams);
                }
            }
        }

        #[test]
        fn rebased_traces_start_at_zero(t in arb_trace(50)) {
            let r = t.rebased();
            if !r.is_empty() {
                prop_assert_eq!(r.start(), Some(Instant::ZERO));
                prop_assert_eq!(r.span(), t.span());
                prop_assert_eq!(r.gaps(), t.gaps());
            }
        }
    }
}
