//! On-disk trace corpora: deterministic directory walks over `.twt` /
//! `.twt.csv` / `.pcap` files.
//!
//! The paper's population claims rest on replaying *measured* traffic,
//! not synthesizing it. A [`Corpus`] is the substrate for that: a
//! directory of trace files enumerated by a **deterministic, sorted
//! walk**, so every file gets a stable index — index `i` always names
//! the same trace, on any machine, at any thread count. Consumers (the
//! fleet runner) stream one trace at a time through
//! [`Corpus::load`], which reuses the fallible readers in [`crate::io`]:
//! a corrupted file yields a clean [`TraceError`], never a panic and
//! never a silently wrong [`Trace`].

use std::path::{Path, PathBuf};

use crate::error::TraceError;
use crate::trace::Trace;

/// The on-disk trace encodings a corpus walk can admit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceFormat {
    /// The compact binary format (`.twt`).
    Binary,
    /// The human-readable CSV format (`.twt.csv` / `.csv`).
    Csv,
    /// Classic libpcap captures (`.pcap` / `.cap`), read through
    /// [`crate::pcap`]. Loading needs a device address for direction
    /// inference — see [`Corpus::with_pcap_device`].
    Pcap,
}

impl TraceFormat {
    /// Every format, in canonical (token) order.
    pub const ALL: [TraceFormat; 3] = [TraceFormat::Binary, TraceFormat::Csv, TraceFormat::Pcap];

    /// The stable token used in scenario files and on the CLI.
    pub fn token(self) -> &'static str {
        match self {
            TraceFormat::Binary => "twt",
            TraceFormat::Csv => "csv",
            TraceFormat::Pcap => "pcap",
        }
    }

    /// The file extension [`crate::io::save`] picks this format for.
    /// CSV uses the compound `.twt.csv` so corpora stay self-describing.
    /// Pcap is read-only: `save` never writes it (and
    /// corpus synthesis refuses it), so the extension only names the
    /// files the walk admits.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Binary => "twt",
            TraceFormat::Csv => "twt.csv",
            TraceFormat::Pcap => "pcap",
        }
    }

    /// Whether `path`'s file name marks it as a trace in this format.
    /// `.twt.csv` counts as CSV, not binary, so the filters are
    /// disjoint and together cover every trace file.
    pub fn matches(self, path: &Path) -> bool {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { return false };
        let name = name.to_ascii_lowercase();
        match self {
            TraceFormat::Binary => name.ends_with(".twt"),
            TraceFormat::Csv => name.ends_with(".csv"),
            TraceFormat::Pcap => name.ends_with(".pcap") || name.ends_with(".cap"),
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<TraceFormat, String> {
        match s.to_ascii_lowercase().as_str() {
            "twt" | "binary" => Ok(TraceFormat::Binary),
            "csv" => Ok(TraceFormat::Csv),
            "pcap" => Ok(TraceFormat::Pcap),
            other => Err(format!(
                "unknown trace format {other:?}; one of {}",
                TraceFormat::ALL.map(TraceFormat::token).join(", ")
            )),
        }
    }
}

/// A deterministically enumerated directory of trace files.
///
/// The file list is fixed at [`open`](Corpus::open) time: all files
/// matching the format filters (walked recursively when asked), sorted
/// by full path. Index `i` into this list is the corpus's stable user
/// index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corpus {
    root: PathBuf,
    files: Vec<PathBuf>,
    /// Device address for pcap direction inference (see
    /// [`with_pcap_device`](Self::with_pcap_device)).
    pcap_device: Option<std::net::Ipv4Addr>,
}

impl Corpus {
    /// Walks `dir` and collects every file matching one of `formats`.
    ///
    /// The walk is deterministic: the resulting list is sorted by full
    /// path, so the same directory always enumerates to the same
    /// index→file assignment. With `recursive`, subdirectories are
    /// walked too. Symlinked *trace files* are followed (a corpus
    /// assembled as symlinks to captures elsewhere works; a broken
    /// symlink with a trace extension is an error, never a silently
    /// smaller population); symlinked *directories* are not. I/O
    /// failures (missing directory, permission errors) surface as
    /// [`TraceError::Io`]; an existing-but-empty corpus is **not** an
    /// error here — callers decide whether zero users is acceptable.
    pub fn open(
        dir: &Path,
        recursive: bool,
        formats: &[TraceFormat],
    ) -> Result<Corpus, TraceError> {
        let mut files = Vec::new();
        collect(dir, recursive, formats, &mut files)?;
        files.sort();
        Ok(Corpus { root: dir.to_path_buf(), files, pcap_device: None })
    }

    /// Sets the device address pcap members are read relative to (the
    /// address [`crate::pcap::read_pcap`] uses to attribute packet
    /// direction). Loading a `.pcap` member without one is a clean
    /// error, never a guess — capture files do not name their device.
    pub fn with_pcap_device(mut self, device: std::net::Ipv4Addr) -> Corpus {
        self.pcap_device = Some(device);
        self
    }

    /// The configured pcap device address, if any.
    pub fn pcap_device(&self) -> Option<std::net::Ipv4Addr> {
        self.pcap_device
    }

    /// Number of members that are pcap captures (and therefore need a
    /// device address to load).
    pub fn pcap_members(&self) -> usize {
        self.files.iter().filter(|p| TraceFormat::Pcap.matches(p)).count()
    }

    /// The directory the corpus was opened from.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of trace files (the corpus's population size).
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the walk found no trace files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The sorted file list.
    pub fn files(&self) -> &[PathBuf] {
        &self.files
    }

    /// The path of user `index`'s trace file.
    ///
    /// # Panics
    /// If `index` is out of range.
    pub fn path(&self, index: usize) -> &Path {
        &self.files[index]
    }

    /// Loads user `index`'s trace from disk (format chosen by
    /// extension: pcap members go through [`crate::pcap`], everything
    /// else through [`crate::io::load`]). This is the streaming entry
    /// point: load one, simulate, drop, move on.
    ///
    /// # Panics
    /// If `index` is out of range.
    pub fn load(&self, index: usize) -> Result<Trace, TraceError> {
        let path = &self.files[index];
        if TraceFormat::Pcap.matches(path) {
            let device = self.pcap_device.ok_or_else(|| TraceError::Parse {
                location: 0,
                message: "pcap member needs a device address for direction inference; \
                          set one with Corpus::with_pcap_device (scenario files: the \
                          [corpus] table's `pcap_device` key)"
                    .into(),
            })?;
            return crate::pcap::load_pcap(path, device);
        }
        crate::io::load(path)
    }
}

/// Appends `dir`'s matching files to `out` (recursing when asked).
fn collect(
    dir: &Path,
    recursive: bool,
    formats: &[TraceFormat],
    out: &mut Vec<PathBuf>,
) -> Result<(), TraceError> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let kind = entry.file_type()?;
        if kind.is_dir() {
            if recursive {
                collect(&path, recursive, formats, out)?;
            }
        } else if formats.iter().any(|f| f.matches(&path)) {
            if kind.is_file() {
                out.push(path);
            } else if kind.is_symlink() {
                // Follow symlinked trace files; a broken one is an
                // error, not a silent omission that shifts every index.
                if std::fs::metadata(&path)?.is_file() {
                    out.push(path);
                }
                // A symlink resolving to a directory is not followed.
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io;
    use crate::packet::{Direction, Packet};
    use crate::time::Instant;

    fn trace(n: i64) -> Trace {
        Trace::from_sorted(
            (0..n).map(|i| Packet::new(Instant::from_secs(i), Direction::Down, 100)).collect(),
        )
        .unwrap()
    }

    fn temp_corpus(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tailwise-corpus-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn format_tokens_round_trip_and_filter() {
        for f in TraceFormat::ALL {
            assert_eq!(f.token().parse::<TraceFormat>().unwrap(), f);
        }
        assert!("TWT".parse::<TraceFormat>().is_ok());
        assert!("pcapng".parse::<TraceFormat>().is_err());
        // .twt.csv is CSV, never binary: the filters are disjoint.
        let compound = Path::new("a/user_0.twt.csv");
        assert!(TraceFormat::Csv.matches(compound));
        assert!(!TraceFormat::Binary.matches(compound));
        assert!(TraceFormat::Binary.matches(Path::new("b/user_1.twt")));
        assert!(!TraceFormat::Csv.matches(Path::new("b/user_1.twt")));
        assert!(!TraceFormat::Binary.matches(Path::new("README.md")));
        // Pcap admits both tcpdump spellings and nothing else claims them.
        for name in ["c/cap.pcap", "c/cap.cap", "c/CAP.PCAP"] {
            assert!(TraceFormat::Pcap.matches(Path::new(name)), "{name}");
            assert!(!TraceFormat::Binary.matches(Path::new(name)), "{name}");
            assert!(!TraceFormat::Csv.matches(Path::new(name)), "{name}");
        }
        assert!(!TraceFormat::Pcap.matches(Path::new("b/user_1.twt")));
    }

    #[test]
    fn walk_is_sorted_and_filtered() {
        let dir = temp_corpus("walk");
        for name in ["b.twt", "a.twt", "c.twt.csv", "notes.txt"] {
            let t = trace(3);
            io::save(&t, &dir.join(name)).unwrap();
        }
        let c = Corpus::open(&dir, false, &TraceFormat::ALL).unwrap();
        let names: Vec<_> =
            c.files().iter().map(|p| p.file_name().unwrap().to_str().unwrap()).collect();
        assert_eq!(names, ["a.twt", "b.twt", "c.twt.csv"]);
        // Filtering to binary only drops the CSV file.
        let bin = Corpus::open(&dir, false, &[TraceFormat::Binary]).unwrap();
        assert_eq!(bin.len(), 2);
        assert_eq!(c.load(0).unwrap(), trace(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recursive_walk_spans_subdirectories_deterministically() {
        let dir = temp_corpus("recursive");
        std::fs::create_dir_all(dir.join("z")).unwrap();
        std::fs::create_dir_all(dir.join("a")).unwrap();
        io::save(&trace(2), &dir.join("z/one.twt")).unwrap();
        io::save(&trace(4), &dir.join("a/two.twt")).unwrap();
        io::save(&trace(6), &dir.join("top.twt")).unwrap();
        let c = Corpus::open(&dir, true, &TraceFormat::ALL).unwrap();
        let rel: Vec<_> =
            c.files().iter().map(|p| p.strip_prefix(&dir).unwrap().to_path_buf()).collect();
        // Full-path sort: a/two.twt < top.twt < z/one.twt.
        assert_eq!(rel, [PathBuf::from("a/two.twt"), "top.twt".into(), "z/one.twt".into()]);
        assert_eq!(c.load(0).unwrap().len(), 4);
        // Non-recursive sees only the top level.
        let flat = Corpus::open(&dir, false, &TraceFormat::ALL).unwrap();
        assert_eq!(flat.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_io_error_and_empty_is_not() {
        let err =
            Corpus::open(Path::new("/nonexistent/tailwise"), true, &TraceFormat::ALL).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "{err}");
        let dir = temp_corpus("empty");
        let c = Corpus::open(&dir, true, &TraceFormat::ALL).unwrap();
        assert!(c.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn symlinked_trace_files_are_followed_and_broken_ones_error() {
        let dir = temp_corpus("symlink");
        io::save(&trace(3), &dir.join("real.twt")).unwrap();
        std::os::unix::fs::symlink(dir.join("real.twt"), dir.join("alias.twt")).unwrap();
        let c = Corpus::open(&dir, false, &TraceFormat::ALL).unwrap();
        assert_eq!(c.len(), 2, "symlinked trace files count as corpus members");
        assert_eq!(c.load(0).unwrap(), c.load(1).unwrap());
        // A broken symlink with a trace extension fails the walk loudly
        // instead of silently shrinking the population.
        std::os::unix::fs::symlink(dir.join("gone.twt"), dir.join("dangling.twt")).unwrap();
        let err = Corpus::open(&dir, false, &TraceFormat::ALL).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pcap_members_walk_and_load_with_a_device() {
        use crate::packet::Direction;
        use std::net::Ipv4Addr;
        let dev = Ipv4Addr::new(10, 0, 0, 2);
        let srv = Ipv4Addr::new(93, 184, 216, 34);
        let dir = temp_corpus("pcap");
        // One binary trace and one minimal single-packet capture
        // (little-endian µs pcap, raw-IP link, one UDP packet to `dev`).
        io::save(&trace(2), &dir.join("a.twt")).unwrap();
        let mut ip = vec![0u8; 28];
        ip[0] = 0x45;
        ip[2..4].copy_from_slice(&28u16.to_be_bytes());
        ip[9] = 17;
        ip[12..16].copy_from_slice(&srv.octets());
        ip[16..20].copy_from_slice(&dev.octets());
        let mut pcap = Vec::new();
        pcap.extend_from_slice(&0xA1B2_C3D4u32.to_le_bytes());
        pcap.extend_from_slice(&2u16.to_le_bytes());
        pcap.extend_from_slice(&4u16.to_le_bytes());
        pcap.extend_from_slice(&[0u8; 8]); // thiszone + sigfigs
        pcap.extend_from_slice(&65535u32.to_le_bytes());
        pcap.extend_from_slice(&101u32.to_le_bytes()); // DLT_RAW
        pcap.extend_from_slice(&[0u8; 8]); // ts
        pcap.extend_from_slice(&(ip.len() as u32).to_le_bytes());
        pcap.extend_from_slice(&(ip.len() as u32).to_le_bytes());
        pcap.extend_from_slice(&ip);
        std::fs::write(dir.join("b.pcap"), &pcap).unwrap();

        // The default walk admits the capture; a twt/csv filter skips it.
        let c = Corpus::open(&dir, false, &TraceFormat::ALL).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.pcap_members(), 1);
        let narrow = Corpus::open(&dir, false, &[TraceFormat::Binary, TraceFormat::Csv]).unwrap();
        assert_eq!(narrow.len(), 1);

        // Without a device the pcap member fails loudly…
        let err = c.load(1).unwrap_err();
        assert!(err.to_string().contains("pcap_device"), "{err}");
        // …with one it loads through the pcap reader, directions intact.
        let c = c.with_pcap_device(dev);
        assert_eq!(c.pcap_device(), Some(dev));
        let t = c.load(1).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.packets()[0].dir, Direction::Down);
        // Non-pcap members are untouched by the device setting.
        assert_eq!(c.load(0).unwrap(), trace(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_members_fail_cleanly_on_load() {
        let dir = temp_corpus("corrupt");
        io::save(&trace(5), &dir.join("good.twt")).unwrap();
        std::fs::write(dir.join("bad.twt"), b"not a trace at all").unwrap();
        let c = Corpus::open(&dir, false, &TraceFormat::ALL).unwrap();
        assert_eq!(c.len(), 2);
        // Sorted: bad.twt is index 0.
        assert!(c.load(0).is_err());
        assert_eq!(c.load(1).unwrap(), trace(5));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
