//! Burst (session) segmentation.
//!
//! The paper treats traffic as a sequence of *bursts*: runs of packets with
//! small inter-arrival gaps, separated by idle periods during which the RRC
//! tail energy is spent. MakeActive (§5) operates on *sessions*, which are
//! bursts that begin while the radio is Idle; "once a session begins, its
//! packets do not get further delayed".
//!
//! A burst is defined by a single parameter, the maximum intra-burst gap:
//! consecutive packets closer than the threshold belong to the same burst.
//! The threshold also separates "data" energy from "tail" energy in the
//! energy model (see `tailwise-radio`), so the same default (0.5 s) is used
//! there.

use crate::time::{Duration, Instant};
use crate::trace::Trace;

/// Default maximum gap between packets of the same burst.
///
/// The paper does not publish its segmentation constant; 0.5 s sits well
/// above intra-transfer inter-arrival times (milliseconds) and well below
/// every carrier's `t_threshold` (≥ 1.2 s), so the induced decomposition is
/// insensitive to the exact value. `ablation_candidate_grid` in the bench
/// crate sweeps it.
pub const DEFAULT_INTRA_BURST_GAP: Duration = Duration::from_millis(500);

/// A contiguous run of packets forming one burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Index of the first packet of the burst in the source trace.
    pub first: usize,
    /// Number of packets in the burst.
    pub len: usize,
    /// Timestamp of the first packet.
    pub start: Instant,
    /// Timestamp of the last packet.
    pub end: Instant,
    /// Total bytes across the burst.
    pub bytes: u64,
}

impl Burst {
    /// Time from first to last packet of the burst.
    pub fn span(&self) -> Duration {
        self.end - self.start
    }

    /// Index one past the last packet of the burst.
    pub fn end_index(&self) -> usize {
        self.first + self.len
    }
}

/// Splits a trace into bursts using `max_gap` as the intra-burst threshold.
///
/// Every packet belongs to exactly one burst; bursts are returned in time
/// order. An empty trace yields no bursts.
pub fn segment(trace: &Trace, max_gap: Duration) -> Vec<Burst> {
    let pkts = trace.packets();
    let mut bursts = Vec::new();
    if pkts.is_empty() {
        return bursts;
    }
    let mut first = 0usize;
    let mut bytes = pkts[0].len as u64;
    for i in 1..pkts.len() {
        let gap = pkts[i].ts - pkts[i - 1].ts;
        if gap > max_gap {
            bursts.push(Burst {
                first,
                len: i - first,
                start: pkts[first].ts,
                end: pkts[i - 1].ts,
                bytes,
            });
            first = i;
            bytes = 0;
        }
        bytes += pkts[i].len as u64;
    }
    bursts.push(Burst {
        first,
        len: pkts.len() - first,
        start: pkts[first].ts,
        end: pkts[pkts.len() - 1].ts,
        bytes,
    });
    bursts
}

/// Splits with the default threshold ([`DEFAULT_INTRA_BURST_GAP`]).
pub fn segment_default(trace: &Trace) -> Vec<Burst> {
    segment(trace, DEFAULT_INTRA_BURST_GAP)
}

/// Statistics over a burst decomposition, used by MakeActive's fixed delay
/// bound (`T_fix = k · (t1+t2)` where `k` is the average number of bursts per
/// radio active period, §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstStats {
    /// Number of bursts.
    pub count: usize,
    /// Mean inter-burst gap (start-to-start of consecutive bursts).
    pub mean_interburst_gap: Duration,
    /// Mean packets per burst.
    pub mean_len: f64,
    /// Mean burst span.
    pub mean_span: Duration,
}

/// Computes summary statistics of a burst decomposition.
///
/// Returns `None` if there are no bursts.
pub fn stats(bursts: &[Burst]) -> Option<BurstStats> {
    if bursts.is_empty() {
        return None;
    }
    let count = bursts.len();
    let mean_len = bursts.iter().map(|b| b.len as f64).sum::<f64>() / count as f64;
    let mean_span = Duration::from_micros(
        bursts.iter().map(|b| b.span().as_micros()).sum::<i64>() / count as i64,
    );
    let mean_interburst_gap = if count >= 2 {
        let total: i64 = bursts.windows(2).map(|w| (w[1].start - w[0].start).as_micros()).sum();
        Duration::from_micros(total / (count as i64 - 1))
    } else {
        Duration::ZERO
    };
    Some(BurstStats { count, mean_interburst_gap, mean_len, mean_span })
}

/// Average number of bursts per "active period", where an active period is a
/// maximal run of bursts whose separating gaps are at most `active_window`.
///
/// The paper's MakeActive fixed bound uses `k` = "the average number of
/// bursts during each of the radio's active period" with
/// `active_window = t1 + t2` (the status-quo tail): bursts closer than the
/// tail share one Active period without extra switches (§5.1).
pub fn bursts_per_active_period(bursts: &[Burst], active_window: Duration) -> f64 {
    if bursts.is_empty() {
        return 0.0;
    }
    let mut periods = 1usize;
    for w in bursts.windows(2) {
        let gap = w[1].start - w[0].end;
        if gap > active_window {
            periods += 1;
        }
    }
    bursts.len() as f64 / periods as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, Packet};

    fn trace_at(ms: &[i64]) -> Trace {
        Trace::from_sorted(
            ms.iter().map(|&m| Packet::new(Instant::from_millis(m), Direction::Up, 100)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_trace_has_no_bursts() {
        assert!(segment_default(&Trace::new()).is_empty());
        assert_eq!(stats(&[]), None);
    }

    #[test]
    fn single_packet_is_one_burst() {
        let b = segment_default(&trace_at(&[100]));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].len, 1);
        assert_eq!(b[0].span(), Duration::ZERO);
    }

    #[test]
    fn splits_on_gaps_above_threshold() {
        // Gaps: 100ms (in-burst), 2000ms (split), 100ms (in-burst).
        let t = trace_at(&[0, 100, 2100, 2200]);
        let b = segment(&t, Duration::from_millis(500));
        assert_eq!(b.len(), 2);
        assert_eq!((b[0].first, b[0].len), (0, 2));
        assert_eq!((b[1].first, b[1].len), (2, 2));
        assert_eq!(b[0].end, Instant::from_millis(100));
        assert_eq!(b[1].start, Instant::from_millis(2100));
    }

    #[test]
    fn gap_exactly_at_threshold_stays_joined() {
        let t = trace_at(&[0, 500]);
        let b = segment(&t, Duration::from_millis(500));
        assert_eq!(b.len(), 1);
        let b = segment(&t, Duration::from_millis(499));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn bursts_partition_the_trace() {
        let t = trace_at(&[0, 10, 5000, 5010, 5020, 9000]);
        let b = segment_default(&t);
        let total: usize = b.iter().map(|x| x.len).sum();
        assert_eq!(total, t.len());
        // Contiguous and ordered.
        for w in b.windows(2) {
            assert_eq!(w[0].end_index(), w[1].first);
            assert!(w[0].end < w[1].start);
        }
    }

    #[test]
    fn byte_accounting() {
        let pkts = vec![
            Packet::new(Instant::from_millis(0), Direction::Up, 10),
            Packet::new(Instant::from_millis(10), Direction::Down, 20),
            Packet::new(Instant::from_millis(5000), Direction::Down, 40),
        ];
        let t = Trace::from_sorted(pkts).unwrap();
        let b = segment_default(&t);
        assert_eq!(b[0].bytes, 30);
        assert_eq!(b[1].bytes, 40);
    }

    #[test]
    fn stats_on_regular_bursts() {
        // Three bursts starting at 0s, 10s, 20s.
        let t = trace_at(&[0, 100, 10_000, 10_100, 20_000, 20_100]);
        let b = segment_default(&t);
        let s = stats(&b).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean_interburst_gap, Duration::from_secs(10));
        assert!((s.mean_len - 2.0).abs() < 1e-12);
        assert_eq!(s.mean_span, Duration::from_millis(100));
    }

    #[test]
    fn bursts_per_active_period_counts_shared_tails() {
        // Bursts at 0, 2s, 30s. With a 5s active window the first two share
        // a period: 3 bursts / 2 periods = 1.5.
        let t = trace_at(&[0, 2000, 30_000]);
        let b = segment_default(&t);
        assert_eq!(b.len(), 3);
        let k = bursts_per_active_period(&b, Duration::from_secs(5));
        assert!((k - 1.5).abs() < 1e-12);
        // Tiny window: every burst its own period.
        let k1 = bursts_per_active_period(&b, Duration::from_millis(1));
        assert!((k1 - 1.0).abs() < 1e-12);
        assert_eq!(bursts_per_active_period(&[], Duration::from_secs(1)), 0.0);
    }
}
