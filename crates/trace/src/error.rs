//! Error types for trace construction and I/O.

use core::fmt;

use crate::time::Instant;

/// Errors produced while building, reading or writing traces.
#[derive(Debug)]
pub enum TraceError {
    /// A packet's timestamp precedes its predecessor's.
    OutOfOrder {
        /// Index of the offending packet.
        index: usize,
        /// Timestamp of the offending packet.
        ts: Instant,
        /// Timestamp of its predecessor.
        prev: Instant,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line or record could not be parsed.
    Parse {
        /// 1-based line (CSV) or 0-based record (binary) number.
        location: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The file does not start with the expected magic/header.
    BadHeader(String),
    /// The file declares an unsupported format version.
    UnsupportedVersion(u16),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OutOfOrder { index, ts, prev } => write!(
                f,
                "packet {index} at {ts} precedes its predecessor at {prev}; traces must be time-ordered"
            ),
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { location, message } => {
                write!(f, "trace parse error at record {location}: {message}")
            }
            TraceError::BadHeader(h) => write!(f, "not a tailwise trace (header {h:?})"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported tailwise trace version {v}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = TraceError::OutOfOrder {
            index: 3,
            ts: Instant::from_secs(1),
            prev: Instant::from_secs(2),
        };
        assert!(format!("{e}").contains("packet 3"));
        let e = TraceError::Parse { location: 7, message: "bad direction".into() };
        assert!(format!("{e}").contains("record 7"));
        let e = TraceError::UnsupportedVersion(9);
        assert!(format!("{e}").contains('9'));
        let e = TraceError::BadHeader("XXXX".into());
        assert!(format!("{e}").contains("XXXX"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: TraceError = io.into();
        assert!(format!("{e}").contains("gone"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
