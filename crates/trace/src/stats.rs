//! Empirical inter-arrival statistics.
//!
//! MakeIdle (§4.2 of the paper) predicts from "the latest *n* packets that the
//! control module has seen", i.e. from an empirical distribution over a
//! sliding window of recent inter-arrival times. This module provides:
//!
//! * [`EmpiricalDist`] — an immutable sorted sample set with exact CDF,
//!   survival, conditional-survival and quantile queries;
//! * [`SlidingWindow`] — the online structure that maintains the last *n*
//!   samples in both arrival order (for eviction) and sorted order (for
//!   queries), exposing the same query interface;
//! * small summary helpers ([`mean`], [`median`]) used throughout the
//!   evaluation harness.
//!
//! All queries are exact with respect to the stored samples — there is no
//! binning — because the MakeIdle decision rule integrates the energy
//! function over the sample set and binning would inject avoidable error.

use std::collections::VecDeque;

use crate::time::Duration;

/// An immutable empirical distribution over durations.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDist {
    sorted: Vec<Duration>,
}

impl EmpiricalDist {
    /// Builds a distribution from samples in any order.
    pub fn from_samples(mut samples: Vec<Duration>) -> EmpiricalDist {
        samples.sort_unstable();
        EmpiricalDist { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the distribution holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The samples in non-decreasing order.
    pub fn sorted_samples(&self) -> &[Duration] {
        &self.sorted
    }

    /// Empirical CDF: fraction of samples `<= d`.
    ///
    /// Returns 0 for an empty distribution.
    pub fn cdf(&self, d: Duration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let k = self.sorted.partition_point(|&s| s <= d);
        k as f64 / self.sorted.len() as f64
    }

    /// Empirical survival function: fraction of samples `> d`.
    pub fn survival(&self, d: Duration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        1.0 - self.cdf(d)
    }

    /// Conditional survival `P(X > b | X > a)` for `b >= a`.
    ///
    /// This is the quantity the paper calls `P(t_wait)` when
    /// `a = t_wait` and `b = t_wait + t_threshold` (§4.2 step 1). If no
    /// sample exceeds `a` the condition is void; we return 1.0, i.e. "as far
    /// as the window knows, the gap is already longer than anything seen, so
    /// no further packet is expected" — the optimistic reading the algorithm
    /// needs to be able to demote after unprecedented silences.
    pub fn conditional_survival(&self, a: Duration, b: Duration) -> f64 {
        debug_assert!(b >= a, "conditional_survival requires b >= a");
        let sa = self.survival(a);
        if sa == 0.0 {
            return 1.0;
        }
        self.survival(b) / sa
    }

    /// Exact empirical quantile using the nearest-rank method.
    ///
    /// `q` is clamped to `[0, 1]`; returns `None` for an empty distribution.
    /// `quantile(0.95)` is the "95% IAT" statistic the paper's second
    /// baseline derives from a whole trace (§6.2).
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        // Nearest-rank: smallest sample with cdf >= q.
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Mean of the samples; `None` if empty.
    pub fn mean(&self) -> Option<Duration> {
        mean(&self.sorted)
    }

    /// Expectation `E[g(min(X, cap)) | X > given]` over the samples.
    ///
    /// This is the workhorse of the MakeIdle decision rule: the expected
    /// tail energy if we let the inactivity timers run is the expectation of
    /// the (capped) energy function over gaps longer than what we have
    /// already waited. Samples `<= given` are excluded by the conditioning;
    /// if none remain, returns `None`.
    pub fn conditional_expectation<F>(&self, given: Duration, cap: Duration, g: F) -> Option<f64>
    where
        F: Fn(Duration) -> f64,
    {
        let start = self.sorted.partition_point(|&s| s <= given);
        let tail = &self.sorted[start..];
        if tail.is_empty() {
            return None;
        }
        let sum: f64 = tail.iter().map(|&s| g(s.min(cap))).sum();
        Some(sum / tail.len() as f64)
    }
}

/// Sliding window over the last `n` durations, supporting the same queries
/// as [`EmpiricalDist`] while samples stream in.
///
/// Samples are kept both in arrival order (a ring buffer, for eviction) and
/// in sorted order (for CDF/quantile queries). With the paper's default
/// window of n = 100 (§6.3), the O(n) sorted-vector insertion is faster in
/// practice than any tree structure.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    arrivals: VecDeque<Duration>,
    sorted: Vec<Duration>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> SlidingWindow {
        assert!(capacity > 0, "SlidingWindow capacity must be positive");
        SlidingWindow {
            capacity,
            arrivals: VecDeque::with_capacity(capacity),
            sorted: Vec::with_capacity(capacity),
        }
    }

    /// Maximum number of samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of samples.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True if no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// True once the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.arrivals.len() == self.capacity
    }

    /// Pushes a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, d: Duration) {
        if self.arrivals.len() == self.capacity {
            let evicted = self.arrivals.pop_front().expect("window full implies non-empty");
            let pos = self
                .sorted
                .binary_search(&evicted)
                .expect("evicted sample must be present in sorted set");
            self.sorted.remove(pos);
        }
        self.arrivals.push_back(d);
        let pos = self.sorted.partition_point(|&s| s <= d);
        self.sorted.insert(pos, d);
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.arrivals.clear();
        self.sorted.clear();
    }

    /// The samples in non-decreasing order.
    pub fn sorted_samples(&self) -> &[Duration] {
        &self.sorted
    }

    /// The samples in arrival order (oldest first).
    pub fn arrival_order(&self) -> impl Iterator<Item = Duration> + '_ {
        self.arrivals.iter().copied()
    }

    /// Empirical CDF over the current window (see [`EmpiricalDist::cdf`]).
    pub fn cdf(&self, d: Duration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let k = self.sorted.partition_point(|&s| s <= d);
        k as f64 / self.sorted.len() as f64
    }

    /// Empirical survival over the current window.
    pub fn survival(&self, d: Duration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        1.0 - self.cdf(d)
    }

    /// Conditional survival `P(X > b | X > a)`; see
    /// [`EmpiricalDist::conditional_survival`].
    pub fn conditional_survival(&self, a: Duration, b: Duration) -> f64 {
        debug_assert!(b >= a);
        let sa = self.survival(a);
        if sa == 0.0 {
            return 1.0;
        }
        self.survival(b) / sa
    }

    /// Conditional expectation `E[g(min(X, cap)) | X > given]`; see
    /// [`EmpiricalDist::conditional_expectation`].
    pub fn conditional_expectation<F>(&self, given: Duration, cap: Duration, g: F) -> Option<f64>
    where
        F: Fn(Duration) -> f64,
    {
        let start = self.sorted.partition_point(|&s| s <= given);
        let tail = &self.sorted[start..];
        if tail.is_empty() {
            return None;
        }
        let sum: f64 = tail.iter().map(|&s| g(s.min(cap))).sum();
        Some(sum / tail.len() as f64)
    }

    /// Snapshot of the window as an immutable distribution.
    pub fn snapshot(&self) -> EmpiricalDist {
        EmpiricalDist { sorted: self.sorted.clone() }
    }
}

/// Mean of a duration slice; `None` if empty.
pub fn mean(samples: &[Duration]) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    let sum: i64 = samples.iter().map(|d| d.as_micros()).sum();
    Some(Duration::from_micros(sum / samples.len() as i64))
}

/// Median (lower of the two middle elements for even counts) of a duration
/// slice; `None` if empty. The input need not be sorted.
pub fn median(samples: &[Duration]) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<Duration> = samples.to_vec();
    let mid = (v.len() - 1) / 2;
    let (_, m, _) = v.select_nth_unstable(mid);
    Some(*m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(xs: &[f64]) -> Vec<Duration> {
        xs.iter().map(|&x| Duration::from_secs_f64(x)).collect()
    }

    #[test]
    fn cdf_and_survival_are_complementary() {
        let d = EmpiricalDist::from_samples(secs(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(d.cdf(Duration::from_secs_f64(2.5)), 0.5);
        assert_eq!(d.survival(Duration::from_secs_f64(2.5)), 0.5);
        assert_eq!(d.cdf(Duration::from_secs_f64(0.5)), 0.0);
        assert_eq!(d.cdf(Duration::from_secs_f64(4.0)), 1.0); // cdf is P(X <= d)
        assert_eq!(d.survival(Duration::from_secs_f64(4.0)), 0.0);
    }

    #[test]
    fn empty_distribution_queries() {
        let d = EmpiricalDist::from_samples(vec![]);
        assert_eq!(d.cdf(Duration::from_secs(1)), 0.0);
        assert_eq!(d.survival(Duration::from_secs(1)), 0.0);
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.mean(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn conditional_survival_matches_definition() {
        // Samples: 1,2,3,4,10. P(X>2)=3/5, P(X>4)=1/5 → P(X>4|X>2)=1/3.
        let d = EmpiricalDist::from_samples(secs(&[1.0, 2.0, 3.0, 4.0, 10.0]));
        let p = d.conditional_survival(Duration::from_secs(2), Duration::from_secs(4));
        assert!((p - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_survival_beyond_support_is_one() {
        let d = EmpiricalDist::from_samples(secs(&[1.0, 2.0]));
        let p = d.conditional_survival(Duration::from_secs(5), Duration::from_secs(9));
        assert_eq!(p, 1.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let d = EmpiricalDist::from_samples(secs(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        assert_eq!(d.quantile(0.0), Some(Duration::from_secs(1)));
        assert_eq!(d.quantile(0.2), Some(Duration::from_secs(1)));
        assert_eq!(d.quantile(0.21), Some(Duration::from_secs(2)));
        assert_eq!(d.quantile(0.95), Some(Duration::from_secs(5)));
        assert_eq!(d.quantile(1.0), Some(Duration::from_secs(5)));
    }

    #[test]
    fn conditional_expectation_caps_and_conditions() {
        let d = EmpiricalDist::from_samples(secs(&[1.0, 3.0, 5.0]));
        // Given X > 2 → {3,5}; cap 4 → {3,4}; g = seconds → (3+4)/2.
        let e = d
            .conditional_expectation(Duration::from_secs(2), Duration::from_secs(4), |x| {
                x.as_secs_f64()
            })
            .unwrap();
        assert!((e - 3.5).abs() < 1e-12);
        // Condition excludes everything.
        assert_eq!(
            d.conditional_expectation(Duration::from_secs(9), Duration::from_secs(10), |x| x
                .as_secs_f64()),
            None
        );
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        for s in [5.0, 1.0, 3.0, 2.0] {
            w.push(Duration::from_secs_f64(s));
        }
        // 5.0 evicted; remaining sorted {1,2,3}.
        assert_eq!(w.len(), 3);
        assert_eq!(
            w.sorted_samples(),
            &[Duration::from_secs(1), Duration::from_secs(2), Duration::from_secs(3)]
        );
        let arrivals: Vec<Duration> = w.arrival_order().collect();
        assert_eq!(
            arrivals,
            vec![Duration::from_secs(1), Duration::from_secs(3), Duration::from_secs(2)]
        );
    }

    #[test]
    fn window_handles_duplicate_samples() {
        let mut w = SlidingWindow::new(2);
        w.push(Duration::from_secs(1));
        w.push(Duration::from_secs(1));
        w.push(Duration::from_secs(1));
        assert_eq!(w.len(), 2);
        assert_eq!(w.cdf(Duration::from_secs(1)), 1.0);
    }

    #[test]
    fn window_snapshot_matches_queries() {
        let mut w = SlidingWindow::new(10);
        for s in [1.0, 2.0, 3.0, 4.0] {
            w.push(Duration::from_secs_f64(s));
        }
        let snap = w.snapshot();
        let probe = Duration::from_secs_f64(2.5);
        assert_eq!(snap.cdf(probe), w.cdf(probe));
        assert_eq!(snap.survival(probe), w.survival(probe));
        assert_eq!(snap.len(), w.len());
    }

    #[test]
    fn window_clear() {
        let mut w = SlidingWindow::new(4);
        w.push(Duration::from_secs(1));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.survival(Duration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_window_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn mean_and_median_helpers() {
        let xs = secs(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(mean(&xs), Some(Duration::from_secs(4)));
        assert_eq!(median(&xs), Some(Duration::from_secs(2))); // lower middle
        let odd = secs(&[3.0, 1.0, 2.0]);
        assert_eq!(median(&odd), Some(Duration::from_secs(2)));
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn full_window_slides_like_paper_description() {
        // "As new packets are seen, the window of the n packets slides
        // forward, and the distribution is adjusted accordingly." (§4.2)
        let mut w = SlidingWindow::new(100);
        for i in 0..100 {
            w.push(Duration::from_millis(i));
        }
        assert!(w.is_full());
        let before = w.survival(Duration::from_millis(49));
        assert!((before - 0.5).abs() < 1e-9);
        // Push 50 large samples; survival at the same point must rise.
        for _ in 0..50 {
            w.push(Duration::from_secs(10));
        }
        assert!(w.survival(Duration::from_millis(49)) > before);
        assert_eq!(w.len(), 100);
    }
}
