//! Trace persistence: a human-readable CSV format and a compact binary
//! format.
//!
//! The paper's pipeline stores tcpdump captures; tailwise reduces those to
//! the fields its algorithms consume and defines two interchangeable
//! encodings:
//!
//! * **CSV** (`.twt.csv`) — `ts_us,dir,len,flow,app` with a `#`-prefixed
//!   header; greppable, diffable, importable into any analysis stack.
//! * **Binary** (`.twt`) — little-endian fixed records behind a
//!   magic/version header; ~5× smaller and ~10× faster, used for the cached
//!   multi-day user datasets in the bench harness.
//!
//! Both readers validate monotonic timestamps via [`Trace::from_sorted`], so
//! a corrupted file cannot produce an invalid `Trace`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::TraceError;
use crate::packet::{AppId, Direction, Packet};
use crate::time::Instant;
use crate::trace::Trace;

/// Header line of the CSV format.
pub const CSV_HEADER: &str = "# tailwise-trace v1: ts_us,dir,len,flow,app";
/// Magic bytes of the binary format.
pub const BINARY_MAGIC: &[u8; 4] = b"TWTR";
/// Current binary format version.
pub const BINARY_VERSION: u16 = 1;
/// Size in bytes of one binary packet record.
const RECORD_SIZE: usize = 8 + 1 + 4 + 4 + 2;

// ---------------------------------------------------------------- CSV ----

/// Writes a trace in CSV form.
pub fn write_csv<W: Write>(trace: &Trace, out: W) -> Result<(), TraceError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{CSV_HEADER}")?;
    for p in trace.iter() {
        writeln!(w, "{},{},{},{},{}", p.ts.as_micros(), p.dir.code(), p.len, p.flow, p.app.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace in CSV form.
///
/// Blank lines and `#` comments are ignored (the header is therefore
/// optional, making hand-written fixtures easy).
pub fn read_csv<R: Read>(input: R) -> Result<Trace, TraceError> {
    let reader = BufReader::new(input);
    let mut packets = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        packets.push(parse_csv_line(line, lineno + 1)?);
    }
    Trace::from_sorted(packets)
}

fn parse_csv_line(line: &str, lineno: usize) -> Result<Packet, TraceError> {
    let err = |message: String| TraceError::Parse { location: lineno, message };
    let mut fields = line.split(',');
    let mut next = |name: &str| {
        fields.next().map(str::trim).ok_or_else(|| err(format!("missing field `{name}`")))
    };
    let ts: i64 = next("ts_us")?.parse().map_err(|e| err(format!("bad ts_us: {e}")))?;
    let dir_field = next("dir")?;
    let mut chars = dir_field.chars();
    let (dir_char, extra) = (chars.next(), chars.next());
    if extra.is_some() {
        return Err(err(format!("bad dir {dir_field:?}: expected single character U or D")));
    }
    let dir = dir_char
        .and_then(Direction::from_code)
        .ok_or_else(|| err(format!("bad dir {dir_field:?}: expected U or D")))?;
    let len: u32 = next("len")?.parse().map_err(|e| err(format!("bad len: {e}")))?;
    let flow: u32 = next("flow")?.parse().map_err(|e| err(format!("bad flow: {e}")))?;
    let app: u16 = next("app")?.parse().map_err(|e| err(format!("bad app: {e}")))?;
    if let Some(stray) = fields.next() {
        return Err(err(format!("unexpected trailing field {stray:?}")));
    }
    Ok(Packet { ts: Instant::from_micros(ts), dir, len, flow, app: AppId(app) })
}

// ------------------------------------------------------------- binary ----

/// Writes a trace in binary form.
pub fn write_binary<W: Write>(trace: &Trace, out: W) -> Result<(), TraceError> {
    let mut w = BufWriter::new(out);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&BINARY_VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for p in trace.iter() {
        let mut rec = [0u8; RECORD_SIZE];
        rec[0..8].copy_from_slice(&p.ts.as_micros().to_le_bytes());
        rec[8] = match p.dir {
            Direction::Up => 0,
            Direction::Down => 1,
        };
        rec[9..13].copy_from_slice(&p.len.to_le_bytes());
        rec[13..17].copy_from_slice(&p.flow.to_le_bytes());
        rec[17..19].copy_from_slice(&p.app.0.to_le_bytes());
        w.write_all(&rec)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace in binary form.
pub fn read_binary<R: Read>(input: R) -> Result<Trace, TraceError> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(TraceError::BadHeader(String::from_utf8_lossy(&magic).into_owned()));
    }
    let mut v = [0u8; 2];
    r.read_exact(&mut v)?;
    let version = u16::from_le_bytes(v);
    if version != BINARY_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let mut c = [0u8; 8];
    r.read_exact(&mut c)?;
    let count = u64::from_le_bytes(c) as usize;
    let mut packets = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0u8; RECORD_SIZE];
    for i in 0..count {
        r.read_exact(&mut rec).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Parse { location: i, message: "truncated record".into() }
            } else {
                TraceError::Io(e)
            }
        })?;
        let ts = i64::from_le_bytes(rec[0..8].try_into().expect("fixed slice"));
        let dir = match rec[8] {
            0 => Direction::Up,
            1 => Direction::Down,
            other => {
                return Err(TraceError::Parse {
                    location: i,
                    message: format!("bad direction byte {other}"),
                })
            }
        };
        let len = u32::from_le_bytes(rec[9..13].try_into().expect("fixed slice"));
        let flow = u32::from_le_bytes(rec[13..17].try_into().expect("fixed slice"));
        let app = u16::from_le_bytes(rec[17..19].try_into().expect("fixed slice"));
        packets.push(Packet { ts: Instant::from_micros(ts), dir, len, flow, app: AppId(app) });
    }
    // A well-formed file ends exactly after `count` records: trailing
    // bytes mean the header's count was corrupted (or the file grew),
    // and silently ignoring them would return a wrong-but-valid Trace.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(TraceError::Parse {
            location: count,
            message: "trailing data after the declared packet count".into(),
        });
    }
    Trace::from_sorted(packets)
}

// ------------------------------------------------- request cache (.twc) ----

/// Magic bytes of the request-cache format.
pub const REQUEST_MAGIC: &[u8; 4] = b"TWRC";
/// Current request-cache format version.
pub const REQUEST_VERSION: u16 = 1;
/// Longest scheme token a `.twc` header may carry. Real tokens are
/// under 32 bytes; the cap keeps a corrupted length field from driving
/// a huge allocation.
const REQUEST_SCHEME_CAP: usize = 256;

/// The `.twc` header: the scenario fingerprint a cached phase-1
/// request extraction is valid for, plus the scheme that produced it.
///
/// The fingerprint fields are scheme-independent — they identify the
/// *population* (who sends traffic and through which radio/engine
/// knobs), while `scheme` keys the extraction itself (request times
/// depend on the scheme's idle policy). A reader whose expected
/// fingerprint or scheme disagrees with the stored one must treat the
/// file as a miss and recompute; the split is what lets an admission
/// sweep reuse one extraction across every cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestCacheHeader {
    /// Scenario master seed.
    pub master_seed: u64,
    /// Population size; must equal the number of stored streams.
    pub users: u64,
    /// Days of traffic synthesized per user.
    pub days: u32,
    /// Hash of the app and carrier mixes (weights included).
    pub mix_hash: u64,
    /// Hash of the phase-1-relevant engine knobs.
    pub sim_hash: u64,
    /// Stable token of the scheme that extracted the requests.
    pub scheme: String,
}

/// One checksum folding step (SplitMix64 over the running hash XOR the
/// next word — the same avalanche the seeding hierarchy uses).
fn fold_word(h: u64, word: u64) -> u64 {
    crate::mix::splitmix64(h ^ word)
}

/// Folds the header fields shared by writer and reader.
fn fold_header(header: &RequestCacheHeader) -> u64 {
    let mut h = 0x71C0_CACE_0000_0000u64;
    h = fold_word(h, header.master_seed);
    h = fold_word(h, header.users);
    h = fold_word(h, header.days as u64);
    h = fold_word(h, header.mix_hash);
    h = fold_word(h, header.sim_hash);
    h = fold_word(h, header.scheme.len() as u64);
    for b in header.scheme.as_bytes() {
        h = fold_word(h, *b as u64);
    }
    h
}

/// Writes per-user phase-1 request streams in `.twc` form: the header,
/// one length-prefixed timestamp vector per user, and a trailing
/// 64-bit checksum over everything the header and payload encode.
///
/// `streams[i]` must be user `i`'s non-decreasing request times (the
/// phase-1 contract) and `streams.len()` must equal `header.users`;
/// both are validated here so a `.twc` file can never encode data its
/// own reader would reject.
pub fn write_request_streams<W: Write>(
    header: &RequestCacheHeader,
    streams: &[Vec<Instant>],
    out: W,
) -> Result<(), TraceError> {
    if streams.len() as u64 != header.users {
        return Err(TraceError::Parse {
            location: 0,
            message: format!(
                "header declares {} user(s) but {} stream(s) were given",
                header.users,
                streams.len()
            ),
        });
    }
    if header.scheme.len() > REQUEST_SCHEME_CAP {
        return Err(TraceError::Parse {
            location: 0,
            message: format!("scheme token exceeds {REQUEST_SCHEME_CAP} bytes"),
        });
    }
    let mut w = BufWriter::new(out);
    w.write_all(REQUEST_MAGIC)?;
    w.write_all(&REQUEST_VERSION.to_le_bytes())?;
    w.write_all(&header.master_seed.to_le_bytes())?;
    w.write_all(&header.users.to_le_bytes())?;
    w.write_all(&header.days.to_le_bytes())?;
    w.write_all(&header.mix_hash.to_le_bytes())?;
    w.write_all(&header.sim_hash.to_le_bytes())?;
    w.write_all(&(header.scheme.len() as u16).to_le_bytes())?;
    w.write_all(header.scheme.as_bytes())?;
    let mut checksum = fold_header(header);
    for (user, times) in streams.iter().enumerate() {
        if let Some(pair) = times.windows(2).find(|pair| pair[0] > pair[1]) {
            return Err(TraceError::Parse {
                location: user,
                message: format!(
                    "user {user} request times are not non-decreasing ({} after {})",
                    pair[1].as_micros(),
                    pair[0].as_micros()
                ),
            });
        }
        w.write_all(&(times.len() as u64).to_le_bytes())?;
        checksum = fold_word(checksum, times.len() as u64);
        for t in times {
            w.write_all(&t.as_micros().to_le_bytes())?;
            checksum = fold_word(checksum, t.as_micros() as u64);
        }
    }
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads a `.twc` file back into its header and per-user streams.
///
/// Every failure mode a rotten file can exhibit — wrong magic, unknown
/// version, oversized or non-UTF-8 scheme token, truncated stream,
/// out-of-order timestamps, trailing bytes, checksum mismatch — is a
/// typed [`TraceError`], never a panic or an unbounded allocation, and
/// never a silently wrong stream: the checksum covers the header and
/// every timestamp, so a single flipped payload byte is caught even
/// though any individual timestamp value is plausible.
pub fn read_request_streams<R: Read>(
    input: R,
) -> Result<(RequestCacheHeader, Vec<Vec<Instant>>), TraceError> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != REQUEST_MAGIC {
        return Err(TraceError::BadHeader(String::from_utf8_lossy(&magic).into_owned()));
    }
    let mut v = [0u8; 2];
    r.read_exact(&mut v)?;
    let version = u16::from_le_bytes(v);
    if version != REQUEST_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let mut u64_buf = [0u8; 8];
    let mut read_u64 = |r: &mut BufReader<R>, what: &str, at: usize| -> Result<u64, TraceError> {
        r.read_exact(&mut u64_buf).map_err(|e| truncated(e, what, at))?;
        Ok(u64::from_le_bytes(u64_buf))
    };
    let master_seed = read_u64(&mut r, "master seed", 0)?;
    let users = read_u64(&mut r, "user count", 0)?;
    let mut u32_buf = [0u8; 4];
    r.read_exact(&mut u32_buf).map_err(|e| truncated(e, "day count", 0))?;
    let days = u32::from_le_bytes(u32_buf);
    let mix_hash = read_u64(&mut r, "mix hash", 0)?;
    let sim_hash = read_u64(&mut r, "sim hash", 0)?;
    let mut len_buf = [0u8; 2];
    r.read_exact(&mut len_buf).map_err(|e| truncated(e, "scheme length", 0))?;
    let scheme_len = u16::from_le_bytes(len_buf) as usize;
    if scheme_len > REQUEST_SCHEME_CAP {
        return Err(TraceError::Parse {
            location: 0,
            message: format!("scheme token length {scheme_len} exceeds {REQUEST_SCHEME_CAP}"),
        });
    }
    let mut scheme_bytes = vec![0u8; scheme_len];
    r.read_exact(&mut scheme_bytes).map_err(|e| truncated(e, "scheme token", 0))?;
    let scheme = String::from_utf8(scheme_bytes).map_err(|e| TraceError::Parse {
        location: 0,
        message: format!("scheme token is not UTF-8: {e}"),
    })?;
    let header = RequestCacheHeader { master_seed, users, days, mix_hash, sim_hash, scheme };

    let mut checksum = fold_header(&header);
    let mut streams = Vec::with_capacity((users as usize).min(1 << 24));
    for user in 0..users as usize {
        let mut c = [0u8; 8];
        r.read_exact(&mut c).map_err(|e| truncated(e, "stream length", user))?;
        let count = u64::from_le_bytes(c) as usize;
        checksum = fold_word(checksum, count as u64);
        let mut times = Vec::with_capacity(count.min(1 << 24));
        let mut prev: Option<i64> = None;
        for _ in 0..count {
            let mut t = [0u8; 8];
            r.read_exact(&mut t).map_err(|e| truncated(e, "request timestamp", user))?;
            let micros = i64::from_le_bytes(t);
            checksum = fold_word(checksum, micros as u64);
            if prev.is_some_and(|p| p > micros) {
                return Err(TraceError::Parse {
                    location: user,
                    message: format!("user {user} request times are not non-decreasing"),
                });
            }
            prev = Some(micros);
            times.push(Instant::from_micros(micros));
        }
        streams.push(times);
    }
    let stored = read_u64(&mut r, "checksum", users as usize)?;
    if stored != checksum {
        return Err(TraceError::Parse {
            location: users as usize,
            message: format!("checksum mismatch: stored {stored:#018x}, computed {checksum:#018x}"),
        });
    }
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(TraceError::Parse {
            location: users as usize,
            message: "trailing data after the declared stream count".into(),
        });
    }
    Ok((header, streams))
}

// ------------------------------------------------- replay memo (.twr) ----

/// Magic bytes of the replay-memo format.
pub const OUTCOME_MAGIC: &[u8; 4] = b"TWRO";
/// Current replay-memo format version.
pub const OUTCOME_VERSION: u16 = 1;

/// The `.twr` header: everything a memoized phase-2 outcome is keyed
/// on at the population level.
///
/// The first five fields mirror [`RequestCacheHeader`] (the scenario
/// fingerprint plus the scheme token); `topo_hash` additionally pins
/// the topology facts a per-user `(cell, second) → msgs` attribution
/// depends on — cell count, mobility model, and the signaling message
/// weights. Per-user verdict streams are keyed inside each record, so
/// one file serves every sweep cell that shares the population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayCacheHeader {
    /// Scenario master seed.
    pub master_seed: u64,
    /// Population size (records may cover any subset of users).
    pub users: u64,
    /// Days of traffic synthesized per user.
    pub days: u32,
    /// Hash of the app and carrier mixes (weights included).
    pub mix_hash: u64,
    /// Hash of the phase-1-relevant engine knobs.
    pub sim_hash: u64,
    /// Hash of the replay-relevant topology facts (cell count,
    /// mobility model, signaling weights).
    pub topo_hash: u64,
    /// Stable token of the scheme whose replay is memoized.
    pub scheme: String,
}

/// One memoized per-user phase-2 outcome, as stored on disk.
///
/// Everything the fleet report's outcome fold needs to fold the user
/// without re-simulating: the scheme run's scalar outcome (energy and
/// baseline energy as `f64::to_bits` words, switch/confusion counts,
/// session-delay samples as bits) plus the user's sparse per-second
/// signaling-load deltas. A record is valid only for the
/// `(header, verdict_hash)` pair it is keyed under — any drift in the
/// verdict stream re-simulates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayOutcomeRecord {
    /// User index within the population.
    pub user: u64,
    /// SplitMix64 hash of the user's grant/deny verdict stream.
    pub verdict_hash: u64,
    /// Packets replayed.
    pub packets: u64,
    /// Scheme-run total energy, as `f64::to_bits`.
    pub energy_bits: u64,
    /// Promotion cycles in the scheme run.
    pub switches: u64,
    /// False switches (confusion-matrix false positives).
    pub false_switches: u64,
    /// Missed switches (confusion-matrix false negatives).
    pub missed_switches: u64,
    /// Total scored decisions.
    pub decisions: u64,
    /// Status-quo baseline energy, as `f64::to_bits`.
    pub baseline_energy_bits: u64,
    /// Status-quo baseline promotion cycles.
    pub baseline_switches: u64,
    /// Session-delay samples, each as `f64::to_bits`, in record order.
    pub delay_bits: Vec<u64>,
    /// Sparse signaling-load deltas: `(cell, second, msgs)` triples.
    pub seconds: Vec<(u64, i64, u64)>,
}

/// Folds the `.twr` header fields shared by writer and reader.
fn fold_outcome_header(header: &ReplayCacheHeader) -> u64 {
    let mut h = 0x7EC0_CACE_0000_0000u64;
    h = fold_word(h, header.master_seed);
    h = fold_word(h, header.users);
    h = fold_word(h, header.days as u64);
    h = fold_word(h, header.mix_hash);
    h = fold_word(h, header.sim_hash);
    h = fold_word(h, header.topo_hash);
    h = fold_word(h, header.scheme.len() as u64);
    for b in header.scheme.as_bytes() {
        h = fold_word(h, *b as u64);
    }
    h
}

/// Writes memoized replay outcomes in `.twr` form: the header, a
/// record count, the per-user records, and a trailing 64-bit checksum
/// over every field — the same corrupt-spills-recompute-never-lie
/// contract as [`write_request_streams`].
pub fn write_replay_outcomes<W: Write>(
    header: &ReplayCacheHeader,
    records: &[ReplayOutcomeRecord],
    out: W,
) -> Result<(), TraceError> {
    if header.scheme.len() > REQUEST_SCHEME_CAP {
        return Err(TraceError::Parse {
            location: 0,
            message: format!("scheme token exceeds {REQUEST_SCHEME_CAP} bytes"),
        });
    }
    let mut w = BufWriter::new(out);
    w.write_all(OUTCOME_MAGIC)?;
    w.write_all(&OUTCOME_VERSION.to_le_bytes())?;
    w.write_all(&header.master_seed.to_le_bytes())?;
    w.write_all(&header.users.to_le_bytes())?;
    w.write_all(&header.days.to_le_bytes())?;
    w.write_all(&header.mix_hash.to_le_bytes())?;
    w.write_all(&header.sim_hash.to_le_bytes())?;
    w.write_all(&header.topo_hash.to_le_bytes())?;
    w.write_all(&(header.scheme.len() as u16).to_le_bytes())?;
    w.write_all(header.scheme.as_bytes())?;
    let mut checksum = fold_outcome_header(header);
    w.write_all(&(records.len() as u64).to_le_bytes())?;
    checksum = fold_word(checksum, records.len() as u64);
    let put = |w: &mut BufWriter<W>, checksum: &mut u64, word: u64| -> Result<(), TraceError> {
        w.write_all(&word.to_le_bytes())?;
        *checksum = fold_word(*checksum, word);
        Ok(())
    };
    for rec in records {
        put(&mut w, &mut checksum, rec.user)?;
        put(&mut w, &mut checksum, rec.verdict_hash)?;
        put(&mut w, &mut checksum, rec.packets)?;
        put(&mut w, &mut checksum, rec.energy_bits)?;
        put(&mut w, &mut checksum, rec.switches)?;
        put(&mut w, &mut checksum, rec.false_switches)?;
        put(&mut w, &mut checksum, rec.missed_switches)?;
        put(&mut w, &mut checksum, rec.decisions)?;
        put(&mut w, &mut checksum, rec.baseline_energy_bits)?;
        put(&mut w, &mut checksum, rec.baseline_switches)?;
        put(&mut w, &mut checksum, rec.delay_bits.len() as u64)?;
        for &bits in &rec.delay_bits {
            put(&mut w, &mut checksum, bits)?;
        }
        put(&mut w, &mut checksum, rec.seconds.len() as u64)?;
        for &(cell, second, msgs) in &rec.seconds {
            put(&mut w, &mut checksum, cell)?;
            put(&mut w, &mut checksum, second as u64)?;
            put(&mut w, &mut checksum, msgs)?;
        }
    }
    w.write_all(&checksum.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads a `.twr` file back into its header and outcome records.
///
/// The failure discipline matches [`read_request_streams`]: wrong
/// magic, unknown version, oversized scheme token, truncation anywhere,
/// trailing bytes, and checksum mismatch are all typed
/// [`TraceError`]s, never a panic, an unbounded allocation, or a
/// silently wrong outcome.
pub fn read_replay_outcomes<R: Read>(
    input: R,
) -> Result<(ReplayCacheHeader, Vec<ReplayOutcomeRecord>), TraceError> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != OUTCOME_MAGIC {
        return Err(TraceError::BadHeader(String::from_utf8_lossy(&magic).into_owned()));
    }
    let mut v = [0u8; 2];
    r.read_exact(&mut v)?;
    let version = u16::from_le_bytes(v);
    if version != OUTCOME_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let mut u64_buf = [0u8; 8];
    let mut read_u64 = |r: &mut BufReader<R>, what: &str, at: usize| -> Result<u64, TraceError> {
        r.read_exact(&mut u64_buf).map_err(|e| truncated(e, what, at))?;
        Ok(u64::from_le_bytes(u64_buf))
    };
    let master_seed = read_u64(&mut r, "master seed", 0)?;
    let users = read_u64(&mut r, "user count", 0)?;
    let mut u32_buf = [0u8; 4];
    r.read_exact(&mut u32_buf).map_err(|e| truncated(e, "day count", 0))?;
    let days = u32::from_le_bytes(u32_buf);
    let mix_hash = read_u64(&mut r, "mix hash", 0)?;
    let sim_hash = read_u64(&mut r, "sim hash", 0)?;
    let topo_hash = read_u64(&mut r, "topology hash", 0)?;
    let mut len_buf = [0u8; 2];
    r.read_exact(&mut len_buf).map_err(|e| truncated(e, "scheme length", 0))?;
    let scheme_len = u16::from_le_bytes(len_buf) as usize;
    if scheme_len > REQUEST_SCHEME_CAP {
        return Err(TraceError::Parse {
            location: 0,
            message: format!("scheme token length {scheme_len} exceeds {REQUEST_SCHEME_CAP}"),
        });
    }
    let mut scheme_bytes = vec![0u8; scheme_len];
    r.read_exact(&mut scheme_bytes).map_err(|e| truncated(e, "scheme token", 0))?;
    let scheme = String::from_utf8(scheme_bytes).map_err(|e| TraceError::Parse {
        location: 0,
        message: format!("scheme token is not UTF-8: {e}"),
    })?;
    let header =
        ReplayCacheHeader { master_seed, users, days, mix_hash, sim_hash, topo_hash, scheme };

    let mut checksum = fold_outcome_header(&header);
    let count = read_u64(&mut r, "record count", 0)? as usize;
    checksum = fold_word(checksum, count as u64);
    let mut records = Vec::with_capacity(count.min(1 << 24));
    for i in 0..count {
        let get = |r: &mut BufReader<R>, checksum: &mut u64, what| -> Result<u64, TraceError> {
            let mut b = [0u8; 8];
            r.read_exact(&mut b).map_err(|e| truncated(e, what, i))?;
            let word = u64::from_le_bytes(b);
            *checksum = fold_word(*checksum, word);
            Ok(word)
        };
        let mut rec = ReplayOutcomeRecord {
            user: get(&mut r, &mut checksum, "user index")?,
            verdict_hash: get(&mut r, &mut checksum, "verdict hash")?,
            packets: get(&mut r, &mut checksum, "packet count")?,
            energy_bits: get(&mut r, &mut checksum, "energy bits")?,
            switches: get(&mut r, &mut checksum, "switch count")?,
            false_switches: get(&mut r, &mut checksum, "false-switch count")?,
            missed_switches: get(&mut r, &mut checksum, "missed-switch count")?,
            decisions: get(&mut r, &mut checksum, "decision count")?,
            baseline_energy_bits: get(&mut r, &mut checksum, "baseline energy bits")?,
            baseline_switches: get(&mut r, &mut checksum, "baseline switch count")?,
            ..ReplayOutcomeRecord::default()
        };
        let delays = get(&mut r, &mut checksum, "delay count")? as usize;
        rec.delay_bits.reserve(delays.min(1 << 24));
        for _ in 0..delays {
            rec.delay_bits.push(get(&mut r, &mut checksum, "delay bits")?);
        }
        let seconds = get(&mut r, &mut checksum, "second-map length")? as usize;
        rec.seconds.reserve(seconds.min(1 << 24));
        for _ in 0..seconds {
            let cell = get(&mut r, &mut checksum, "second-map cell")?;
            let second = get(&mut r, &mut checksum, "second-map second")? as i64;
            let msgs = get(&mut r, &mut checksum, "second-map messages")?;
            rec.seconds.push((cell, second, msgs));
        }
        records.push(rec);
    }
    let stored = read_u64(&mut r, "checksum", count)?;
    if stored != checksum {
        return Err(TraceError::Parse {
            location: count,
            message: format!("checksum mismatch: stored {stored:#018x}, computed {checksum:#018x}"),
        });
    }
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(TraceError::Parse {
            location: count,
            message: "trailing data after the declared record count".into(),
        });
    }
    Ok((header, records))
}

/// Maps an unexpected-EOF mid-record into a positioned truncation
/// error (other I/O failures pass through).
fn truncated(e: std::io::Error, what: &str, location: usize) -> TraceError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        TraceError::Parse { location, message: format!("truncated {what}") }
    } else {
        TraceError::Io(e)
    }
}

// --------------------------------------------------------------- paths ----

/// Writes a trace to a path, choosing the format from the extension:
/// `.csv` → CSV, anything else → binary.
pub fn save(trace: &Trace, path: &Path) -> Result<(), TraceError> {
    let file = std::fs::File::create(path)?;
    if path.extension().is_some_and(|e| e.eq_ignore_ascii_case("csv")) {
        write_csv(trace, file)
    } else {
        write_binary(trace, file)
    }
}

/// Reads a trace from a path, choosing the format from the extension the
/// same way as [`save`].
pub fn load(path: &Path) -> Result<Trace, TraceError> {
    let file = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e.eq_ignore_ascii_case("csv")) {
        read_csv(file)
    } else {
        read_binary(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn sample_trace() -> Trace {
        Trace::from_sorted(vec![
            Packet::new(Instant::ZERO, Direction::Up, 40).with_flow(1).with_app(AppId(2)),
            Packet::new(Instant::from_millis(100), Direction::Down, 1400)
                .with_flow(1)
                .with_app(AppId(2)),
            Packet::new(Instant::from_secs(10), Direction::Up, 60).with_flow(2),
        ])
        .unwrap()
    }

    #[test]
    fn csv_roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_is_human_readable() {
        let mut buf = Vec::new();
        write_csv(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# tailwise-trace"));
        assert!(text.contains("0,U,40,1,2"));
        assert!(text.contains("100000,D,1400,1,2"));
    }

    #[test]
    fn csv_ignores_comments_and_blanks() {
        let text = "# a comment\n\n0,U,40,0,0\n   \n100,D,20,0,0\n";
        let t = read_csv(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        for bad in [
            "notanumber,U,40,0,0",
            "0,X,40,0,0",
            "0,UD,40,0,0",
            "0,U,-4,0,0",
            "0,U,40,0",
            "0,U,40,0,0,9",
        ] {
            let err = read_csv(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, TraceError::Parse { .. }), "{bad} -> {err}");
        }
    }

    #[test]
    fn csv_rejects_out_of_order() {
        let text = "1000,U,1,0,0\n0,U,1,0,0\n";
        assert!(matches!(read_csv(text.as_bytes()), Err(TraceError::OutOfOrder { .. })));
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_roundtrips_negative_timestamps() {
        let t =
            Trace::from_sorted(vec![Packet::new(Instant::from_micros(-42), Direction::Down, 1)])
                .unwrap();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn binary_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_binary(bad.as_slice()), Err(TraceError::BadHeader(_))));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(read_binary(bad.as_slice()), Err(TraceError::UnsupportedVersion(99))));
    }

    #[test]
    fn binary_detects_truncation() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(buf.as_slice()), Err(TraceError::Parse { .. })));
    }

    #[test]
    fn binary_rejects_trailing_data() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        buf.push(0);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("trailing data"), "{err}");
    }

    #[test]
    fn binary_rejects_bad_direction_byte() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        // First record's direction byte is at offset 14 (4 magic + 2 ver + 8 count) + 8.
        buf[14 + 8] = 7;
        assert!(matches!(read_binary(buf.as_slice()), Err(TraceError::Parse { .. })));
    }

    #[test]
    fn save_load_picks_format_from_extension() {
        let dir = std::env::temp_dir().join(format!("tailwise-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample_trace();
        let csv = dir.join("t.csv");
        let bin = dir.join("t.twt");
        save(&t, &csv).unwrap();
        save(&t, &bin).unwrap();
        assert_eq!(load(&csv).unwrap(), t);
        assert_eq!(load(&bin).unwrap(), t);
        // CSV file really is text.
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with('#'));
        // Binary file really is binary and smaller per record.
        let blob = std::fs::read(&bin).unwrap();
        assert_eq!(&blob[..4], BINARY_MAGIC);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_trace_roundtrips_in_both_formats() {
        let t = Trace::new();
        let mut c = Vec::new();
        write_csv(&t, &mut c).unwrap();
        assert_eq!(read_csv(c.as_slice()).unwrap(), t);
        let mut b = Vec::new();
        write_binary(&t, &mut b).unwrap();
        assert_eq!(read_binary(b.as_slice()).unwrap(), t);
    }

    #[test]
    fn binary_is_denser_than_csv() {
        // Not a strict format guarantee, but the reason the binary format
        // exists; catches accidental bloat.
        // Realistic magnitudes: multi-hour capture (10-digit microsecond
        // timestamps), real flow ids.
        let mut big = Vec::new();
        for i in 0..1000i64 {
            big.push(
                Packet::new(
                    Instant::from_millis(i * 7_000),
                    if i % 2 == 0 { Direction::Up } else { Direction::Down },
                    (i % 1400) as u32,
                )
                .with_flow(100_000 + i as u32),
            );
        }
        let t = Trace::from_sorted(big).unwrap();
        let (mut c, mut b) = (Vec::new(), Vec::new());
        write_csv(&t, &mut c).unwrap();
        write_binary(&t, &mut b).unwrap();
        assert!(b.len() < c.len());
    }

    #[test]
    fn gap_durations_survive_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.gaps(), vec![Duration::from_millis(100), Duration::from_millis(9_900)]);
    }

    // ------------------------------------------ request cache (.twc) ----

    fn sample_header(users: u64) -> RequestCacheHeader {
        RequestCacheHeader {
            master_seed: 0xBEAC4,
            users,
            days: 3,
            mix_hash: 0x1234_5678_9ABC_DEF0,
            sim_hash: 0x0FED_CBA9_8765_4321,
            scheme: "tail45".into(),
        }
    }

    fn sample_streams() -> Vec<Vec<Instant>> {
        vec![
            vec![Instant::from_micros(-7), Instant::ZERO, Instant::from_secs(9)],
            vec![],
            vec![Instant::from_millis(4), Instant::from_millis(4), Instant::from_secs(100)],
        ]
    }

    fn sample_twc() -> Vec<u8> {
        let mut buf = Vec::new();
        write_request_streams(&sample_header(3), &sample_streams(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn twc_roundtrip_preserves_header_and_streams() {
        let (header, streams) = read_request_streams(sample_twc().as_slice()).unwrap();
        assert_eq!(header, sample_header(3));
        assert_eq!(streams, sample_streams());
    }

    #[test]
    fn twc_roundtrips_empty_population() {
        let mut buf = Vec::new();
        write_request_streams(&sample_header(0), &[], &mut buf).unwrap();
        let (header, streams) = read_request_streams(buf.as_slice()).unwrap();
        assert_eq!(header.users, 0);
        assert!(streams.is_empty());
    }

    #[test]
    fn twc_rejects_bad_magic_and_version() {
        let buf = sample_twc();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_request_streams(bad.as_slice()), Err(TraceError::BadHeader(_))));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            read_request_streams(bad.as_slice()),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn twc_detects_truncation_anywhere() {
        let buf = sample_twc();
        for cut in 6..buf.len() {
            let err = read_request_streams(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceError::Parse { .. } | TraceError::Io(_)),
                "cut at {cut} -> {err}"
            );
        }
    }

    #[test]
    fn twc_rejects_trailing_data() {
        let mut buf = sample_twc();
        buf.push(0);
        let err = read_request_streams(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing data"), "{err}");
    }

    #[test]
    fn twc_checksum_catches_flipped_payload_byte() {
        // A flipped timestamp byte still decodes to a plausible (even
        // monotone) stream; only the checksum can catch it. Flip every
        // byte after the header in turn and demand a clean error.
        let buf = sample_twc();
        for pos in 40..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            let result = read_request_streams(bad.as_slice());
            assert!(result.is_err(), "flipped byte {pos} went unnoticed");
        }
    }

    #[test]
    fn twc_write_rejects_stream_count_mismatch() {
        let mut buf = Vec::new();
        let err =
            write_request_streams(&sample_header(5), &sample_streams(), &mut buf).unwrap_err();
        assert!(err.to_string().contains("5 user(s)"), "{err}");
    }

    #[test]
    fn twc_write_rejects_unsorted_stream() {
        let streams = vec![vec![Instant::from_secs(2), Instant::from_secs(1)]];
        let mut buf = Vec::new();
        let err = write_request_streams(&sample_header(1), &streams, &mut buf).unwrap_err();
        assert!(err.to_string().contains("non-decreasing"), "{err}");
    }

    #[test]
    fn twc_write_rejects_oversized_scheme_token() {
        let mut header = sample_header(0);
        header.scheme = "x".repeat(REQUEST_SCHEME_CAP + 1);
        let mut buf = Vec::new();
        assert!(write_request_streams(&header, &[], &mut buf).is_err());
    }

    // -------------------------------------------- replay memo (.twr) ----

    fn sample_outcome_header() -> ReplayCacheHeader {
        ReplayCacheHeader {
            master_seed: 0xBEAC4,
            users: 3,
            days: 3,
            mix_hash: 0x1234_5678_9ABC_DEF0,
            sim_hash: 0x0FED_CBA9_8765_4321,
            topo_hash: 0xA5A5_0000_1111_2222,
            scheme: "tail45".into(),
        }
    }

    fn sample_records() -> Vec<ReplayOutcomeRecord> {
        vec![
            ReplayOutcomeRecord {
                user: 0,
                verdict_hash: 0xDEAD_BEEF,
                packets: 412,
                energy_bits: 1234.5f64.to_bits(),
                switches: 9,
                false_switches: 2,
                missed_switches: 1,
                decisions: 40,
                baseline_energy_bits: 2345.75f64.to_bits(),
                baseline_switches: 4,
                delay_bits: vec![0.5f64.to_bits(), 1.25f64.to_bits()],
                seconds: vec![(0, -3, 28), (0, 90, 5), (2, 90, 6)],
            },
            // A user with no delays and no signaling load at all.
            ReplayOutcomeRecord { user: 2, verdict_hash: 7, ..ReplayOutcomeRecord::default() },
        ]
    }

    fn sample_twr() -> Vec<u8> {
        let mut buf = Vec::new();
        write_replay_outcomes(&sample_outcome_header(), &sample_records(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn twr_roundtrip_preserves_header_and_records() {
        let (header, records) = read_replay_outcomes(sample_twr().as_slice()).unwrap();
        assert_eq!(header, sample_outcome_header());
        assert_eq!(records, sample_records());
    }

    #[test]
    fn twr_roundtrips_empty_record_set() {
        let mut buf = Vec::new();
        write_replay_outcomes(&sample_outcome_header(), &[], &mut buf).unwrap();
        let (header, records) = read_replay_outcomes(buf.as_slice()).unwrap();
        assert_eq!(header, sample_outcome_header());
        assert!(records.is_empty());
    }

    #[test]
    fn twr_rejects_bad_magic_and_version() {
        let buf = sample_twr();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_replay_outcomes(bad.as_slice()), Err(TraceError::BadHeader(_))));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            read_replay_outcomes(bad.as_slice()),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn twr_detects_truncation_anywhere() {
        let buf = sample_twr();
        for cut in 6..buf.len() {
            let err = read_replay_outcomes(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceError::Parse { .. } | TraceError::Io(_)),
                "cut at {cut} -> {err}"
            );
        }
    }

    #[test]
    fn twr_rejects_trailing_data() {
        let mut buf = sample_twr();
        buf.push(0);
        let err = read_replay_outcomes(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing data"), "{err}");
    }

    #[test]
    fn twr_checksum_catches_any_flipped_byte() {
        // Every field is a plausible word on its own (a flipped energy
        // bit still decodes to a valid f64); only the checksum can
        // catch payload damage. Flip every byte in the file in turn —
        // header bytes fail structurally, payload bytes fail the
        // checksum — and demand a clean error either way.
        let buf = sample_twr();
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(read_replay_outcomes(bad.as_slice()).is_err(), "flipped byte {pos} unnoticed");
        }
    }

    #[test]
    fn twr_write_rejects_oversized_scheme_token() {
        let mut header = sample_outcome_header();
        header.scheme = "x".repeat(REQUEST_SCHEME_CAP + 1);
        let mut buf = Vec::new();
        assert!(write_replay_outcomes(&header, &[], &mut buf).is_err());
    }
}
