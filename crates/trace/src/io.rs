//! Trace persistence: a human-readable CSV format and a compact binary
//! format.
//!
//! The paper's pipeline stores tcpdump captures; tailwise reduces those to
//! the fields its algorithms consume and defines two interchangeable
//! encodings:
//!
//! * **CSV** (`.twt.csv`) — `ts_us,dir,len,flow,app` with a `#`-prefixed
//!   header; greppable, diffable, importable into any analysis stack.
//! * **Binary** (`.twt`) — little-endian fixed records behind a
//!   magic/version header; ~5× smaller and ~10× faster, used for the cached
//!   multi-day user datasets in the bench harness.
//!
//! Both readers validate monotonic timestamps via [`Trace::from_sorted`], so
//! a corrupted file cannot produce an invalid `Trace`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::TraceError;
use crate::packet::{AppId, Direction, Packet};
use crate::time::Instant;
use crate::trace::Trace;

/// Header line of the CSV format.
pub const CSV_HEADER: &str = "# tailwise-trace v1: ts_us,dir,len,flow,app";
/// Magic bytes of the binary format.
pub const BINARY_MAGIC: &[u8; 4] = b"TWTR";
/// Current binary format version.
pub const BINARY_VERSION: u16 = 1;
/// Size in bytes of one binary packet record.
const RECORD_SIZE: usize = 8 + 1 + 4 + 4 + 2;

// ---------------------------------------------------------------- CSV ----

/// Writes a trace in CSV form.
pub fn write_csv<W: Write>(trace: &Trace, out: W) -> Result<(), TraceError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{CSV_HEADER}")?;
    for p in trace.iter() {
        writeln!(w, "{},{},{},{},{}", p.ts.as_micros(), p.dir.code(), p.len, p.flow, p.app.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace in CSV form.
///
/// Blank lines and `#` comments are ignored (the header is therefore
/// optional, making hand-written fixtures easy).
pub fn read_csv<R: Read>(input: R) -> Result<Trace, TraceError> {
    let reader = BufReader::new(input);
    let mut packets = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        packets.push(parse_csv_line(line, lineno + 1)?);
    }
    Trace::from_sorted(packets)
}

fn parse_csv_line(line: &str, lineno: usize) -> Result<Packet, TraceError> {
    let err = |message: String| TraceError::Parse { location: lineno, message };
    let mut fields = line.split(',');
    let mut next = |name: &str| {
        fields.next().map(str::trim).ok_or_else(|| err(format!("missing field `{name}`")))
    };
    let ts: i64 = next("ts_us")?.parse().map_err(|e| err(format!("bad ts_us: {e}")))?;
    let dir_field = next("dir")?;
    let mut chars = dir_field.chars();
    let (dir_char, extra) = (chars.next(), chars.next());
    if extra.is_some() {
        return Err(err(format!("bad dir {dir_field:?}: expected single character U or D")));
    }
    let dir = dir_char
        .and_then(Direction::from_code)
        .ok_or_else(|| err(format!("bad dir {dir_field:?}: expected U or D")))?;
    let len: u32 = next("len")?.parse().map_err(|e| err(format!("bad len: {e}")))?;
    let flow: u32 = next("flow")?.parse().map_err(|e| err(format!("bad flow: {e}")))?;
    let app: u16 = next("app")?.parse().map_err(|e| err(format!("bad app: {e}")))?;
    if let Some(stray) = fields.next() {
        return Err(err(format!("unexpected trailing field {stray:?}")));
    }
    Ok(Packet { ts: Instant::from_micros(ts), dir, len, flow, app: AppId(app) })
}

// ------------------------------------------------------------- binary ----

/// Writes a trace in binary form.
pub fn write_binary<W: Write>(trace: &Trace, out: W) -> Result<(), TraceError> {
    let mut w = BufWriter::new(out);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&BINARY_VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for p in trace.iter() {
        let mut rec = [0u8; RECORD_SIZE];
        rec[0..8].copy_from_slice(&p.ts.as_micros().to_le_bytes());
        rec[8] = match p.dir {
            Direction::Up => 0,
            Direction::Down => 1,
        };
        rec[9..13].copy_from_slice(&p.len.to_le_bytes());
        rec[13..17].copy_from_slice(&p.flow.to_le_bytes());
        rec[17..19].copy_from_slice(&p.app.0.to_le_bytes());
        w.write_all(&rec)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace in binary form.
pub fn read_binary<R: Read>(input: R) -> Result<Trace, TraceError> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(TraceError::BadHeader(String::from_utf8_lossy(&magic).into_owned()));
    }
    let mut v = [0u8; 2];
    r.read_exact(&mut v)?;
    let version = u16::from_le_bytes(v);
    if version != BINARY_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let mut c = [0u8; 8];
    r.read_exact(&mut c)?;
    let count = u64::from_le_bytes(c) as usize;
    let mut packets = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0u8; RECORD_SIZE];
    for i in 0..count {
        r.read_exact(&mut rec).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Parse { location: i, message: "truncated record".into() }
            } else {
                TraceError::Io(e)
            }
        })?;
        let ts = i64::from_le_bytes(rec[0..8].try_into().expect("fixed slice"));
        let dir = match rec[8] {
            0 => Direction::Up,
            1 => Direction::Down,
            other => {
                return Err(TraceError::Parse {
                    location: i,
                    message: format!("bad direction byte {other}"),
                })
            }
        };
        let len = u32::from_le_bytes(rec[9..13].try_into().expect("fixed slice"));
        let flow = u32::from_le_bytes(rec[13..17].try_into().expect("fixed slice"));
        let app = u16::from_le_bytes(rec[17..19].try_into().expect("fixed slice"));
        packets.push(Packet { ts: Instant::from_micros(ts), dir, len, flow, app: AppId(app) });
    }
    // A well-formed file ends exactly after `count` records: trailing
    // bytes mean the header's count was corrupted (or the file grew),
    // and silently ignoring them would return a wrong-but-valid Trace.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(TraceError::Parse {
            location: count,
            message: "trailing data after the declared packet count".into(),
        });
    }
    Trace::from_sorted(packets)
}

// --------------------------------------------------------------- paths ----

/// Writes a trace to a path, choosing the format from the extension:
/// `.csv` → CSV, anything else → binary.
pub fn save(trace: &Trace, path: &Path) -> Result<(), TraceError> {
    let file = std::fs::File::create(path)?;
    if path.extension().is_some_and(|e| e.eq_ignore_ascii_case("csv")) {
        write_csv(trace, file)
    } else {
        write_binary(trace, file)
    }
}

/// Reads a trace from a path, choosing the format from the extension the
/// same way as [`save`].
pub fn load(path: &Path) -> Result<Trace, TraceError> {
    let file = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e.eq_ignore_ascii_case("csv")) {
        read_csv(file)
    } else {
        read_binary(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn sample_trace() -> Trace {
        Trace::from_sorted(vec![
            Packet::new(Instant::ZERO, Direction::Up, 40).with_flow(1).with_app(AppId(2)),
            Packet::new(Instant::from_millis(100), Direction::Down, 1400)
                .with_flow(1)
                .with_app(AppId(2)),
            Packet::new(Instant::from_secs(10), Direction::Up, 60).with_flow(2),
        ])
        .unwrap()
    }

    #[test]
    fn csv_roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_is_human_readable() {
        let mut buf = Vec::new();
        write_csv(&sample_trace(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# tailwise-trace"));
        assert!(text.contains("0,U,40,1,2"));
        assert!(text.contains("100000,D,1400,1,2"));
    }

    #[test]
    fn csv_ignores_comments_and_blanks() {
        let text = "# a comment\n\n0,U,40,0,0\n   \n100,D,20,0,0\n";
        let t = read_csv(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        for bad in [
            "notanumber,U,40,0,0",
            "0,X,40,0,0",
            "0,UD,40,0,0",
            "0,U,-4,0,0",
            "0,U,40,0",
            "0,U,40,0,0,9",
        ] {
            let err = read_csv(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, TraceError::Parse { .. }), "{bad} -> {err}");
        }
    }

    #[test]
    fn csv_rejects_out_of_order() {
        let text = "1000,U,1,0,0\n0,U,1,0,0\n";
        assert!(matches!(read_csv(text.as_bytes()), Err(TraceError::OutOfOrder { .. })));
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_roundtrips_negative_timestamps() {
        let t =
            Trace::from_sorted(vec![Packet::new(Instant::from_micros(-42), Direction::Down, 1)])
                .unwrap();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn binary_rejects_bad_magic_and_version() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_binary(bad.as_slice()), Err(TraceError::BadHeader(_))));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(read_binary(bad.as_slice()), Err(TraceError::UnsupportedVersion(99))));
    }

    #[test]
    fn binary_detects_truncation() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(buf.as_slice()), Err(TraceError::Parse { .. })));
    }

    #[test]
    fn binary_rejects_trailing_data() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        buf.push(0);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("trailing data"), "{err}");
    }

    #[test]
    fn binary_rejects_bad_direction_byte() {
        let mut buf = Vec::new();
        write_binary(&sample_trace(), &mut buf).unwrap();
        // First record's direction byte is at offset 14 (4 magic + 2 ver + 8 count) + 8.
        buf[14 + 8] = 7;
        assert!(matches!(read_binary(buf.as_slice()), Err(TraceError::Parse { .. })));
    }

    #[test]
    fn save_load_picks_format_from_extension() {
        let dir = std::env::temp_dir().join(format!("tailwise-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample_trace();
        let csv = dir.join("t.csv");
        let bin = dir.join("t.twt");
        save(&t, &csv).unwrap();
        save(&t, &bin).unwrap();
        assert_eq!(load(&csv).unwrap(), t);
        assert_eq!(load(&bin).unwrap(), t);
        // CSV file really is text.
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with('#'));
        // Binary file really is binary and smaller per record.
        let blob = std::fs::read(&bin).unwrap();
        assert_eq!(&blob[..4], BINARY_MAGIC);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_trace_roundtrips_in_both_formats() {
        let t = Trace::new();
        let mut c = Vec::new();
        write_csv(&t, &mut c).unwrap();
        assert_eq!(read_csv(c.as_slice()).unwrap(), t);
        let mut b = Vec::new();
        write_binary(&t, &mut b).unwrap();
        assert_eq!(read_binary(b.as_slice()).unwrap(), t);
    }

    #[test]
    fn binary_is_denser_than_csv() {
        // Not a strict format guarantee, but the reason the binary format
        // exists; catches accidental bloat.
        // Realistic magnitudes: multi-hour capture (10-digit microsecond
        // timestamps), real flow ids.
        let mut big = Vec::new();
        for i in 0..1000i64 {
            big.push(
                Packet::new(
                    Instant::from_millis(i * 7_000),
                    if i % 2 == 0 { Direction::Up } else { Direction::Down },
                    (i % 1400) as u32,
                )
                .with_flow(100_000 + i as u32),
            );
        }
        let t = Trace::from_sorted(big).unwrap();
        let (mut c, mut b) = (Vec::new(), Vec::new());
        write_csv(&t, &mut c).unwrap();
        write_binary(&t, &mut b).unwrap();
        assert!(b.len() < c.len());
    }

    #[test]
    fn gap_durations_survive_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back.gaps(), vec![Duration::from_millis(100), Duration::from_millis(9_900)]);
    }
}
