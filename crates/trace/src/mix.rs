//! Deterministic seed mixing.
//!
//! Every layer that derives child seeds from a master seed (user
//! populations in `tailwise-workload`, fleet scenarios in
//! `tailwise-fleet`, fractional release policies in `tailwise-radio`)
//! must use the *same* mixing function, or regenerating a dataset from a
//! recorded seed would depend on which crate did the deriving. This
//! module is that single definition; it lives here because the trace
//! crate is the workspace's zero-dependency root.

/// SplitMix64 finalizer (Steele, Lea & Flood 2014): a cheap, high-quality
/// 64-bit mixer. Bit-stable across platforms and releases — recorded
/// seeds depend on it.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_are_pinned() {
        // Regenerating recorded datasets depends on these exact outputs;
        // if this test ever fails, the mixing constants changed.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0x3001), splitmix64(0x3001));
        assert_ne!(splitmix64(2), splitmix64(3));
    }

    #[test]
    fn consecutive_inputs_decorrelate() {
        // Adjacent seeds must not share low bits (they feed RNG states).
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 16, "{a:#x} vs {b:#x}");
    }
}
