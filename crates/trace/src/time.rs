//! Simulation time types.
//!
//! All simulation time in tailwise is expressed with these two types rather
//! than [`std::time`]: a trace has its own epoch (the start of the capture),
//! event ordering must be exact and reproducible, and times can meaningfully
//! be *negative* (e.g. "0.3 s before the first packet"). Following the
//! smoltcp idiom, both types are thin wrappers around a signed microsecond
//! count, so comparisons and arithmetic are integer-exact; floating point
//! only enters when energy or probability is computed *from* a duration.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: i64 = 1_000_000;
/// Number of microseconds in one millisecond.
pub const MICROS_PER_MILLI: i64 = 1_000;

/// A point in simulation time, measured in microseconds from the trace epoch.
///
/// The epoch is by convention the timestamp of the first packet of a capture,
/// but nothing in the library depends on that; `Instant` is only ever compared
/// and subtracted, never interpreted as wall-clock time.
///
/// ```
/// use tailwise_trace::time::{Duration, Instant};
/// let t0 = Instant::from_secs_f64(1.5);
/// let t1 = t0 + Duration::from_millis(250);
/// assert_eq!((t1 - t0).as_millis(), 250);
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    micros: i64,
}

impl Instant {
    /// The trace epoch (time zero).
    pub const ZERO: Instant = Instant { micros: 0 };
    /// The latest representable instant; useful as an "infinitely far" sentinel.
    pub const FAR_FUTURE: Instant = Instant { micros: i64::MAX / 4 };

    /// Creates an instant from a raw microsecond count.
    #[inline]
    pub const fn from_micros(micros: i64) -> Self {
        Instant { micros }
    }

    /// Creates an instant from a millisecond count.
    #[inline]
    pub const fn from_millis(millis: i64) -> Self {
        Instant { micros: millis * MICROS_PER_MILLI }
    }

    /// Creates an instant from a whole-second count.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Instant { micros: secs * MICROS_PER_SEC }
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        Instant { micros: (secs * MICROS_PER_SEC as f64).round() as i64 }
    }

    /// The raw microsecond count since the epoch.
    #[inline]
    pub const fn as_micros(&self) -> i64 {
        self.micros
    }

    /// This instant expressed in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(&self) -> i64 {
        self.micros / MICROS_PER_MILLI
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Negative if `earlier` is later.
    #[inline]
    pub fn since(&self, earlier: Instant) -> Duration {
        Duration::from_micros(self.micros - earlier.micros)
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Instant) -> Instant {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Instant) -> Instant {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulation time in microseconds. May be negative.
///
/// ```
/// use tailwise_trace::time::Duration;
/// let d = Duration::from_secs_f64(4.5);
/// assert_eq!(d.as_micros(), 4_500_000);
/// assert_eq!(d * 2, Duration::from_secs(9));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration {
    micros: i64,
}

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration { micros: 0 };
    /// An effectively infinite duration; used as a "never" sentinel for timers.
    pub const FOREVER: Duration = Duration { micros: i64::MAX / 4 };

    /// Creates a duration from a raw microsecond count.
    #[inline]
    pub const fn from_micros(micros: i64) -> Self {
        Duration { micros }
    }

    /// Creates a duration from a millisecond count.
    #[inline]
    pub const fn from_millis(millis: i64) -> Self {
        Duration { micros: millis * MICROS_PER_MILLI }
    }

    /// Creates a duration from a whole-second count.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Duration { micros: secs * MICROS_PER_SEC }
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        Duration { micros: (secs * MICROS_PER_SEC as f64).round() as i64 }
    }

    /// The raw microsecond count.
    #[inline]
    pub const fn as_micros(&self) -> i64 {
        self.micros
    }

    /// The duration in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(&self) -> i64 {
        self.micros / MICROS_PER_MILLI
    }

    /// The duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / MICROS_PER_SEC as f64
    }

    /// True if this duration is negative.
    #[inline]
    pub const fn is_negative(&self) -> bool {
        self.micros < 0
    }

    /// True if this duration is exactly zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        self.micros == 0
    }

    /// Clamps a negative duration to zero.
    #[inline]
    pub fn max_zero(self) -> Duration {
        if self.micros < 0 {
            Duration::ZERO
        } else {
            self
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction clamped at zero (like `std`'s
    /// `Duration::saturating_sub` for unsigned durations).
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration::from_micros((self.micros - other.micros).max(0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        Instant::from_micros(self.micros + rhs.micros)
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, rhs: Duration) -> Instant {
        Instant::from_micros(self.micros - rhs.micros)
    }
}

impl SubAssign<Duration> for Instant {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.micros -= rhs.micros;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        Duration::from_micros(self.micros - rhs.micros)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration::from_micros(self.micros + rhs.micros)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration::from_micros(self.micros - rhs.micros)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.micros -= rhs.micros;
    }
}

impl Neg for Duration {
    type Output = Duration;
    #[inline]
    fn neg(self) -> Duration {
        Duration::from_micros(-self.micros)
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: i64) -> Duration {
        Duration::from_micros(self.micros * rhs)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_micros((self.micros as f64 * rhs).round() as i64)
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: i64) -> Duration {
        Duration::from_micros(self.micros / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.micros as f64 / rhs.micros as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_construction_roundtrips() {
        assert_eq!(Instant::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(Instant::from_millis(3).as_micros(), 3_000);
        assert_eq!(Instant::from_micros(42).as_micros(), 42);
        assert_eq!(Instant::from_secs_f64(1.25).as_micros(), 1_250_000);
        assert_eq!(Instant::from_secs_f64(-0.5).as_micros(), -500_000);
    }

    #[test]
    fn duration_construction_roundtrips() {
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
        assert_eq!(Duration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(Duration::from_secs_f64(0.000_001).as_micros(), 1);
    }

    #[test]
    fn rounding_is_nearest_not_truncating() {
        assert_eq!(Duration::from_secs_f64(0.000_000_6).as_micros(), 1);
        assert_eq!(Duration::from_secs_f64(0.000_000_4).as_micros(), 0);
    }

    #[test]
    fn instant_arithmetic() {
        let t = Instant::from_secs(10);
        assert_eq!(t + Duration::from_secs(5), Instant::from_secs(15));
        assert_eq!(t - Duration::from_secs(5), Instant::from_secs(5));
        assert_eq!(Instant::from_secs(15) - t, Duration::from_secs(5));
        assert_eq!(t - Instant::from_secs(15), Duration::from_secs(-5));
        let mut u = t;
        u += Duration::from_secs(1);
        u -= Duration::from_millis(500);
        assert_eq!(u, Instant::from_millis(10_500));
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_secs(4);
        assert_eq!(d + Duration::from_secs(1), Duration::from_secs(5));
        assert_eq!(d - Duration::from_secs(5), Duration::from_secs(-1));
        assert_eq!(-d, Duration::from_secs(-4));
        assert_eq!(d * 3, Duration::from_secs(12));
        assert_eq!(d * 0.5, Duration::from_secs(2));
        assert_eq!(d / 2, Duration::from_secs(2));
        assert_eq!(d / Duration::from_secs(8), 0.5);
    }

    #[test]
    fn duration_clamping_helpers() {
        assert!(Duration::from_secs(-1).is_negative());
        assert_eq!(Duration::from_secs(-1).max_zero(), Duration::ZERO);
        assert_eq!(Duration::from_secs(1).max_zero(), Duration::from_secs(1));
        assert_eq!(Duration::from_secs(1).saturating_sub(Duration::from_secs(2)), Duration::ZERO);
        assert_eq!(
            Duration::from_secs(3).saturating_sub(Duration::from_secs(2)),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn min_max_helpers() {
        let a = Instant::from_secs(1);
        let b = Instant::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = Duration::from_secs(1);
        let y = Duration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn since_is_signed() {
        let a = Instant::from_secs(1);
        let b = Instant::from_secs(3);
        assert_eq!(b.since(a), Duration::from_secs(2));
        assert_eq!(a.since(b), Duration::from_secs(-2));
    }

    #[test]
    fn sentinels_are_far_apart_but_do_not_overflow() {
        let far = Instant::FAR_FUTURE + Duration::FOREVER;
        assert!(far.as_micros() > 0); // no wrap-around
        assert!(Instant::FAR_FUTURE > Instant::from_secs(1_000_000_000));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", Instant::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", Duration::from_micros(-250)), "-0.000250s");
    }
}
