//! The [`Trace`] container: a time-ordered sequence of packets.
//!
//! A `Trace` is the unit every tailwise component exchanges: workload
//! generators produce them, the I/O module persists them, the simulation
//! engine consumes them. The container enforces the single invariant the rest
//! of the system relies on — *timestamps are non-decreasing* — at
//! construction time, so downstream code never re-validates.

use core::fmt;
use std::collections::BTreeMap;

use crate::error::TraceError;
use crate::packet::{AppId, Direction, Packet};
use crate::time::{Duration, Instant};

/// A validated, time-ordered packet trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    packets: Vec<Packet>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace { packets: Vec::new() }
    }

    /// Builds a trace from packets that are already sorted by timestamp.
    ///
    /// Returns [`TraceError::OutOfOrder`] if any packet precedes its
    /// predecessor. Ties (equal timestamps) are allowed: real captures
    /// contain them and the simulator treats them as a zero-length gap.
    pub fn from_sorted(packets: Vec<Packet>) -> Result<Trace, TraceError> {
        for (i, w) in packets.windows(2).enumerate() {
            if w[1].ts < w[0].ts {
                return Err(TraceError::OutOfOrder { index: i + 1, ts: w[1].ts, prev: w[0].ts });
            }
        }
        Ok(Trace { packets })
    }

    /// Builds a trace from packets in arbitrary order, sorting them
    /// (stably) by timestamp.
    pub fn from_unsorted(mut packets: Vec<Packet>) -> Trace {
        packets.sort_by_key(|p| p.ts);
        Trace { packets }
    }

    /// Appends a packet, which must not precede the current last packet.
    pub fn push(&mut self, p: Packet) -> Result<(), TraceError> {
        if let Some(last) = self.packets.last() {
            if p.ts < last.ts {
                return Err(TraceError::OutOfOrder {
                    index: self.packets.len(),
                    ts: p.ts,
                    prev: last.ts,
                });
            }
        }
        self.packets.push(p);
        Ok(())
    }

    /// The packets, in time order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterator over the packets.
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.packets.iter()
    }

    /// Timestamp of the first packet, if any.
    pub fn start(&self) -> Option<Instant> {
        self.packets.first().map(|p| p.ts)
    }

    /// Timestamp of the last packet, if any.
    pub fn end(&self) -> Option<Instant> {
        self.packets.last().map(|p| p.ts)
    }

    /// Time between the first and last packet (zero for traces with fewer
    /// than two packets).
    pub fn span(&self) -> Duration {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s,
            _ => Duration::ZERO,
        }
    }

    /// Total bytes in the given direction.
    pub fn bytes(&self, dir: Direction) -> u64 {
        self.packets.iter().filter(|p| p.dir == dir).map(|p| p.len as u64).sum()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.len as u64).sum()
    }

    /// Successive inter-arrival gaps: element `i` is `ts[i+1] - ts[i]`.
    ///
    /// Length is `len() - 1` (empty for traces with fewer than two packets).
    pub fn gaps(&self) -> Vec<Duration> {
        self.packets.windows(2).map(|w| w[1].ts - w[0].ts).collect()
    }

    /// Returns a copy of the trace with every timestamp rebased so the first
    /// packet sits at `Instant::ZERO`.
    pub fn rebased(&self) -> Trace {
        let Some(start) = self.start() else { return Trace::new() };
        let shift = Instant::ZERO - start;
        Trace { packets: self.packets.iter().map(|p| p.shifted(shift)).collect() }
    }

    /// Returns the sub-trace with timestamps in `[from, to)`.
    pub fn slice(&self, from: Instant, to: Instant) -> Trace {
        let lo = self.packets.partition_point(|p| p.ts < from);
        let hi = self.packets.partition_point(|p| p.ts < to);
        Trace { packets: self.packets[lo..hi].to_vec() }
    }

    /// Returns the sub-trace belonging to one application.
    pub fn filter_app(&self, app: AppId) -> Trace {
        Trace { packets: self.packets.iter().copied().filter(|p| p.app == app).collect() }
    }

    /// Returns the set of distinct application ids present, with packet
    /// counts, in id order.
    pub fn apps(&self) -> Vec<(AppId, usize)> {
        let mut counts: BTreeMap<AppId, usize> = BTreeMap::new();
        for p in &self.packets {
            *counts.entry(p.app).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Merges several traces into one time-ordered trace (k-way merge).
    ///
    /// This is how multi-application user traces are assembled from
    /// per-application generator output. The merge is stable: packets with
    /// equal timestamps keep the order of the input list.
    pub fn merge<I>(traces: I) -> Trace
    where
        I: IntoIterator<Item = Trace>,
    {
        // Simple concatenate-and-stable-sort; input traces are each sorted,
        // and for the trace sizes tailwise handles (≤ tens of millions of
        // packets) sort's O(n log n) on mostly-sorted data is effectively
        // linear and far simpler than a heap-based k-way merge.
        let mut all: Vec<Packet> = Vec::new();
        for t in traces {
            all.extend_from_slice(&t.packets);
        }
        all.sort_by_key(|p| p.ts);
        Trace { packets: all }
    }

    /// Basic summary statistics, for logging and examples.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            packets: self.len(),
            up_bytes: self.bytes(Direction::Up),
            down_bytes: self.bytes(Direction::Down),
            span: self.span(),
            apps: self.apps().len(),
        }
    }
}

impl IntoIterator for Trace {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Packet;
    type IntoIter = core::slice::Iter<'a, Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

/// Headline statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total number of packets.
    pub packets: usize,
    /// Total uplink bytes.
    pub up_bytes: u64,
    /// Total downlink bytes.
    pub down_bytes: u64,
    /// Time between first and last packet.
    pub span: Duration,
    /// Number of distinct application ids.
    pub apps: usize,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} packets, {} B up / {} B down over {} ({} apps)",
            self.packets, self.up_bytes, self.down_bytes, self.span, self.apps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ms: i64) -> Packet {
        Packet::new(Instant::from_millis(ms), Direction::Up, 100)
    }

    #[test]
    fn from_sorted_accepts_ties_and_rejects_regressions() {
        assert!(Trace::from_sorted(vec![pkt(0), pkt(0), pkt(5)]).is_ok());
        let err = Trace::from_sorted(vec![pkt(5), pkt(0)]).unwrap_err();
        match err {
            TraceError::OutOfOrder { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn from_unsorted_sorts() {
        let t = Trace::from_unsorted(vec![pkt(5), pkt(1), pkt(3)]);
        let ts: Vec<i64> = t.iter().map(|p| p.ts.as_millis()).collect();
        assert_eq!(ts, vec![1, 3, 5]);
    }

    #[test]
    fn push_enforces_order() {
        let mut t = Trace::new();
        t.push(pkt(10)).unwrap();
        t.push(pkt(10)).unwrap();
        assert!(t.push(pkt(5)).is_err());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn span_and_gaps() {
        let t = Trace::from_sorted(vec![pkt(0), pkt(250), pkt(1000)]).unwrap();
        assert_eq!(t.span(), Duration::from_millis(1000));
        assert_eq!(t.gaps(), vec![Duration::from_millis(250), Duration::from_millis(750)]);
        assert_eq!(Trace::new().span(), Duration::ZERO);
        assert!(Trace::new().gaps().is_empty());
    }

    #[test]
    fn byte_accounting_by_direction() {
        let t = Trace::from_sorted(vec![
            Packet::new(Instant::ZERO, Direction::Up, 10),
            Packet::new(Instant::from_millis(1), Direction::Down, 20),
            Packet::new(Instant::from_millis(2), Direction::Down, 30),
        ])
        .unwrap();
        assert_eq!(t.bytes(Direction::Up), 10);
        assert_eq!(t.bytes(Direction::Down), 50);
        assert_eq!(t.total_bytes(), 60);
    }

    #[test]
    fn rebase_moves_first_packet_to_zero() {
        let t = Trace::from_sorted(vec![pkt(500), pkt(700)]).unwrap();
        let r = t.rebased();
        assert_eq!(r.start(), Some(Instant::ZERO));
        assert_eq!(r.end(), Some(Instant::from_millis(200)));
        assert_eq!(r.span(), t.span());
    }

    #[test]
    fn slice_is_half_open() {
        let t = Trace::from_sorted(vec![pkt(0), pkt(100), pkt(200), pkt(300)]).unwrap();
        let s = t.slice(Instant::from_millis(100), Instant::from_millis(300));
        let ts: Vec<i64> = s.iter().map(|p| p.ts.as_millis()).collect();
        assert_eq!(ts, vec![100, 200]);
    }

    #[test]
    fn merge_interleaves_and_keeps_order() {
        let a = Trace::from_sorted(vec![pkt(0), pkt(100)]).unwrap();
        let b = Trace::from_sorted(vec![pkt(50), pkt(150)]).unwrap();
        let m = Trace::merge([a, b]);
        let ts: Vec<i64> = m.iter().map(|p| p.ts.as_millis()).collect();
        assert_eq!(ts, vec![0, 50, 100, 150]);
    }

    #[test]
    fn app_filter_and_counts() {
        let t = Trace::from_sorted(vec![
            pkt(0).with_app(AppId(1)),
            pkt(1).with_app(AppId(2)),
            pkt(2).with_app(AppId(1)),
        ])
        .unwrap();
        assert_eq!(t.apps(), vec![(AppId(1), 2), (AppId(2), 1)]);
        assert_eq!(t.filter_app(AppId(1)).len(), 2);
        assert_eq!(t.filter_app(AppId(9)).len(), 0);
    }

    #[test]
    fn summary_reports_all_fields() {
        let t = Trace::from_sorted(vec![
            Packet::new(Instant::ZERO, Direction::Up, 10).with_app(AppId(1)),
            Packet::new(Instant::from_secs(1), Direction::Down, 20).with_app(AppId(2)),
        ])
        .unwrap();
        let s = t.summary();
        assert_eq!(s.packets, 2);
        assert_eq!(s.up_bytes, 10);
        assert_eq!(s.down_bytes, 20);
        assert_eq!(s.span, Duration::from_secs(1));
        assert_eq!(s.apps, 2);
        assert!(format!("{s}").contains("2 packets"));
    }
}
