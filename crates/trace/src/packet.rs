//! Packet records: the atoms of a trace.
//!
//! The paper's algorithms consume tcpdump captures reduced to *(timestamp,
//! direction, length)* triples (§4, §6.1). We additionally carry a `flow`
//! identifier (so session/burst logic can distinguish concurrent connections)
//! and an `app` tag (so multi-application user traces can be decomposed, as in
//! Figure 1 and Figure 9). Neither field is required by the control
//! algorithms themselves.

use core::fmt;

use crate::time::Instant;

/// Direction of a packet relative to the mobile device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Sent by the device (uplink).
    Up,
    /// Received by the device (downlink).
    Down,
}

impl Direction {
    /// All directions, in a stable order.
    pub const ALL: [Direction; 2] = [Direction::Up, Direction::Down];

    /// Single-character code used by the CSV trace format (`U`/`D`).
    pub fn code(&self) -> char {
        match self {
            Direction::Up => 'U',
            Direction::Down => 'D',
        }
    }

    /// Parses the single-character code used by the CSV trace format.
    pub fn from_code(c: char) -> Option<Direction> {
        match c {
            'U' | 'u' => Some(Direction::Up),
            'D' | 'd' => Some(Direction::Down),
            _ => None,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Up => write!(f, "up"),
            Direction::Down => write!(f, "down"),
        }
    }
}

/// Identifier of the application that produced a packet.
///
/// `AppId(0)` is reserved for "unattributed". Workload generators assign
/// stable ids per application model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u16);

impl AppId {
    /// The "unattributed" application id.
    pub const UNKNOWN: AppId = AppId(0);
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// A single captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp relative to the trace epoch.
    pub ts: Instant,
    /// Direction relative to the device.
    pub dir: Direction,
    /// Length in bytes (link-layer payload; exact framing does not matter to
    /// the energy model, which is time-based).
    pub len: u32,
    /// Flow (connection) identifier; 0 if unknown.
    pub flow: u32,
    /// Application that produced the packet; [`AppId::UNKNOWN`] if unknown.
    pub app: AppId,
}

impl Packet {
    /// Creates a packet with no flow/app attribution.
    pub fn new(ts: Instant, dir: Direction, len: u32) -> Packet {
        Packet { ts, dir, len, flow: 0, app: AppId::UNKNOWN }
    }

    /// Returns a copy with the flow id replaced.
    pub fn with_flow(mut self, flow: u32) -> Packet {
        self.flow = flow;
        self
    }

    /// Returns a copy with the application id replaced.
    pub fn with_app(mut self, app: AppId) -> Packet {
        self.app = app;
        self
    }

    /// Returns a copy shifted later in time by `delta` (negative shifts are
    /// allowed). Used by MakeActive-style session delaying.
    pub fn shifted(mut self, delta: crate::time::Duration) -> Packet {
        self.ts += delta;
        self
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}B flow={} {}", self.ts, self.dir, self.len, self.flow, self.app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn direction_codes_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_code(d.code()), Some(d));
        }
        assert_eq!(Direction::from_code('u'), Some(Direction::Up));
        assert_eq!(Direction::from_code('x'), None);
    }

    #[test]
    fn packet_builders() {
        let p =
            Packet::new(Instant::from_secs(1), Direction::Up, 100).with_flow(7).with_app(AppId(3));
        assert_eq!(p.flow, 7);
        assert_eq!(p.app, AppId(3));
        assert_eq!(p.len, 100);
    }

    #[test]
    fn packet_shift_moves_timestamp_only() {
        let p = Packet::new(Instant::from_secs(1), Direction::Down, 64);
        let q = p.shifted(Duration::from_millis(1_500));
        assert_eq!(q.ts, Instant::from_millis(2_500));
        assert_eq!(q.len, p.len);
        assert_eq!(q.dir, p.dir);
        let r = q.shifted(Duration::from_millis(-2_500));
        assert_eq!(r.ts, Instant::ZERO);
    }

    #[test]
    fn display_is_humane() {
        let p = Packet::new(Instant::from_millis(1500), Direction::Up, 40);
        let s = format!("{p}");
        assert!(s.contains("1.500000s"));
        assert!(s.contains("up"));
        assert!(s.contains("40B"));
    }
}
