//! End-to-end cell-topology fleets: the two-pass runner's acceptance
//! claims.
//!
//! * A multi-cell fleet run reports per-cell signaling load (peak
//!   msgs/sec, overload seconds, grants/denials) **bit-identically** at
//!   any thread count, including the rendered text.
//! * The degenerate configuration — one cell, always-accept release,
//!   unlimited capacity — reproduces the radio-isolated fleet report's
//!   deterministic aggregates exactly, at 1, 2, and 8 threads.
//! * Corpus replays run through the same cell path: a `fleet
//!   synth`-materialized corpus under a cell topology matches its
//!   synthetic twin bit for bit.
//! * Rate-limited cells deny requests, and denials cost energy.

use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    cell_of, run, run_source, run_source_sweep, synth_corpus, CellTopology, CorpusScenario,
    FleetReport, ReleaseSpec, Scenario, SourceSet, SweepAxis, UserSource,
};
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::time::Duration;
use tailwise_trace::TraceFormat;
use tailwise_workload::apps::AppKind;

fn base_scenario(users: u64) -> Scenario {
    let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.master_seed = 0xCE11;
    s.shard_size = 13; // ragged last shard
    s.sim.window_capacity = 25; // smaller predictor window: CI speed
    s.app_mix = vec![(AppKind::Im, 1.0)];
    s.carrier_mix = vec![(CarrierProfile::verizon_lte(), 2.0), (CarrierProfile::att_hspa(), 1.0)];
    s
}

/// The deterministic fields the radio-isolated and cell paths must
/// agree on when the topology is a no-op (signaling/source aside).
fn assert_same_aggregates(a: &FleetReport, b: &FleetReport) {
    assert_eq!(a.users, b.users);
    assert_eq!(a.user_days, b.user_days);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    assert_eq!(a.baseline_energy_j.to_bits(), b.baseline_energy_j.to_bits());
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.baseline_switches, b.baseline_switches);
    assert_eq!(a.false_switches, b.false_switches);
    assert_eq!(a.missed_switches, b.missed_switches);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.savings, b.savings);
    assert_eq!(a.session_delays, b.session_delays);
}

#[test]
fn unlimited_single_cell_matches_radio_isolated_exactly() {
    let isolated = base_scenario(60);
    let mut celled = isolated.clone();
    celled.cells = Some(CellTopology::new(1));

    let reference = run(&isolated, 4);
    for threads in [1, 2, 8] {
        let report = run(&celled, threads);
        assert_same_aggregates(&report, &reference);
        let signaling = report.signaling.as_ref().expect("cell runs carry signaling");
        assert_eq!(signaling.cells.len(), 1);
        assert_eq!(signaling.cells[0].users, 60);
        // Always-accept: every request granted, none denied.
        assert_eq!(signaling.denied(), 0);
        assert!(signaling.granted() > 0);
        assert!(signaling.peak_messages_per_s() > 0);
        assert_eq!(signaling.overload_seconds(), 0, "no capacity configured");
    }
}

#[test]
fn multi_cell_reports_are_bit_identical_at_any_thread_count() {
    let mut scenario = base_scenario(60);
    scenario.cells = Some(CellTopology {
        cells: 5,
        capacity_per_s: Some(60),
        release: ReleaseSpec::RateLimited { min_interval: Duration::from_secs(8) },
        ..CellTopology::new(5)
    });

    let single = run(&scenario, 1);
    let double = run(&scenario, 2);
    let octo = run(&scenario, 8);
    assert_eq!(single, double);
    assert_eq!(single, octo);

    // Rendered reports agree byte for byte once the measured wall-clock
    // fields are normalized away.
    let rendered = |r: &FleetReport| {
        let mut r = r.clone();
        r.wall_seconds = 0.0;
        r.threads = 1;
        r.render()
    };
    assert_eq!(rendered(&single), rendered(&double));
    assert_eq!(rendered(&single), rendered(&octo));

    let signaling = single.signaling.as_ref().unwrap();
    assert_eq!(signaling.cells.len(), 5);
    // Every user landed in the cell the pure assignment function names.
    let users_per_cell: Vec<u64> = signaling.cells.iter().map(|c| c.users).collect();
    let mut expect = vec![0u64; 5];
    for index in 0..scenario.users {
        expect[cell_of(scenario.master_seed, index, 5) as usize] += 1;
    }
    assert_eq!(users_per_cell, expect);
    assert_eq!(users_per_cell.iter().sum::<u64>(), 60);

    // An 8-second shared rate limit against chatty IM users must deny.
    assert!(signaling.denied() > 0, "rate limit never engaged");
    assert!(signaling.granted() > 0);

    // Denials push devices back onto timers: energy exceeds the
    // free-release run of the same population.
    let mut free = scenario.clone();
    free.cells = Some(CellTopology::new(5));
    let free = run(&free, 4);
    assert!(single.energy_j > free.energy_j, "denials must cost energy");
    assert_eq!(
        free.energy_j.to_bits(),
        run(&base_scenario(60), 4).energy_j.to_bits(),
        "always-accept cells are energy-transparent"
    );
}

#[test]
fn corpus_replay_through_cells_matches_the_synthetic_run() {
    let mut scenario = base_scenario(40);
    scenario.cells = Some(CellTopology {
        capacity_per_s: Some(80),
        release: ReleaseSpec::RateLimited { min_interval: Duration::from_secs(5) },
        ..CellTopology::new(3)
    });

    let dir = std::env::temp_dir().join(format!("tailwise-cell-it-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // The corpus is synthesized from the cell-free twin (cells don't
    // change traces), then replayed under the same topology.
    let mut synth_twin = scenario.clone();
    synth_twin.cells = None;
    assert_eq!(synth_corpus(&synth_twin, &dir, TraceFormat::Binary, 4).unwrap(), 40);

    let mut corpus = CorpusScenario::new(&dir, scenario.scheme, CarrierProfile::verizon_lte());
    corpus.carrier_mix = scenario.carrier_mix.clone();
    corpus.master_seed = scenario.master_seed;
    corpus.shard_size = scenario.shard_size;
    corpus.sim = scenario.sim.clone();
    corpus.cells = scenario.cells.clone();

    let replayed = run_source(&UserSource::Corpus(corpus.clone()), 2).unwrap();
    let synthetic = run(&scenario, 4);
    assert_same_aggregates(&replayed, &synthetic);
    assert_eq!(replayed.signaling, synthetic.signaling, "per-cell loads must match");
    // And the corpus cell run is itself thread-count invariant.
    assert_eq!(replayed, run_source(&UserSource::Corpus(corpus), 8).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cell_scheme_sweeps_carry_signaling_columns() {
    let mut scenario = base_scenario(24);
    scenario.cells = Some(CellTopology { capacity_per_s: Some(40), ..CellTopology::new(2) });
    let set = SourceSet {
        source: UserSource::Synthetic(scenario.clone()),
        axes: vec![SweepAxis::Schemes(vec![Scheme::StatusQuo, Scheme::MakeIdle, Scheme::Oracle])],
    };
    let sweep = run_source_sweep(&set, 2).unwrap();
    assert_eq!(sweep.rows.len(), 3);
    for row in &sweep.rows {
        let signaling = row.report.signaling.as_ref().expect("every cell run has signaling");
        assert_eq!(signaling.cells.len(), 2);
        assert_eq!(signaling.capacity_per_s, Some(40));
        // Each cell reproduces standalone at a different thread count.
        assert_eq!(row.report, run_source(&row.source, 1).unwrap(), "{}", row.label);
    }
    // Status quo never requests fast dormancy; MakeIdle does.
    assert_eq!(sweep.rows[0].report.signaling.as_ref().unwrap().granted(), 0);
    assert!(sweep.rows[1].report.signaling.as_ref().unwrap().granted() > 0);
    let table = sweep.render();
    assert!(table.contains("peak m/s"), "{table}");
    assert!(table.contains("denied"), "{table}");
    assert!(table.contains("dly p95"), "{table}");
}

#[test]
fn makeactive_delays_surface_as_population_percentiles() {
    // The MakeActive accounting satellite: a batching fleet reports
    // session-delay percentiles; a plain MakeIdle fleet reports none.
    let mut scenario = base_scenario(16);
    scenario.scheme = Scheme::MakeIdleActiveLearn;
    let report = run(&scenario, 4);
    assert!(report.session_delays.count() > 0, "learning batcher never delayed a session");
    let p50 = report.session_delay_percentile(0.50).unwrap();
    let p95 = report.session_delay_percentile(0.95).unwrap();
    let p99 = report.session_delay_percentile(0.99).unwrap();
    assert!(p50 <= p95 && p95 <= p99, "percentiles must be monotone: {p50} {p95} {p99}");
    assert!(report.render().contains("sessions held by MakeActive"), "{}", report.render());
    // Bit-identical across thread counts, like every other aggregate.
    assert_eq!(report.session_delays, run(&scenario, 1).session_delays);

    let plain = run(&base_scenario(16), 4);
    assert_eq!(plain.session_delays.count(), 0);
    assert_eq!(plain.session_delay_percentile(0.95), None);
}
