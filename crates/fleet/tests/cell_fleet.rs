//! End-to-end hierarchical-network fleets: the two-pass runner's
//! acceptance claims.
//!
//! * A multi-RNC, multi-cell fleet run reports per-cell and per-RNC
//!   signaling load (peak msgs/sec, overload seconds, grants/denials,
//!   RNC-attributed denials) **bit-identically** at any thread count,
//!   including the rendered text.
//! * The degenerate configuration — one RNC, one cell, always-admit at
//!   both levels, unlimited budgets — reproduces the radio-isolated
//!   fleet report's deterministic aggregates exactly, at 1, 2, and 8
//!   threads.
//! * Corpus replays run through the same topology path: a `fleet
//!   synth`-materialized corpus under a network topology matches its
//!   synthetic twin bit for bit.
//! * Rate-limited cells deny requests, and denials cost energy.
//! * Load-reactive RNC admission measurably cuts RNC overload seconds
//!   versus `always` on a storm population — the energy/signaling
//!   trade adjudicated at the controller.

use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    cell_of, rnc_of_cell, run, run_source, run_source_sweep, synth_corpus, AdmissionSpec,
    CorpusScenario, FleetReport, NetworkTopology, Scenario, SourceSet, SweepAxis, UserSource,
};
use tailwise_radio::profile::CarrierProfile;
use tailwise_radio::signaling::SignalingBudget;
use tailwise_trace::time::Duration;
use tailwise_trace::TraceFormat;
use tailwise_workload::apps::AppKind;

fn base_scenario(users: u64) -> Scenario {
    let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.master_seed = 0xCE11;
    s.shard_size = 13; // ragged last shard
    s.sim.window_capacity = 25; // smaller predictor window: CI speed
    s.app_mix = vec![(AppKind::Im, 1.0)];
    s.carrier_mix = vec![(CarrierProfile::verizon_lte(), 2.0), (CarrierProfile::att_hspa(), 1.0)];
    s
}

/// The deterministic fields the radio-isolated and topology paths must
/// agree on when the topology is a no-op (signaling/source aside).
fn assert_same_aggregates(a: &FleetReport, b: &FleetReport) {
    assert_eq!(a.users, b.users);
    assert_eq!(a.user_days, b.user_days);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    assert_eq!(a.baseline_energy_j.to_bits(), b.baseline_energy_j.to_bits());
    assert_eq!(a.switches, b.switches);
    assert_eq!(a.baseline_switches, b.baseline_switches);
    assert_eq!(a.false_switches, b.false_switches);
    assert_eq!(a.missed_switches, b.missed_switches);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.savings, b.savings);
    assert_eq!(a.session_delays, b.session_delays);
}

#[test]
fn unlimited_single_rnc_single_cell_matches_radio_isolated_exactly() {
    let isolated = base_scenario(60);
    let mut celled = isolated.clone();
    celled.cells = Some(NetworkTopology::new(1));

    let reference = run(&isolated, 4);
    for threads in [1, 2, 8] {
        let report = run(&celled, threads);
        assert_same_aggregates(&report, &reference);
        let signaling = report.signaling.as_ref().expect("topology runs carry signaling");
        assert_eq!(signaling.cells.len(), 1);
        assert_eq!(signaling.rncs.len(), 1);
        assert_eq!(signaling.cells[0].users, 60);
        assert_eq!(signaling.rncs[0].users, 60);
        assert_eq!(signaling.rncs[0].cells, 1);
        // Always-admit at both levels: every request granted.
        assert_eq!(signaling.denied(), 0);
        assert_eq!(signaling.denied_by_rnc(), 0);
        assert!(signaling.granted() > 0);
        assert!(signaling.peak_messages_per_s() > 0);
        assert_eq!(signaling.overload_seconds(), 0, "no capacity configured");
        assert_eq!(signaling.rnc_overload_seconds(), 0);
        // One RNC over one cell: the RNC load *is* the cell load.
        assert_eq!(signaling.rncs[0].total_messages, signaling.cells[0].total_messages);
        assert_eq!(signaling.rncs[0].peak_messages_per_s, signaling.cells[0].peak_messages_per_s);
    }
}

#[test]
fn multi_cell_reports_are_bit_identical_at_any_thread_count() {
    let mut scenario = base_scenario(60);
    let mut topology = NetworkTopology::new(5);
    topology.cell_budget = SignalingBudget::per_second(60);
    topology.cell_admission = AdmissionSpec::RateLimited { min_interval: Duration::from_secs(8) };
    scenario.cells = Some(topology);

    let single = run(&scenario, 1);
    let double = run(&scenario, 2);
    let octo = run(&scenario, 8);
    assert_eq!(single, double);
    assert_eq!(single, octo);

    // Rendered reports agree byte for byte once the measured wall-clock
    // fields are normalized away.
    let rendered = |r: &FleetReport| {
        let mut r = r.clone();
        r.wall_seconds = 0.0;
        r.threads = 1;
        r.render()
    };
    assert_eq!(rendered(&single), rendered(&double));
    assert_eq!(rendered(&single), rendered(&octo));

    let signaling = single.signaling.as_ref().unwrap();
    assert_eq!(signaling.cells.len(), 5);
    assert_eq!(signaling.rncs.len(), 1);
    // Every user landed in the cell the pure assignment function names.
    let users_per_cell: Vec<u64> = signaling.cells.iter().map(|c| c.users).collect();
    let mut expect = vec![0u64; 5];
    for index in 0..scenario.users {
        expect[cell_of(scenario.master_seed, index, 5) as usize] += 1;
    }
    assert_eq!(users_per_cell, expect);
    assert_eq!(users_per_cell.iter().sum::<u64>(), 60);

    // An 8-second shared rate limit against chatty IM users must deny —
    // and with an always-admitting RNC, no denial is RNC-attributed.
    assert!(signaling.denied() > 0, "rate limit never engaged");
    assert!(signaling.granted() > 0);
    assert_eq!(signaling.denied_by_rnc(), 0);

    // Denials push devices back onto timers: energy exceeds the
    // free-release run of the same population.
    let mut free = scenario.clone();
    free.cells = Some(NetworkTopology::new(5));
    let free = run(&free, 4);
    assert!(single.energy_j > free.energy_j, "denials must cost energy");
    assert_eq!(
        free.energy_j.to_bits(),
        run(&base_scenario(60), 4).energy_j.to_bits(),
        "always-admit topologies are energy-transparent"
    );
}

#[test]
fn three_rnc_twelve_cell_hierarchy_is_bit_identical_at_any_thread_count() {
    // The full hierarchy: 12 cells in contiguous blocks of 4 under 3
    // RNCs, budgets and a load-reactive admission policy at the RNC
    // level, rate-limited cells below.
    let mut scenario = base_scenario(72);
    let mut topology = NetworkTopology::with_rncs(3, 12);
    topology.cell_budget = SignalingBudget::per_second(90);
    topology.rnc_budget = SignalingBudget::per_second(200);
    topology.cell_admission =
        AdmissionSpec::RateLimited { min_interval: Duration::from_secs_f64(0.5) };
    topology.rnc_admission = AdmissionSpec::LoadReactive { watermark_per_s: 2, window_s: 5 };
    scenario.cells = Some(topology);

    let single = run(&scenario, 1);
    let double = run(&scenario, 2);
    let octo = run(&scenario, 8);
    assert_eq!(single, double);
    assert_eq!(single, octo);
    let rendered = |r: &FleetReport| {
        let mut r = r.clone();
        r.wall_seconds = 0.0;
        r.threads = 1;
        r.render()
    };
    assert_eq!(rendered(&single), rendered(&double));
    assert_eq!(rendered(&single), rendered(&octo));

    let signaling = single.signaling.as_ref().unwrap();
    assert_eq!(signaling.cells.len(), 12);
    assert_eq!(signaling.rncs.len(), 3);
    // RNC aggregates are exactly the fold of their contiguous member
    // cells.
    for (r, rnc) in signaling.rncs.iter().enumerate() {
        assert_eq!(rnc.cells, 4);
        let members = signaling
            .cells
            .iter()
            .enumerate()
            .filter(|(c, _)| rnc_of_cell(*c as u64, 12, 3) == r as u64);
        let (mut users, mut granted, mut denied, mut messages) = (0, 0, 0, 0);
        for (_, cell) in members {
            users += cell.users;
            granted += cell.granted;
            denied += cell.denied;
            messages += cell.total_messages;
        }
        assert_eq!(rnc.users, users);
        assert_eq!(rnc.granted, granted);
        assert_eq!(rnc.denied, denied);
        assert_eq!(rnc.total_messages, messages);
        // Summed-per-second peak is at least any single cell's peak and
        // at most the cells' message total.
        assert!(rnc.peak_messages_per_s <= rnc.total_messages);
    }
    // The tight reactive watermark must attribute denials to the RNC.
    assert!(signaling.denied_by_rnc() > 0, "reactive RNC admission never engaged");
    assert!(signaling.granted() > 0);
    // The rendered report names the hierarchy.
    assert!(rendered(&single).contains("3 RNC(s) over 12 cell(s)"), "{}", rendered(&single));
}

#[test]
fn reactive_rnc_admission_cuts_overload_versus_always() {
    // The ISSUE acceptance claim at test scale: on a storm population
    // (chatty IM phones whose gaps sit inside the LTE tail window),
    // load-reactive RNC admission sheds enough release→re-promotion
    // cycles to measurably reduce RNC overload seconds versus the
    // paper's always-accept assumption — at the cost of energy.
    let mut scenario = base_scenario(60);
    scenario.carrier_mix = vec![(CarrierProfile::verizon_lte(), 1.0)];
    let mut always = NetworkTopology::with_rncs(1, 4);
    always.rnc_budget = SignalingBudget::per_second(60);
    scenario.cells = Some(always);
    let free = run(&scenario, 4);

    let mut reactive = scenario.clone();
    let topology = reactive.cells.as_mut().unwrap();
    topology.rnc_admission = AdmissionSpec::LoadReactive { watermark_per_s: 1, window_s: 5 };
    let governed = run(&reactive, 4);

    let free_signaling = free.signaling.as_ref().unwrap();
    let governed_signaling = governed.signaling.as_ref().unwrap();
    assert!(
        free_signaling.rnc_overload_seconds() > 0,
        "storm scenario must overload the always-accept RNC"
    );
    assert!(governed_signaling.denied_by_rnc() > 0, "watermark never engaged");
    assert!(
        governed_signaling.rnc_overload_seconds() < free_signaling.rnc_overload_seconds(),
        "reactive admission must cut RNC overload seconds: {} vs {}",
        governed_signaling.rnc_overload_seconds(),
        free_signaling.rnc_overload_seconds()
    );
    assert!(
        governed_signaling.total_messages() < free_signaling.total_messages(),
        "shed releases must shed messages"
    );
    assert!(governed.energy_j > free.energy_j, "shedding load costs device energy");
}

#[test]
fn corpus_replay_through_topology_matches_the_synthetic_run() {
    let mut scenario = base_scenario(40);
    let mut topology = NetworkTopology::with_rncs(2, 3);
    topology.cell_budget = SignalingBudget::per_second(80);
    topology.cell_admission = AdmissionSpec::RateLimited { min_interval: Duration::from_secs(5) };
    topology.rnc_admission = AdmissionSpec::LoadReactive { watermark_per_s: 3, window_s: 2 };
    scenario.cells = Some(topology);

    let dir = std::env::temp_dir().join(format!("tailwise-cell-it-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // The corpus is synthesized from the topology-free twin (topologies
    // don't change traces), then replayed under the same hierarchy.
    let mut synth_twin = scenario.clone();
    synth_twin.cells = None;
    assert_eq!(synth_corpus(&synth_twin, &dir, TraceFormat::Binary, 4).unwrap(), 40);

    let mut corpus = CorpusScenario::new(&dir, scenario.scheme, CarrierProfile::verizon_lte());
    corpus.carrier_mix = scenario.carrier_mix.clone();
    corpus.master_seed = scenario.master_seed;
    corpus.shard_size = scenario.shard_size;
    corpus.sim = scenario.sim.clone();
    corpus.cells = scenario.cells.clone();

    let replayed = run_source(&UserSource::Corpus(corpus.clone()), 2).unwrap();
    let synthetic = run(&scenario, 4);
    assert_same_aggregates(&replayed, &synthetic);
    assert_eq!(replayed.signaling, synthetic.signaling, "per-element loads must match");
    // And the corpus topology run is itself thread-count invariant.
    assert_eq!(replayed, run_source(&UserSource::Corpus(corpus), 8).unwrap());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cell_scheme_sweeps_carry_signaling_columns() {
    let mut scenario = base_scenario(24);
    let mut topology = NetworkTopology::new(2);
    topology.cell_budget = SignalingBudget::per_second(40);
    scenario.cells = Some(topology);
    let set = SourceSet {
        source: UserSource::Synthetic(scenario.clone()),
        axes: vec![SweepAxis::Schemes(vec![Scheme::StatusQuo, Scheme::MakeIdle, Scheme::Oracle])],
    };
    let sweep = run_source_sweep(&set, 2).unwrap();
    assert_eq!(sweep.rows.len(), 3);
    for row in &sweep.rows {
        let signaling = row.report.signaling.as_ref().expect("every topology run has signaling");
        assert_eq!(signaling.cells.len(), 2);
        assert_eq!(signaling.cell_capacity_per_s, Some(40));
        // Each cell reproduces standalone at a different thread count.
        assert_eq!(row.report, run_source(&row.source, 1).unwrap(), "{}", row.label);
    }
    // Status quo never requests fast dormancy; MakeIdle does.
    assert_eq!(sweep.rows[0].report.signaling.as_ref().unwrap().granted(), 0);
    assert!(sweep.rows[1].report.signaling.as_ref().unwrap().granted() > 0);
    let table = sweep.render();
    assert!(table.contains("peak m/s"), "{table}");
    assert!(table.contains("rnc ovl"), "{table}");
    assert!(table.contains("denied"), "{table}");
    assert!(table.contains("dly p95"), "{table}");
}

#[test]
fn admission_sweeps_vary_the_rnc_policy_only() {
    let mut scenario = base_scenario(24);
    scenario.carrier_mix = vec![(CarrierProfile::verizon_lte(), 1.0)];
    let mut topology = NetworkTopology::with_rncs(1, 2);
    topology.rnc_budget = SignalingBudget::per_second(60);
    scenario.cells = Some(topology);
    let set = SourceSet {
        source: UserSource::Synthetic(scenario),
        axes: vec![SweepAxis::Admission(vec![
            AdmissionSpec::Always,
            AdmissionSpec::LoadReactive { watermark_per_s: 1, window_s: 5 },
        ])],
    };
    let sweep = run_source_sweep(&set, 2).unwrap();
    assert_eq!(sweep.rows.len(), 2);
    assert_eq!(sweep.rows[0].label, "admission=always");
    assert_eq!(sweep.rows[1].label, "admission=reactive:1:5");
    // Both rows reproduce standalone, and the reactive row denies at
    // the RNC while the always row cannot.
    for row in &sweep.rows {
        assert_eq!(row.report, run_source(&row.source, 1).unwrap(), "{}", row.label);
    }
    assert_eq!(sweep.rows[0].report.signaling.as_ref().unwrap().denied_by_rnc(), 0);
    assert!(sweep.rows[1].report.signaling.as_ref().unwrap().denied_by_rnc() > 0);
    let table = sweep.render();
    assert!(table.contains("admission=reactive:1:5"), "{table}");
}

#[test]
fn makeactive_delays_surface_as_population_percentiles() {
    // The MakeActive accounting satellite: a batching fleet reports
    // session-delay percentiles; a plain MakeIdle fleet reports none.
    let mut scenario = base_scenario(16);
    scenario.scheme = Scheme::MakeIdleActiveLearn;
    let report = run(&scenario, 4);
    assert!(report.session_delays.count() > 0, "learning batcher never delayed a session");
    let p50 = report.session_delay_percentile(0.50).unwrap();
    let p95 = report.session_delay_percentile(0.95).unwrap();
    let p99 = report.session_delay_percentile(0.99).unwrap();
    assert!(p50 <= p95 && p95 <= p99, "percentiles must be monotone: {p50} {p95} {p99}");
    assert!(report.render().contains("sessions held by MakeActive"), "{}", report.render());
    // Bit-identical across thread counts, like every other aggregate.
    assert_eq!(report.session_delays, run(&scenario, 1).session_delays);

    let plain = run(&base_scenario(16), 4);
    assert_eq!(plain.session_delays.count(), 0);
    assert_eq!(plain.session_delay_percentile(0.95), None);
}
