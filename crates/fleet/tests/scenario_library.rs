//! The curated `scenarios/` library stays loadable and runnable.
//!
//! Every `*.toml` in the repo-root `scenarios/` directory must parse,
//! survive a serialize→reparse round trip, and execute through the
//! sharded runner. Runs happen at miniature scale (a handful of users)
//! so the suite stays CI-fast; the files' declared populations are
//! exercised by the real CLI (`tailwise fleet run`) instead. Corpus
//! scenarios run against a fixture corpus synthesized on the fly — no
//! binary trace files live in git.

use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    run, run_source, run_source_sweep, run_sweep, synth_corpus, Scenario, ScenarioSet, SourceSet,
    UserSource,
};
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::TraceFormat;
use tailwise_workload::apps::AppKind;

fn library_files() -> Vec<std::path::PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/ directory exists at the repo root")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|e| e == "toml"))
        .collect();
    files.sort();
    files
}

#[test]
fn library_has_the_curated_minimum() {
    let files = library_files();
    assert!(files.len() >= 5, "curated library shrank to {} files: {files:?}", files.len());
    let names: Vec<String> =
        files.iter().map(|p| p.file_name().unwrap().to_string_lossy().into_owned()).collect();
    // The anchors the README walkthrough and the issue call for.
    for required in [
        "paper_att3g.toml",
        "im_background_fleet.toml",
        "streaming_heavy.toml",
        "scheme_sweep_fig10.toml",
        "stress_200k.toml",
        "corpus_replay.toml",
        "cell_topology.toml",
        "rnc_storm.toml",
        "handoff_storm.toml",
    ] {
        assert!(names.iter().any(|n| n == required), "missing {required}; have {names:?}");
    }
}

#[test]
fn every_library_file_parses_and_round_trips() {
    for path in library_files() {
        let set = SourceSet::from_file(&path)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        if let UserSource::Synthetic(base) = &set.source {
            assert!(base.users > 0, "{}", path.display());
            // Synthetic files also load through the narrower API.
            ScenarioSet::from_file(&path)
                .unwrap_or_else(|e| panic!("{} failed as ScenarioSet: {e}", path.display()));
        }
        assert!(set.expansion_count() >= 1, "{}", path.display());
        let text = set
            .to_toml_string()
            .unwrap_or_else(|e| panic!("{} failed to serialize: {e}", path.display()));
        let again = SourceSet::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("{} reparse failed: {e}", path.display()));
        assert_eq!(again, set, "{} round trip drifted", path.display());
    }
}

#[test]
fn every_library_file_runs_at_miniature_scale() {
    // One tiny fixture corpus shared by every [corpus] library file.
    let fixture =
        std::env::temp_dir().join(format!("tailwise-library-fixture-{}", std::process::id()));
    std::fs::remove_dir_all(&fixture).ok();
    let mut seeder = Scenario::new(4, Scheme::MakeIdle, CarrierProfile::att_hspa());
    seeder.app_mix = vec![(AppKind::Im, 1.0)];
    synth_corpus(&seeder, &fixture, TraceFormat::Binary, 2).expect("fixture corpus synthesizes");

    for path in library_files() {
        let mut set = SourceSet::from_file(&path).expect("parses (covered above)");
        // Shrink the population, keep everything else (mixes, scheme,
        // sim config, sweep structure) exactly as declared on disk.
        let expected_users = match &mut set.source {
            UserSource::Synthetic(base) => {
                base.users = base.users.min(4);
                base.days_per_user = 1;
                base.shard_size = 2;
                base.users
            }
            UserSource::Corpus(base) => {
                // The declared directory is the user's to materialize
                // (see the file's comments); tests point it at the
                // synthesized fixture.
                base.spec.dir = fixture.clone();
                base.shard_size = 2;
                4 // the fixture corpus's file count
            }
        };
        for axis in &mut set.axes {
            if let tailwise_fleet::SweepAxis::Users(sizes) = axis {
                for size in sizes {
                    *size = (*size).min(4);
                }
            }
        }
        if set.is_sweep() {
            let sweep = run_source_sweep(&set, 2)
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", path.display()));
            assert_eq!(sweep.rows.len(), set.expansion_count(), "{}", path.display());
            for row in &sweep.rows {
                assert!(row.report.packets > 0, "{}: empty cell", path.display());
            }
        } else {
            let report = run_source(&set.source, 2)
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", path.display()));
            assert!(report.packets > 0, "{}: empty run", path.display());
            assert_eq!(report.users, expected_users, "{}", path.display());
        }
    }
    std::fs::remove_dir_all(&fixture).ok();
}

#[test]
fn sweep_runner_agrees_with_source_runner_on_synthetic_files() {
    // The legacy synthetic path and the source path stay interchangeable.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/scheme_sweep_fig10.toml");
    let mut set = ScenarioSet::from_file(path).expect("library sweep parses");
    set.base.users = 4;
    set.base.shard_size = 2;
    let via_scenarios = run_sweep(&set, 2);
    let source_set =
        SourceSet { source: UserSource::Synthetic(set.base.clone()), axes: set.axes.clone() };
    let via_sources = run_source_sweep(&source_set, 2).expect("synthetic sweeps are infallible");
    assert_eq!(via_scenarios, via_sources);
    // One standalone spot check (each additional one re-simulates a
    // cell; full per-cell coverage lives in the sweep unit tests).
    let row = &via_scenarios.rows[1];
    let scenario = row.scenario().expect("synthetic row");
    assert_eq!(row.report, run(scenario, 1), "{}", row.label);
}
