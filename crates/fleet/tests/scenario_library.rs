//! The curated `scenarios/` library stays loadable and runnable.
//!
//! Every `*.toml` in the repo-root `scenarios/` directory must parse,
//! survive a serialize→reparse round trip, and execute through the
//! sharded runner. Runs happen at miniature scale (a handful of users)
//! so the suite stays CI-fast; the files' declared populations are
//! exercised by the real CLI (`tailwise fleet run`) instead.

use tailwise_fleet::{run, run_sweep, ScenarioSet};

fn library_files() -> Vec<std::path::PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/ directory exists at the repo root")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|e| e == "toml"))
        .collect();
    files.sort();
    files
}

#[test]
fn library_has_the_curated_minimum() {
    let files = library_files();
    assert!(files.len() >= 5, "curated library shrank to {} files: {files:?}", files.len());
    let names: Vec<String> =
        files.iter().map(|p| p.file_name().unwrap().to_string_lossy().into_owned()).collect();
    // The anchors the README walkthrough and the issue call for.
    for required in [
        "paper_att3g.toml",
        "im_background_fleet.toml",
        "streaming_heavy.toml",
        "scheme_sweep_fig10.toml",
        "stress_200k.toml",
    ] {
        assert!(names.iter().any(|n| n == required), "missing {required}; have {names:?}");
    }
}

#[test]
fn every_library_file_parses_and_round_trips() {
    for path in library_files() {
        let set = ScenarioSet::from_file(&path)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        assert!(set.base.users > 0, "{}", path.display());
        assert!(set.expansion_count() >= 1, "{}", path.display());
        let text = set
            .to_toml_string()
            .unwrap_or_else(|e| panic!("{} failed to serialize: {e}", path.display()));
        let again = ScenarioSet::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("{} reparse failed: {e}", path.display()));
        assert_eq!(again, set, "{} round trip drifted", path.display());
    }
}

#[test]
fn every_library_file_runs_at_miniature_scale() {
    for path in library_files() {
        let mut set = ScenarioSet::from_file(&path).expect("parses (covered above)");
        // Shrink the population, keep everything else (mixes, scheme,
        // sim config, sweep structure) exactly as declared on disk.
        set.base.users = set.base.users.min(4);
        set.base.days_per_user = 1;
        set.base.shard_size = 2;
        for axis in &mut set.axes {
            if let tailwise_fleet::SweepAxis::Users(sizes) = axis {
                for size in sizes {
                    *size = (*size).min(4);
                }
            }
        }
        if set.is_sweep() {
            let sweep = run_sweep(&set, 2);
            assert_eq!(sweep.rows.len(), set.expansion_count(), "{}", path.display());
            for row in &sweep.rows {
                assert!(row.report.packets > 0, "{}: empty cell", path.display());
            }
        } else {
            let report = run(&set.base, 2);
            assert!(report.packets > 0, "{}: empty run", path.display());
            assert_eq!(report.users, set.base.users, "{}", path.display());
        }
    }
}
