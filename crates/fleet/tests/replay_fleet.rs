//! The phase-2 replay memo never changes an answer — only the bill.
//!
//! Pins the replay-memo acceptance claims end-to-end against the
//! library's `rnc_storm.toml` admission sweep (shrunk to CI scale,
//! structure kept exactly as declared on disk):
//!
//! * a memoized sweep — in-memory or disk-backed — produces a
//!   **bit-identical** `SweepReport` (rendered text and
//!   `RunManifest::digest()` included) to the uncached sweep at 1, 2,
//!   and 8 threads, while `replay_hits` shows the reuse happened;
//! * a second sweep over the same cache replays nothing: every user in
//!   every cell hits the memo (`replay_misses == 0`);
//! * a cold on-disk cache spills `.twr` files that an entirely fresh
//!   cache (a later process, conceptually) warm-starts from;
//! * a corrupted or truncated `.twr` degrades to recomputation — the
//!   report stays identical and `replay_fallbacks` counts the save.

use std::path::PathBuf;

use tailwise_fleet::{RequestCache, RunManifest, ScenarioSet, SweepReport};
use tailwise_obs::{Obs, Recorder, StatsRecorder};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tailwise-replay-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The library's RNC-storm admission sweep, shrunk to CI scale. Only
/// the population size and shard size change; the topology, mixes,
/// seed, and `[[sweep]]` axes stay exactly as declared on disk.
fn storm_set() -> ScenarioSet {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/rnc_storm.toml");
    let mut set = ScenarioSet::from_file(path).expect("library storm file parses");
    set.base.users = 24;
    set.base.shard_size = 5; // ragged last shard
    set
}

/// Rendered text with the measured fields (excluded from the
/// determinism contract) normalized away.
fn rendered(sweep: &SweepReport) -> String {
    let mut sweep = sweep.clone();
    for row in &mut sweep.rows {
        row.report.wall_seconds = 0.0;
        row.report.threads = 1;
        row.report.timings = None;
    }
    sweep.render()
}

/// Runs the storm sweep against `cache` under a fresh recorder,
/// returning the report, its manifest digest, and the counters.
fn run_storm(
    threads: usize,
    cache: Option<&RequestCache>,
) -> (SweepReport, u64, tailwise_obs::Snapshot) {
    let set = storm_set();
    let seed = set.base.master_seed;
    let recorder = StatsRecorder::new();
    let obs = Obs { recorder: &recorder, progress: None };
    let sweep = tailwise_fleet::run_sweep_cached(&set, threads, obs, cache);
    let snapshot = recorder.snapshot();
    let digest = RunManifest::for_sweep(&sweep, threads, seed, &snapshot).digest();
    (sweep, digest, snapshot)
}

fn counter(snapshot: &tailwise_obs::Snapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn memoized_sweeps_are_bit_identical_to_uncached_at_1_2_8_threads() {
    let (baseline, base_digest, no_cache) = run_storm(2, None);
    assert!(baseline.rows.len() >= 2, "storm file should sweep admission");
    // Uncached runs never consult the memo, so they emit no replay
    // counters at all — the memo is invisible until a cache exists.
    assert_eq!(counter(&no_cache, "replay_hits"), 0);
    assert_eq!(counter(&no_cache, "replay_misses"), 0);

    let dir = temp_dir("identity");
    for threads in [1usize, 2, 8] {
        // In-memory cache: the first cell populates the memo; later
        // cells replay only the users whose verdicts changed.
        let memory = RequestCache::in_memory();
        let (cached, digest, counters) = run_storm(threads, Some(&memory));
        assert_eq!(baseline, cached, "memory memo, threads={threads}");
        assert_eq!(rendered(&baseline), rendered(&cached), "memory memo, threads={threads}");
        assert_eq!(base_digest, digest, "manifest digest, threads={threads}");
        assert!(counter(&counters, "replay_hits") >= 1, "threads={threads}");
        assert_eq!(counter(&counters, "replay_fallbacks"), 0, "threads={threads}");

        // Disk-backed cache: same contract, plus a .twr spill.
        let disk_dir = dir.join(format!("t{threads}"));
        let disk = RequestCache::with_dir(&disk_dir).unwrap();
        let (cached, digest, counters) = run_storm(threads, Some(&disk));
        assert_eq!(baseline, cached, "disk memo, threads={threads}");
        assert_eq!(rendered(&baseline), rendered(&cached), "disk memo, threads={threads}");
        assert_eq!(base_digest, digest, "disk manifest digest, threads={threads}");
        assert!(counter(&counters, "replay_spills") >= 1, "threads={threads}");
        assert_eq!(counter(&counters, "replay_fallbacks"), 0, "threads={threads}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_sweep_replays_nothing_and_a_fresh_cache_warm_starts_from_disk() {
    let dir = temp_dir("warm");

    // Cold: every user misses once (first cell), later cells hit the
    // users whose verdicts match and replay only the changed ones.
    let cold_cache = RequestCache::with_dir(&dir).unwrap();
    let (cold, cold_digest, cold_counters) = run_storm(2, Some(&cold_cache));
    assert!(counter(&cold_counters, "replay_misses") >= 24, "first cell replays everyone");
    assert!(counter(&cold_counters, "replay_spills") >= 1);
    let spills: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "twr"))
        .collect();
    assert!(!spills.is_empty(), "cold run should spill .twr outcomes");

    // Same cache again: the memo already knows every (user, verdict)
    // pair in the sweep, so the warm run replays nothing at all.
    let (warm, warm_digest, warm_counters) = run_storm(2, Some(&cold_cache));
    assert_eq!(cold, warm);
    assert_eq!(cold_digest, warm_digest);
    assert_eq!(counter(&warm_counters, "replay_misses"), 0, "warm sweep must replay nothing");
    assert!(counter(&warm_counters, "replay_hits") >= 24);
    assert_eq!(counter(&warm_counters, "replay_fallbacks"), 0);

    // An entirely fresh cache over the same directory — a later
    // process — warm-starts from the .twr spills alone.
    let fresh = RequestCache::with_dir(&dir).unwrap();
    let (from_disk, disk_digest, disk_counters) = run_storm(2, Some(&fresh));
    assert_eq!(cold, from_disk);
    assert_eq!(rendered(&cold), rendered(&from_disk));
    assert_eq!(cold_digest, disk_digest);
    assert_eq!(counter(&disk_counters, "replay_misses"), 0, "disk warm-start must replay nothing");
    assert!(counter(&disk_counters, "replay_hits") >= 24);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_and_truncated_twr_spills_fall_back_to_recomputation() {
    let dir = temp_dir("corrupt");
    let seed_cache = RequestCache::with_dir(&dir).unwrap();
    let (baseline, base_digest, _) = run_storm(2, Some(&seed_cache));
    let spill = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "twr"))
        .expect("seed run spilled a .twr file");
    let pristine = std::fs::read(&spill).unwrap();

    // A flipped payload byte: the checksum rejects it, the run
    // recomputes, and the report cannot tell the difference.
    let mut corrupt = pristine.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    std::fs::write(&spill, &corrupt).unwrap();
    let cache = RequestCache::with_dir(&dir).unwrap();
    let (report, digest, counters) = run_storm(2, Some(&cache));
    assert_eq!(baseline, report, "corrupt .twr must not change the answer");
    assert_eq!(rendered(&baseline), rendered(&report));
    assert_eq!(base_digest, digest, "corrupt .twr must not change the digest");
    assert!(counter(&counters, "replay_fallbacks") > 0, "corruption must be counted");

    // A truncated file: same contract. The repaired spill from the
    // corrupt run was already rewritten, so truncate the current one.
    let current = std::fs::read(&spill).unwrap();
    std::fs::write(&spill, &current[..current.len() / 3]).unwrap();
    let cache = RequestCache::with_dir(&dir).unwrap();
    let (report, digest, counters) = run_storm(2, Some(&cache));
    assert_eq!(baseline, report, "truncated .twr must not change the answer");
    assert_eq!(base_digest, digest);
    assert!(counter(&counters, "replay_fallbacks") > 0, "truncation must be counted");
    std::fs::remove_dir_all(&dir).unwrap();
}

mod props {
    use proptest::prelude::*;
    use tailwise_core::schemes::Scheme;
    use tailwise_fleet::FleetReport;
    use tailwise_radio::profile::CarrierProfile;
    use tailwise_sim::{ReplayOutcome, SimConfig};
    use tailwise_trace::io::{
        read_replay_outcomes, write_replay_outcomes, ReplayCacheHeader, ReplayOutcomeRecord,
    };
    use tailwise_trace::packet::{Direction, Packet};
    use tailwise_trace::time::{Duration, Instant};
    use tailwise_trace::Trace;

    fn trace_from_gaps(gaps_ms: &[i64]) -> Trace {
        let mut t = Instant::ZERO;
        let mut pkts = vec![Packet::new(t, Direction::Down, 500)];
        for (i, &g) in gaps_ms.iter().enumerate() {
            t += Duration::from_millis(g);
            let dir = if i % 3 == 0 { Direction::Up } else { Direction::Down };
            pkts.push(Packet::new(t, dir, 500));
        }
        Trace::from_sorted(pkts).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The memo's full round trip — `ReplayOutcome::of` a live
        /// replay, through `.twr` bytes, back into a report fold —
        /// must never change a single bit of the `FleetReport` the
        /// live path would have produced, rendered text included,
        /// over arbitrary traces × schemes × verdict scripts.
        #[test]
        fn memoized_fold_is_bit_identical_to_the_live_fold(
            gaps_ms in proptest::prop::collection::vec(1i64..90_000, 1..40),
            (scheme_i, carrier_i) in (0usize..5, 0usize..16),
            verdict_bits in 0u64..u64::MAX,
            days in 1u32..6,
        ) {
            let scheme = [
                Scheme::StatusQuo,
                Scheme::FixedTail45,
                Scheme::PercentileIat(0.95),
                Scheme::MakeIdle,
                Scheme::Oracle,
            ][scheme_i];
            let presets = CarrierProfile::all_presets();
            let carrier = presets[carrier_i % presets.len()].clone();
            let cfg = SimConfig::default();
            let trace = trace_from_gaps(&gaps_ms);

            // Phase 1 + a scripted adjudication drawn from the bits.
            let requests = scheme.request_trace(&carrier, &cfg, &trace).unwrap();
            let verdicts: Vec<bool> =
                (0..requests.len()).map(|i| verdict_bits >> (i % 64) & 1 == 1).collect();
            let live = scheme.run_scripted(&carrier, &cfg, &trace, &verdicts).unwrap();
            let baseline = Scheme::StatusQuo.run(&carrier, &cfg, &trace);
            let (base_energy, base_switches) = (baseline.total_energy(), baseline.switch_cycles());

            // Live path: the fold every uncached run performs.
            let mut direct = FleetReport::empty("prop".into(), scheme.to_string());
            direct.fold_user_baseline(days, &live, base_energy, base_switches);

            // Memo path: outcome → `.twr` bytes → outcome → fold.
            let outcome = ReplayOutcome::of(&live);
            let header = ReplayCacheHeader {
                master_seed: 1, users: 1, days, mix_hash: 2, sim_hash: 3, topo_hash: 4,
                scheme: scheme.to_string(),
            };
            let record = ReplayOutcomeRecord {
                user: 0,
                verdict_hash: verdict_bits,
                packets: outcome.packets,
                energy_bits: outcome.energy_bits,
                switches: outcome.switches,
                false_switches: outcome.false_switches,
                missed_switches: outcome.missed_switches,
                decisions: outcome.decisions,
                baseline_energy_bits: base_energy.to_bits(),
                baseline_switches: base_switches,
                delay_bits: outcome.delay_bits.clone(),
                seconds: Vec::new(),
            };
            let mut spilled = Vec::new();
            write_replay_outcomes(&header, &[record], &mut spilled).unwrap();
            let (_, records) = read_replay_outcomes(&spilled[..]).unwrap();
            prop_assert_eq!(records.len(), 1);
            let rec = &records[0];
            let cached = ReplayOutcome {
                packets: rec.packets,
                energy_bits: rec.energy_bits,
                switches: rec.switches,
                false_switches: rec.false_switches,
                missed_switches: rec.missed_switches,
                decisions: rec.decisions,
                delay_bits: rec.delay_bits.clone(),
            };
            prop_assert_eq!(&cached, &outcome, "the spill must round-trip the outcome exactly");

            let mut memoized = FleetReport::empty("prop".into(), scheme.to_string());
            memoized.fold_user_outcome(
                days,
                &cached,
                f64::from_bits(rec.baseline_energy_bits),
                rec.baseline_switches,
            );
            prop_assert_eq!(&direct, &memoized);
            prop_assert_eq!(direct.render(), memoized.render());
        }
    }
}
