//! Observability end-to-end: recording never perturbs results.
//!
//! Pins the acceptance claims of `tailwise-obs` wired through the
//! fleet stack:
//!
//! * a 3-RNC × 12-cell topology fleet and a corpus replay produce
//!   **bit-identical** `FleetReport`s (including rendered text) under a
//!   `NullRecorder` and under a full `StatsRecorder` + progress table,
//!   at 1, 2, and 8 threads;
//! * an observed topology run attaches all four positive phase timings
//!   and publishes truthful progress totals (both passes count, so a
//!   finished run reports `2 × users` done of `2 × users` expected);
//! * the `--metrics` manifest of an admission sweep re-parses through
//!   `tailwise-scenfile` with every expected key, equal to the
//!   original, from a string and from a file.

use std::path::PathBuf;

use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    run, run_observed, run_source, run_source_observed, run_sweep_observed, synth_corpus,
    AdmissionSpec, CorpusScenario, FleetReport, NetworkTopology, RunManifest, Scenario,
    ScenarioSet, SweepAxis, UserSource,
};
use tailwise_obs::{Obs, ProgressTable, Recorder, StatsRecorder};
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::TraceFormat;
use tailwise_workload::apps::AppKind;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tailwise-obs-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A small 3-RNC × 12-cell storm: tight budgets and a load-reactive
/// RNC gate so every phase (and both denial counters) sees real work,
/// kept to background IM so debug-mode CI stays fast.
fn storm_scenario(users: u64) -> Scenario {
    let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.master_seed = 0x0B5;
    s.shard_size = 7; // ragged last shard
    s.sim.window_capacity = 25;
    s.app_mix = vec![(AppKind::Im, 1.0)];
    let mut topology = NetworkTopology::with_rncs(3, 12);
    topology.cell_budget.capacity_per_s = Some(8);
    topology.rnc_budget.capacity_per_s = Some(40);
    topology.rnc_admission = AdmissionSpec::LoadReactive { watermark_per_s: 5, window_s: 5 };
    s.cells = Some(topology);
    s
}

/// Rendered text with the measured fields (excluded from the
/// determinism contract) normalized away.
fn rendered(report: &FleetReport) -> String {
    let mut report = report.clone();
    report.wall_seconds = 0.0;
    report.threads = 1;
    report.timings = None;
    report.render()
}

#[test]
fn observed_topology_run_is_bit_identical_at_1_2_8_threads() {
    let scenario = storm_scenario(48);
    let baseline = run(&scenario, 1); // NullRecorder via Obs::none()
    for threads in [1usize, 2, 8] {
        let recorder = StatsRecorder::new();
        let table = ProgressTable::new(threads);
        let obs = Obs { recorder: &recorder, progress: Some(&table) };
        let observed = run_observed(&scenario, threads, obs);
        assert_eq!(baseline, observed, "threads={threads}");
        assert_eq!(rendered(&baseline), rendered(&observed), "threads={threads}");

        // The observed run attaches a full phase breakdown: all four
        // phases did real work in a topology run.
        let timings = observed.timings.as_ref().expect("observed run attaches timings");
        for (name, seconds) in timings.phases() {
            assert!(seconds > 0.0, "phase {name} recorded no time (threads={threads})");
        }
        assert!(!timings.worker_busy.is_empty());

        // Progress: both passes count every user, and the published
        // expected total agrees with what actually happened.
        let totals = table.totals();
        assert_eq!(totals.users_done, scenario.users * 2, "threads={threads}");
        assert_eq!(table.users_total(), scenario.users * 2, "threads={threads}");
        assert_eq!(totals.traces_failed, 0);

        // Counters line up with the report.
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counters.get("users_simulated"), Some(&scenario.users));
        assert_eq!(snapshot.counters.get("user_days"), Some(&baseline.user_days));
        let granted = snapshot.counters.get("requests_granted").copied().unwrap_or(0);
        let denied = snapshot.counters.get("requests_denied").copied().unwrap_or(0);
        let signaling = baseline.signaling.as_ref().expect("topology run reports signaling");
        assert_eq!(granted, signaling.granted());
        assert_eq!(denied, signaling.denied());
    }
    // The unobserved baseline carries no timings at all.
    assert!(baseline.timings.is_none());
}

#[test]
fn observed_corpus_replay_is_bit_identical_at_1_2_8_threads() {
    let mut scenario = Scenario::new(24, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    scenario.master_seed = 0xC0FFEE;
    scenario.shard_size = 5;
    scenario.sim.window_capacity = 25;
    scenario.app_mix = vec![(AppKind::Im, 1.0)];
    let dir = temp_dir("corpus");
    assert_eq!(synth_corpus(&scenario, &dir, TraceFormat::Binary, 4).unwrap(), 24);

    let mut corpus = CorpusScenario::new(&dir, scenario.scheme, CarrierProfile::verizon_lte());
    corpus.master_seed = scenario.master_seed;
    corpus.shard_size = scenario.shard_size;
    corpus.sim = scenario.sim.clone();
    let source = UserSource::Corpus(corpus);

    let baseline = run_source(&source, 2).unwrap();
    for threads in [1usize, 2, 8] {
        let recorder = StatsRecorder::new();
        let table = ProgressTable::new(threads);
        let obs = Obs { recorder: &recorder, progress: Some(&table) };
        let observed = run_source_observed(&source, threads, obs).unwrap();
        assert_eq!(baseline, observed, "threads={threads}");
        assert_eq!(rendered(&baseline), rendered(&observed), "threads={threads}");

        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counters.get("traces_loaded"), Some(&24));
        assert_eq!(snapshot.counters.get("users_simulated"), Some(&24));
        assert!(snapshot.span_seconds("synthesize") > 0.0, "corpus load is the synthesize phase");
        assert!(snapshot.span_seconds("simulate") > 0.0);

        let totals = table.totals();
        assert_eq!(totals.users_done, 24);
        assert_eq!(table.users_total(), 24);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recording_is_free_when_off() {
    // Obs::none() reports disabled, hands out detached counters, and
    // snapshots empty — the contract that lets the hot path skip all
    // clock reads with one branch.
    let obs = Obs::none();
    assert!(!obs.recorder.enabled());
    obs.recorder.counter("users_simulated").add(5);
    let snapshot = obs.recorder.snapshot();
    assert!(snapshot.counters.is_empty());
    assert_eq!(snapshot.span_seconds("run"), 0.0);
}

#[test]
fn sweep_manifest_round_trips_with_every_key() {
    let set = ScenarioSet {
        base: storm_scenario(24),
        axes: vec![SweepAxis::Admission(vec![
            AdmissionSpec::Always,
            AdmissionSpec::LoadReactive { watermark_per_s: 5, window_s: 5 },
        ])],
    };
    let recorder = StatsRecorder::new();
    let sweep = run_sweep_observed(&set, 2, Obs { recorder: &recorder, progress: None });
    assert_eq!(sweep.rows.len(), 2);

    let manifest = RunManifest::for_sweep(&sweep, 2, set.base.master_seed, &recorder.snapshot());
    assert_eq!(manifest.seed, 0x0B5);
    assert_eq!(manifest.reports.len(), 2);
    assert_eq!(manifest.reports[0].label, "admission=always");
    assert!(manifest.zero_phases().is_empty(), "zero phases: {:?}", manifest.zero_phases());
    assert!(manifest.wall_seconds > 0.0);
    for counter in [
        "users_simulated",
        "user_days",
        "requests_granted",
        "requests_denied",
        "requests_denied_by_rnc",
    ] {
        assert!(manifest.counters.contains_key(counter), "missing counter {counter}");
    }

    // The emitted document carries every schema key and re-parses,
    // strictly, to an equal manifest.
    let toml = manifest.to_toml_string();
    for key in [
        "name",
        "scheme",
        "source",
        "seed",
        "threads",
        "runs",
        "wall_seconds",
        "synthesize_s",
        "simulate_s",
        "adjudicate_s",
        "replay_s",
        "worker_busy",
        "label",
        "scenario",
        "users",
        "user_days",
        "packets",
        "energy_j",
        "baseline_energy_j",
        "saved_pct",
        "switches",
        "baseline_switches",
        "false_switches",
        "missed_switches",
        "decisions",
        "granted",
        "denied",
        "denied_by_rnc",
        "peak_messages_per_s",
        "cell_overload_s",
        "rnc_overload_s",
    ] {
        assert!(toml.contains(&format!("{key} = ")), "missing key {key} in:\n{toml}");
    }
    assert_eq!(RunManifest::from_toml_str(&toml).unwrap(), manifest);

    // Same through a file, with the path as error origin on the way in.
    let path =
        std::env::temp_dir().join(format!("tailwise-obs-it-manifest-{}.toml", std::process::id()));
    manifest.to_file(&path).unwrap();
    assert_eq!(RunManifest::from_file(&path).unwrap(), manifest);
    std::fs::remove_file(&path).unwrap();

    // Each sweep row is its own run: per-row timings attached and the
    // whole-sweep "run" span covers both.
    for row in &sweep.rows {
        let timings = row.report.timings.as_ref().expect("observed rows attach timings");
        assert!(timings.phases().iter().any(|(_, s)| *s > 0.0), "{}", row.label);
    }
}
