//! End-to-end corpus replay: `fleet synth` a synthetic scenario into an
//! on-disk corpus, then stream it back through the sharded runner.
//!
//! Pins the acceptance claims of the corpus-backed `UserSource`:
//!
//! * a `[corpus]` run produces a **bit-identical** `FleetReport` at any
//!   thread count (1, 2, and 8 here), including its rendered text;
//! * replaying a `synth`-generated corpus with the same master seed and
//!   carrier mix reproduces the synthetic run's energy numbers **user
//!   for user** (same per-user traces, same per-user carriers, so the
//!   aggregate fold is bit-identical too);
//! * runtime corpus failures are positioned `ScenError`s anchored at
//!   the declaring file's `dir` key.
//!
//! No binary fixtures live in git: every corpus here is synthesized
//! into a temp directory by `synth_corpus` and removed afterwards.

use std::path::PathBuf;

use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    run, run_source, run_source_sweep, synth_corpus, CorpusScenario, Scenario, SourceSet,
    UserSource,
};
use tailwise_radio::profile::CarrierProfile;
use tailwise_scenfile::{Pos, ScenErrorKind};
use tailwise_trace::TraceFormat;
use tailwise_workload::apps::AppKind;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tailwise-corpus-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The 200-user scenario the issue calls for, kept light (background IM
/// only — the cheapest §6.1 category) so debug-mode CI stays fast, with
/// a two-carrier mix so the deterministic per-user carrier draw is
/// actually exercised.
fn scenario_200() -> Scenario {
    let mut s = Scenario::new(200, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.master_seed = 0xC0FFEE;
    s.shard_size = 17; // ragged last shard
    s.sim.window_capacity = 25; // smaller predictor window: CI speed
    s.app_mix = vec![(AppKind::Im, 1.0)];
    s.carrier_mix = vec![(CarrierProfile::verizon_lte(), 2.0), (CarrierProfile::att_hspa(), 1.0)];
    s
}

/// A corpus scenario that mirrors `scenario_200` over the given corpus
/// directory.
fn corpus_of(scenario: &Scenario, dir: &std::path::Path) -> CorpusScenario {
    let mut c = CorpusScenario::new(dir, scenario.scheme, CarrierProfile::verizon_lte());
    c.carrier_mix = scenario.carrier_mix.clone();
    c.master_seed = scenario.master_seed;
    c.shard_size = scenario.shard_size;
    c.sim = scenario.sim.clone();
    c
}

#[test]
fn corpus_replay_is_thread_invariant_and_matches_synthetic_user_for_user() {
    let scenario = scenario_200();
    let dir = temp_dir("main");
    assert_eq!(synth_corpus(&scenario, &dir, TraceFormat::Binary, 8).unwrap(), 200);

    // --- bit-identical reports at 1, 2, and 8 threads -----------------
    let source = UserSource::Corpus(corpus_of(&scenario, &dir));
    let single = run_source(&source, 1).unwrap();
    let double = run_source(&source, 2).unwrap();
    let octo = run_source(&source, 8).unwrap();
    assert_eq!(single, double);
    assert_eq!(single, octo);
    assert_eq!(single.users, 200);
    assert!(single.source.contains("200 traces"), "{}", single.source);

    // Rendered reports are byte-identical once the measured wall-clock
    // fields (explicitly excluded from the determinism contract) are
    // normalized away.
    let rendered = |r: &tailwise_fleet::FleetReport| {
        let mut r = r.clone();
        r.wall_seconds = 0.0;
        r.threads = 1;
        r.render()
    };
    assert_eq!(rendered(&single), rendered(&double));
    assert_eq!(rendered(&single), rendered(&octo));

    // --- user-for-user equivalence with the synthetic run -------------
    // Same traces (binary round trip is lossless), same carriers (the
    // shared deterministic draw), same fold order (same shard size) —
    // so every deterministic aggregate matches to the bit. Only naming,
    // provenance, and user-day accounting (declared days vs. trace
    // span) may differ.
    let synthetic = run(&scenario, 4);
    assert_eq!(single.energy_j.to_bits(), synthetic.energy_j.to_bits());
    assert_eq!(single.baseline_energy_j.to_bits(), synthetic.baseline_energy_j.to_bits());
    assert_eq!(single.packets, synthetic.packets);
    assert_eq!(single.switches, synthetic.switches);
    assert_eq!(single.baseline_switches, synthetic.baseline_switches);
    assert_eq!(single.false_switches, synthetic.false_switches);
    assert_eq!(single.missed_switches, synthetic.missed_switches);
    assert_eq!(single.decisions, synthetic.decisions);
    // The per-user savings distribution is the user-for-user claim in
    // aggregate form: identical per-user values land in identical bins.
    assert_eq!(single.savings, synthetic.savings);

    // Spot-check individual users end to end: the file on disk holds
    // exactly user i's trace, and simulating it on user i's carrier
    // reproduces user i's energy to the bit.
    for index in [0u64, 41, 199] {
        let (carrier, model) = scenario.user(index);
        let from_model = model.generate();
        let from_disk =
            tailwise_trace::io::load(&dir.join(format!("user_{index:06}.twt"))).unwrap();
        assert_eq!(from_model, from_disk, "user {index} trace drifted through disk");
        let a = scenario.scheme.run(&carrier, &scenario.sim, &from_model);
        let b = scenario.scheme.run(&carrier, &scenario.sim, &from_disk);
        assert_eq!(
            a.total_energy().to_bits(),
            b.total_energy().to_bits(),
            "user {index} energy drifted"
        );
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn csv_and_binary_corpora_replay_identically() {
    let mut scenario = scenario_200();
    scenario.users = 12;
    let bin_dir = temp_dir("bin");
    let csv_dir = temp_dir("csv");
    synth_corpus(&scenario, &bin_dir, TraceFormat::Binary, 4).unwrap();
    synth_corpus(&scenario, &csv_dir, TraceFormat::Csv, 4).unwrap();
    let bin = run_source(&UserSource::Corpus(corpus_of(&scenario, &bin_dir)), 2).unwrap();
    let csv = run_source(&UserSource::Corpus(corpus_of(&scenario, &csv_dir)), 2).unwrap();
    // Same numbers from either encoding (provenance and name differ).
    assert_eq!(bin.energy_j.to_bits(), csv.energy_j.to_bits());
    assert_eq!(bin.baseline_energy_j.to_bits(), csv.baseline_energy_j.to_bits());
    assert_eq!(bin.packets, csv.packets);
    assert_eq!(bin.savings, csv.savings);
    std::fs::remove_dir_all(&bin_dir).unwrap();
    std::fs::remove_dir_all(&csv_dir).unwrap();
}

#[test]
fn corpus_sweeps_hold_the_corpus_fixed_across_schemes() {
    let mut scenario = scenario_200();
    scenario.users = 8;
    let dir = temp_dir("sweep");
    synth_corpus(&scenario, &dir, TraceFormat::Binary, 4).unwrap();
    let set = SourceSet {
        source: UserSource::Corpus(corpus_of(&scenario, &dir)),
        axes: vec![tailwise_fleet::SweepAxis::Schemes(vec![
            Scheme::StatusQuo,
            Scheme::MakeIdle,
            Scheme::Oracle,
        ])],
    };
    let sweep = run_source_sweep(&set, 4).unwrap();
    assert_eq!(sweep.rows.len(), 3);
    // Same corpus in every cell: identical baselines, ordered energies.
    let baseline = sweep.rows[0].report.baseline_energy_j.to_bits();
    for row in &sweep.rows {
        assert_eq!(row.report.users, 8);
        assert_eq!(row.report.baseline_energy_j.to_bits(), baseline, "{}", row.label);
        // Each cell reproduces standalone, at a different thread count.
        assert_eq!(row.report, run_source(&row.source, 1).unwrap(), "{}", row.label);
    }
    let oracle = &sweep.rows[2].report;
    let makeidle = &sweep.rows[1].report;
    assert!(oracle.energy_j <= makeidle.energy_j + 1e-6);

    // The pinned-resolution API behind the sweep: a file landing in the
    // directory after resolution cannot change the replayed population.
    let corpus_scenario = corpus_of(&scenario, &dir);
    let pinned = corpus_scenario.resolve().unwrap();
    let mut extra = scenario.clone();
    extra.users = 1;
    let straggler = dir.join("zz-straggler");
    synth_corpus(&extra, &straggler, TraceFormat::Binary, 1).unwrap();
    let replay = tailwise_fleet::run_pinned_corpus(&corpus_scenario, &pinned, 2).unwrap();
    assert_eq!(replay.users, 8, "pinned corpus ignores files added after resolution");
    // Same population and scheme as the makeidle sweep cell (names
    // differ: the cell carries its sweep label), so identical numbers.
    assert_eq!(replay.energy_j.to_bits(), sweep.rows[1].report.energy_j.to_bits());
    assert_eq!(replay.savings, sweep.rows[1].report.savings);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The golden runtime errors the issue calls for: a `[corpus]` scenario
/// whose directory is missing or empty fails at run time with the exact
/// line/column of the file's `dir` key and a descriptive message.
#[test]
fn golden_runtime_errors_cite_the_dir_keys_position() {
    let doc = concat!(
        "[scenario]\n",                         // 1
        "name = \"runtime golden\"\n",          // 2
        "[corpus]\n",                           // 3
        "dir = \"/nonexistent/tailwise-it\"\n", // 4 (value at col 7)
        "[[carrier]]\n",                        // 5
        "profile = \"att-hspa\"\n",             // 6
    );
    let set = SourceSet::from_toml_str(doc).unwrap();
    let err = run_source(&set.source, 2).unwrap_err();
    assert_eq!(err.pos, Pos::new(4, 7));
    assert_eq!(err.kind, ScenErrorKind::Run);
    // The OS spells out the cause; the stable part is our prefix.
    assert!(
        err.message.starts_with("cannot read corpus directory /nonexistent/tailwise-it: "),
        "{err}"
    );

    // Empty directory: same anchor, different message.
    let dir = temp_dir("golden-empty");
    std::fs::create_dir_all(&dir).unwrap();
    let doc = format!(
        "[scenario]\nname = \"runtime golden\"\n[corpus]\ndir = \"{}\"\n\
         [[carrier]]\nprofile = \"att-hspa\"\n",
        dir.display()
    );
    let set = SourceSet::from_toml_str(&doc).unwrap();
    let err = run_source(&set.source, 2).unwrap_err();
    assert_eq!(err.pos, Pos::new(4, 7));
    assert_eq!(err.kind, ScenErrorKind::Run);
    assert_eq!(
        err.message,
        format!(
            "corpus directory {} contains no trace files (formats: twt, csv, pcap)",
            dir.display()
        )
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
