//! The phase-1 request cache never changes an answer — only the bill.
//!
//! Pins the caching acceptance claims end-to-end against the library's
//! `rnc_storm.toml` admission sweep (shrunk to CI scale, structure kept
//! exactly as declared on disk):
//!
//! * a cached sweep — in-memory or disk-backed — produces a
//!   **bit-identical** `SweepReport` (including rendered text) to the
//!   uncached sweep at 1, 2, and 8 threads, while the counters show the
//!   reuse actually happened;
//! * a cold on-disk cache spills `.twc` files that an entirely fresh
//!   cache (a later process, conceptually) warm-starts from, again
//!   bit-identically;
//! * a corrupted or truncated spill file degrades to recomputation —
//!   the report stays identical and `cache_fallbacks` counts the save;
//! * a corpus sweep resolves its directory walk exactly once
//!   (`corpus_walks == 1`), however many rows it expands into.

use std::path::PathBuf;

use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    run_source_sweep_cached, run_sweep_cached, synth_corpus, CorpusScenario, RequestCache,
    Scenario, ScenarioSet, SourceSet, SweepAxis, SweepReport, UserSource,
};
use tailwise_obs::{Obs, Recorder, StatsRecorder};
use tailwise_radio::profile::CarrierProfile;
use tailwise_trace::TraceFormat;
use tailwise_workload::apps::AppKind;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tailwise-cache-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The library's RNC-storm admission sweep, shrunk to CI scale. Only
/// the population size and shard size change; the topology, mixes,
/// seed, and `[[sweep]]` axes stay exactly as declared on disk.
fn storm_set() -> ScenarioSet {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/rnc_storm.toml");
    let mut set = ScenarioSet::from_file(path).expect("library storm file parses");
    set.base.users = 24;
    set.base.shard_size = 5; // ragged last shard
    set
}

/// Rendered text with the measured fields (excluded from the
/// determinism contract) normalized away.
fn rendered(sweep: &SweepReport) -> String {
    let mut sweep = sweep.clone();
    for row in &mut sweep.rows {
        row.report.wall_seconds = 0.0;
        row.report.threads = 1;
        row.report.timings = None;
    }
    sweep.render()
}

/// Runs the storm sweep against `cache` under a fresh recorder,
/// returning the report and the counter snapshot.
fn run_storm(
    threads: usize,
    cache: Option<&RequestCache>,
) -> (SweepReport, tailwise_obs::Snapshot) {
    let recorder = StatsRecorder::new();
    let obs = Obs { recorder: &recorder, progress: None };
    let sweep = run_sweep_cached(&storm_set(), threads, obs, cache);
    (sweep, recorder.snapshot())
}

fn counter(snapshot: &tailwise_obs::Snapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn cached_sweeps_are_bit_identical_to_uncached_at_1_2_8_threads() {
    let (baseline, no_cache_counters) = run_storm(2, None);
    assert!(baseline.rows.len() >= 2, "storm file should sweep admission");
    assert_eq!(counter(&no_cache_counters, "cache_hits"), 0);
    assert_eq!(counter(&no_cache_counters, "cache_misses"), 0);

    let dir = temp_dir("identity");
    for threads in [1usize, 2, 8] {
        // In-memory cache: the second admission cell reuses the first
        // cell's extraction and the whole population's baselines.
        let memory = RequestCache::in_memory();
        let (cached, counters) = run_storm(threads, Some(&memory));
        assert_eq!(baseline, cached, "memory cache, threads={threads}");
        assert_eq!(rendered(&baseline), rendered(&cached), "memory cache, threads={threads}");
        assert_eq!(counter(&counters, "cache_misses"), 1, "threads={threads}");
        assert!(counter(&counters, "cache_hits") >= 1, "threads={threads}");
        assert_eq!(counter(&counters, "cache_fallbacks"), 0, "threads={threads}");

        // Disk-backed cache: same contract, plus a spill.
        let disk_dir = dir.join(format!("t{threads}"));
        let disk = RequestCache::with_dir(&disk_dir).unwrap();
        let (cached, counters) = run_storm(threads, Some(&disk));
        assert_eq!(baseline, cached, "disk cache, threads={threads}");
        assert_eq!(rendered(&baseline), rendered(&cached), "disk cache, threads={threads}");
        assert!(counter(&counters, "cache_spills") >= 1, "threads={threads}");
        assert_eq!(counter(&counters, "cache_fallbacks"), 0, "threads={threads}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_cache_warm_starts_a_fresh_process_bit_identically() {
    let dir = temp_dir("warm");

    // Cold: the first run misses, extracts, and spills.
    let cold_cache = RequestCache::with_dir(&dir).unwrap();
    let (cold, cold_counters) = run_storm(2, Some(&cold_cache));
    assert_eq!(counter(&cold_counters, "cache_misses"), 1);
    assert!(counter(&cold_counters, "cache_spills") >= 1);
    let spills: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "twc"))
        .collect();
    assert_eq!(spills.len(), 1, "one scheme in the sweep, one spill: {spills:?}");

    // Warm: an entirely fresh cache over the same directory — a later
    // process — serves every cell's streams from the spill file.
    let warm_cache = RequestCache::with_dir(&dir).unwrap();
    let (warm, warm_counters) = run_storm(2, Some(&warm_cache));
    assert_eq!(cold, warm);
    assert_eq!(rendered(&cold), rendered(&warm));
    assert_eq!(counter(&warm_counters, "cache_misses"), 0, "warm run should never extract");
    assert!(counter(&warm_counters, "cache_hits") >= 2, "every cell should hit");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_and_truncated_spills_fall_back_to_recomputation() {
    let dir = temp_dir("corrupt");
    let seed_cache = RequestCache::with_dir(&dir).unwrap();
    let (baseline, _) = run_storm(2, Some(&seed_cache));
    let spill = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "twc"))
        .expect("seed run spilled a .twc file");
    let pristine = std::fs::read(&spill).unwrap();

    // A flipped payload byte: the checksum rejects it, the run
    // recomputes, and the report cannot tell the difference.
    let mut corrupt = pristine.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    std::fs::write(&spill, &corrupt).unwrap();
    let cache = RequestCache::with_dir(&dir).unwrap();
    let (report, counters) = run_storm(2, Some(&cache));
    assert_eq!(baseline, report, "corrupt spill must not change the answer");
    assert_eq!(rendered(&baseline), rendered(&report));
    assert!(counter(&counters, "cache_fallbacks") > 0, "corruption must be counted");

    // A truncated file: same contract.
    std::fs::write(&spill, &pristine[..pristine.len() / 3]).unwrap();
    let cache = RequestCache::with_dir(&dir).unwrap();
    let (report, counters) = run_storm(2, Some(&cache));
    assert_eq!(baseline, report, "truncated spill must not change the answer");
    assert!(counter(&counters, "cache_fallbacks") > 0, "truncation must be counted");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corpus_sweep_walks_the_directory_once() {
    let fixture = temp_dir("corpus");
    let mut seeder = Scenario::new(6, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    seeder.app_mix = vec![(AppKind::Im, 1.0)];
    assert_eq!(synth_corpus(&seeder, &fixture, TraceFormat::Binary, 2).unwrap(), 6);

    let mut corpus = CorpusScenario::new(&fixture, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    corpus.shard_size = 2;
    let set = SourceSet {
        source: UserSource::Corpus(corpus),
        axes: vec![SweepAxis::Schemes(vec![
            Scheme::StatusQuo,
            Scheme::FixedTail45,
            Scheme::MakeIdle,
        ])],
    };
    let recorder = StatsRecorder::new();
    let obs = Obs { recorder: &recorder, progress: None };
    let sweep = run_source_sweep_cached(&set, 2, obs, None).unwrap();
    assert_eq!(sweep.rows.len(), 3);
    let snapshot = recorder.snapshot();
    assert_eq!(
        snapshot.counters.get("corpus_walks"),
        Some(&1),
        "row N must replay row 0's pinned walk, not re-resolve the directory"
    );
    assert_eq!(snapshot.counters.get("traces_loaded"), Some(&(6 * 3)));
    std::fs::remove_dir_all(&fixture).unwrap();
}
