//! End-to-end mobile fleets: the mobility subsystem's acceptance
//! claims.
//!
//! * A `mobility = "static"` fleet is **bit-identical** to the same
//!   scenario with no mobility spelled at all — rendered text included
//!   — at 1, 2, and 8 threads, and reports zero handoffs. Movement is
//!   strictly opt-in; today's outputs never change underneath anyone.
//! * A commuting fleet is itself bit-identical at 1, 2, and 8 threads
//!   (rendered text included) with nonzero handoff counters: movement
//!   is a pure function of (seed, user, time), so the thread count can
//!   never leak into where a request lands.
//! * Handoffs are conserved (every departure arrives), the manifest
//!   round-trips the counters, and the rendered report names them.
//! * Commute handoff waves add signaling load on top of the release
//!   storm, and the load-reactive RNC governor claws a fraction of the
//!   overload back — the `scenarios/handoff_storm.toml` claim at test
//!   scale.
//! * The residence-time hint lets schemes demote early: requests made
//!   within the hint window of an upcoming handoff bypass admission,
//!   so a hinted fleet grants strictly more than its unhinted twin.

use tailwise_core::schemes::Scheme;
use tailwise_fleet::{
    run, run_observed, AdmissionSpec, FleetReport, MobilitySpec, NetworkTopology, RunManifest,
    Scenario,
};
use tailwise_obs::{Obs, Recorder, StatsRecorder};
use tailwise_radio::profile::CarrierProfile;
use tailwise_radio::signaling::SignalingBudget;
use tailwise_trace::time::Duration;
use tailwise_workload::apps::AppKind;

fn base_scenario(users: u64) -> Scenario {
    let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    s.master_seed = 0xCE11;
    s.shard_size = 13; // ragged last shard
    s.sim.window_capacity = 25; // smaller predictor window: CI speed
    s.app_mix = vec![(AppKind::Im, 1.0)];
    s.carrier_mix = vec![(CarrierProfile::verizon_lte(), 2.0), (CarrierProfile::att_hspa(), 1.0)];
    s
}

/// Rendered text with the measured wall-clock fields (excluded from
/// the determinism contract) normalized away.
fn rendered(r: &FleetReport) -> String {
    let mut r = r.clone();
    r.wall_seconds = 0.0;
    r.threads = 1;
    r.render()
}

#[test]
fn explicit_static_mobility_is_bit_identical_to_none_at_any_thread_count() {
    let mut implicit = base_scenario(60);
    let mut topology = NetworkTopology::with_rncs(3, 12);
    topology.cell_budget = SignalingBudget::per_second(90);
    implicit.cells = Some(topology);
    let mut explicit = implicit.clone();
    explicit.cells.as_mut().unwrap().mobility = MobilitySpec::Static;

    let reference = run(&implicit, 4);
    for threads in [1, 2, 8] {
        let report = run(&explicit, threads);
        assert_eq!(report, reference, "threads={threads}");
        assert_eq!(rendered(&report), rendered(&reference), "threads={threads}");
    }
    let signaling = reference.signaling.as_ref().unwrap();
    assert_eq!(signaling.handoffs(), 0, "a static fleet never hands off");
    assert_eq!(signaling.inter_rnc_handoffs(), 0);
    assert!(
        !rendered(&reference).contains("handoff"),
        "static reports must not grow handoff lines:\n{}",
        rendered(&reference)
    );
}

#[test]
fn commute_fleets_are_bit_identical_at_any_thread_count_with_nonzero_handoffs() {
    let mut scenario = base_scenario(72);
    let mut topology = NetworkTopology::with_rncs(3, 12);
    topology.cell_budget = SignalingBudget::per_second(90);
    topology.mobility = MobilitySpec::commute();
    scenario.cells = Some(topology);

    let single = run(&scenario, 1);
    let double = run(&scenario, 2);
    let octo = run(&scenario, 8);
    assert_eq!(single, double);
    assert_eq!(single, octo);
    assert_eq!(rendered(&single), rendered(&double));
    assert_eq!(rendered(&single), rendered(&octo));

    let signaling = single.signaling.as_ref().unwrap();
    assert!(signaling.handoffs() > 0, "a commuting fleet must hand off");
    assert!(
        signaling.inter_rnc_handoffs() > 0,
        "72 commutes across 3 RNC blocks must cross a boundary"
    );
    // Conservation: every departure arrives somewhere.
    let (ins, outs): (u64, u64) =
        signaling.cells.iter().fold((0, 0), |(i, o), c| (i + c.handoffs_in, o + c.handoffs_out));
    assert_eq!(ins, outs, "handoffs in and out must balance across the fleet");
    // The rendered report names the movement.
    let text = rendered(&single);
    assert!(text.contains("handoffs"), "{text}");
    assert!(text.contains("across RNC boundaries"), "{text}");

    // The manifest round-trips the counters bit for bit.
    let manifest = RunManifest::for_report(
        &single,
        1,
        scenario.master_seed,
        &tailwise_obs::StatsRecorder::new().snapshot(),
    );
    let again = RunManifest::from_toml_str(&manifest.to_toml_string()).unwrap();
    let parsed = again.reports[0].signaling.as_ref().unwrap();
    assert_eq!(parsed.handoffs, signaling.handoffs());
    assert_eq!(parsed.inter_rnc_handoffs, signaling.inter_rnc_handoffs());
    assert_eq!(again.digest(), manifest.digest());
}

#[test]
fn commute_raises_rnc_load_and_the_reactive_governor_claws_back() {
    // The handoff_storm.toml claim at test scale: same storm
    // population, one static topology, one commuting. Handoff
    // exchanges add messages on top of the release storm, raising RNC
    // overload; a load-reactive governor then sheds releases (never
    // handoffs — phones move regardless) and recovers a fraction.
    let mut scenario = base_scenario(60);
    scenario.carrier_mix = vec![(CarrierProfile::verizon_lte(), 1.0)];
    let mut topology = NetworkTopology::with_rncs(3, 12);
    topology.rnc_budget = SignalingBudget::per_second(20);
    scenario.cells = Some(topology.clone());
    let still = run(&scenario, 4);

    let mut moving = scenario.clone();
    moving.cells.as_mut().unwrap().mobility = MobilitySpec::commute();
    let commuting = run(&moving, 4);

    let still_signaling = still.signaling.as_ref().unwrap();
    let commuting_signaling = commuting.signaling.as_ref().unwrap();
    assert!(
        commuting_signaling.total_messages() > still_signaling.total_messages(),
        "handoff exchanges must add messages: {} vs {}",
        commuting_signaling.total_messages(),
        still_signaling.total_messages()
    );
    assert!(
        still_signaling.rnc_overload_seconds() > 0,
        "storm scenario must overload the always-accept RNCs"
    );
    assert!(
        commuting_signaling.rnc_overload_seconds() > still_signaling.rnc_overload_seconds(),
        "handoff waves must raise RNC overload: {} vs {}",
        commuting_signaling.rnc_overload_seconds(),
        still_signaling.rnc_overload_seconds()
    );

    let mut governed = moving.clone();
    governed.cells.as_mut().unwrap().rnc_admission =
        AdmissionSpec::LoadReactive { watermark_per_s: 1, window_s: 5 };
    let clawed = run(&governed, 4);
    let clawed_signaling = clawed.signaling.as_ref().unwrap();
    assert!(clawed_signaling.denied_by_rnc() > 0, "watermark never engaged");
    assert!(
        clawed_signaling.rnc_overload_seconds() < commuting_signaling.rnc_overload_seconds(),
        "the governor must claw overload back: {} vs {}",
        clawed_signaling.rnc_overload_seconds(),
        commuting_signaling.rnc_overload_seconds()
    );
    assert!(
        clawed_signaling.handoffs() == commuting_signaling.handoffs(),
        "admission governs releases, never movement"
    );
    assert!(clawed.energy_j > commuting.energy_j, "shedding load costs device energy");
}

#[test]
fn residence_hints_bypass_admission_near_handoffs() {
    // A commuting fleet under a blunt rate limit, with and without the
    // residence-time hint. Requests inside the hint window of an
    // upcoming handoff bypass both admission gates (the device is
    // about to leave; holding its tail to protect this cell's budget
    // buys nothing), so the hinted twin grants more and the
    // `hint_grants` counter says why.
    let mut scenario = base_scenario(60);
    let mut topology = NetworkTopology::with_rncs(3, 12);
    topology.cell_admission = AdmissionSpec::RateLimited { min_interval: Duration::from_secs(8) };
    topology.mobility = MobilitySpec::Commute {
        home_hour: 8,
        work_hour: 17,
        jitter_pct: 5,
        hint_s: 1800, // a wide window so the storm population hits it
    };
    scenario.cells = Some(topology);

    let recorder = StatsRecorder::new();
    let hinted = run_observed(&scenario, 4, Obs { recorder: &recorder, progress: None });
    let snapshot = recorder.snapshot();
    let hint_grants = snapshot.counters.get("hint_grants").copied().unwrap_or(0);
    assert!(hint_grants > 0, "the hint window never fired on a commuting storm");

    let mut unhinted = scenario.clone();
    match &mut unhinted.cells.as_mut().unwrap().mobility {
        MobilitySpec::Commute { hint_s, .. } => *hint_s = 0,
        MobilitySpec::Static => unreachable!(),
    }
    let muted = run(&unhinted, 4);
    let hinted_signaling = hinted.signaling.as_ref().unwrap();
    let muted_signaling = muted.signaling.as_ref().unwrap();
    assert!(
        hinted_signaling.granted() > muted_signaling.granted(),
        "hints must grant requests the rate limit would have denied: {} vs {}",
        hinted_signaling.granted(),
        muted_signaling.granted()
    );
    assert_eq!(
        hinted_signaling.handoffs(),
        muted_signaling.handoffs(),
        "the hint changes admission, not movement"
    );
}
