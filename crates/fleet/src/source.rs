//! Fleet user sources: synthetic populations and replayed trace
//! corpora behind one abstraction.
//!
//! A fleet run needs a way to materialize user `i`'s traffic. The
//! original runner knew exactly one: synthesize it from a
//! [`Scenario`]. A [`UserSource`] generalizes that to the paper's own
//! methodology — replaying *measured* packet traces — without touching
//! the runner's invariants:
//!
//! * **Stable indices.** A [`CorpusScenario`] enumerates its directory
//!   with the deterministic sorted walk of
//!   [`tailwise_trace::corpus::Corpus`], so trace file `i` is the same
//!   user on every machine and at every thread count.
//! * **Streaming.** Workers load one trace file at a time
//!   (load→simulate→discard), so peak memory stays one trace per
//!   worker, independent of corpus size.
//! * **Bit-identical reports.** Shards tile the file list exactly as
//!   they tile a synthetic population; folds and merges keep their
//!   fixed order, so [`run_source`](crate::runner::run_source) is
//!   thread-count invariant for corpora too.
//!
//! [`synth_corpus`] closes the loop: it materializes any synthetic
//! scenario into an on-disk corpus (one trace file per user), giving
//! every installation an instant self-test corpus — and this repo a
//! fixture generator that keeps binary blobs out of git.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use tailwise_core::schemes::Scheme;
use tailwise_radio::profile::CarrierProfile;
use tailwise_scenfile::{Pos, ScenError};
use tailwise_sim::engine::SimConfig;
use tailwise_trace::corpus::{Corpus, TraceFormat};

use crate::scenario::Scenario;
use crate::sweep::SweepAxis;

/// Where a fleet's users come from: synthesized from a declarative
/// [`Scenario`], or replayed from an on-disk trace corpus.
#[derive(Debug, Clone, PartialEq)]
pub enum UserSource {
    /// Today's path: hierarchically seeded synthetic users.
    Synthetic(Scenario),
    /// Replay of a directory of `.twt` / `.twt.csv` / `.pcap` trace
    /// files.
    Corpus(CorpusScenario),
}

impl UserSource {
    /// The display name used in reports.
    pub fn name(&self) -> &str {
        match self {
            UserSource::Synthetic(s) => &s.name,
            UserSource::Corpus(c) => &c.name,
        }
    }

    /// The scheme under test.
    pub fn scheme(&self) -> Scheme {
        match self {
            UserSource::Synthetic(s) => s.scheme,
            UserSource::Corpus(c) => c.scheme,
        }
    }

    /// Loads a source from an on-disk scenario file — synthetic or
    /// `[corpus]` — rejecting files that declare `[[sweep]]` axes (load
    /// those with [`SourceSet::from_file`]).
    pub fn from_file(path: impl AsRef<Path>) -> Result<UserSource, ScenError> {
        let path = path.as_ref();
        let set = SourceSet::from_file(path)?;
        if set.is_sweep() {
            return Err(ScenError::at(
                Pos::START,
                "file declares [[sweep]] axes; load it with SourceSet::from_file \
                 (or run it with `tailwise fleet run`)",
            )
            .with_origin(path.display().to_string()));
        }
        Ok(set.source)
    }
}

/// The on-disk footprint of a corpus: which directory, how to walk it,
/// which formats to admit.
///
/// `dir_pos` and `origin` record where in a scenario file the corpus
/// was declared, so *runtime* failures (missing directory, unreadable
/// trace) still render compiler-style with a line and column. They are
/// provenance, not identity: equality compares only `dir`, `recursive`,
/// and `formats`.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// The corpus directory. Relative paths resolve against the process
    /// working directory, like any CLI path.
    pub dir: PathBuf,
    /// Walk subdirectories too (default true).
    pub recursive: bool,
    /// Trace encodings to admit (default: all of them).
    pub formats: Vec<TraceFormat>,
    /// Device IPv4 address `.pcap` members attribute packet direction
    /// against (the `pcap_device` key). Required when the walk admits
    /// pcap captures and finds any; ignored otherwise.
    pub pcap_device: Option<std::net::Ipv4Addr>,
    /// Position of the `dir` key in the declaring file ([`Pos::START`]
    /// for programmatic construction).
    pub dir_pos: Pos,
    /// The declaring file's path, when known.
    pub origin: Option<String>,
}

impl CorpusSpec {
    /// A spec with the default walk (recursive, every format).
    pub fn new(dir: impl Into<PathBuf>) -> CorpusSpec {
        CorpusSpec {
            dir: dir.into(),
            recursive: true,
            formats: TraceFormat::ALL.to_vec(),
            pcap_device: None,
            dir_pos: Pos::START,
            origin: None,
        }
    }

    /// The format filter in canonical form: sorted (enum order, the
    /// order the parser normalizes to) with duplicates removed. Used by
    /// equality and serialization so a programmatically built spec
    /// round-trips through a file to an equal value regardless of how
    /// its `formats` vector was ordered.
    pub fn canonical_formats(&self) -> Vec<TraceFormat> {
        let mut formats = self.formats.clone();
        formats.sort();
        formats.dedup();
        formats
    }
}

impl PartialEq for CorpusSpec {
    fn eq(&self, other: &CorpusSpec) -> bool {
        self.dir == other.dir
            && self.recursive == other.recursive
            && self.canonical_formats() == other.canonical_formats()
            && self.pcap_device == other.pcap_device
    }
}

/// A corpus-backed fleet experiment: the corpus footprint plus
/// everything the simulation still decides — scheme, carrier mix,
/// engine config, and the shard size that fixes the reduction order.
///
/// The population size is *not* a field: it is the number of trace
/// files the walk finds, discovered at [`resolve`](Self::resolve) time.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusScenario {
    /// Display name for reports.
    pub name: String,
    /// The scheme under test, compared against the status quo.
    pub scheme: Scheme,
    /// Carrier profiles and their population weights. Each trace file
    /// draws one carrier deterministically from `(master_seed, index)`,
    /// with the same draw a synthetic scenario would make — so a corpus
    /// written by [`synth_corpus`] replays on the same carriers.
    pub carrier_mix: Vec<(CarrierProfile, f64)>,
    /// Seed of the per-user carrier draw.
    pub master_seed: u64,
    /// Trace files per shard (fixes the reduction order, exactly as in
    /// [`Scenario::shard_size`]).
    pub shard_size: u64,
    /// Engine configuration shared by every replay.
    pub sim: SimConfig,
    /// Optional cell topology, exactly as in [`Scenario`]: replayed
    /// users are assigned to cells by `(master_seed, index)` and their
    /// fast-dormancy requests adjudicated per cell.
    pub cells: Option<crate::topology::NetworkTopology>,
    /// The corpus directory and walk settings.
    pub spec: CorpusSpec,
}

impl CorpusScenario {
    /// A corpus scenario with defaults mirroring [`Scenario::new`].
    pub fn new(dir: impl Into<PathBuf>, scheme: Scheme, carrier: CarrierProfile) -> CorpusScenario {
        let spec = CorpusSpec::new(dir);
        CorpusScenario {
            name: format!("corpus {} × {}", spec.dir.display(), scheme.label()),
            scheme,
            carrier_mix: vec![(carrier, 1.0)],
            master_seed: 1,
            shard_size: 64,
            sim: SimConfig::default(),
            cells: None,
            spec,
        }
    }

    /// Walks the corpus directory and pins the stable index→file
    /// assignment for this run.
    ///
    /// Errors — a missing/unreadable directory, or a directory with no
    /// matching trace files (an empty population is always a
    /// misconfiguration, never a silent no-op run) — are
    /// [`ScenErrorKind::Run`](tailwise_scenfile::ScenErrorKind::Run)
    /// errors anchored at the declaring file's `dir` key.
    pub fn resolve(&self) -> Result<Corpus, ScenError> {
        self.resolve_observed(tailwise_obs::Obs::none())
    }

    /// [`resolve`](Self::resolve) under an [`Obs`](tailwise_obs::Obs)
    /// handle: every directory walk counts on `corpus_walks`, which is
    /// how the sweep tests pin that an N-row corpus sweep resolves the
    /// walk exactly once and replays the pinned file list for every row.
    pub fn resolve_observed(&self, obs: tailwise_obs::Obs<'_>) -> Result<Corpus, ScenError> {
        obs.recorder.counter("corpus_walks").incr();
        let mut corpus = Corpus::open(&self.spec.dir, self.spec.recursive, &self.spec.formats)
            .map_err(|e| {
                self.runtime_err(format!(
                    "cannot read corpus directory {}: {e}",
                    self.spec.dir.display()
                ))
            })?;
        if corpus.is_empty() {
            return Err(self.runtime_err(format!(
                "corpus directory {} contains no trace files (formats: {})",
                self.spec.dir.display(),
                self.spec.formats.iter().map(|f| f.token()).collect::<Vec<_>>().join(", ")
            )));
        }
        match self.spec.pcap_device {
            Some(device) => corpus = corpus.with_pcap_device(device),
            // Fail the whole walk up front rather than mid-run at the
            // first capture: the device address is part of the replay's
            // meaning (direction inference), not a per-file detail.
            None => {
                let captures = corpus.pcap_members();
                if captures > 0 {
                    return Err(self.runtime_err(format!(
                        "corpus directory {} holds {captures} pcap capture(s) but no \
                         `pcap_device` is set; add it to the [corpus] table (direction \
                         inference needs the capturing device's IPv4 address)",
                        self.spec.dir.display()
                    )));
                }
            }
        }
        Ok(corpus)
    }

    /// A runtime error anchored at this corpus's declaration site.
    pub(crate) fn runtime_err(&self, message: String) -> ScenError {
        let err = ScenError::runtime(self.spec.dir_pos, message);
        match &self.spec.origin {
            Some(origin) => err.with_origin(origin.clone()),
            None => err,
        }
    }
}

/// A parsed scenario file in full generality: a [`UserSource`] plus any
/// `[[sweep]]` axes. The corpus-aware superset of
/// [`ScenarioSet`](crate::sweep::ScenarioSet).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSet {
    /// The source described by the file's non-sweep tables.
    pub source: UserSource,
    /// The `[[sweep]]` axes, in declaration order. A corpus source
    /// admits `scheme` and `carrier` axes (the corpus itself stays
    /// fixed); the `users` axis needs a synthetic population and is
    /// rejected at parse time.
    pub axes: Vec<SweepAxis>,
}

impl SourceSet {
    /// Parses a scenario file from disk. For `[corpus]` files, relative
    /// corpus directories stay as written (resolved against the process
    /// working directory at run time), and runtime errors cite this
    /// file's path and the `dir` key's position.
    pub fn from_file(path: impl AsRef<Path>) -> Result<SourceSet, ScenError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| {
            ScenError::at(Pos::START, format!("cannot read scenario file: {e}"))
                .with_origin(path.display().to_string())
        })?;
        let mut set =
            Self::from_toml_str(&src).map_err(|e| e.with_origin(path.display().to_string()))?;
        if let UserSource::Corpus(c) = &mut set.source {
            c.spec.origin = Some(path.display().to_string());
        }
        Ok(set)
    }

    /// Parses a scenario document from a string.
    pub fn from_toml_str(src: &str) -> Result<SourceSet, ScenError> {
        crate::file::source_set_from_str(src)
    }

    /// Serializes the set back to document text that parses to an equal
    /// value (see [`Scenario::to_toml_string`] for the synthetic
    /// representability rules; corpus directories must be valid UTF-8).
    pub fn to_toml_string(&self) -> Result<String, ScenError> {
        crate::file::source_set_to_toml(&self.source, &self.axes)
    }

    /// True when the file declared at least one `[[sweep]]` axis.
    pub fn is_sweep(&self) -> bool {
        !self.axes.is_empty()
    }

    /// Number of sources the set expands into.
    pub fn expansion_count(&self) -> usize {
        self.axes.iter().map(SweepAxis::len).product()
    }

    /// Expands the Cartesian product of the sweep axes over the base
    /// source (axes in declared order, later axes varying fastest),
    /// returning each expansion with its `axis=value …` label.
    ///
    /// Errors only on a `users` axis over a corpus source — impossible
    /// for parsed files (the schema rejects it), reachable for
    /// programmatic construction.
    pub fn expand_labeled(&self) -> Result<Vec<(String, UserSource)>, ScenError> {
        let total = self.expansion_count();
        let mut out = Vec::with_capacity(total);
        for mut flat in 0..total {
            let mut source = self.source.clone();
            // Mixed-radix decomposition, most significant digit first,
            // so the first declared axis varies slowest.
            let mut labels = Vec::with_capacity(self.axes.len());
            let mut stride = total;
            for axis in &self.axes {
                stride /= axis.len();
                let index = flat / stride;
                flat %= stride;
                labels.push(axis.apply_source(index, &mut source)?);
            }
            let label = labels.join(" ");
            if !label.is_empty() {
                let name = format!("{} [{label}]", self.source.name());
                match &mut source {
                    UserSource::Synthetic(s) => s.name = name,
                    UserSource::Corpus(c) => c.name = name,
                }
            }
            out.push((label, source));
        }
        Ok(out)
    }
}

/// Materializes a synthetic scenario into an on-disk trace corpus: one
/// file per user, named `user_<index>` with enough zero padding that
/// the corpus walk's sorted order reproduces the synthetic user order.
///
/// Generation is sharded across `threads` workers, each writing one
/// user's trace and dropping it before the next — the synth side keeps
/// the runner's one-trace-per-worker memory bound. Replaying the
/// resulting corpus with the same master seed and carrier mix
/// reproduces the synthetic run's energy numbers user for user (pinned
/// by `tests/corpus_fleet.rs`).
///
/// Refuses to write into a directory that already holds trace files:
/// the walk would interleave stale files with fresh ones and silently
/// shift every user index. Symmetrically, a failed synthesis (disk
/// full, permissions) removes whatever it already wrote before
/// returning the error, so the guard never blocks a retry with its own
/// debris.
///
/// Returns the number of trace files written.
pub fn synth_corpus(
    scenario: &Scenario,
    dir: &Path,
    format: TraceFormat,
    threads: usize,
) -> Result<u64, ScenError> {
    if scenario.users == 0 {
        return Err(ScenError::emit("cannot synthesize an empty corpus (scenario has 0 users)"));
    }
    if format == TraceFormat::Pcap {
        return Err(ScenError::emit(
            "cannot synthesize pcap corpora (pcap is a read-only capture format); \
             use twt or csv",
        ));
    }
    std::fs::create_dir_all(dir).map_err(|e| {
        ScenError::emit(format!("cannot create corpus directory {}: {e}", dir.display()))
    })?;
    let existing = Corpus::open(dir, true, &TraceFormat::ALL)
        .map_err(|e| {
            ScenError::emit(format!("cannot inspect corpus directory {}: {e}", dir.display()))
        })?
        .len();
    if existing > 0 {
        return Err(ScenError::emit(format!(
            "refusing to synthesize into {}: it already holds {existing} trace file(s), \
             which would scramble the corpus's user indices",
            dir.display()
        )));
    }

    // Enough zero padding that lexicographic file order equals numeric
    // user order (min 6 digits so small corpora can grow in place).
    let width = scenario.users.saturating_sub(1).to_string().len().max(6);
    let cursor = AtomicU64::new(0);
    let failed = AtomicBool::new(false);
    let error: Mutex<Option<ScenError>> = Mutex::new(None);
    let threads = threads.max(1).min(scenario.users.max(1) as usize);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= scenario.users {
                    break;
                }
                let (_, model) = scenario.user(index);
                let trace = model.generate();
                let path = dir.join(format!("user_{index:0width$}.{}", format.extension()));
                if let Err(e) = tailwise_trace::io::save(&trace, &path) {
                    let mut slot = error.lock().expect("synth error slot");
                    slot.get_or_insert_with(|| {
                        ScenError::emit(format!("cannot write {}: {e}", path.display()))
                    });
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
                // `trace` drops here: one trace per worker, synth side too.
            });
        }
    });

    match error.into_inner().expect("synth error slot") {
        Some(e) => {
            // Best-effort cleanup of this run's partial output. The
            // directory held no trace files when we started (checked
            // above), so every trace file present now is ours to remove
            // — leaving them would make the occupied-directory guard
            // reject the retry.
            if let Ok(partial) = Corpus::open(dir, true, &TraceFormat::ALL) {
                for file in partial.files() {
                    std::fs::remove_file(file).ok();
                }
            }
            Err(e)
        }
        None => Ok(scenario.users),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_trace::corpus::TraceFormat;
    use tailwise_workload::apps::AppKind;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tailwise-source-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tiny_scenario(users: u64) -> Scenario {
        let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
        s.app_mix = vec![(AppKind::Im, 1.0)];
        s.shard_size = 2;
        s
    }

    #[test]
    fn synth_writes_sorted_stable_filenames() {
        let dir = temp_dir("synth");
        let scenario = tiny_scenario(5);
        assert_eq!(synth_corpus(&scenario, &dir, TraceFormat::Binary, 4).unwrap(), 5);
        let corpus = Corpus::open(&dir, true, &TraceFormat::ALL).unwrap();
        assert_eq!(corpus.len(), 5);
        let names: Vec<_> = corpus
            .files()
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names[0], "user_000000.twt");
        assert_eq!(names[4], "user_000004.twt");
        // Sorted walk order is numeric user order.
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        // File i really is user i's trace.
        assert_eq!(corpus.load(3).unwrap(), scenario.user(3).1.generate());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synth_refuses_occupied_directories_and_empty_populations() {
        let dir = temp_dir("occupied");
        assert_eq!(synth_corpus(&tiny_scenario(2), &dir, TraceFormat::Binary, 1).unwrap(), 2);
        let err = synth_corpus(&tiny_scenario(2), &dir, TraceFormat::Binary, 1).unwrap_err();
        assert!(err.message.contains("refusing to synthesize"), "{err}");
        assert_eq!(err.kind, tailwise_scenfile::ScenErrorKind::Emit);
        std::fs::remove_dir_all(&dir).unwrap();

        let err = synth_corpus(&tiny_scenario(0), &dir, TraceFormat::Binary, 1).unwrap_err();
        assert!(err.message.contains("empty corpus"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_synth_cleans_up_and_stays_retryable() {
        let dir = temp_dir("cleanup");
        // A directory squatting on user 0's file name forces a write
        // failure mid-synthesis (it passes the occupied check: the walk
        // sees an empty directory, not a trace file).
        std::fs::create_dir_all(dir.join("user_000000.twt")).unwrap();
        let err = synth_corpus(&tiny_scenario(4), &dir, TraceFormat::Binary, 2).unwrap_err();
        assert!(err.message.contains("cannot write"), "{err}");
        // Whatever the other workers wrote was removed again…
        let leftover = Corpus::open(&dir, true, &TraceFormat::ALL).unwrap();
        assert!(leftover.is_empty(), "partial output left behind: {:?}", leftover.files());
        // …so fixing the obstruction makes a plain retry succeed.
        std::fs::remove_dir(dir.join("user_000000.twt")).unwrap();
        assert_eq!(synth_corpus(&tiny_scenario(4), &dir, TraceFormat::Binary, 2).unwrap(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_corpora_synthesize_with_compound_extension() {
        let dir = temp_dir("csv");
        synth_corpus(&tiny_scenario(2), &dir, TraceFormat::Csv, 2).unwrap();
        let corpus = Corpus::open(&dir, true, &[TraceFormat::Csv]).unwrap();
        assert_eq!(corpus.len(), 2);
        assert!(corpus.path(0).to_str().unwrap().ends_with("user_000000.twt.csv"));
        assert_eq!(corpus.load(0).unwrap(), tiny_scenario(2).user(0).1.generate());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resolve_errors_are_positioned_runtime_errors() {
        let mut c = CorpusScenario::new(
            "/nonexistent/tailwise-corpus",
            Scheme::MakeIdle,
            CarrierProfile::att_hspa(),
        );
        c.spec.dir_pos = Pos::new(4, 7);
        c.spec.origin = Some("replay.toml".into());
        let err = c.resolve().unwrap_err();
        assert_eq!(err.pos, Pos::new(4, 7));
        assert_eq!(err.kind, tailwise_scenfile::ScenErrorKind::Run);
        assert_eq!(err.origin.as_deref(), Some("replay.toml"));
        assert!(err.message.contains("cannot read corpus directory"), "{err}");

        let dir = temp_dir("resolve-empty");
        std::fs::create_dir_all(&dir).unwrap();
        c.spec.dir = dir.clone();
        let err = c.resolve().unwrap_err();
        assert!(err.message.contains("contains no trace files"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_spec_equality_ignores_provenance() {
        let mut a = CorpusSpec::new("corpus");
        let mut b = CorpusSpec::new("corpus");
        b.dir_pos = Pos::new(9, 9);
        b.origin = Some("elsewhere.toml".into());
        assert_eq!(a, b);
        a.recursive = false;
        assert_ne!(a, b);
        // The pcap device, by contrast, changes the replay's meaning.
        a.recursive = true;
        a.pcap_device = Some(std::net::Ipv4Addr::new(10, 0, 0, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn pcap_corpora_need_a_device_and_cannot_be_synthesized() {
        let err =
            synth_corpus(&tiny_scenario(2), &temp_dir("pcap"), TraceFormat::Pcap, 1).unwrap_err();
        assert!(err.message.contains("read-only capture format"), "{err}");

        // A corpus with a capture but no pcap_device fails at resolve
        // time, anchored at the dir key.
        let dir = temp_dir("pcap-resolve");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("capture.pcap"), b"irrelevant").unwrap();
        let mut c = CorpusScenario::new(&dir, Scheme::MakeIdle, CarrierProfile::att_hspa());
        let err = c.resolve().unwrap_err();
        assert!(err.message.contains("no `pcap_device` is set"), "{err}");
        assert_eq!(err.kind, tailwise_scenfile::ScenErrorKind::Run);
        // With a device the walk resolves and pins the address.
        c.spec.pcap_device = Some(std::net::Ipv4Addr::new(10, 0, 0, 2));
        let corpus = c.resolve().unwrap();
        assert_eq!(corpus.pcap_device(), c.spec.pcap_device);
        assert_eq!(corpus.pcap_members(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
