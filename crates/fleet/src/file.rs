//! The on-disk scenario schema: mapping between [`Scenario`] /
//! [`ScenarioSet`] / [`SourceSet`] and the TOML-subset documents of
//! `tailwise-scenfile`.
//!
//! The format itself is specified key-by-key in
//! `docs/SCENARIO_FORMAT.md`; this module is the single point where
//! that spec is enforced. Schema errors reuse the parser's
//! line/column-carrying [`ScenError`], so `scheme = "makeidel"` fails
//! with the exact position of the bad token, and unknown keys are
//! rejected rather than ignored (`deny_unknown`).
//!
//! A file populates its users in exactly one of two ways: `[[app]]`
//! tables plus `users` (a synthetic population), or a `[corpus]` table
//! naming a directory of trace files to replay. The two are mutually
//! exclusive, and mixing them is a positioned error, never a guess.
//! Either kind may add a `[cells]` table routing the population's
//! fast-dormancy requests through a base-station cell topology — which
//! in turn requires a scriptable scheme (the MakeActive variants are
//! positioned errors there, base value and sweep values alike).
//!
//! Round-trip contract: for any scenario whose carrier profiles are
//! built-in presets (the only carriers the format can name) and whose
//! engine config only customizes the exposed `[sim]` keys,
//! `scenario_from_doc(parse(scenario_to_toml(s))) == s` — pinned by a
//! property test in this module. Emission failures are
//! [`ScenErrorKind::Emit`](tailwise_scenfile::ScenErrorKind::Emit)
//! errors, the same type the read path uses.

use std::path::PathBuf;

use tailwise_core::schemes::Scheme;
use tailwise_radio::profile::CarrierProfile;
use tailwise_radio::signaling::{SignalingBudget, SignalingModel};
use tailwise_scenfile::{parse, str_elements, u64_elements, DocWriter, ScenError, Table};
use tailwise_sim::engine::SimConfig;
use tailwise_trace::corpus::TraceFormat;
use tailwise_trace::time::Duration;
use tailwise_workload::apps::AppKind;

use crate::admission::AdmissionSpec;
use crate::mobility::{self, MobilitySpec};
use crate::scenario::Scenario;
use crate::source::{CorpusScenario, CorpusSpec, SourceSet, UserSource};
use crate::sweep::{ScenarioSet, SweepAxis};
use crate::topology::NetworkTopology;

/// Parses a full scenario document into the general source form:
/// synthetic or corpus base, plus any sweep axes.
pub(crate) fn source_set_from_str(src: &str) -> Result<SourceSet, ScenError> {
    let doc = parse(src)?;
    doc.deny_unknown(
        &[],
        &["scenario", "sim", "corpus", "cells", "rnc", "mobility"],
        &["carrier", "app", "sweep"],
    )?;

    let scenario_table = doc
        .table("scenario")
        .ok_or_else(|| ScenError::at(doc.pos(), "missing required table `[scenario]`"))?;
    scenario_table.deny_unknown(
        &["name", "users", "days_per_user", "scheme", "master_seed", "shard_size"],
        &[],
        &[],
    )?;

    let scheme = match scenario_table.get_str("scheme")? {
        None => Scheme::MakeIdle,
        Some(token) => parse_token::<Scheme>(scenario_table, "scheme", token)?,
    };
    let master_seed = scenario_table.get_u64("master_seed")?.unwrap_or(1);
    let shard_size = match scenario_table.get_u64("shard_size")? {
        Some(0) => return Err(at_least_one(scenario_table, "shard_size")),
        Some(shard) => shard,
        None => 64,
    };
    let carrier_mix = weighted_entries(&doc, "carrier", "profile", |table, token| {
        parse_token::<CarrierProfile>(table, "profile", token)
    })?;
    let sim = sim_from_doc(&doc)?;
    let cells = topology_from_doc(&doc)?;
    if cells.is_some() && !scheme.scriptable() {
        let pos = scenario_table.get("scheme").map(|i| i.pos).unwrap_or(scenario_table.pos());
        return Err(ScenError::at(pos, unscriptable_scheme_message(&scheme)));
    }

    let Some(corpus_table) = doc.table("corpus") else {
        // ------------------------------------------------ synthetic ----
        let users = scenario_table.req_u64("users")?;
        let days_per_user = match scenario_table.get_u32("days_per_user")? {
            Some(0) => return Err(at_least_one(scenario_table, "days_per_user")),
            Some(days) => days,
            None => 1,
        };
        let app_mix = weighted_entries(&doc, "app", "kind", |table, token| {
            parse_token::<AppKind>(table, "kind", token)
        })?;
        let name = match scenario_table.get_str("name")? {
            Some(name) => name.to_string(),
            None => default_name(users, &scheme, &carrier_mix),
        };
        let base = Scenario {
            name,
            users,
            days_per_user,
            scheme,
            carrier_mix,
            app_mix,
            master_seed,
            shard_size,
            sim,
            cells,
        };
        let axes = sweep_axes(&doc, false, base.cells.is_some())?;
        return Ok(SourceSet { source: UserSource::Synthetic(base), axes });
    };

    // --------------------------------------------------------- corpus ----
    // The corpus sizes and describes the population; the synthetic-only
    // knobs are conflicts, not unknowns, so the error says *why*.
    for key in ["users", "days_per_user"] {
        if let Some(item) = scenario_table.get(key) {
            return Err(ScenError::at(
                item.pos,
                format!(
                    "`{key}` cannot be combined with `[corpus]`: \
                     the population is sized by the corpus's trace files"
                ),
            ));
        }
    }
    if let Some(first) = doc.array_of_tables("app").first() {
        return Err(ScenError::at(
            first.pos(),
            "`[[app]]` cannot be combined with `[corpus]`: \
             replayed traces already define each user's workload",
        ));
    }

    corpus_table.deny_unknown(&["dir", "recursive", "formats", "pcap_device"], &[], &[])?;
    let dir = corpus_table.req_str("dir")?;
    let dir_pos = corpus_table.get("dir").map(|i| i.pos).unwrap_or(corpus_table.pos());
    if dir.is_empty() {
        return Err(ScenError::at(dir_pos, "`dir` must not be empty"));
    }
    let recursive = corpus_table.get_bool("recursive")?.unwrap_or(true);
    let pcap_device = match corpus_table.get_str("pcap_device")? {
        None => None,
        Some(token) => {
            let pos = corpus_table.get("pcap_device").map(|i| i.pos).unwrap_or(corpus_table.pos());
            Some(token.parse::<std::net::Ipv4Addr>().map_err(|_| {
                ScenError::at(
                    pos,
                    format!(
                        "`pcap_device` must be an IPv4 address (e.g. \"10.0.0.2\"), got {token:?}"
                    ),
                )
            })?)
        }
    };
    let formats = match corpus_table.get_array("formats")? {
        None => TraceFormat::ALL.to_vec(),
        Some(items) => {
            let pos = corpus_table.get("formats").map(|i| i.pos).unwrap_or(corpus_table.pos());
            if items.is_empty() {
                return Err(ScenError::at(pos, "`formats` must not be empty"));
            }
            let mut formats = str_elements("formats", items)?
                .into_iter()
                .map(|token| token.parse::<TraceFormat>().map_err(|e| ScenError::at(pos, e)))
                .collect::<Result<Vec<TraceFormat>, ScenError>>()?;
            formats.sort();
            formats.dedup();
            formats
        }
    };
    let name = match scenario_table.get_str("name")? {
        Some(name) => name.to_string(),
        None => format!("corpus {dir} × {}", scheme.label()),
    };
    let base = CorpusScenario {
        name,
        scheme,
        carrier_mix,
        master_seed,
        shard_size,
        sim,
        cells,
        spec: CorpusSpec {
            dir: PathBuf::from(dir),
            recursive,
            formats,
            pcap_device,
            dir_pos,
            origin: None,
        },
    };
    let axes = sweep_axes(&doc, true, base.cells.is_some())?;
    Ok(SourceSet { source: UserSource::Corpus(base), axes })
}

/// The positioned/emit error body for a non-scriptable scheme meeting a
/// `[cells]` topology (parse and write paths share the wording).
fn unscriptable_scheme_message(scheme: &Scheme) -> String {
    format!(
        "scheme \"{scheme}\" cannot run on a [cells] topology: MakeActive batching depends \
         on grant outcomes, so the exact two-pass replay does not apply; pick a \
         non-batching scheme or drop [cells]"
    )
}

/// Parses one table's admission-policy keys (`admission`, the `[cells]`
/// legacy alias `release`, `min_interval_s`, `watermark_per_s`,
/// `window_s`) into an [`AdmissionSpec`]. Parameter keys that do not
/// belong to the chosen policy are positioned errors, never ignored.
fn admission_from_table(
    table: &Table,
    allow_release_alias: bool,
) -> Result<AdmissionSpec, ScenError> {
    let mut key = "admission";
    let mut token = table.get_str("admission")?;
    if allow_release_alias {
        if let Some(item) = table.get("release") {
            if token.is_some() {
                return Err(ScenError::at(
                    item.pos,
                    "`release` is the legacy alias of `admission`; give one, not both",
                ));
            }
            key = "release";
            token = table.get_str("release")?;
        }
    }
    let pos = table.get(key).map(|i| i.pos).unwrap_or(table.pos());
    let reject_param = |param: &str, wanted: &str| -> Result<(), ScenError> {
        match table.get(param) {
            Some(item) => {
                Err(ScenError::at(item.pos, format!("`{param}` requires {key} = \"{wanted}\"")))
            }
            None => Ok(()),
        }
    };
    match token.unwrap_or("always") {
        "always" => {
            reject_param("min_interval_s", "rate-limited")?;
            reject_param("watermark_per_s", "reactive")?;
            reject_param("window_s", "reactive")?;
            Ok(AdmissionSpec::Always)
        }
        "rate-limited" => {
            reject_param("watermark_per_s", "reactive")?;
            reject_param("window_s", "reactive")?;
            let interval_pos = table.get("min_interval_s").map(|i| i.pos).unwrap_or(table.pos());
            let Some(interval) = table.get_float("min_interval_s")? else {
                return Err(ScenError::at(
                    table.pos(),
                    format!("{key} = \"rate-limited\" needs `min_interval_s`"),
                ));
            };
            if !(interval.is_finite() && interval > 0.0) {
                return Err(ScenError::at(
                    interval_pos,
                    format!("`min_interval_s` must be positive, got {interval}"),
                ));
            }
            Ok(AdmissionSpec::RateLimited { min_interval: Duration::from_secs_f64(interval) })
        }
        "reactive" => {
            reject_param("min_interval_s", "rate-limited")?;
            let Some(watermark_per_s) = table.get_u64("watermark_per_s")? else {
                return Err(ScenError::at(
                    table.pos(),
                    format!("{key} = \"reactive\" needs `watermark_per_s`"),
                ));
            };
            let window_s = match table.get_u64("window_s")? {
                Some(0) => return Err(at_least_one(table, "window_s")),
                Some(window) => window,
                None => 1,
            };
            Ok(AdmissionSpec::LoadReactive { watermark_per_s, window_s })
        }
        other => Err(ScenError::at(
            pos,
            format!("unknown admission policy {other:?}; one of always, rate-limited, reactive"),
        )),
    }
}

/// Parses the optional `[cells]` + `[rnc]` tables into a
/// [`NetworkTopology`]. `[rnc]` without `[cells]` is a positioned
/// error: the hierarchy needs cells to group.
fn topology_from_doc(doc: &Table) -> Result<Option<NetworkTopology>, ScenError> {
    const ADMISSION_KEYS: [&str; 3] = ["min_interval_s", "watermark_per_s", "window_s"];
    let Some(table) = doc.table("cells") else {
        if let Some(rnc) = doc.table("rnc") {
            return Err(ScenError::at(
                rnc.pos(),
                "`[rnc]` requires a `[cells]` table: RNCs group cells",
            ));
        }
        if let Some(mobility) = doc.table("mobility") {
            return Err(ScenError::at(
                mobility.pos(),
                "`[mobility]` requires a `[cells]` table: movement happens between cells",
            ));
        }
        return Ok(None);
    };
    let mut keys = vec!["count", "capacity_per_s", "admission", "release"];
    keys.extend(ADMISSION_KEYS);
    table.deny_unknown(&keys, &[], &[])?;
    let count = match table.req_u64("count")? {
        0 => return Err(at_least_one(table, "count")),
        count => count,
    };
    let cell_budget = SignalingBudget { capacity_per_s: table.get_u64("capacity_per_s")? };
    let cell_admission = admission_from_table(table, true)?;

    let mut topology = NetworkTopology::new(count);
    topology.cell_budget = cell_budget;
    topology.cell_admission = cell_admission;

    if let Some(rnc) = doc.table("rnc") {
        let mut keys = vec!["count", "capacity_per_s", "admission"];
        keys.extend(ADMISSION_KEYS);
        rnc.deny_unknown(&keys, &[], &[])?;
        let rncs = match rnc.get_u64("count")? {
            Some(0) => return Err(at_least_one(rnc, "count")),
            Some(rncs) => rncs,
            None => 1,
        };
        if rncs > count {
            let pos = rnc.get("count").map(|i| i.pos).unwrap_or(rnc.pos());
            return Err(ScenError::at(
                pos,
                format!("cannot spread {count} cell(s) over {rncs} RNCs; `count` must be ≤ the [cells] count"),
            ));
        }
        topology.rncs = rncs;
        topology.rnc_budget = SignalingBudget { capacity_per_s: rnc.get_u64("capacity_per_s")? };
        topology.rnc_admission = admission_from_table(rnc, false)?;
    }
    if let Some(mobility) = doc.table("mobility") {
        topology.mobility = mobility_from_table(mobility)?;
    }
    Ok(Some(topology))
}

/// Parses the `[mobility]` table. `model = "static"` treats the commute
/// parameter keys as conflicts (named errors, not unknowns): a static
/// model has no schedule to configure.
fn mobility_from_table(table: &Table) -> Result<MobilitySpec, ScenError> {
    const COMMUTE_KEYS: [&str; 4] = ["home_hour", "work_hour", "jitter_pct", "hint_s"];
    let mut keys = vec!["model"];
    keys.extend(COMMUTE_KEYS);
    table.deny_unknown(&keys, &[], &[])?;
    let model = table.req_str("model")?;
    match model {
        "static" => {
            for key in COMMUTE_KEYS {
                if let Some(item) = table.get(key) {
                    return Err(ScenError::at(
                        item.pos,
                        format!(
                            "`{key}` configures the commute model, but `model` is \"static\"; \
                             set model = \"commute\" or drop the key"
                        ),
                    ));
                }
            }
            Ok(MobilitySpec::Static)
        }
        "commute" => {
            let home_hour = table.get_u32("home_hour")?.unwrap_or(mobility::DEFAULT_HOME_HOUR);
            let work_hour = table.get_u32("work_hour")?.unwrap_or(mobility::DEFAULT_WORK_HOUR);
            let jitter_pct = table.get_u32("jitter_pct")?.unwrap_or(mobility::DEFAULT_JITTER_PCT);
            let hint_s = table.get_u32("hint_s")?.unwrap_or(mobility::DEFAULT_HINT_S);
            mobility::check_commute(home_hour, work_hour, jitter_pct)
                .map_err(|message| ScenError::at(table.pos(), message))?;
            Ok(MobilitySpec::Commute { home_hour, work_hour, jitter_pct, hint_s })
        }
        other => {
            let pos = table.get("model").map(|i| i.pos).unwrap_or(table.pos());
            Err(ScenError::at(
                pos,
                format!("unknown mobility model {other:?}; one of static, commute"),
            ))
        }
    }
}

/// Parses a document as a synthetic-only [`ScenarioSet`], rejecting
/// `[corpus]` files with a pointer to the corpus-aware loader.
pub(crate) fn set_from_str(src: &str) -> Result<ScenarioSet, ScenError> {
    match source_set_from_str(src)? {
        SourceSet { source: UserSource::Synthetic(base), axes } => Ok(ScenarioSet { base, axes }),
        SourceSet { source: UserSource::Corpus(corpus), .. } => Err(ScenError::at(
            corpus.spec.dir_pos,
            "file declares a [corpus] source; load it with SourceSet::from_file \
             (or run it with `tailwise fleet run`)",
        )),
    }
}

/// Serializes a synthetic scenario (and optional sweep axes) to
/// document text that parses back to the same values.
pub(crate) fn set_to_toml(base: &Scenario, axes: &[SweepAxis]) -> Result<String, ScenError> {
    check_sim_representable(&base.sim)?;
    check_nonzero(&[
        ("days_per_user", u64::from(base.days_per_user)),
        ("shard_size", base.shard_size),
        ("window_capacity", base.sim.window_capacity as u64),
    ])?;
    check_topology_representable(&base.cells, &base.scheme, axes)?;
    let mut w = header();
    w.blank().table("scenario");
    w.str("name", &base.name);
    w.uint("users", base.users);
    w.uint("days_per_user", u64::from(base.days_per_user));
    w.str("scheme", &scheme_token(&base.scheme)?);
    w.uint("master_seed", base.master_seed);
    w.uint("shard_size", base.shard_size);
    write_sim(&mut w, &base.sim);
    write_topology(&mut w, &base.cells);
    write_carriers(&mut w, &base.carrier_mix)?;
    for (kind, weight) in &base.app_mix {
        check_weight(*weight, kind.token())?;
        w.blank().array_table("app").str("kind", kind.token()).float("weight", *weight);
    }
    write_axes(&mut w, axes)?;
    Ok(w.finish())
}

/// Serializes either kind of source, plus sweep axes.
pub(crate) fn source_set_to_toml(
    source: &UserSource,
    axes: &[SweepAxis],
) -> Result<String, ScenError> {
    match source {
        UserSource::Synthetic(base) => set_to_toml(base, axes),
        UserSource::Corpus(base) => corpus_to_toml(base, axes),
    }
}

/// Serializes a corpus scenario: the shared envelope plus the
/// `[corpus]` table instead of `users`/`[[app]]`.
fn corpus_to_toml(base: &CorpusScenario, axes: &[SweepAxis]) -> Result<String, ScenError> {
    check_sim_representable(&base.sim)?;
    check_nonzero(&[
        ("shard_size", base.shard_size),
        ("window_capacity", base.sim.window_capacity as u64),
    ])?;
    check_topology_representable(&base.cells, &base.scheme, axes)?;
    let dir = base.spec.dir.to_str().ok_or_else(|| {
        ScenError::emit(format!(
            "corpus directory {:?} is not valid UTF-8 and cannot be written to a scenario file",
            base.spec.dir
        ))
    })?;
    if base.spec.formats.is_empty() {
        return Err(ScenError::emit("corpus format filter must admit at least one format"));
    }
    let mut w = header();
    w.blank().table("scenario");
    w.str("name", &base.name);
    w.str("scheme", &scheme_token(&base.scheme)?);
    w.uint("master_seed", base.master_seed);
    w.uint("shard_size", base.shard_size);
    write_sim(&mut w, &base.sim);
    write_topology(&mut w, &base.cells);
    // Canonical order is the enum order (the same order the parser
    // normalizes to), so emit→parse round-trips to an equal spec.
    let tokens: Vec<&str> =
        base.spec.canonical_formats().into_iter().map(TraceFormat::token).collect();
    w.blank().table("corpus");
    w.str("dir", dir);
    w.bool("recursive", base.spec.recursive);
    w.str_array("formats", &tokens);
    if let Some(device) = base.spec.pcap_device {
        w.str("pcap_device", &device.to_string());
    }
    write_carriers(&mut w, &base.carrier_mix)?;
    write_axes(&mut w, axes)?;
    Ok(w.finish())
}

fn header() -> DocWriter {
    let mut w = DocWriter::new();
    w.comment("tailwise fleet scenario — run with: tailwise fleet run <this file>")
        .comment("format spec: docs/SCENARIO_FORMAT.md");
    w
}

fn write_sim(w: &mut DocWriter, sim: &SimConfig) {
    w.blank().table("sim");
    w.float("intra_burst_gap_s", sim.intra_burst_gap.as_secs_f64());
    w.uint("window_capacity", sim.window_capacity as u64);
}

/// Emission-side guard for one level's [`AdmissionSpec`]: the written
/// document must parse back to the identical spec.
fn check_admission_representable(level: &str, spec: &AdmissionSpec) -> Result<(), ScenError> {
    match spec {
        AdmissionSpec::Always => Ok(()),
        AdmissionSpec::RateLimited { min_interval } => {
            if *min_interval <= Duration::ZERO {
                return Err(ScenError::emit(format!(
                    "{level} rate-limited admission interval must be positive, got {min_interval}"
                )));
            }
            Ok(())
        }
        AdmissionSpec::LoadReactive { window_s, .. } => {
            if *window_s == 0 {
                return Err(ScenError::emit(format!(
                    "{level} reactive admission window of 0 is not representable \
                     (scenario files require ≥ 1 second)"
                )));
            }
            Ok(())
        }
    }
}

/// Emission-side guard for `[cells]`/`[rnc]`: the written document must
/// parse back, so everything the parser rejects is refused here too.
fn check_topology_representable(
    cells: &Option<NetworkTopology>,
    scheme: &Scheme,
    axes: &[SweepAxis],
) -> Result<(), ScenError> {
    let Some(topology) = cells else {
        if axes.iter().any(|axis| matches!(axis, SweepAxis::Admission(_))) {
            return Err(ScenError::emit(
                "sweep axis `admission` requires a [cells] topology to apply to",
            ));
        }
        if axes.iter().any(|axis| matches!(axis, SweepAxis::Mobility(_))) {
            return Err(ScenError::emit(
                "sweep axis `mobility` requires a [cells] topology to apply to",
            ));
        }
        return Ok(());
    };
    if topology.cells == 0 {
        return Err(ScenError::emit(
            "cell count of 0 is not representable (scenario files require ≥ 1)",
        ));
    }
    if topology.rncs == 0 || topology.rncs > topology.cells {
        return Err(ScenError::emit(format!(
            "cannot spread {} cell(s) over {} RNCs (scenario files require 1 ≤ RNCs ≤ cells)",
            topology.cells, topology.rncs
        )));
    }
    if topology.signaling != SignalingModel::default() {
        return Err(ScenError::emit(
            "network topology customizes the RRC signaling message model, which is not \
             representable in scenario files (they always use the default)",
        ));
    }
    check_admission_representable("cell", &topology.cell_admission)?;
    check_admission_representable("RNC", &topology.rnc_admission)?;
    let mut schemes: Vec<&Scheme> = vec![scheme];
    for axis in axes {
        if let SweepAxis::Schemes(values) = axis {
            schemes.extend(values);
        }
    }
    match schemes.into_iter().find(|s| !s.scriptable()) {
        None => Ok(()),
        Some(bad) => Err(ScenError::emit(unscriptable_scheme_message(bad))),
    }
}

/// Writes one level's admission keys (the structured spelling the
/// parser reads back).
fn write_admission(w: &mut DocWriter, spec: &AdmissionSpec) {
    w.str("admission", spec.token());
    match spec {
        AdmissionSpec::Always => {}
        AdmissionSpec::RateLimited { min_interval } => {
            w.float("min_interval_s", min_interval.as_secs_f64());
        }
        AdmissionSpec::LoadReactive { watermark_per_s, window_s } => {
            w.uint("watermark_per_s", *watermark_per_s);
            w.uint("window_s", *window_s);
        }
    }
}

fn write_topology(w: &mut DocWriter, cells: &Option<NetworkTopology>) {
    let Some(topology) = cells else { return };
    w.blank().table("cells");
    w.uint("count", topology.cells);
    if let Some(capacity) = topology.cell_budget.capacity_per_s {
        w.uint("capacity_per_s", capacity);
    }
    write_admission(w, &topology.cell_admission);
    // The [rnc] table is emitted only when the hierarchy is non-flat or
    // the RNC level is configured; a flat default parses back
    // identically without one.
    if topology.rncs > 1
        || topology.rnc_budget != SignalingBudget::UNBOUNDED
        || topology.rnc_admission != AdmissionSpec::Always
    {
        w.blank().table("rnc");
        w.uint("count", topology.rncs);
        if let Some(capacity) = topology.rnc_budget.capacity_per_s {
            w.uint("capacity_per_s", capacity);
        }
        write_admission(w, &topology.rnc_admission);
    }
    // [mobility] is emitted only for mobile models: a static default
    // parses back identically without one.
    if let MobilitySpec::Commute { home_hour, work_hour, jitter_pct, hint_s } = topology.mobility {
        w.blank().table("mobility");
        w.str("model", topology.mobility.token());
        w.uint("home_hour", u64::from(home_hour));
        w.uint("work_hour", u64::from(work_hour));
        w.uint("jitter_pct", u64::from(jitter_pct));
        w.uint("hint_s", u64::from(hint_s));
    }
}

fn write_carriers(
    w: &mut DocWriter,
    carrier_mix: &[(CarrierProfile, f64)],
) -> Result<(), ScenError> {
    // The schema requires ≥ 1 [[carrier]]; emitting none would produce
    // a document from_toml_str rejects.
    if carrier_mix.is_empty() {
        return Err(ScenError::emit(
            "scenario has an empty carrier mix; files need at least one [[carrier]] entry",
        ));
    }
    for (profile, weight) in carrier_mix {
        let slug = profile.slug().ok_or_else(|| {
            ScenError::emit(format!(
                "carrier profile {:?} does not match any built-in preset; \
                 scenario files can only name presets ({})",
                profile.name,
                CarrierProfile::PRESET_SLUGS.join(", ")
            ))
        })?;
        check_weight(*weight, slug)?;
        w.blank().array_table("carrier").str("profile", slug).float("weight", *weight);
    }
    Ok(())
}

fn write_axes(w: &mut DocWriter, axes: &[SweepAxis]) -> Result<(), ScenError> {
    for axis in axes {
        w.blank().array_table("sweep");
        match axis {
            SweepAxis::Schemes(schemes) => {
                let tokens =
                    schemes.iter().map(scheme_token).collect::<Result<Vec<String>, ScenError>>()?;
                w.str("axis", "scheme").str_array("values", &tokens);
            }
            SweepAxis::Carriers(carriers) => {
                let slugs = carriers
                    .iter()
                    .map(|c| {
                        c.slug().map(str::to_string).ok_or_else(|| {
                            ScenError::emit(format!(
                                "sweep carrier {:?} is not a built-in preset",
                                c.name
                            ))
                        })
                    })
                    .collect::<Result<Vec<String>, ScenError>>()?;
                w.str("axis", "carrier").str_array("values", &slugs);
            }
            SweepAxis::Users(sizes) => {
                w.str("axis", "users").uint_array("values", sizes);
            }
            SweepAxis::Admission(specs) => {
                let tokens: Vec<String> = specs.iter().map(AdmissionSpec::to_string).collect();
                w.str("axis", "admission").str_array("values", &tokens);
            }
            SweepAxis::Mobility(specs) => {
                let tokens: Vec<String> = specs.iter().map(MobilitySpec::to_string).collect();
                w.str("axis", "mobility").str_array("values", &tokens);
            }
        }
    }
    Ok(())
}

/// The scheme's on-disk token, verified loadable: the token must parse
/// back to the identical scheme, so `to_file` can never produce a file
/// `from_file` rejects (e.g. `PercentileIat(1.0)` would print `iat100`,
/// which the parser refuses) or reads back differently.
fn scheme_token(scheme: &Scheme) -> Result<String, ScenError> {
    let token = scheme.to_string();
    match token.parse::<Scheme>() {
        Ok(parsed) if parsed == *scheme => Ok(token),
        _ => Err(ScenError::emit(format!(
            "scheme {scheme:?} has no loadable on-disk token ({token:?} does not parse back \
             to it); IAT percentiles must lie strictly inside (0, 1)"
        ))),
    }
}

/// Errors when the engine config customizes a field the on-disk format
/// cannot express — the alternative is a `to_file` that succeeds and a
/// `from_file` that silently returns a different scenario.
fn check_sim_representable(sim: &SimConfig) -> Result<(), ScenError> {
    let default = SimConfig::default();
    let hidden = [
        ("record_decisions", sim.record_decisions == default.record_decisions),
        ("decision_log_limit", sim.decision_log_limit == default.decision_log_limit),
        ("record_timeline", sim.record_timeline == default.record_timeline),
        ("timeline_limit", sim.timeline_limit == default.timeline_limit),
        ("record_transitions", sim.record_transitions == default.record_transitions),
        ("transition_log_limit", sim.transition_log_limit == default.transition_log_limit),
    ];
    match hidden.iter().find(|(_, unchanged)| !unchanged) {
        None => Ok(()),
        Some((field, _)) => Err(ScenError::emit(format!(
            "sim config field `{field}` differs from its default and is not representable \
             in scenario files (only intra_burst_gap_s and window_capacity are; see \
             docs/SCENARIO_FORMAT.md §2.2)"
        ))),
    }
}

/// Emission-side guard for fields the format requires to be ≥ 1.
fn check_nonzero(fields: &[(&str, u64)]) -> Result<(), ScenError> {
    match fields.iter().find(|(_, value)| *value == 0) {
        None => Ok(()),
        Some((field, _)) => Err(ScenError::emit(format!(
            "{field} of 0 is not representable (scenario files require ≥ 1)"
        ))),
    }
}

/// A positioned "must be at least 1" error for `key` — zero is always a
/// bug in the file (the format's rule is loud failure, never a silent
/// clamp that runs a different experiment than the author wrote).
fn at_least_one(table: &Table, key: &str) -> ScenError {
    let pos = table.get(key).map(|i| i.pos).unwrap_or(table.pos());
    ScenError::at(pos, format!("`{key}` must be at least 1"))
}

fn check_weight(weight: f64, what: &str) -> Result<(), ScenError> {
    if weight.is_finite() && weight > 0.0 {
        Ok(())
    } else {
        Err(ScenError::emit(format!(
            "weight of {what:?} must be a positive finite number, got {weight}"
        )))
    }
}

/// Parses the `[[carrier]]` / `[[app]]` weighted-entry arrays.
fn weighted_entries<T>(
    doc: &Table,
    array: &str,
    token_key: &str,
    parse_entry: impl Fn(&Table, &str) -> Result<T, ScenError>,
) -> Result<Vec<(T, f64)>, ScenError> {
    let tables = doc.array_of_tables(array);
    if tables.is_empty() {
        return Err(ScenError::at(
            doc.pos(),
            format!("scenario needs at least one `[[{array}]]` entry"),
        ));
    }
    let mut out = Vec::with_capacity(tables.len());
    for table in tables {
        table.deny_unknown(&[token_key, "weight"], &[], &[])?;
        let token = table.req_str(token_key)?;
        let value = parse_entry(table, token)?;
        let weight = table.get_float("weight")?.unwrap_or(1.0);
        if !(weight.is_finite() && weight > 0.0) {
            let pos = table.get("weight").map(|i| i.pos).unwrap_or(table.pos());
            return Err(ScenError::at(pos, format!("`weight` must be positive, got {weight}")));
        }
        out.push((value, weight));
    }
    Ok(out)
}

fn sim_from_doc(doc: &Table) -> Result<SimConfig, ScenError> {
    let mut sim = SimConfig::default();
    let Some(table) = doc.table("sim") else { return Ok(sim) };
    table.deny_unknown(&["intra_burst_gap_s", "window_capacity"], &[], &[])?;
    if let Some(gap) = table.get_float("intra_burst_gap_s")? {
        if !(gap.is_finite() && gap > 0.0) {
            let pos = table.get("intra_burst_gap_s").map(|i| i.pos).unwrap_or(table.pos());
            return Err(ScenError::at(
                pos,
                format!("`intra_burst_gap_s` must be positive, got {gap}"),
            ));
        }
        sim.intra_burst_gap = Duration::from_secs_f64(gap);
    }
    match table.get_u64("window_capacity")? {
        Some(0) => return Err(at_least_one(table, "window_capacity")),
        Some(capacity) => sim.window_capacity = capacity as usize,
        None => {}
    }
    Ok(sim)
}

/// Parses `[[sweep]]` axes. With `corpus`, the `users` axis is rejected
/// (a corpus population is sized by its directory, not a knob); with
/// `cells`, scheme values must be scriptable (see
/// [`Scheme::scriptable`]).
fn sweep_axes(doc: &Table, corpus: bool, cells: bool) -> Result<Vec<SweepAxis>, ScenError> {
    let mut axes = Vec::new();
    for table in doc.array_of_tables("sweep") {
        table.deny_unknown(&["axis", "values"], &[], &[])?;
        let axis = table.req_str("axis")?;
        let values = table.req_array("values")?;
        if values.is_empty() {
            let pos = table.get("values").map(|i| i.pos).unwrap_or(table.pos());
            return Err(ScenError::at(pos, "sweep `values` must not be empty"));
        }
        let axis_pos = table.get("axis").map(|i| i.pos).unwrap_or(table.pos());
        axes.push(match axis {
            "scheme" => {
                let schemes = str_elements("values", values)?
                    .into_iter()
                    .map(|token| token.parse::<Scheme>().map_err(|e| ScenError::at(axis_pos, e)))
                    .collect::<Result<Vec<Scheme>, ScenError>>()?;
                if cells {
                    if let Some(bad) = schemes.iter().find(|s| !s.scriptable()) {
                        return Err(ScenError::at(axis_pos, unscriptable_scheme_message(bad)));
                    }
                }
                SweepAxis::Schemes(schemes)
            }
            "carrier" => SweepAxis::Carriers(
                str_elements("values", values)?
                    .into_iter()
                    .map(|token| {
                        token.parse::<CarrierProfile>().map_err(|e| ScenError::at(axis_pos, e))
                    })
                    .collect::<Result<Vec<CarrierProfile>, ScenError>>()?,
            ),
            "users" if corpus => {
                return Err(ScenError::at(
                    axis_pos,
                    "sweep axis `users` requires a synthetic scenario; \
                     a [corpus] population is sized by its directory",
                ))
            }
            "users" => SweepAxis::Users(u64_elements("values", values)?),
            "admission" if !cells => {
                return Err(ScenError::at(
                    axis_pos,
                    "sweep axis `admission` requires a [cells] topology to apply to",
                ))
            }
            "admission" => SweepAxis::Admission(
                str_elements("values", values)?
                    .into_iter()
                    .map(|token| {
                        token.parse::<AdmissionSpec>().map_err(|e| ScenError::at(axis_pos, e))
                    })
                    .collect::<Result<Vec<AdmissionSpec>, ScenError>>()?,
            ),
            "mobility" if !cells => {
                return Err(ScenError::at(
                    axis_pos,
                    "sweep axis `mobility` requires a [cells] topology to apply to",
                ))
            }
            "mobility" => SweepAxis::Mobility(
                str_elements("values", values)?
                    .into_iter()
                    .map(|token| {
                        token.parse::<MobilitySpec>().map_err(|e| ScenError::at(axis_pos, e))
                    })
                    .collect::<Result<Vec<MobilitySpec>, ScenError>>()?,
            ),
            other => {
                return Err(ScenError::at(
                    axis_pos,
                    format!(
                        "unknown sweep axis {other:?}; one of scheme, carrier, users, \
                         admission, mobility"
                    ),
                ))
            }
        });
    }
    Ok(axes)
}

/// Parses a string token bound to `key` into `T`, anchoring failures at
/// the token's position in the file.
fn parse_token<T: std::str::FromStr<Err = String>>(
    table: &Table,
    key: &str,
    token: &str,
) -> Result<T, ScenError> {
    token.parse::<T>().map_err(|message| {
        let pos = table.get(key).map(|i| i.pos).unwrap_or(table.pos());
        ScenError::at(pos, message)
    })
}

fn default_name(users: u64, scheme: &Scheme, carrier_mix: &[(CarrierProfile, f64)]) -> String {
    match carrier_mix {
        [(only, _)] => format!("{} × {} on {}", users, scheme.label(), only.name),
        _ => format!("{} × {} on {} carriers", users, scheme.label(), carrier_mix.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tailwise_scenfile::{Pos, ScenErrorKind};

    const MINIMAL: &str = concat!(
        "[scenario]\n",
        "users = 40\n",
        "\n",
        "[[carrier]]\n",
        "profile = \"verizon-lte\"\n",
        "\n",
        "[[app]]\n",
        "kind = \"im\"\n",
    );

    #[test]
    fn minimal_file_fills_defaults() {
        let set = set_from_str(MINIMAL).unwrap();
        assert!(!set.is_sweep());
        let s = &set.base;
        assert_eq!(s.users, 40);
        assert_eq!(s.days_per_user, 1);
        assert_eq!(s.scheme, Scheme::MakeIdle);
        assert_eq!(s.master_seed, 1);
        assert_eq!(s.shard_size, 64);
        assert_eq!(s.carrier_mix.len(), 1);
        assert_eq!(s.carrier_mix[0].1, 1.0);
        assert_eq!(s.app_mix, vec![(AppKind::Im, 1.0)]);
        assert_eq!(s.sim, SimConfig::default());
        assert_eq!(s.name, "40 × MakeIdle on Verizon LTE");
    }

    #[test]
    fn full_file_round_trips_every_field() {
        let src = concat!(
            "[scenario]\n",
            "name = \"full house\"\n",
            "users = 1_000\n",
            "days_per_user = 3\n",
            "scheme = \"makeidle-activelearn\"\n",
            "master_seed = 0xF1EE7\n",
            "shard_size = 32\n",
            "\n",
            "[sim]\n",
            "intra_burst_gap_s = 0.25\n",
            "window_capacity = 150\n",
            "\n",
            "[[carrier]]\n",
            "profile = \"att-hspa\"\n",
            "weight = 3.0\n",
            "\n",
            "[[carrier]]\n",
            "profile = \"verizon-lte\"\n",
            "\n",
            "[[app]]\n",
            "kind = \"im\"\n",
            "weight = 2.5\n",
            "\n",
            "[[app]]\n",
            "kind = \"finance\"\n",
        );
        let set = set_from_str(src).unwrap();
        let s = &set.base;
        assert_eq!(s.name, "full house");
        assert_eq!((s.users, s.days_per_user, s.master_seed, s.shard_size), (1000, 3, 0xF1EE7, 32));
        assert_eq!(s.scheme, Scheme::MakeIdleActiveLearn);
        assert_eq!(s.sim.intra_burst_gap, Duration::from_secs_f64(0.25));
        assert_eq!(s.sim.window_capacity, 150);
        assert_eq!(s.carrier_mix[0].0, CarrierProfile::att_hspa());
        assert_eq!(s.carrier_mix[0].1, 3.0);
        assert_eq!(s.carrier_mix[1].1, 1.0);

        // And through the writer: emitted text reparses to an equal set.
        let text = set_to_toml(s, &set.axes).unwrap();
        let again = set_from_str(&text).unwrap();
        assert_eq!(again.base, *s);
        assert_eq!(again.axes, set.axes);
    }

    #[test]
    fn sweep_axes_parse_and_serialize() {
        let src = concat!(
            "[scenario]\n",
            "users = 10\n",
            "[[carrier]]\n",
            "profile = \"att-hspa\"\n",
            "[[app]]\n",
            "kind = \"im\"\n",
            "[[sweep]]\n",
            "axis = \"scheme\"\n",
            "values = [\"statusquo\", \"makeidle\", \"oracle\"]\n",
            "[[sweep]]\n",
            "axis = \"users\"\n",
            "values = [10, 100]\n",
        );
        let set = set_from_str(src).unwrap();
        assert!(set.is_sweep());
        assert_eq!(set.axes.len(), 2);
        assert_eq!(
            set.axes[0],
            SweepAxis::Schemes(vec![Scheme::StatusQuo, Scheme::MakeIdle, Scheme::Oracle])
        );
        assert_eq!(set.axes[1], SweepAxis::Users(vec![10, 100]));

        let text = set_to_toml(&set.base, &set.axes).unwrap();
        let again = set_from_str(&text).unwrap();
        assert_eq!(again.axes, set.axes);
    }

    // ------------------------------------------------------------------
    // [cells] files.

    #[test]
    fn cells_table_parses_with_defaults_and_round_trips() {
        let src = concat!(
            "[scenario]\nusers = 40\n",
            "[cells]\ncount = 16\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[app]]\nkind = \"im\"\n",
        );
        let set = set_from_str(src).unwrap();
        let topology = set.base.cells.as_ref().expect("cells parsed");
        assert_eq!(topology.cells, 16);
        assert_eq!(topology.rncs, 1, "no [rnc] table means a flat single-RNC hierarchy");
        assert_eq!(topology.cell_budget, SignalingBudget::UNBOUNDED);
        assert_eq!(topology.rnc_budget, SignalingBudget::UNBOUNDED);
        assert_eq!(topology.cell_admission, AdmissionSpec::Always);
        assert_eq!(topology.rnc_admission, AdmissionSpec::Always);
        assert_eq!(topology.signaling, SignalingModel::default());
        let text = set_to_toml(&set.base, &[]).unwrap();
        assert!(!text.contains("[rnc]"), "flat defaults emit no [rnc] table:\n{text}");
        assert_eq!(set_from_str(&text).unwrap().base, set.base);
    }

    #[test]
    fn rate_limited_cells_round_trip_with_capacity() {
        // `release` is the legacy PR 4 alias of `admission` — old files
        // keep parsing, and the writer re-emits the canonical key.
        let src = concat!(
            "[scenario]\nusers = 10\nscheme = \"oracle\"\n",
            "[cells]\n",
            "count = 3\n",
            "capacity_per_s = 120\n",
            "release = \"rate-limited\"\n",
            "min_interval_s = 2.5\n",
            "[[carrier]]\nprofile = \"verizon-lte\"\n",
            "[[app]]\nkind = \"im\"\n",
            "[[sweep]]\naxis = \"scheme\"\nvalues = [\"makeidle\", \"oracle\"]\n",
        );
        let set = set_from_str(src).unwrap();
        let topology = set.base.cells.as_ref().unwrap();
        assert_eq!(topology.cell_budget.capacity_per_s, Some(120));
        assert_eq!(
            topology.cell_admission,
            AdmissionSpec::RateLimited { min_interval: Duration::from_secs_f64(2.5) }
        );
        let text = set_to_toml(&set.base, &set.axes).unwrap();
        assert!(text.contains("admission = \"rate-limited\""), "{text}");
        assert!(!text.contains("release ="), "writer emits the canonical key:\n{text}");
        let again = set_from_str(&text).unwrap();
        assert_eq!(again.base, set.base);
        assert_eq!(again.axes, set.axes);
    }

    #[test]
    fn rnc_hierarchy_parses_and_round_trips() {
        let src = concat!(
            "[scenario]\nusers = 40\n",
            "[cells]\n",
            "count = 12\n",
            "capacity_per_s = 120\n",
            "admission = \"rate-limited\"\n",
            "min_interval_s = 2.0\n",
            "[rnc]\n",
            "count = 3\n",
            "capacity_per_s = 400\n",
            "admission = \"reactive\"\n",
            "watermark_per_s = 50\n",
            "window_s = 5\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[app]]\nkind = \"im\"\n",
        );
        let set = set_from_str(src).unwrap();
        let topology = set.base.cells.as_ref().unwrap();
        assert_eq!((topology.rncs, topology.cells), (3, 12));
        assert_eq!(topology.rnc_budget.capacity_per_s, Some(400));
        assert_eq!(
            topology.rnc_admission,
            AdmissionSpec::LoadReactive { watermark_per_s: 50, window_s: 5 }
        );
        assert_eq!(
            topology.cell_admission,
            AdmissionSpec::RateLimited { min_interval: Duration::from_secs(2) }
        );
        let text = set_to_toml(&set.base, &[]).unwrap();
        assert!(text.contains("[rnc]"), "{text}");
        assert_eq!(set_from_str(&text).unwrap().base, set.base);
    }

    #[test]
    fn admission_sweep_axis_parses_and_round_trips() {
        let src = concat!(
            "[scenario]\nusers = 12\n",
            "[cells]\ncount = 4\n",
            "[rnc]\ncount = 2\ncapacity_per_s = 90\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[app]]\nkind = \"im\"\n",
            "[[sweep]]\n",
            "axis = \"admission\"\n",
            "values = [\"always\", \"rate-limited:2.5\", \"reactive:120:5\"]\n",
        );
        let set = set_from_str(src).unwrap();
        assert_eq!(
            set.axes,
            vec![SweepAxis::Admission(vec![
                AdmissionSpec::Always,
                AdmissionSpec::RateLimited { min_interval: Duration::from_secs_f64(2.5) },
                AdmissionSpec::LoadReactive { watermark_per_s: 120, window_s: 5 },
            ])]
        );
        // Expansion rewrites the RNC admission only.
        let expanded = set.expand();
        assert_eq!(expanded.len(), 3);
        assert_eq!(
            expanded[2].cells.as_ref().unwrap().rnc_admission,
            AdmissionSpec::LoadReactive { watermark_per_s: 120, window_s: 5 }
        );
        assert_eq!(expanded[2].cells.as_ref().unwrap().cell_admission, AdmissionSpec::Always);
        assert!(expanded[1].name.ends_with("[admission=rate-limited:2.5]"), "{}", expanded[1].name);
        let text = set_to_toml(&set.base, &set.axes).unwrap();
        let again = set_from_str(&text).unwrap();
        assert_eq!(again.base, set.base);
        assert_eq!(again.axes, set.axes);
    }

    #[test]
    fn commute_mobility_parses_and_round_trips() {
        let src = concat!(
            "[scenario]\nusers = 20\n",
            "[cells]\ncount = 6\n",
            "[mobility]\n",
            "model = \"commute\"\n",
            "home_hour = 7\n",
            "work_hour = 18\n",
            "[[carrier]]\nprofile = \"verizon-lte\"\n",
            "[[app]]\nkind = \"im\"\n",
        );
        let set = set_from_str(src).unwrap();
        let topology = set.base.cells.as_ref().unwrap();
        assert_eq!(
            topology.mobility,
            MobilitySpec::Commute {
                home_hour: 7,
                work_hour: 18,
                jitter_pct: mobility::DEFAULT_JITTER_PCT,
                hint_s: mobility::DEFAULT_HINT_S,
            },
            "omitted keys fall back to the documented defaults"
        );
        let text = set_to_toml(&set.base, &[]).unwrap();
        assert!(text.contains("[mobility]"), "{text}");
        assert!(text.contains("model = \"commute\""), "{text}");
        assert_eq!(set_from_str(&text).unwrap().base, set.base);

        // An explicit static model parses, but the writer omits the
        // table entirely: the default spelling is no table at all.
        let src = concat!(
            "[scenario]\nusers = 20\n",
            "[cells]\ncount = 6\n",
            "[mobility]\nmodel = \"static\"\n",
            "[[carrier]]\nprofile = \"verizon-lte\"\n",
            "[[app]]\nkind = \"im\"\n",
        );
        let set = set_from_str(src).unwrap();
        assert_eq!(set.base.cells.as_ref().unwrap().mobility, MobilitySpec::Static);
        let text = set_to_toml(&set.base, &[]).unwrap();
        assert!(!text.contains("[mobility]"), "static emits no table:\n{text}");
        assert_eq!(set_from_str(&text).unwrap().base, set.base);
    }

    #[test]
    fn mobility_sweep_axis_parses_and_round_trips() {
        let src = concat!(
            "[scenario]\nusers = 12\n",
            "[cells]\ncount = 4\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[app]]\nkind = \"im\"\n",
            "[[sweep]]\n",
            "axis = \"mobility\"\n",
            "values = [\"static\", \"commute\", \"commute:6:19:10:30\"]\n",
        );
        let set = set_from_str(src).unwrap();
        assert_eq!(
            set.axes,
            vec![SweepAxis::Mobility(vec![
                MobilitySpec::Static,
                MobilitySpec::commute(),
                MobilitySpec::Commute { home_hour: 6, work_hour: 19, jitter_pct: 10, hint_s: 30 },
            ])]
        );
        let expanded = set.expand();
        assert_eq!(expanded.len(), 3);
        assert_eq!(expanded[0].cells.as_ref().unwrap().mobility, MobilitySpec::Static);
        assert_eq!(
            expanded[2].cells.as_ref().unwrap().mobility,
            MobilitySpec::Commute { home_hour: 6, work_hour: 19, jitter_pct: 10, hint_s: 30 }
        );
        assert!(expanded[1].name.ends_with("[mobility=commute]"), "{}", expanded[1].name);
        let text = set_to_toml(&set.base, &set.axes).unwrap();
        let again = set_from_str(&text).unwrap();
        assert_eq!(again.base, set.base);
        assert_eq!(again.axes, set.axes);
    }

    #[test]
    fn golden_mobility_schema_errors() {
        // [mobility] without [cells] has nothing to move between.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",          // 1-2
            "[mobility]\nmodel = \"static\"\n", // 3-4
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(3, 1));
        assert!(e.message.contains("`[mobility]` requires a `[cells]` table"), "{e}");

        // A commute parameter on the static model is a named conflict,
        // not an unknown key.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",          // 1-2
            "[cells]\ncount = 2\n",             // 3-4
            "[mobility]\nmodel = \"static\"\n", // 5-6
            "home_hour = 9\n",                  // 7 (value at col 13)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(7, 13));
        assert!(e.message.contains("but `model` is \"static\""), "{e}");

        // Unknown models name the alternatives.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\n",
            "[mobility]\nmodel = \"teleport\"\n", // 6 (value at col 9)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(6, 9));
        assert!(e.message.contains("unknown mobility model \"teleport\""), "{e}");

        // Commute hours are validated with the shared wording.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\n",
            "[mobility]\nmodel = \"commute\"\nhome_hour = 20\nwork_hour = 8\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert!(e.message.contains("leave home before leaving work"), "{e}");

        // Unknown keys are rejected, with the schema in the message.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\n",
            "[mobility]\nmodel = \"commute\"\nspeed = 3\n", // 7
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert!(e.message.contains("unknown key `speed`"), "{e}");
        assert!(e.message.contains("home_hour"), "suggests valid keys: {e}");

        // A mobility sweep without a topology has nothing to apply to.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
            "[[sweep]]\n",           // 7
            "axis = \"mobility\"\n", // 8 (value at col 8)
            "values = [\"static\"]\n",
        ));
        assert_eq!(e.pos, Pos::new(8, 8));
        assert!(e.message.contains("requires a [cells] topology"), "{e}");

        // Malformed mobility tokens carry the token parser's reason.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
            "[[sweep]]\n",
            "axis = \"mobility\"\n", // 10 (value at col 8)
            "values = [\"commute:9\"]\n",
        ));
        assert_eq!(e.pos, Pos::new(10, 8));
        assert!(e.message.contains("hour pair"), "{e}");
    }

    #[test]
    fn golden_cells_schema_errors() {
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n", // 1-2
            "[cells]\n",               // 3
            "count = 0\n",             // 4 (value at col 9)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(4, 9));
        assert!(e.message.contains("`count` must be at least 1"), "{e}");

        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\ncells = 9\n", // 5: unknown key
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 1));
        assert!(e.message.contains("unknown key `cells`"), "{e}");
        assert!(e.message.contains("capacity_per_s"), "suggests valid keys: {e}");

        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\nmin_interval_s = 1.0\n", // 5 (value at col 18)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 18));
        assert!(e.message.contains("requires admission = \"rate-limited\""), "{e}");

        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\nrelease = \"rate-limited\"\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert!(e.message.contains("needs `min_interval_s`"), "{e}");

        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\nrelease = \"sometimes\"\n", // 5 (value at col 11)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 11));
        assert!(e.message.contains("unknown admission policy \"sometimes\""), "{e}");

        // Giving both the canonical key and the legacy alias is a
        // conflict, not a guess.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",                      // 1-2
            "[cells]\ncount = 2\nadmission = \"always\"\n", // 3-5
            "release = \"always\"\n",                       // 6 (value at col 11)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(6, 11));
        assert!(e.message.contains("legacy alias"), "{e}");
    }

    #[test]
    fn golden_reactive_and_rnc_schema_errors() {
        // Reactive parameters on the wrong policy kind.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",                   // 1-2
            "[cells]\ncount = 2\nwatermark_per_s = 9\n", // 3-5 (value at col 19)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 19));
        assert!(e.message.contains("requires admission = \"reactive\""), "{e}");

        // Reactive without its watermark.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\nadmission = \"reactive\"\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert!(e.message.contains("needs `watermark_per_s`"), "{e}");

        // Zero windows are rejected, never clamped.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\nadmission = \"reactive\"\nwatermark_per_s = 9\n",
            "window_s = 0\n", // 7 (value at col 12)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(7, 12));
        assert!(e.message.contains("`window_s` must be at least 1"), "{e}");

        // [rnc] needs cells to group.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n", // 1-2
            "[rnc]\ncount = 2\n",      // 3-4
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(3, 1));
        assert!(e.message.contains("`[rnc]` requires a `[cells]` table"), "{e}");

        // More RNCs than cells cannot form contiguous blocks.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n", // 1-2
            "[cells]\ncount = 2\n",    // 3-4
            "[rnc]\ncount = 3\n",      // 5-6 (value at col 9)
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(6, 9));
        assert!(e.message.contains("cannot spread 2 cell(s) over 3 RNCs"), "{e}");

        // The [rnc] table rejects the cells-only legacy alias.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 4\n",
            "[rnc]\nrelease = \"always\"\n", // 6
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(6, 1));
        assert!(e.message.contains("unknown key `release`"), "{e}");

        // An admission sweep without a topology has nothing to apply to.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
            "[[sweep]]\n",            // 7
            "axis = \"admission\"\n", // 8 (value at col 8)
            "values = [\"always\"]\n",
        ));
        assert_eq!(e.pos, Pos::new(8, 8));
        assert!(e.message.contains("requires a [cells] topology"), "{e}");

        // Malformed admission tokens in sweep values carry the parse
        // failure's reason.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
            "[[sweep]]\n",
            "axis = \"admission\"\n", // 10 (value at col 8)
            "values = [\"reactive\"]\n",
        ));
        assert_eq!(e.pos, Pos::new(10, 8));
        assert!(e.message.contains("needs a watermark"), "{e}");
    }

    #[test]
    fn golden_cells_reject_batched_schemes_in_base_and_sweeps() {
        // Base scheme: positioned at the scheme value.
        let e = err_of(concat!(
            "[scenario]\n",                        // 1
            "users = 5\n",                         // 2
            "scheme = \"makeidle-activelearn\"\n", // 3 (value at col 10)
            "[cells]\ncount = 2\n",                // 4-5
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(3, 10));
        assert!(e.message.contains("cannot run on a [cells] topology"), "{e}");

        // Sweep values are checked too, anchored at the axis key.
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[cells]\ncount = 2\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n[[app]]\nkind = \"im\"\n",
            "[[sweep]]\n",         // 9
            "axis = \"scheme\"\n", // 10 (value at col 8)
            "values = [\"makeidle\", \"makeidle-activefix\"]\n",
        ));
        assert_eq!(e.pos, Pos::new(10, 8));
        assert!(e.message.contains("cannot run on a [cells] topology"), "{e}");
    }

    #[test]
    fn unscriptable_or_customized_cells_cannot_serialize() {
        let mut s = Scenario::new(4, Scheme::MakeIdleActiveLearn, CarrierProfile::att_hspa());
        s.cells = Some(NetworkTopology::new(4));
        let err = set_to_toml(&s, &[]).unwrap_err();
        assert_eq!(err.kind, ScenErrorKind::Emit);
        assert!(err.message.contains("cannot run on a [cells] topology"), "{err}");

        // A sweep smuggling a batched scheme past a scriptable base.
        s.scheme = Scheme::MakeIdle;
        let axes = vec![SweepAxis::Schemes(vec![Scheme::Oracle, Scheme::MakeIdleActiveFix])];
        let err = set_to_toml(&s, &axes).unwrap_err();
        assert!(err.message.contains("cannot run on a [cells] topology"), "{err}");

        // A customized signaling model has no on-disk spelling.
        let mut topology = NetworkTopology::new(4);
        topology.signaling.per_promotion = 99;
        s.cells = Some(topology);
        let err = set_to_toml(&s, &[]).unwrap_err();
        assert!(err.message.contains("signaling message model"), "{err}");
    }

    // ------------------------------------------------------------------
    // [corpus] files.

    const CORPUS_MINIMAL: &str = concat!(
        "[scenario]\n",             // 1
        "name = \"replay\"\n",      // 2
        "\n",                       // 3
        "[corpus]\n",               // 4
        "dir = \"traces\"\n",       // 5  (value at col 7)
        "\n",                       // 6
        "[[carrier]]\n",            // 7
        "profile = \"att-hspa\"\n", // 8
    );

    #[test]
    fn corpus_file_parses_with_defaults() {
        let set = source_set_from_str(CORPUS_MINIMAL).unwrap();
        assert!(!set.is_sweep());
        let UserSource::Corpus(c) = &set.source else { panic!("expected a corpus source") };
        assert_eq!(c.name, "replay");
        assert_eq!(c.scheme, Scheme::MakeIdle);
        assert_eq!(c.spec.dir, PathBuf::from("traces"));
        assert!(c.spec.recursive);
        assert_eq!(c.spec.formats, TraceFormat::ALL.to_vec());
        assert_eq!(c.spec.dir_pos, Pos::new(5, 7));
        assert_eq!((c.master_seed, c.shard_size), (1, 64));
        assert_eq!(c.carrier_mix, vec![(CarrierProfile::att_hspa(), 1.0)]);
    }

    #[test]
    fn corpus_file_round_trips_through_the_writer() {
        let src = concat!(
            "[scenario]\n",
            "scheme = \"oracle\"\n",
            "master_seed = 99\n",
            "shard_size = 16\n",
            "[corpus]\n",
            "dir = \"data/field-study\"\n",
            "recursive = false\n",
            "formats = [\"twt\"]\n",
            "[[carrier]]\n",
            "profile = \"verizon-lte\"\n",
            "weight = 2.0\n",
            "[[sweep]]\n",
            "axis = \"scheme\"\n",
            "values = [\"tail45\", \"oracle\"]\n",
        );
        let set = source_set_from_str(src).unwrap();
        let UserSource::Corpus(c) = &set.source else { panic!("expected a corpus source") };
        // Default name mentions the directory and scheme.
        assert_eq!(c.name, "corpus data/field-study × Oracle");
        assert!(!c.spec.recursive);
        assert_eq!(c.spec.formats, vec![TraceFormat::Binary]);

        let text = set.to_toml_string().unwrap();
        let again = SourceSet::from_toml_str(&text).unwrap();
        assert_eq!(again, set, "corpus round trip drifted:\n{text}");
    }

    #[test]
    fn unordered_format_filters_round_trip_to_an_equal_spec() {
        // Emission and parsing both canonicalize to enum order, so a
        // programmatically built spec with reversed/duplicated formats
        // still satisfies the to_toml_string→from_toml_str == contract.
        let mut c = CorpusScenario::new("corpus", Scheme::MakeIdle, CarrierProfile::att_hspa());
        c.spec.formats = vec![TraceFormat::Csv, TraceFormat::Binary, TraceFormat::Csv];
        let source = UserSource::Corpus(c);
        let text = source_set_to_toml(&source, &[]).unwrap();
        assert!(text.contains("formats = [\"twt\", \"csv\"]"), "{text}");
        let reparsed = source_set_from_str(&text).unwrap();
        assert_eq!(reparsed.source, source);
    }

    #[test]
    fn scenario_set_rejects_corpus_files_with_a_pointer() {
        let e = set_from_str(CORPUS_MINIMAL).unwrap_err();
        assert_eq!(e.pos, Pos::new(5, 7));
        assert!(e.message.contains("SourceSet::from_file"), "{e}");
    }

    // ------------------------------------------------------------------
    // Golden schema errors: position and message.

    fn err_of(src: &str) -> ScenError {
        source_set_from_str(src).expect_err("expected a schema error")
    }

    #[test]
    fn golden_missing_scenario_table() {
        let e = err_of("[[carrier]]\nprofile = \"att-hspa\"\n");
        assert_eq!(e.pos, Pos::new(1, 1));
        assert!(e.message.contains("missing required table `[scenario]`"), "{e}");
    }

    #[test]
    fn golden_missing_users_points_at_scenario_header() {
        let e = err_of(
            "[scenario]\nname = \"x\"\n[[carrier]]\nprofile = \"att\"\n[[app]]\nkind = \"im\"\n",
        );
        assert_eq!(e.pos, Pos::new(1, 1));
        assert!(e.message.contains("missing required key `users`"), "{e}");
    }

    #[test]
    fn golden_unknown_key_is_rejected_with_position() {
        let e = err_of("[scenario]\nusers = 5\nshardsize = 8\n");
        assert_eq!(e.pos, Pos::new(3, 1));
        assert!(e.message.contains("unknown key `shardsize`"), "{e}");
        assert!(e.message.contains("shard_size"), "suggests the valid keys: {e}");
    }

    #[test]
    fn golden_bad_scheme_token_points_at_value() {
        let e = err_of("[scenario]\nusers = 5\nscheme = \"makeidel\"\n");
        assert_eq!(e.pos, Pos::new(3, 10));
        assert!(e.message.contains("unknown scheme \"makeidel\""), "{e}");
    }

    #[test]
    fn golden_bad_carrier_slug() {
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[[carrier]]\nprofile = \"verizon\"\n",
            "[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(4, 11));
        assert!(e.message.contains("unknown carrier \"verizon\""), "{e}");
        assert!(e.message.contains("verizon-lte"), "{e}");
    }

    #[test]
    fn golden_missing_carrier_array() {
        let e = err_of("[scenario]\nusers = 5\n[[app]]\nkind = \"im\"\n");
        assert!(e.message.contains("at least one `[[carrier]]`"), "{e}");
    }

    #[test]
    fn golden_negative_weight() {
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[[carrier]]\nprofile = \"att-hspa\"\nweight = -1.0\n",
            "[[app]]\nkind = \"im\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 10));
        assert!(e.message.contains("`weight` must be positive"), "{e}");
    }

    #[test]
    fn golden_bad_sweep_axis() {
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[app]]\nkind = \"im\"\n",
            "[[sweep]]\naxis = \"shards\"\nvalues = [1]\n",
        ));
        assert_eq!(e.pos, Pos::new(8, 8));
        assert!(e.message.contains("unknown sweep axis \"shards\""), "{e}");
    }

    #[test]
    fn golden_empty_sweep_values() {
        let e = err_of(concat!(
            "[scenario]\nusers = 5\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[app]]\nkind = \"im\"\n",
            "[[sweep]]\naxis = \"users\"\nvalues = []\n",
        ));
        assert_eq!(e.pos, Pos::new(9, 10));
        assert!(e.message.contains("must not be empty"), "{e}");
    }

    #[test]
    fn golden_zero_values_are_rejected_not_clamped() {
        let zero_shard = concat!(
            "[scenario]\nusers = 5\nshard_size = 0\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[app]]\nkind = \"im\"\n",
        );
        let e = err_of(zero_shard);
        assert_eq!(e.pos, Pos::new(3, 14));
        assert!(e.message.contains("`shard_size` must be at least 1"), "{e}");

        let zero_days = zero_shard.replace("shard_size", "days_per_user");
        let e = err_of(&zero_days);
        assert!(e.message.contains("`days_per_user` must be at least 1"), "{e}");

        let zero_window = concat!(
            "[scenario]\nusers = 5\n",
            "[sim]\nwindow_capacity = 0\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[app]]\nkind = \"im\"\n",
        );
        let e = err_of(zero_window);
        assert_eq!(e.pos, Pos::new(4, 19));
        assert!(e.message.contains("`window_capacity` must be at least 1"), "{e}");
    }

    // ------------------------------------------------------------------
    // Golden [corpus] schema errors.

    #[test]
    fn golden_corpus_missing_dir() {
        let e = err_of(concat!(
            "[scenario]\nname = \"x\"\n", // 1-2
            "[corpus]\n",                 // 3
            "recursive = true\n",         // 4
            "[[carrier]]\nprofile = \"att-hspa\"\n",
        ));
        assert_eq!(e.pos, Pos::new(3, 1));
        assert_eq!(e.message, "missing required key `dir`");
    }

    #[test]
    fn golden_corpus_unknown_key() {
        let e = err_of(concat!(
            "[scenario]\nname = \"x\"\n", // 1-2
            "[corpus]\n",                 // 3
            "dir = \"traces\"\n",         // 4
            "recursiv = true\n",          // 5
            "[[carrier]]\nprofile = \"att-hspa\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 1));
        assert_eq!(
            e.message,
            "unknown key `recursiv`; expected one of: dir, recursive, formats, pcap_device"
        );
    }

    #[test]
    fn golden_corpus_conflicts_with_app_tables() {
        let e = err_of(concat!(
            "[scenario]\nname = \"x\"\n",   // 1-2
            "[corpus]\ndir = \"traces\"\n", // 3-4
            "[[app]]\n",                    // 5
            "kind = \"im\"\n",              // 6
            "[[carrier]]\nprofile = \"att-hspa\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 1));
        assert_eq!(
            e.message,
            "`[[app]]` cannot be combined with `[corpus]`: \
             replayed traces already define each user's workload"
        );
    }

    #[test]
    fn golden_corpus_conflicts_with_users() {
        let e = err_of(concat!(
            "[scenario]\n",                 // 1
            "users = 100\n",                // 2 (value at col 9)
            "[corpus]\ndir = \"traces\"\n", // 3-4
            "[[carrier]]\nprofile = \"att-hspa\"\n",
        ));
        assert_eq!(e.pos, Pos::new(2, 9));
        assert_eq!(
            e.message,
            "`users` cannot be combined with `[corpus]`: \
             the population is sized by the corpus's trace files"
        );
    }

    #[test]
    fn golden_corpus_rejects_users_sweep_and_bad_formats() {
        let e = err_of(concat!(
            "[scenario]\nname = \"x\"\n",
            "[corpus]\ndir = \"traces\"\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
            "[[sweep]]\n",        // 7
            "axis = \"users\"\n", // 8 (value at col 8)
            "values = [5]\n",     // 9
        ));
        assert_eq!(e.pos, Pos::new(8, 8));
        assert!(e.message.contains("sweep axis `users` requires a synthetic scenario"), "{e}");

        let e = err_of(concat!(
            "[scenario]\nname = \"x\"\n",
            "[corpus]\ndir = \"traces\"\n",
            "formats = [\"pcapng\"]\n", // 5 (value at col 11)
            "[[carrier]]\nprofile = \"att-hspa\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 11));
        assert!(e.message.contains("unknown trace format \"pcapng\""), "{e}");

        let e = err_of(concat!(
            "[scenario]\nname = \"x\"\n",
            "[corpus]\ndir = \"traces\"\n",
            "formats = []\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
        ));
        assert!(e.message.contains("`formats` must not be empty"), "{e}");
    }

    #[test]
    fn pcap_corpora_parse_and_round_trip_the_device() {
        let src = concat!(
            "[scenario]\nname = \"captures\"\n",
            "[corpus]\n",
            "dir = \"captures\"\n",
            "formats = [\"pcap\"]\n",
            "pcap_device = \"10.0.0.2\"\n",
            "[[carrier]]\nprofile = \"att-hspa\"\n",
        );
        let set = source_set_from_str(src).unwrap();
        let UserSource::Corpus(c) = &set.source else { panic!("expected a corpus source") };
        assert_eq!(c.spec.formats, vec![TraceFormat::Pcap]);
        assert_eq!(c.spec.pcap_device, Some(std::net::Ipv4Addr::new(10, 0, 0, 2)));
        let text = set.to_toml_string().unwrap();
        assert!(text.contains("pcap_device = \"10.0.0.2\""), "{text}");
        assert_eq!(SourceSet::from_toml_str(&text).unwrap(), set);
    }

    #[test]
    fn golden_bad_pcap_device() {
        let e = err_of(concat!(
            "[scenario]\nname = \"x\"\n",    // 1-2
            "[corpus]\n",                    // 3
            "dir = \"traces\"\n",            // 4
            "pcap_device = \"not-an-ip\"\n", // 5 (value at col 15)
            "[[carrier]]\nprofile = \"att-hspa\"\n",
        ));
        assert_eq!(e.pos, Pos::new(5, 15));
        assert!(e.message.contains("`pcap_device` must be an IPv4 address"), "{e}");
    }

    #[test]
    fn unloadable_schemes_cannot_serialize() {
        // PercentileIat(1.0) would print `iat100`, which from_file
        // rejects — to_file must refuse up front instead of writing an
        // unloadable file.
        let mut s = Scenario::new(4, Scheme::PercentileIat(1.0), CarrierProfile::att_hspa());
        let err = set_to_toml(&s, &[]).unwrap_err();
        assert_eq!(err.kind, ScenErrorKind::Emit);
        assert!(err.message.contains("no loadable on-disk token"), "{err}");
        // …and the same guard covers sweep axis values.
        s.scheme = Scheme::MakeIdle;
        let axes = vec![SweepAxis::Schemes(vec![Scheme::MakeIdle, Scheme::PercentileIat(0.0)])];
        let err = set_to_toml(&s, &axes).unwrap_err();
        assert!(err.message.contains("no loadable on-disk token"), "{err}");
    }

    #[test]
    fn hidden_sim_fields_cannot_serialize_silently() {
        let mut s = Scenario::new(4, Scheme::MakeIdle, CarrierProfile::att_hspa());
        s.sim.record_decisions = true;
        let err = set_to_toml(&s, &[]).unwrap_err();
        assert!(err.message.contains("`record_decisions`"), "{err}");
        assert!(err.message.contains("not representable"), "{err}");

        s.sim.record_decisions = false;
        s.sim.transition_log_limit = 7;
        let err = set_to_toml(&s, &[]).unwrap_err();
        assert!(err.message.contains("`transition_log_limit`"), "{err}");

        // Zero-valued identity fields are equally unrepresentable.
        s.sim = SimConfig::default();
        s.shard_size = 0;
        let err = set_to_toml(&s, &[]).unwrap_err();
        assert!(err.message.contains("shard_size of 0"), "{err}");
        assert_eq!(err.kind, ScenErrorKind::Emit);
    }

    #[test]
    fn mutated_profiles_cannot_serialize() {
        let mut s = Scenario::new(4, Scheme::MakeIdle, CarrierProfile::att_hspa());
        s.carrier_mix[0].0.fd_energy_fraction = 0.2;
        let err = set_to_toml(&s, &[]).unwrap_err();
        assert!(err.message.contains("does not match any built-in preset"), "{err}");
    }

    #[test]
    fn empty_carrier_mixes_cannot_serialize() {
        // Emitting zero [[carrier]] tables would write a document the
        // parser rejects; both source kinds refuse up front instead.
        let mut s = Scenario::new(4, Scheme::MakeIdle, CarrierProfile::att_hspa());
        s.carrier_mix.clear();
        let err = set_to_toml(&s, &[]).unwrap_err();
        assert!(err.message.contains("empty carrier mix"), "{err}");
        let mut c = CorpusScenario::new("corpus", Scheme::MakeIdle, CarrierProfile::att_hspa());
        c.carrier_mix.clear();
        let err = source_set_to_toml(&UserSource::Corpus(c), &[]).unwrap_err();
        assert!(err.message.contains("empty carrier mix"), "{err}");
        assert_eq!(err.kind, ScenErrorKind::Emit);
    }

    // ------------------------------------------------------------------
    // Property: Scenario → to_file text → from_file → equal scenario,
    // over the full expressible space (preset carriers, canonical
    // schemes, µs-grained sim gaps, cell topologies).

    /// Decodes one level's [`AdmissionSpec`] from plain proptest
    /// integers (the vendored stub has no `prop_oneof!`).
    fn admission_from_ints(which: usize, interval_us: i64, watermark: u64) -> AdmissionSpec {
        match which % 3 {
            0 => AdmissionSpec::Always,
            1 => AdmissionSpec::RateLimited { min_interval: Duration::from_micros(interval_us) },
            _ => AdmissionSpec::LoadReactive {
                watermark_per_s: watermark,
                window_s: 1 + watermark % 9,
            },
        }
    }

    /// Decodes a [`MobilitySpec`] from plain proptest integers: even
    /// `which` stays static, odd draws a valid commute schedule (home
    /// before work, both inside the day, jitter a real percentage).
    fn mobility_from_ints(which: usize, hours: u64, jitter: u64, hint: u64) -> MobilitySpec {
        if which.is_multiple_of(2) {
            return MobilitySpec::Static;
        }
        let home_hour = (hours % 23) as u32;
        let span = u64::from(23 - home_hour);
        let work_hour = home_hour + 1 + ((hours / 23) % span) as u32;
        MobilitySpec::Commute {
            home_hour,
            work_hour,
            jitter_pct: (jitter % 101) as u32,
            hint_s: (hint % 100_000) as u32,
        }
    }

    /// Decodes an `Option<NetworkTopology>` from plain proptest
    /// integers: `which` of 0 is none, otherwise it picks both levels'
    /// admission kinds; a `cap` of 0 means unbounded at that level.
    fn topology_from_ints(
        which: usize,
        count: u64,
        rncs: u64,
        cap: u64,
        rnc_cap: u64,
        interval_us: i64,
        watermark: u64,
    ) -> Option<NetworkTopology> {
        if which == 0 {
            return None;
        }
        let mut topology = NetworkTopology::with_rncs(1 + rncs % count, count);
        topology.cell_budget = SignalingBudget { capacity_per_s: (cap > 0).then_some(cap) };
        topology.rnc_budget = SignalingBudget { capacity_per_s: (rnc_cap > 0).then_some(rnc_cap) };
        topology.cell_admission = admission_from_ints(which, interval_us, watermark);
        topology.rnc_admission = admission_from_ints(which / 3, interval_us * 2 + 1, watermark + 7);
        topology.mobility =
            mobility_from_ints(which / 2, watermark + rncs, watermark, interval_us as u64);
        Some(topology)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn to_toml_from_toml_round_trips(
            (users, days, scheme_i, seed) in (0u64..100_000, 1u32..6, 0usize..7, 0u64..u64::MAX),
            (shard, gap_us, window) in (1u64..512, 1_000i64..2_000_000, 1u64..500),
            carrier_bits in 1u32..64,
            app_bits in 1u32..128,
            weights in proptest::prop::collection::vec(0.001f64..50.0, 14),
            (cells_which, cell_count, cell_cap, interval_us) in
                (0usize..10, 1u64..2_000, 0u64..500, 1_000i64..60_000_000),
            (rnc_count, rnc_cap, watermark) in (0u64..50, 0u64..1_000, 0u64..300),
        ) {
            let schemes = [
                Scheme::StatusQuo,
                Scheme::FixedTail45,
                Scheme::PercentileIat(0.95),
                Scheme::MakeIdle,
                Scheme::Oracle,
                Scheme::MakeIdleActiveFix,
                Scheme::MakeIdleActiveLearn,
            ];
            let carrier_mix: Vec<(CarrierProfile, f64)> = CarrierProfile::all_presets()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| carrier_bits & (1 << i) != 0)
                .map(|(i, c)| (c, weights[i]))
                .collect();
            let app_mix: Vec<(AppKind, f64)> = AppKind::ALL
                .into_iter()
                .enumerate()
                .filter(|(i, _)| app_bits & (1 << i) != 0)
                .map(|(i, k)| (k, weights[7 + i]))
                .collect();
            prop_assert!(!carrier_mix.is_empty() && !app_mix.is_empty());
            let sim = SimConfig {
                intra_burst_gap: Duration::from_micros(gap_us),
                window_capacity: window as usize,
                ..SimConfig::default()
            };
            let scheme = schemes[scheme_i];
            // [cells] requires a scriptable scheme; the batched draws
            // keep exercising the cell-free path.
            let cells = if scheme.scriptable() {
                topology_from_ints(
                    cells_which, cell_count, rnc_count, cell_cap, rnc_cap, interval_us, watermark,
                )
            } else {
                None
            };
            let scenario = Scenario {
                name: format!("prop {users} × {seed}"),
                users,
                days_per_user: days,
                scheme,
                carrier_mix,
                app_mix,
                master_seed: seed,
                shard_size: shard,
                sim,
                cells,
            };
            let text = set_to_toml(&scenario, &[]).unwrap();
            let reparsed = set_from_str(&text)
                .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
            prop_assert!(reparsed.axes.is_empty());
            prop_assert_eq!(reparsed.base, scenario);
        }

        #[test]
        fn corpus_to_toml_round_trips(
            (scheme_i, seed, shard) in (0usize..7, 0u64..u64::MAX, 1u64..512),
            (recursive, format_bits) in (prop::bool::ANY, 1u8..8),
            carrier_bits in 1u32..64,
            weights in proptest::prop::collection::vec(0.001f64..50.0, 7),
            dir_i in 0usize..4,
            device_bits in 0u64..=u32::MAX as u64 * 2,
            (cells_which, cell_count, cell_cap, interval_us) in
                (0usize..10, 1u64..2_000, 0u64..500, 1_000i64..60_000_000),
            (rnc_count, rnc_cap, watermark) in (0u64..50, 0u64..1_000, 0u64..300),
        ) {
            let schemes = [
                Scheme::StatusQuo,
                Scheme::FixedTail45,
                Scheme::PercentileIat(0.95),
                Scheme::MakeIdle,
                Scheme::Oracle,
                Scheme::MakeIdleActiveFix,
                Scheme::MakeIdleActiveLearn,
            ];
            let dirs = ["corpus", "data/field study", "a/b/c", "./rel"];
            let carrier_mix: Vec<(CarrierProfile, f64)> = CarrierProfile::all_presets()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| carrier_bits & (1 << i) != 0)
                .map(|(i, c)| (c, weights[i]))
                .collect();
            prop_assert!(!carrier_mix.is_empty());
            let formats: Vec<TraceFormat> = TraceFormat::ALL
                .into_iter()
                .enumerate()
                .filter(|(i, _)| format_bits & (1 << i) != 0)
                .map(|(_, f)| f)
                .collect();
            let scheme = schemes[scheme_i];
            let cells = if scheme.scriptable() {
                topology_from_ints(
                    cells_which, cell_count, rnc_count, cell_cap, rnc_cap, interval_us, watermark,
                )
            } else {
                None
            };
            // The upper half of the device range means "no device".
            let pcap_device = (device_bits <= u32::MAX as u64)
                .then(|| std::net::Ipv4Addr::from(device_bits as u32));
            let source = UserSource::Corpus(CorpusScenario {
                name: format!("prop corpus {seed}"),
                scheme,
                carrier_mix,
                master_seed: seed,
                shard_size: shard,
                sim: SimConfig::default(),
                cells,
                spec: CorpusSpec {
                    dir: PathBuf::from(dirs[dir_i]),
                    recursive,
                    formats,
                    pcap_device,
                    dir_pos: Pos::START,
                    origin: None,
                },
            });
            let text = source_set_to_toml(&source, &[]).unwrap();
            let reparsed = source_set_from_str(&text)
                .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
            prop_assert!(reparsed.axes.is_empty());
            prop_assert_eq!(reparsed.source, source);
        }
    }
}
